"""Neighbour-list construction: correctness and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.md import Box, NeighborList, copper_system
from repro.md.forcefields import LennardJones
from repro.md.neighbor import (
    BRUTE_FORCE_THRESHOLD,
    build_neighbor_data,
    _brute_force_pairs,
    _cell_list_pairs,
)


def brute_force_reference(positions, box, cutoff):
    n = len(positions)
    pairs = set()
    for i in range(n):
        for j in range(i + 1, n):
            if box.distance(positions[i], positions[j]) <= cutoff:
                pairs.add((i, j))
    return pairs


class TestNeighborData:
    def test_pairs_match_reference_small_system(self):
        atoms, box = copper_system((2, 2, 2), perturbation=0.05, rng=0)
        cutoff = 3.0
        data = build_neighbor_data(atoms.positions, box, cutoff)
        reference = brute_force_reference(atoms.positions, box, cutoff)
        found = {(int(i), int(j)) for i, j in data.pairs}
        assert found == reference

    def test_padded_list_consistent_with_pairs(self):
        atoms, box = copper_system((3, 3, 3), rng=1)
        data = build_neighbor_data(atoms.positions, box, 4.0)
        # every (i, j) pair appears in both atoms' padded rows
        for i, j in data.pairs[:200]:
            assert j in data.neighbors_of(int(i))
            assert i in data.neighbors_of(int(j))
        # counts match the number of non-padding entries
        assert np.all((data.neighbors >= 0).sum(axis=1) == data.counts)

    def test_full_list_is_symmetric(self):
        atoms, box = copper_system((3, 3, 3), perturbation=0.03, rng=2)
        data = build_neighbor_data(atoms.positions, box, 4.5)
        assert data.counts.sum() == 2 * len(data.pairs)

    def test_fcc_coordination_number(self):
        # Perfect FCC: 12 nearest neighbours within a cutoff between 1st and 2nd shell.
        atoms, box = copper_system((3, 3, 3))
        first_shell = 3.615 / np.sqrt(2.0)
        data = build_neighbor_data(atoms.positions, box, 0.5 * (first_shell + 3.615))
        assert np.all(data.counts == 12)

    def test_cell_list_agrees_with_brute_force(self):
        rng = np.random.default_rng(3)
        box = Box.cubic(20.0)
        positions = rng.uniform(0, 20.0, size=(400, 3))
        cutoff = 3.0
        bi, bj = _brute_force_pairs(positions, box, cutoff)
        ci, cj = _cell_list_pairs(positions, box, cutoff)
        brute = {(int(a), int(b)) for a, b in zip(bi, bj)}
        cell = {(int(min(a, b)), int(max(a, b))) for a, b in zip(ci, cj)}
        assert brute == cell

    def test_cutoff_exceeding_minimum_image_raises(self):
        atoms, box = copper_system((2, 2, 2))
        with pytest.raises(ValueError):
            build_neighbor_data(atoms.positions, box, 5.0)

    def test_invalid_parameters(self):
        atoms, box = copper_system((3, 3, 3))
        with pytest.raises(ValueError):
            build_neighbor_data(atoms.positions, box, -1.0)
        with pytest.raises(ValueError):
            build_neighbor_data(atoms.positions, box, 3.0, skin=-0.1)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 1000), n=st.integers(2, 60))
    def test_property_random_configurations_match_reference(self, seed, n):
        rng = np.random.default_rng(seed)
        box = Box.cubic(8.0)
        positions = rng.uniform(0, 8.0, size=(n, 3))
        cutoff = 2.5
        data = build_neighbor_data(positions, box, cutoff)
        reference = brute_force_reference(positions, box, cutoff)
        assert {(int(i), int(j)) for i, j in data.pairs} == reference


def _pair_set(pi, pj):
    return {(int(min(a, b)), int(max(a, b))) for a, b in zip(pi, pj)}


class TestCellListBruteForceAgreement:
    """The two build strategies must agree on both sides of the threshold."""

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        n=st.integers(10, 150),
        length=st.floats(9.0, 18.0),
    )
    def test_property_random_boxes(self, seed, n, length):
        rng = np.random.default_rng(seed)
        positions = rng.uniform(0.0, length, size=(n, 3))
        box = Box.cubic(length)
        cutoff = 2.8
        brute = _pair_set(*_brute_force_pairs(positions, box, cutoff))
        cell = _pair_set(*_cell_list_pairs(positions, box, cutoff))
        assert brute == cell

    def test_below_threshold_build_matches_cell_list(self):
        rng = np.random.default_rng(17)
        n = BRUTE_FORCE_THRESHOLD - 16
        box = Box.cubic(12.0)
        positions = rng.uniform(0.0, 12.0, size=(n, 3))
        cutoff = 3.0
        data = build_neighbor_data(positions, box, cutoff)  # brute-force branch
        cell = _pair_set(*_cell_list_pairs(positions, box, cutoff))
        assert _pair_set(data.pairs[:, 0], data.pairs[:, 1]) == cell

    def test_above_threshold_build_matches_brute_force(self):
        rng = np.random.default_rng(18)
        n = BRUTE_FORCE_THRESHOLD + 100
        box = Box.cubic(14.0)
        positions = rng.uniform(0.0, 14.0, size=(n, 3))
        cutoff = 3.0
        data = build_neighbor_data(positions, box, cutoff)  # cell-list branch
        brute = _pair_set(*_brute_force_pairs(positions, box, cutoff))
        assert _pair_set(data.pairs[:, 0], data.pairs[:, 1]) == brute

    def test_above_threshold_never_routes_through_brute_force(self, monkeypatch):
        """No O(N^2) path is reachable above the threshold — any geometry."""
        import repro.md.neighbor as neighbor_module

        def forbidden(*args, **kwargs):
            raise AssertionError("O(N^2) brute-force path reached above threshold")

        monkeypatch.setattr(neighbor_module, "_brute_force_pairs", forbidden)
        rng = np.random.default_rng(19)
        n = BRUTE_FORCE_THRESHOLD + 50
        box = Box.cubic(14.0)
        data = build_neighbor_data(rng.uniform(0.0, 14.0, size=(n, 3)), box, 3.0)
        assert len(data.pairs) > 0


class TestGeneralizedStencil:
    """Slab, thin, non-cubic and mixed-periodicity boxes stay binned.

    Pre-PR, any box with fewer than 3 cells on an axis silently fell back to
    the full O(N^2) search at every size; the generalized per-axis stencil
    must keep every physical geometry on the vectorized path and still agree
    with the golden brute-force reference pair-for-pair.
    """

    def test_large_slab_never_routes_through_brute_force(self, monkeypatch):
        # 200 x 200 x 16 A slab at cutoff+skin 7.5 A: only 2 cells fit on z.
        import repro.md.neighbor as neighbor_module

        def forbidden(*args, **kwargs):
            raise AssertionError("slab build routed through the O(N^2) fallback")

        monkeypatch.setattr(neighbor_module, "_brute_force_pairs", forbidden)
        rng = np.random.default_rng(7)
        box = Box(np.array([200.0, 200.0, 16.0]))
        positions = rng.uniform(0.0, 1.0, size=(4000, 3)) * box.lengths
        data = build_neighbor_data(positions, box, 7.0, skin=0.5)
        assert len(data.pairs) > 0
        assert data.counts.mean() > 1.0

    def test_slab_parity_with_brute_force(self):
        rng = np.random.default_rng(8)
        box = Box(np.array([60.0, 60.0, 16.0]))
        positions = rng.uniform(0.0, 1.0, size=(600, 3)) * box.lengths
        cutoff = 7.5
        brute = _pair_set(*_brute_force_pairs(positions, box, cutoff))
        cell = _pair_set(*_cell_list_pairs(positions, box, cutoff))
        assert brute == cell

    def test_single_cell_axis_parity(self):
        # z supports exactly one cell: every shift on that axis collapses to 0
        rng = np.random.default_rng(9)
        box = Box(np.array([40.0, 40.0, 7.0]))
        positions = rng.uniform(0.0, 1.0, size=(300, 3)) * box.lengths
        cutoff = 3.4
        brute = _pair_set(*_brute_force_pairs(positions, box, cutoff))
        cell = _pair_set(*_cell_list_pairs(positions, box, cutoff))
        assert brute == cell

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        n=st.integers(10, 120),
        lx=st.floats(8.0, 30.0),
        ly=st.floats(8.0, 30.0),
        lz=st.floats(6.0, 30.0),
    )
    def test_property_random_non_cubic_boxes(self, seed, n, lx, ly, lz):
        rng = np.random.default_rng(seed)
        box = Box(np.array([lx, ly, lz]))
        positions = rng.uniform(0.0, 1.0, size=(n, 3)) * box.lengths
        cutoff = 0.45 * min(lx, ly, lz)
        brute = _pair_set(*_brute_force_pairs(positions, box, cutoff))
        cell = _pair_set(*_cell_list_pairs(positions, box, cutoff))
        assert brute == cell

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        n=st.integers(10, 120),
        periodic=st.tuples(st.booleans(), st.booleans(), st.booleans()),
        lx=st.floats(5.8, 20.0),
        ly=st.floats(5.8, 20.0),
        lz=st.floats(5.8, 20.0),
    )
    def test_property_mixed_periodicity(self, seed, n, periodic, lx, ly, lz):
        # lengths down to 5.8 A at cutoff 2.8 A produce 2-cell axes, both
        # periodic (wrap-aliased one-sided shift) and non-periodic (full +-1
        # stencil required — a one-sided shift there drops diagonal pairs)
        rng = np.random.default_rng(seed)
        box = Box(np.array([lx, ly, lz]), periodic)
        # spill atoms outside the box on non-periodic axes (up to ~1.5 lengths)
        spill = np.where(np.asarray(periodic), 0.0, 1.5)
        low, high = -spill, 1.0 + spill
        positions = rng.uniform(low, high, size=(n, 3)) * box.lengths
        cutoff = 2.8
        brute = _pair_set(*_brute_force_pairs(positions, box, cutoff))
        cell = _pair_set(*_cell_list_pairs(positions, box, cutoff))
        assert brute == cell

    def test_non_periodic_two_cell_axis_diagonal_pairs(self):
        # Regression: a non-periodic axis with exactly 2 cells has no wrap
        # aliasing, so the stencil must keep the -1 shift — with a one-sided
        # {0, +1} set this close pair straddling the z cell boundary on a
        # diagonal (+x, -z) cell pair is silently dropped.
        box = Box(np.array([30.0, 10.0, 10.0]), (True, True, False))
        positions = np.array([[5.1, 1.0, 4.9], [4.9, 1.0, 5.1]])
        cutoff = 5.0
        brute = _pair_set(*_brute_force_pairs(positions, box, cutoff))
        assert brute == {(0, 1)}
        assert _pair_set(*_cell_list_pairs(positions, box, cutoff)) == brute

    def test_non_periodic_slab_two_cell_axis_parity(self):
        # 60 x 60 x 10.1 open slab at search radius 5: z supports 2 cells
        rng = np.random.default_rng(21)
        box = Box(np.array([60.0, 60.0, 10.1]), (True, True, False))
        positions = rng.uniform(0.0, 1.0, size=(400, 3)) * box.lengths
        brute = _pair_set(*_brute_force_pairs(positions, box, 5.0))
        cell = _pair_set(*_cell_list_pairs(positions, box, 5.0))
        assert brute == cell
        data = build_neighbor_data(positions, box, 4.0, skin=1.0)
        assert _pair_set(data.pairs[:, 0], data.pairs[:, 1]) == brute

    def test_atoms_exactly_on_box_faces(self):
        box = Box(np.array([12.0, 15.0, 9.0]))
        lx, ly, lz = box.lengths
        positions = np.array(
            [
                [0.0, 0.0, 0.0],
                [lx, 0.0, 0.0],  # wraps onto the first atom's cell
                [0.0, ly, lz],
                [lx, ly, lz],
                [0.5, 0.2, 0.1],
                [lx - 0.5, 0.3, 0.2],
                [0.25 * lx, ly, 0.5 * lz],
                [0.25 * lx, 0.0, 0.5 * lz],
                [6.0, 7.5, 4.5],
            ]
        )
        cutoff = 2.5
        brute = _pair_set(*_brute_force_pairs(positions, box, cutoff))
        cell = _pair_set(*_cell_list_pairs(positions, box, cutoff))
        assert brute == cell
        data = build_neighbor_data(positions, box, cutoff)
        assert _pair_set(data.pairs[:, 0], data.pairs[:, 1]) == brute


class TestNonPeriodicClamping:
    """Non-periodic axes clamp outliers into edge cells instead of wrapping.

    Wrapping ``frac - floor(frac)`` on a non-periodic axis bins an atom more
    than one box length outside into an interior cell; with a non-wrapping
    stencil on that axis its pairs are then silently dropped.
    """

    def test_far_outlier_cluster_keeps_its_pairs(self):
        box = Box(np.array([20.0, 20.0, 15.0]), (True, True, False))
        # a cluster hovering 2+ box lengths above the cell on the open axis
        positions = np.array(
            [
                [5.0, 5.0, 33.0],
                [5.5, 5.0, 33.4],   # within cutoff of the first outlier
                [5.0, 5.5, 34.0],   # within cutoff of both
                [5.0, 5.0, -18.0],  # far below the cell
                [5.4, 5.0, -18.3],  # within cutoff of the one above
                [5.0, 5.0, 7.0],    # inside the box, isolated
            ]
        )
        cutoff = 1.5
        brute = _pair_set(*_brute_force_pairs(positions, box, cutoff))
        assert brute == {(0, 1), (0, 2), (1, 2), (3, 4)}
        cell = _pair_set(*_cell_list_pairs(positions, box, cutoff))
        assert cell == brute

    def test_straddling_the_open_boundary(self):
        # one atom just inside the top face, one just outside: wrapping the
        # outside atom to the bottom of the box would separate them
        box = Box(np.array([20.0, 20.0, 15.0]), (True, True, False))
        positions = np.array([[5.0, 5.0, 14.9], [5.0, 5.0, 15.1], [5.0, 5.0, 0.1]])
        cutoff = 1.0
        brute = _pair_set(*_brute_force_pairs(positions, box, cutoff))
        assert brute == {(0, 1)}
        assert _pair_set(*_cell_list_pairs(positions, box, cutoff)) == brute

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000), n=st.integers(5, 80))
    def test_property_outliers_match_reference(self, seed, n):
        rng = np.random.default_rng(seed)
        box = Box(np.array([16.0, 12.0, 10.0]), (True, False, False))
        frac = rng.uniform([-0.2, -2.5, -2.5], [1.2, 3.5, 3.5], size=(n, 3))
        positions = frac * box.lengths
        cutoff = 2.5
        brute = _pair_set(*_brute_force_pairs(positions, box, cutoff))
        cell = _pair_set(*_cell_list_pairs(positions, box, cutoff))
        assert brute == cell


class TestMDInvariants:
    """Physics invariants of forces built on top of the neighbour lists."""

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_forces_sum_to_zero(self, seed):
        atoms, box = copper_system((2, 2, 2), perturbation=0.12, rng=seed)
        lj = LennardJones(epsilon=0.4, sigma=2.3, cutoff=3.5)
        data = build_neighbor_data(atoms.positions, box, lj.cutoff)
        result = lj.compute(atoms, box, data)
        np.testing.assert_allclose(result.forces.sum(axis=0), np.zeros(3), atol=1.0e-10)

    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        shift=st.tuples(
            st.floats(-8.0, 8.0), st.floats(-8.0, 8.0), st.floats(-8.0, 8.0)
        ),
    )
    def test_energy_translation_invariance(self, seed, shift):
        atoms, box = copper_system((2, 2, 2), perturbation=0.10, rng=seed)
        lj = LennardJones(epsilon=0.4, sigma=2.3, cutoff=3.5)
        data = build_neighbor_data(atoms.positions, box, lj.cutoff)
        energy = lj.compute(atoms, box, data).energy

        moved = atoms.copy()
        moved.positions = box.wrap(moved.positions + np.asarray(shift))
        moved_data = build_neighbor_data(moved.positions, box, lj.cutoff)
        assert abs(lj.compute(moved, box, moved_data).energy - energy) < 1.0e-9


class TestNeighborList:
    def test_skin_avoids_rebuild_for_small_moves(self):
        atoms, box = copper_system((3, 3, 3), rng=4)
        nlist = NeighborList(cutoff=4.0, skin=1.0, rebuild_every=1000)
        nlist.build(atoms, box)
        atoms.positions += 0.1  # well below skin/2
        _, rebuilt = nlist.maybe_rebuild(atoms, box)
        assert not rebuilt
        atoms.positions += 2.0
        _, rebuilt = nlist.maybe_rebuild(atoms, box)
        assert rebuilt

    def test_rebuild_every_forces_refresh(self):
        atoms, box = copper_system((3, 3, 3), rng=5)
        nlist = NeighborList(cutoff=4.0, skin=1.0, rebuild_every=5)
        nlist.build(atoms, box)
        rebuilds = 0
        for _ in range(11):
            _, rebuilt = nlist.maybe_rebuild(atoms, box)
            rebuilds += int(rebuilt)
        assert rebuilds == 2
        assert nlist.n_builds == 3

    def test_atom_count_change_triggers_rebuild(self):
        atoms, box = copper_system((3, 3, 3), rng=6)
        nlist = NeighborList(cutoff=4.0, skin=1.0)
        nlist.build(atoms, box)
        smaller = atoms.select(np.arange(len(atoms) - 1))
        assert nlist.needs_rebuild(smaller, box)

    def test_build_seconds_accumulates_only_on_builds(self):
        atoms, box = copper_system((3, 3, 3), rng=7)
        nlist = NeighborList(cutoff=4.0, skin=1.0, rebuild_every=1000)
        assert nlist.build_seconds == 0.0
        nlist.build(atoms, box)
        after_first = nlist.build_seconds
        assert after_first > 0.0
        _, rebuilt = nlist.maybe_rebuild(atoms, box)  # fresh list: no rebuild
        assert not rebuilt
        assert nlist.build_seconds == after_first
        nlist.build(atoms, box)
        assert nlist.build_seconds > after_first
