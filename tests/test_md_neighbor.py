"""Neighbour-list construction: correctness and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.md import Box, NeighborList, copper_system
from repro.md.forcefields import LennardJones
from repro.md.neighbor import (
    BRUTE_FORCE_THRESHOLD,
    build_neighbor_data,
    _brute_force_pairs,
    _cell_list_pairs,
)


def brute_force_reference(positions, box, cutoff):
    n = len(positions)
    pairs = set()
    for i in range(n):
        for j in range(i + 1, n):
            if box.distance(positions[i], positions[j]) <= cutoff:
                pairs.add((i, j))
    return pairs


class TestNeighborData:
    def test_pairs_match_reference_small_system(self):
        atoms, box = copper_system((2, 2, 2), perturbation=0.05, rng=0)
        cutoff = 3.0
        data = build_neighbor_data(atoms.positions, box, cutoff)
        reference = brute_force_reference(atoms.positions, box, cutoff)
        found = {(int(i), int(j)) for i, j in data.pairs}
        assert found == reference

    def test_padded_list_consistent_with_pairs(self):
        atoms, box = copper_system((3, 3, 3), rng=1)
        data = build_neighbor_data(atoms.positions, box, 4.0)
        # every (i, j) pair appears in both atoms' padded rows
        for i, j in data.pairs[:200]:
            assert j in data.neighbors_of(int(i))
            assert i in data.neighbors_of(int(j))
        # counts match the number of non-padding entries
        assert np.all((data.neighbors >= 0).sum(axis=1) == data.counts)

    def test_full_list_is_symmetric(self):
        atoms, box = copper_system((3, 3, 3), perturbation=0.03, rng=2)
        data = build_neighbor_data(atoms.positions, box, 4.5)
        assert data.counts.sum() == 2 * len(data.pairs)

    def test_fcc_coordination_number(self):
        # Perfect FCC: 12 nearest neighbours within a cutoff between 1st and 2nd shell.
        atoms, box = copper_system((3, 3, 3))
        first_shell = 3.615 / np.sqrt(2.0)
        data = build_neighbor_data(atoms.positions, box, 0.5 * (first_shell + 3.615))
        assert np.all(data.counts == 12)

    def test_cell_list_agrees_with_brute_force(self):
        rng = np.random.default_rng(3)
        box = Box.cubic(20.0)
        positions = rng.uniform(0, 20.0, size=(400, 3))
        cutoff = 3.0
        bi, bj = _brute_force_pairs(positions, box, cutoff)
        ci, cj = _cell_list_pairs(positions, box, cutoff)
        brute = {(int(a), int(b)) for a, b in zip(bi, bj)}
        cell = {(int(min(a, b)), int(max(a, b))) for a, b in zip(ci, cj)}
        assert brute == cell

    def test_cutoff_exceeding_minimum_image_raises(self):
        atoms, box = copper_system((2, 2, 2))
        with pytest.raises(ValueError):
            build_neighbor_data(atoms.positions, box, 5.0)

    def test_invalid_parameters(self):
        atoms, box = copper_system((3, 3, 3))
        with pytest.raises(ValueError):
            build_neighbor_data(atoms.positions, box, -1.0)
        with pytest.raises(ValueError):
            build_neighbor_data(atoms.positions, box, 3.0, skin=-0.1)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 1000), n=st.integers(2, 60))
    def test_property_random_configurations_match_reference(self, seed, n):
        rng = np.random.default_rng(seed)
        box = Box.cubic(8.0)
        positions = rng.uniform(0, 8.0, size=(n, 3))
        cutoff = 2.5
        data = build_neighbor_data(positions, box, cutoff)
        reference = brute_force_reference(positions, box, cutoff)
        assert {(int(i), int(j)) for i, j in data.pairs} == reference


def _pair_set(pi, pj):
    return {(int(min(a, b)), int(max(a, b))) for a, b in zip(pi, pj)}


class TestCellListBruteForceAgreement:
    """The two build strategies must agree on both sides of the threshold."""

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        n=st.integers(10, 150),
        length=st.floats(9.0, 18.0),
    )
    def test_property_random_boxes(self, seed, n, length):
        rng = np.random.default_rng(seed)
        positions = rng.uniform(0.0, length, size=(n, 3))
        box = Box.cubic(length)
        cutoff = 2.8
        brute = _pair_set(*_brute_force_pairs(positions, box, cutoff))
        cell = _pair_set(*_cell_list_pairs(positions, box, cutoff))
        assert brute == cell

    def test_below_threshold_build_matches_cell_list(self):
        rng = np.random.default_rng(17)
        n = BRUTE_FORCE_THRESHOLD - 100
        box = Box.cubic(38.0)
        positions = rng.uniform(0.0, 38.0, size=(n, 3))
        cutoff = 3.0
        data = build_neighbor_data(positions, box, cutoff)  # brute-force branch
        cell = _pair_set(*_cell_list_pairs(positions, box, cutoff))
        assert _pair_set(data.pairs[:, 0], data.pairs[:, 1]) == cell

    def test_above_threshold_build_matches_brute_force(self):
        rng = np.random.default_rng(18)
        n = BRUTE_FORCE_THRESHOLD + 100
        box = Box.cubic(40.0)
        positions = rng.uniform(0.0, 40.0, size=(n, 3))
        cutoff = 3.0
        data = build_neighbor_data(positions, box, cutoff)  # cell-list branch
        brute = _pair_set(*_brute_force_pairs(positions, box, cutoff))
        assert _pair_set(data.pairs[:, 0], data.pairs[:, 1]) == brute


class TestMDInvariants:
    """Physics invariants of forces built on top of the neighbour lists."""

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_forces_sum_to_zero(self, seed):
        atoms, box = copper_system((2, 2, 2), perturbation=0.12, rng=seed)
        lj = LennardJones(epsilon=0.4, sigma=2.3, cutoff=3.5)
        data = build_neighbor_data(atoms.positions, box, lj.cutoff)
        result = lj.compute(atoms, box, data)
        np.testing.assert_allclose(result.forces.sum(axis=0), np.zeros(3), atol=1.0e-10)

    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        shift=st.tuples(
            st.floats(-8.0, 8.0), st.floats(-8.0, 8.0), st.floats(-8.0, 8.0)
        ),
    )
    def test_energy_translation_invariance(self, seed, shift):
        atoms, box = copper_system((2, 2, 2), perturbation=0.10, rng=seed)
        lj = LennardJones(epsilon=0.4, sigma=2.3, cutoff=3.5)
        data = build_neighbor_data(atoms.positions, box, lj.cutoff)
        energy = lj.compute(atoms, box, data).energy

        moved = atoms.copy()
        moved.positions = box.wrap(moved.positions + np.asarray(shift))
        moved_data = build_neighbor_data(moved.positions, box, lj.cutoff)
        assert abs(lj.compute(moved, box, moved_data).energy - energy) < 1.0e-9


class TestNeighborList:
    def test_skin_avoids_rebuild_for_small_moves(self):
        atoms, box = copper_system((3, 3, 3), rng=4)
        nlist = NeighborList(cutoff=4.0, skin=1.0, rebuild_every=1000)
        nlist.build(atoms, box)
        atoms.positions += 0.1  # well below skin/2
        _, rebuilt = nlist.maybe_rebuild(atoms, box)
        assert not rebuilt
        atoms.positions += 2.0
        _, rebuilt = nlist.maybe_rebuild(atoms, box)
        assert rebuilt

    def test_rebuild_every_forces_refresh(self):
        atoms, box = copper_system((3, 3, 3), rng=5)
        nlist = NeighborList(cutoff=4.0, skin=1.0, rebuild_every=5)
        nlist.build(atoms, box)
        rebuilds = 0
        for _ in range(11):
            _, rebuilt = nlist.maybe_rebuild(atoms, box)
            rebuilds += int(rebuilt)
        assert rebuilds == 2
        assert nlist.n_builds == 3

    def test_atom_count_change_triggers_rebuild(self):
        atoms, box = copper_system((3, 3, 3), rng=6)
        nlist = NeighborList(cutoff=4.0, skin=1.0)
        nlist.build(atoms, box)
        smaller = atoms.select(np.arange(len(atoms) - 1))
        assert nlist.needs_rebuild(smaller, box)
