"""Periodic box and atom container, including hypothesis property tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.md import Atoms, Box
from repro.units import MASSES


class TestBox:
    def test_volume_and_cubic(self):
        box = Box.cubic(10.0)
        assert box.volume == pytest.approx(1000.0)
        assert Box.orthorhombic(1, 2, 3).volume == pytest.approx(6.0)

    def test_invalid_lengths(self):
        with pytest.raises(ValueError):
            Box([1.0, -1.0, 1.0])

    def test_wrap_puts_positions_inside(self):
        box = Box.cubic(5.0)
        wrapped = box.wrap(np.array([[6.0, -1.0, 12.5]]))
        assert np.all(wrapped >= 0.0) and np.all(wrapped < 5.0)

    def test_wrap_respects_non_periodic_axis(self):
        box = Box(np.array([5.0, 5.0, 5.0]), periodic=(True, True, False))
        wrapped = box.wrap(np.array([[6.0, 6.0, 6.0]]))
        assert wrapped[0, 2] == pytest.approx(6.0)

    def test_minimum_image_distance(self):
        box = Box.cubic(10.0)
        d = box.distance(np.array([0.5, 0.0, 0.0]), np.array([9.5, 0.0, 0.0]))
        assert d == pytest.approx(1.0)

    def test_max_cutoff_is_half_min_length(self):
        assert Box.orthorhombic(10, 20, 30).max_cutoff() == pytest.approx(5.0)

    def test_replicate(self):
        box = Box.cubic(3.0).replicate(2, 2, 1)
        np.testing.assert_allclose(box.lengths, [6.0, 6.0, 3.0])
        with pytest.raises(ValueError):
            Box.cubic(1.0).replicate(0, 1, 1)

    def test_fractional_roundtrip(self):
        box = Box.orthorhombic(2.0, 4.0, 8.0)
        pos = np.array([[1.0, 1.0, 1.0]])
        np.testing.assert_allclose(box.cartesian(box.fractional(pos)), pos)

    @settings(max_examples=50, deadline=None)
    @given(
        coords=st.lists(st.floats(-100, 100, allow_nan=False), min_size=3, max_size=3),
        length=st.floats(1.0, 50.0),
    )
    def test_property_minimum_image_within_half_box(self, coords, length):
        box = Box.cubic(length)
        delta = box.minimum_image(np.array(coords))
        assert np.all(np.abs(delta) <= length / 2 + 1e-9)

    @settings(max_examples=50, deadline=None)
    @given(
        coords=st.lists(st.floats(-100, 100, allow_nan=False), min_size=3, max_size=3),
        length=st.floats(1.0, 50.0),
    )
    def test_property_wrap_idempotent(self, coords, length):
        box = Box.cubic(length)
        once = box.wrap(np.array(coords))
        twice = box.wrap(once)
        np.testing.assert_allclose(once, twice, atol=1e-9)


class TestAtoms:
    def test_from_symbols_builds_type_map(self):
        atoms = Atoms.from_symbols(np.zeros((3, 3)), ["O", "H", "H"])
        assert atoms.type_names == ("O", "H")
        np.testing.assert_array_equal(atoms.types, [0, 1, 1])
        assert atoms.masses[0] == pytest.approx(MASSES["O"])
        assert atoms.n_types == 2

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            Atoms(positions=np.zeros((2, 2)), types=np.zeros(2, dtype=int), masses=np.ones(2))
        with pytest.raises(ValueError):
            Atoms(positions=np.zeros((2, 3)), types=np.zeros(3, dtype=int), masses=np.ones(2))

    def test_copy_is_independent(self):
        atoms = Atoms.from_symbols(np.zeros((2, 3)), ["Cu", "Cu"])
        clone = atoms.copy()
        clone.positions[0, 0] = 5.0
        assert atoms.positions[0, 0] == 0.0

    def test_select_subset(self):
        atoms = Atoms.from_symbols(np.arange(9.0).reshape(3, 3), ["O", "H", "H"])
        subset = atoms.select(atoms.types == 1)
        assert len(subset) == 2
        np.testing.assert_array_equal(subset.ids, [1, 2])

    def test_counts_by_type(self):
        atoms = Atoms.from_symbols(np.zeros((3, 3)), ["O", "H", "H"])
        np.testing.assert_array_equal(atoms.counts_by_type(), [1, 2])

    def test_initialize_velocities_temperature_and_momentum(self):
        atoms = Atoms.from_symbols(np.zeros((500, 3)), ["Cu"] * 500)
        atoms.initialize_velocities(300.0, rng=0)
        from repro.units import temperature

        t = temperature(atoms.masses, atoms.velocities)
        assert t == pytest.approx(300.0, rel=0.15)
        momentum = (atoms.masses[:, None] * atoms.velocities).sum(axis=0)
        np.testing.assert_allclose(momentum, 0.0, atol=1e-10)

    def test_concatenate(self):
        a = Atoms.from_symbols(np.zeros((2, 3)), ["Cu", "Cu"])
        b = Atoms.from_symbols(np.ones((3, 3)), ["Cu", "Cu", "Cu"])
        merged = a.concatenate(b)
        assert len(merged) == 5

    def test_concatenate_type_map_mismatch(self):
        a = Atoms.from_symbols(np.zeros((1, 3)), ["Cu"])
        b = Atoms.from_symbols(np.zeros((1, 3)), ["O"])
        with pytest.raises(ValueError):
            a.concatenate(b)
