"""Integration, thermostats, the simulation loop and RDF analysis."""

import numpy as np
import pytest

from repro.md import (
    BerendsenThermostat,
    GuptaPotential,
    LangevinThermostat,
    LennardJones,
    Simulation,
    VelocityRescale,
    VelocityVerlet,
    copper_system,
    partial_rdf,
    radial_distribution_function,
    water_system,
)
from repro.md.rdf import rdf_overlap_error
from repro.units import temperature as instantaneous_temperature


class TestVelocityVerlet:
    def test_invalid_timestep(self):
        with pytest.raises(ValueError):
            VelocityVerlet(0.0)

    def test_free_particle_moves_linearly(self):
        from repro.md import Atoms, Box

        box = Box.cubic(100.0)
        atoms = Atoms.from_symbols(np.array([[1.0, 1.0, 1.0]]), ["Cu"])
        atoms.velocities[0] = [0.01, 0.0, 0.0]
        integrator = VelocityVerlet(2.0)
        integrator.step(atoms, box, lambda a: 0.0)
        np.testing.assert_allclose(atoms.positions[0], [1.02, 1.0, 1.0])

    def test_nve_energy_conservation_copper(self):
        atoms, box = copper_system((3, 3, 3), rng=0)
        atoms.initialize_velocities(150.0, rng=1)
        sim = Simulation(atoms, box, GuptaPotential(cutoff=5.0), timestep_fs=2.0, neighbor_skin=0.3)
        e0 = sim.total_energy()
        sim.run(40)
        e1 = sim.total_energy()
        drift_per_atom = abs(e1 - e0) / len(atoms)
        assert drift_per_atom < 2.0e-4  # eV/atom over 80 fs


class TestThermostats:
    def _lj_copper_sim(self, thermostat, steps=60):
        atoms, box = copper_system((3, 3, 3), rng=2)
        atoms.initialize_velocities(600.0, rng=3)
        sim = Simulation(
            atoms, box, GuptaPotential(cutoff=5.0), timestep_fs=2.0, neighbor_skin=0.3, thermostat=thermostat
        )
        sim.run(steps)
        return instantaneous_temperature(atoms.masses, atoms.velocities)

    def test_langevin_drives_towards_target(self):
        final = self._lj_copper_sim(LangevinThermostat(300.0, damping_fs=20.0, rng=4))
        assert 150.0 < final < 500.0

    def test_berendsen_reduces_temperature_gap(self):
        final = self._lj_copper_sim(BerendsenThermostat(300.0, coupling_fs=50.0))
        assert final < 600.0

    def test_berendsen_hot_start_stays_finite(self):
        """Regression: a hot start with aggressive coupling must not NaN.

        With the current temperature far above the target and dt/tau large,
        the raw weak-coupling sqrt argument 1 + (dt/tau)(T0/T - 1) goes
        negative; the old code silently filled the velocities with NaN.  The
        clamped factor must keep a single step inside the documented
        [min_factor, max_factor] window instead.
        """
        atoms, box = copper_system((2, 2, 2), rng=9)
        atoms.initialize_velocities(30000.0, rng=10)  # far above target
        thermostat = BerendsenThermostat(300.0, coupling_fs=5.0)
        before = instantaneous_temperature(atoms.masses, atoms.velocities)
        # dt/tau = 2.0, T0/T ~ 0.01 -> raw sqrt argument ~ -0.98
        thermostat.apply(atoms, timestep_fs=10.0)
        assert np.all(np.isfinite(atoms.velocities))
        after = instantaneous_temperature(atoms.masses, atoms.velocities)
        assert after == pytest.approx(before * thermostat.min_factor**2)

    def test_berendsen_cold_start_capped_by_max_factor(self):
        """The heating direction is clamped symmetrically at max_factor."""
        atoms, box = copper_system((2, 2, 2), rng=11)
        atoms.initialize_velocities(1.0, rng=12)  # essentially frozen
        thermostat = BerendsenThermostat(300.0, coupling_fs=5.0)
        before = instantaneous_temperature(atoms.masses, atoms.velocities)
        thermostat.apply(atoms, timestep_fs=10.0)
        after = instantaneous_temperature(atoms.masses, atoms.velocities)
        assert np.all(np.isfinite(atoms.velocities))
        assert after == pytest.approx(before * thermostat.max_factor**2)

    def test_berendsen_gentle_coupling_unchanged(self):
        """In-window rescales match the unclamped textbook factor exactly."""
        atoms, box = copper_system((2, 2, 2), rng=13)
        atoms.initialize_velocities(450.0, rng=14)
        current = instantaneous_temperature(atoms.masses, atoms.velocities)
        expected = atoms.velocities * np.sqrt(
            1.0 + (0.5 / 100.0) * (300.0 / current - 1.0)
        )
        BerendsenThermostat(300.0, coupling_fs=100.0).apply(atoms, timestep_fs=0.5)
        np.testing.assert_array_equal(atoms.velocities, expected)

    def test_velocity_rescale_hits_target_exactly(self):
        atoms, box = copper_system((2, 2, 2), rng=5)
        atoms.initialize_velocities(500.0, rng=6)
        VelocityRescale(250.0).apply(atoms, 1.0)
        assert instantaneous_temperature(atoms.masses, atoms.velocities) == pytest.approx(250.0)

    def test_thermostat_parameter_validation(self):
        with pytest.raises(ValueError):
            LangevinThermostat(-1.0)
        with pytest.raises(ValueError):
            BerendsenThermostat(300.0, coupling_fs=0.0)
        with pytest.raises(ValueError):
            BerendsenThermostat(300.0, min_factor=0.0)
        with pytest.raises(ValueError):
            BerendsenThermostat(300.0, min_factor=1.5)
        with pytest.raises(ValueError):
            BerendsenThermostat(300.0, max_factor=0.9)
        with pytest.raises(ValueError):
            VelocityRescale(300.0, every=0)


class TestSimulation:
    def test_requires_positive_cutoff(self):
        atoms, box = copper_system((2, 2, 2))

        class NoCutoff:
            cutoff = 0.0

        with pytest.raises(ValueError):
            Simulation(atoms, box, NoCutoff(), timestep_fs=1.0)

    def test_report_contents_and_timers(self):
        atoms, box = copper_system((3, 3, 3), rng=7)
        atoms.initialize_velocities(100.0, rng=8)
        sim = Simulation(atoms, box, LennardJones(0.05, 2.3, 5.0), timestep_fs=1.0, neighbor_skin=0.3)
        report = sim.run(10, trajectory_every=5)
        assert report.n_steps == 10
        assert len(report.potential_energies) == 10
        assert report.neighbor_builds >= 1
        assert {"pair", "neigh", "integrate"} <= set(report.timers.totals)
        assert len(sim.trajectory) == 2
        assert report.mean_temperature > 0.0

    def test_negative_steps_rejected(self):
        atoms, box = copper_system((2, 2, 2))
        sim = Simulation(atoms, box, LennardJones(0.05, 2.3, 3.0), timestep_fs=1.0, neighbor_skin=0.3)
        with pytest.raises(ValueError):
            sim.run(-1)


class TestRDF:
    def test_ideal_gas_rdf_is_flat(self):
        from repro.md import Atoms, Box

        rng = np.random.default_rng(0)
        box = Box.cubic(20.0)
        atoms = Atoms.from_symbols(rng.uniform(0, 20, size=(3000, 3)), ["Cu"] * 3000)
        rdf = partial_rdf(atoms, box, 0, 0, r_max=8.0, n_bins=40)
        # ignore the first few bins (few counts); the tail should hover around 1
        assert np.abs(rdf.g[10:] - 1.0).mean() < 0.1

    def test_fcc_first_peak_at_nearest_neighbor_distance(self):
        atoms, box = copper_system((4, 4, 4))
        rdf = partial_rdf(atoms, box, 0, 0, r_max=5.0, n_bins=100)
        peak_r, peak_g = rdf.first_peak()
        assert peak_r == pytest.approx(3.615 / np.sqrt(2.0), abs=0.1)
        assert peak_g > 5.0

    def test_water_oh_peak_near_bond_length(self):
        atoms, box, _ = water_system(64, rng=1)
        rdf = partial_rdf(atoms, box, 0, 1, r_max=4.0, n_bins=80)
        peak_r, _ = rdf.first_peak()
        assert peak_r == pytest.approx(1.0, abs=0.15)

    def test_trajectory_average_and_overlap_error(self):
        atoms, box, _ = water_system(27, rng=2)
        frames = [atoms.positions, atoms.positions + 0.01]
        rdf_a = radial_distribution_function(frames, box, atoms.types, 0, 0, r_max=4.0)
        rdf_b = radial_distribution_function([atoms.positions], box, atoms.types, 0, 0, r_max=4.0)
        err = rdf_overlap_error(rdf_a, rdf_b)
        assert err >= 0.0
        assert err < 0.5

    def test_overlap_error_requires_same_binning(self):
        atoms, box, _ = water_system(8, rng=3)
        a = partial_rdf(atoms, box, 0, 0, r_max=4.0, n_bins=10)
        b = partial_rdf(atoms, box, 0, 0, r_max=4.0, n_bins=20)
        with pytest.raises(ValueError):
            rdf_overlap_error(a, b)

    def test_empty_frames_rejected(self):
        from repro.md import Box

        with pytest.raises(ValueError):
            radial_distribution_function([], Box.cubic(5.0), None, 0, 0)


class TestRDFPairSearch:
    """The binned pair search behind the RDF vs the dense golden reference.

    ``_pair_distances`` used to materialize a dense (N_a, N_b, 3) displacement
    tensor — O(N^2) memory that fell over at production sizes.  It now routes
    through the binned neighbour search; the dense formulation is kept as
    ``_pair_distances_dense`` purely as the parity reference here.
    """

    def _random_two_species(self, n, seed, length=12.0):
        from repro.md import Atoms, Box

        rng = np.random.default_rng(seed)
        box = Box.cubic(length)
        positions = rng.uniform(0.0, length, size=(n, 3))
        types = np.repeat([0, 1], [n // 2, n - n // 2])
        atoms = Atoms(positions=positions, types=types, masses=np.ones(n))
        return atoms, box

    @pytest.mark.parametrize("n", [60, 400], ids=["brute-path", "binned-path"])
    def test_same_species_distances_match_dense_reference(self, n):
        from repro.md.rdf import _pair_distances, _pair_distances_dense

        atoms, box = self._random_two_species(n, seed=4)
        pos = atoms.positions[atoms.types == 0]
        r_max = 5.0
        dense = _pair_distances_dense(pos, pos, box, same=True)
        dense = np.sort(dense[dense <= r_max])
        binned = np.sort(_pair_distances(pos, pos, box, True, r_max))
        np.testing.assert_allclose(binned, dense, rtol=0.0, atol=0.0)

    @pytest.mark.parametrize("n", [60, 400], ids=["brute-path", "binned-path"])
    def test_cross_species_distances_match_dense_reference(self, n):
        from repro.md.rdf import _pair_distances, _pair_distances_dense

        atoms, box = self._random_two_species(n, seed=5)
        pos_a = atoms.positions[atoms.types == 0]
        pos_b = atoms.positions[atoms.types == 1]
        r_max = 4.5
        dense = _pair_distances_dense(pos_a, pos_b, box, same=False)
        dense = np.sort(dense[dense <= r_max])
        binned = np.sort(_pair_distances(pos_a, pos_b, box, False, r_max))
        np.testing.assert_allclose(binned, dense, rtol=0.0, atol=0.0)

    def test_partial_rdf_matches_dense_histogram(self):
        """g(r) computed through the binned search equals the histogram of
        the dense reference distances bin-for-bin."""
        from repro.md.rdf import _pair_distances_dense

        atoms, box = self._random_two_species(500, seed=6)
        r_max, n_bins = 5.0, 60
        result = partial_rdf(atoms, box, 0, 1, r_max=r_max, n_bins=n_bins)
        pos_a = atoms.positions[atoms.types == 0]
        pos_b = atoms.positions[atoms.types == 1]
        dense = _pair_distances_dense(pos_a, pos_b, box, same=False)
        dense = dense[dense > 1.0e-9]
        edges = np.linspace(0.0, r_max, n_bins + 1)
        hist, _ = np.histogram(dense, bins=edges)
        shells = 4.0 / 3.0 * np.pi * (edges[1:] ** 3 - edges[:-1] ** 3)
        ideal = len(pos_a) * len(pos_b) * shells / box.volume
        expected = np.divide(hist.astype(float), ideal, out=np.zeros(n_bins), where=ideal > 0)
        np.testing.assert_allclose(result.g, expected, rtol=0.0, atol=1e-12)

    def test_large_system_runs_without_dense_tensor(self):
        """A 6000-atom RDF (dense tensor would be ~0.9 GB) completes."""
        atoms, box = self._random_two_species(6000, seed=7, length=30.0)
        result = partial_rdf(atoms, box, 0, 0, r_max=6.0, n_bins=50)
        assert np.abs(result.g[20:] - 1.0).mean() < 0.2  # ideal-gas-like tail
