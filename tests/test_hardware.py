"""Fugaku machine model: node, NoC, torus, TNIs, NIC cache."""

import pytest

from repro.hardware import (
    A64FXNode,
    FUGAKU,
    NICRegistrationCache,
    NocModel,
    TNIScheduler,
    TofuDNetwork,
    TorusCoordinates,
)


class TestSpecs:
    def test_node_peak_matches_paper(self):
        # 48 cores x 2.2 GHz x 32 flops/cycle ~ 3.38 TFLOPS
        assert FUGAKU.node.compute_cores == 48
        assert FUGAKU.node.peak_flops_fp64 == pytest.approx(3.38e12, rel=0.01)

    def test_network_constants_from_paper(self):
        assert FUGAKU.network.hop_latency == pytest.approx(0.49e-6)
        assert FUGAKU.network.n_tnis == 6
        assert FUGAKU.network.n_ports == 10
        assert FUGAKU.framework_overhead == pytest.approx(4.0e-3)


class TestA64FXNode:
    def test_gemm_time_scales_with_flops(self):
        node = A64FXNode()
        t1 = node.gemm_time(1, 240, 240)
        t2 = node.gemm_time(1, 240, 480)
        assert t2 == pytest.approx(2 * t1, rel=1e-9)

    def test_sve_faster_than_blas_for_tall_skinny(self):
        node = A64FXNode()
        blas = node.gemm_time(2, 240, 240, backend="blas")
        sve = node.gemm_time(2, 240, 240, backend="sve")
        assert blas / sve == pytest.approx(1.4, rel=0.05)

    def test_precision_speedups(self):
        node = A64FXNode()
        fp64 = node.fitting_gemm_time(1, 240, 240, dtype="fp64", backend="sve")
        fp32 = node.fitting_gemm_time(1, 240, 240, dtype="fp32", backend="sve")
        fp16 = node.fitting_gemm_time(1, 240, 240, dtype="fp16", backend="sve")
        assert fp64 / fp32 == pytest.approx(1.6, rel=0.01)
        assert fp32 / fp16 == pytest.approx(1.5, rel=0.01)

    def test_nt_penalty_for_small_matrices(self):
        node = A64FXNode()
        nn = node.fitting_gemm_time(1, 240, 240, transposed_b=False)
        nt = node.fitting_gemm_time(1, 240, 240, transposed_b=True)
        assert nt == pytest.approx(2 * nn)

    def test_fitting_gemm_weak_m_dependence(self):
        node = A64FXNode()
        per_atom_1 = node.fitting_gemm_time(1, 240, 240) / 1
        per_atom_8 = node.fitting_gemm_time(8, 240, 240) / 8
        assert per_atom_8 < per_atom_1
        assert per_atom_1 / per_atom_8 < 1.5  # mild, not a cliff

    def test_zero_and_memcpy(self):
        node = A64FXNode()
        assert node.gemm_time(0, 10, 10) == 0.0
        assert node.memcpy_time(0) == 0.0
        assert node.memcpy_time(1e6, cross_numa=True) > node.memcpy_time(1e6, cross_numa=False)
        assert node.cores_per_rank(4) == 12


class TestTorus:
    def test_hop_distance_with_wraparound(self):
        torus = TorusCoordinates((4, 6, 4))
        assert torus.hops((0, 0, 0), (1, 0, 0)) == 1
        assert torus.hops((0, 0, 0), (3, 0, 0)) == 1  # wraps
        assert torus.hops((0, 0, 0), (2, 3, 2)) == 7
        assert torus.n_nodes == 96

    def test_index_roundtrip(self):
        torus = TorusCoordinates((3, 4, 5))
        for index in (0, 17, 59):
            assert torus.index(torus.coordinate(index)) == index

    def test_neighbors_within_counts(self):
        net = TofuDNetwork(TorusCoordinates((8, 8, 8)))
        assert len(net.neighbors_within((0, 0, 0), (1, 1, 1))) == 26
        assert len(net.neighbors_within((0, 0, 0), (2, 2, 2))) == 124

    def test_message_time_components(self):
        net = TofuDNetwork(TorusCoordinates((4, 4, 4)))
        occ = net.occupancy(6800.0)
        assert occ == pytest.approx(0.15e-6 + 1e-6, rel=1e-6)
        assert net.latency(3) > net.latency(1)
        mpi = net.message_time(1000.0, use_rdma=False)
        rdma = net.message_time(1000.0, use_rdma=True)
        assert mpi > rdma
        with pytest.raises(ValueError):
            net.occupancy(-1.0)


class TestTNIScheduler:
    def test_single_engine_serializes(self):
        scheduler = TNIScheduler()
        assert scheduler.makespan([1.0, 1.0, 1.0], engines=1) == pytest.approx(3.0)

    def test_six_engines_run_concurrently(self):
        scheduler = TNIScheduler()
        assert scheduler.makespan([1.0] * 6) == pytest.approx(1.0)
        assert scheduler.makespan([1.0] * 12) == pytest.approx(2.0)

    def test_thread_cap_limits_engines(self):
        scheduler = TNIScheduler()
        assert scheduler.makespan([1.0] * 6, threads=2) == pytest.approx(3.0)

    def test_empty_messages(self):
        assert TNIScheduler().makespan([]) == 0.0


class TestNICCache:
    def test_no_penalty_below_capacity(self):
        cache = NICRegistrationCache()
        assert cache.per_message_penalty(10) == 0.0
        assert cache.per_message_penalty(cache.spec.cache_entries) == 0.0

    def test_penalty_grows_beyond_capacity(self):
        cache = NICRegistrationCache()
        small = cache.per_message_penalty(cache.spec.cache_entries + 10)
        large = cache.per_message_penalty(cache.spec.cache_entries * 3)
        assert 0.0 < small < large < cache.spec.miss_penalty

    def test_regions_for_pooling(self):
        cache = NICRegistrationCache()
        assert cache.regions_for(124, pooled=True) == 1
        assert cache.regions_for(124, pooled=False) == 248
        with pytest.raises(ValueError):
            cache.regions_for(-1, pooled=True)


class TestNoC:
    def test_gather_scales_with_bytes_and_threads(self):
        noc = NocModel()
        small = noc.gather_time([1e4] * 4, copy_threads=48)
        large = noc.gather_time([1e6] * 4, copy_threads=48)
        assert large > small
        few_threads = noc.gather_time([1e6] * 4, copy_threads=6)
        assert few_threads > large

    def test_sync_time_linear_in_count(self):
        noc = NocModel()
        assert noc.synchronization_time(2) == pytest.approx(2 * noc.spec.intra_node_sync_latency)
        assert noc.gather_time([]) == 0.0
