"""Logging wrapper and PhaseTimer snapshot conventions.

``SimulationReport.phase_seconds`` is built from
``PhaseTimer.snapshot()`` + ``totals_since()`` — these tests pin the
conventions that contract depends on: snapshots are frozen copies,
deltas are per-run (not cumulative), and zero-delta phases are dropped.
"""

import logging

import pytest

from repro.utils.logging import get_logger, set_verbosity
from repro.utils.timer import PhaseTimer, Timer


# ---------------------------------------------------------------------------
# Timer
# ---------------------------------------------------------------------------


def test_timer_context_manager_accumulates_and_clears_start():
    timer = Timer()
    with timer:
        pass
    first = timer.elapsed
    assert first > 0.0
    assert timer._start is None
    with timer:
        pass
    assert timer.elapsed > first  # accumulates across uses


def test_timer_stop_returns_the_delta_not_the_total():
    timer = Timer()
    timer.start()
    first = timer.stop()
    timer.start()
    second = timer.stop()
    assert timer.elapsed == pytest.approx(first + second)


def test_timer_reset_clears_elapsed_and_pending_start():
    timer = Timer()
    timer.start()
    timer.reset()
    assert timer.elapsed == 0.0
    with pytest.raises(RuntimeError):
        timer.stop()


# ---------------------------------------------------------------------------
# PhaseTimer snapshot / totals_since — the SimulationReport contract
# ---------------------------------------------------------------------------


def test_snapshot_is_a_frozen_copy():
    timers = PhaseTimer()
    timers.add("pair", 1.0)
    snap = timers.snapshot()
    timers.add("pair", 2.0)
    assert snap == {"pair": 1.0}
    assert timers.totals["pair"] == pytest.approx(3.0)


def test_totals_since_reports_only_the_delta():
    timers = PhaseTimer()
    timers.add("pair", 1.0)
    timers.add("neigh", 0.5)
    snap = timers.snapshot()
    timers.add("pair", 2.0)
    timers.add("comm", 0.25)
    delta = timers.totals_since(snap)
    assert delta == pytest.approx({"pair": 2.0, "comm": 0.25})


def test_totals_since_drops_zero_delta_phases():
    timers = PhaseTimer()
    timers.add("pair", 1.0)
    snap = timers.snapshot()
    # "pair" saw no time since the snapshot: it must not appear at all,
    # so report consumers never print 0.000-second phase rows
    assert timers.totals_since(snap) == {}


def test_totals_since_empty_snapshot_equals_totals():
    timers = PhaseTimer()
    timers.add("pair", 1.5)
    assert timers.totals_since({}) == pytest.approx(timers.totals)


def test_phase_context_manager_records_time_and_count():
    timers = PhaseTimer()
    with timers.phase("integrate"):
        pass
    with timers.phase("integrate"):
        pass
    assert timers.totals["integrate"] > 0.0
    assert timers.counts["integrate"] == 2


def test_phase_records_even_when_the_body_raises():
    timers = PhaseTimer()
    with pytest.raises(ValueError):
        with timers.phase("pair"):
            raise ValueError("boom")
    assert timers.totals["pair"] >= 0.0
    assert timers.counts["pair"] == 1


def test_fraction_and_reset():
    timers = PhaseTimer()
    assert timers.fraction("pair") == 0.0  # no time at all: no division
    timers.add("pair", 3.0)
    timers.add("neigh", 1.0)
    assert timers.fraction("pair") == pytest.approx(0.75)
    assert timers.fraction("absent") == 0.0
    timers.reset()
    assert timers.totals == {} and timers.counts == {}


def test_summary_sorted_by_descending_time_with_total_row():
    timers = PhaseTimer()
    timers.add("neigh", 1.0)
    timers.add("pair", 3.0)
    lines = timers.summary().splitlines()
    assert lines[0].split() == ["phase", "seconds", "%"]
    assert lines[1].startswith("pair")
    assert lines[2].startswith("neigh")
    assert lines[-1].startswith("total")
    assert "100.00%" in lines[-1]


def test_summary_of_empty_timer_shows_zero_total():
    lines = PhaseTimer().summary().splitlines()
    assert lines[-1].split()[0] == "total"
    assert "0.00%" in lines[-1]


def test_merge_leaves_operands_untouched():
    a = PhaseTimer()
    a.add("pair", 1.0)
    b = PhaseTimer()
    b.add("pair", 2.0)
    b.add("comm", 0.5)
    merged = a.merge(b)
    assert merged.totals == pytest.approx({"pair": 3.0, "comm": 0.5})
    assert merged.counts == {"pair": 2, "comm": 1}
    assert a.totals == {"pair": 1.0}
    assert b.totals == pytest.approx({"pair": 2.0, "comm": 0.5})


# ---------------------------------------------------------------------------
# Logging wrapper
# ---------------------------------------------------------------------------


def test_get_logger_namespaces_under_repro():
    logger = get_logger("md.engine")
    assert logger.name == "repro.md.engine"


def test_get_logger_keeps_existing_repro_prefix():
    logger = get_logger("repro.parallel")
    assert logger.name == "repro.parallel"


def test_root_configuration_is_idempotent():
    get_logger("a")
    get_logger("b")
    root = logging.getLogger("repro")
    assert len(root.handlers) == 1


def test_set_verbosity_accepts_int_and_string():
    root = logging.getLogger("repro")
    previous = root.level
    try:
        set_verbosity(logging.DEBUG)
        assert root.level == logging.DEBUG
        set_verbosity("INFO")
        assert root.level == logging.INFO
    finally:
        root.setLevel(previous)


def test_child_logger_propagates_to_package_handler():
    logger = get_logger("md.capture_test")
    records = []

    class _Capture(logging.Handler):
        def emit(self, record):
            records.append(record.getMessage())

    root = logging.getLogger("repro")
    capture = _Capture()
    root.addHandler(capture)
    previous = root.level
    try:
        set_verbosity("INFO")
        logger.info("hello from the child")
    finally:
        root.removeHandler(capture)
        root.setLevel(previous)
    assert records == ["hello from the child"]
