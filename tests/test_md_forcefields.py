"""Reference force fields: analytic forces vs finite differences, physics sanity."""

import numpy as np
import pytest

from repro.md import (
    GuptaPotential,
    LennardJones,
    MorsePotential,
    WaterReference,
    copper_system,
    water_system,
)
from repro.md.forcefields.base import accumulate_pair_forces
from repro.md.neighbor import build_neighbor_data


def builder(box, cutoff):
    return lambda atoms: build_neighbor_data(atoms.positions, box, cutoff)


def numerical_forces_loop_reference(force_field, atoms, box, neighbors_builder, delta=1.0e-5):
    """The original per-element triple loop, kept as the regression oracle for
    the vectorized ``ForceField.numerical_forces``."""
    base = atoms.copy()
    forces = np.zeros_like(base.positions)
    for i in range(len(base)):
        for axis in range(3):
            for sign, slot in ((+1.0, 0), (-1.0, 1)):
                trial = base.copy()
                trial.positions[i, axis] += sign * delta
                trial.positions = box.wrap(trial.positions)
                nd = neighbors_builder(trial)
                energy = force_field.compute(trial, box, nd).energy
                if slot == 0:
                    e_plus = energy
                else:
                    e_minus = energy
            forces[i, axis] = -(e_plus - e_minus) / (2.0 * delta)
    return forces


class TestNumericalForcesVectorized:
    """Regression: the vectorized finite-difference helper reproduces the
    per-element loop it replaced, bit for bit."""

    def test_matches_loop_reference(self):
        atoms, box = copper_system((2, 2, 2), perturbation=0.08, rng=9)
        subset = atoms.select(np.arange(8))
        lj = LennardJones(epsilon=0.1, sigma=2.3, cutoff=3.5)
        fast = lj.numerical_forces(subset, box, builder(box, 3.5))
        slow = numerical_forces_loop_reference(lj, subset, box, builder(box, 3.5))
        np.testing.assert_array_equal(fast, slow)

    def test_matches_analytic_forces(self):
        atoms, box = copper_system((2, 2, 2), perturbation=0.08, rng=10)
        lj = LennardJones(epsilon=0.1, sigma=2.3, cutoff=3.5)
        data = build_neighbor_data(atoms.positions, box, 3.5)
        analytic = lj.compute(atoms, box, data).forces
        numeric = lj.numerical_forces(atoms, box, builder(box, 3.5))
        np.testing.assert_allclose(analytic, numeric, atol=5e-6)

    def test_empty_system(self):
        from repro.md import Atoms, Box

        box = Box.cubic(10.0)
        atoms = Atoms.from_symbols(np.zeros((0, 3)), [])
        lj = LennardJones(epsilon=0.1, sigma=2.3, cutoff=3.5)
        assert lj.numerical_forces(atoms, box, builder(box, 3.5)).shape == (0, 3)


class TestLennardJones:
    def test_minimum_at_sigma_times_2_to_sixth(self):
        lj = LennardJones(epsilon=0.5, sigma=2.0, cutoff=8.0, shift=False)
        r_min = 2.0 * 2.0 ** (1.0 / 6.0)
        import numpy as np

        from repro.md import Atoms, Box

        box = Box.cubic(30.0)
        atoms = Atoms.from_symbols(np.array([[0.0, 0, 0], [r_min, 0, 0]]), ["Cu", "Cu"])
        data = build_neighbor_data(atoms.positions, box, 8.0)
        result = lj.compute(atoms, box, data)
        assert result.energy == pytest.approx(-0.5, rel=1e-9)
        np.testing.assert_allclose(result.forces, 0.0, atol=1e-9)

    def test_forces_match_finite_differences(self, small_copper):
        atoms, box = small_copper
        lj = LennardJones(epsilon=0.05, sigma=2.3, cutoff=5.0)
        data = build_neighbor_data(atoms.positions, box, 5.0)
        analytic = lj.compute(atoms, box, data).forces
        numeric = lj.numerical_forces(atoms, box, builder(box, 5.0))
        np.testing.assert_allclose(analytic, numeric, atol=5e-6)

    def test_energy_shift_makes_cutoff_continuous(self):
        lj = LennardJones(epsilon=0.5, sigma=2.0, cutoff=6.0, shift=True)
        from repro.md import Atoms, Box

        box = Box.cubic(30.0)
        atoms = Atoms.from_symbols(np.array([[0.0, 0, 0], [5.999, 0, 0]]), ["Cu", "Cu"])
        data = build_neighbor_data(atoms.positions, box, 6.0)
        assert abs(lj.compute(atoms, box, data).energy) < 1e-4

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            LennardJones(-1.0, 1.0, 1.0)


class TestMorse:
    def test_equilibrium_distance_has_zero_force(self):
        from repro.md import Atoms, Box

        morse = MorsePotential(cutoff=8.0, shift=False)
        box = Box.cubic(30.0)
        atoms = Atoms.from_symbols(np.array([[0.0, 0, 0], [morse.r0, 0, 0]]), ["Cu", "Cu"])
        data = build_neighbor_data(atoms.positions, box, 8.0)
        result = morse.compute(atoms, box, data)
        assert result.energy == pytest.approx(-morse.d, rel=1e-6)
        np.testing.assert_allclose(result.forces, 0.0, atol=1e-9)

    def test_forces_match_finite_differences(self, small_copper):
        atoms, box = small_copper
        morse = MorsePotential(cutoff=5.0)
        data = build_neighbor_data(atoms.positions, box, 5.0)
        analytic = morse.compute(atoms, box, data).forces
        numeric = morse.numerical_forces(atoms, box, builder(box, 5.0))
        np.testing.assert_allclose(analytic, numeric, atol=5e-6)


class TestGupta:
    def test_cohesive_energy_close_to_copper(self):
        atoms, box = copper_system((3, 3, 3))
        gupta = GuptaPotential(cutoff=5.0)
        data = build_neighbor_data(atoms.positions, box, 5.0)
        e_per_atom = gupta.compute(atoms, box, data).energy / len(atoms)
        # Experimental copper cohesive energy is about -3.49 eV/atom.
        assert -4.0 < e_per_atom < -2.8

    def test_forces_vanish_on_perfect_lattice(self):
        atoms, box = copper_system((3, 3, 3))
        gupta = GuptaPotential(cutoff=5.0)
        data = build_neighbor_data(atoms.positions, box, 5.0)
        np.testing.assert_allclose(gupta.compute(atoms, box, data).forces, 0.0, atol=1e-10)

    def test_forces_match_finite_differences(self, small_copper):
        atoms, box = small_copper
        gupta = GuptaPotential(cutoff=5.0)
        data = build_neighbor_data(atoms.positions, box, 5.0)
        analytic = gupta.compute(atoms, box, data).forces
        numeric = gupta.numerical_forces(atoms, box, builder(box, 5.0))
        np.testing.assert_allclose(analytic, numeric, atol=1e-5)

    def test_per_atom_energy_sums_to_total(self, small_copper):
        atoms, box = small_copper
        gupta = GuptaPotential(cutoff=5.0)
        data = build_neighbor_data(atoms.positions, box, 5.0)
        result = gupta.compute(atoms, box, data)
        assert result.per_atom_energy.sum() == pytest.approx(result.energy, rel=1e-12)


class TestWaterReference:
    def test_forces_match_finite_differences(self):
        atoms, box, topology = water_system(64, rng=3)
        water = WaterReference(topology, cutoff=6.0)
        data = build_neighbor_data(atoms.positions, box, 6.0)
        analytic = water.compute(atoms, box, data).forces
        numeric = water.numerical_forces(atoms, box, builder(box, 6.0))
        np.testing.assert_allclose(analytic, numeric, atol=1e-5)

    def test_intramolecular_terms_zero_at_equilibrium_geometry(self):
        atoms, box, topology = water_system(8, rng=4)
        water = WaterReference(topology, cutoff=6.0)
        forces = np.zeros_like(atoms.positions)
        per_atom = np.zeros(len(atoms))
        bond_energy = water._bond_terms(atoms, box, forces, per_atom)
        angle_energy = water._angle_terms(atoms, box, forces, per_atom)
        assert bond_energy == pytest.approx(0.0, abs=1e-8)
        assert angle_energy == pytest.approx(0.0, abs=1e-8)

    def test_total_force_is_zero(self):
        atoms, box, topology = water_system(27, rng=5)
        water = WaterReference(topology, cutoff=4.5)
        data = build_neighbor_data(atoms.positions, box, 4.5)
        total = water.compute(atoms, box, data).forces.sum(axis=0)
        np.testing.assert_allclose(total, 0.0, atol=1e-9)


class TestHelpers:
    def test_accumulate_pair_forces_newton(self):
        pairs = np.array([[0, 1]])
        pair_forces = np.array([[1.0, 0.0, 0.0]])
        forces = accumulate_pair_forces(2, pairs, pair_forces)
        np.testing.assert_allclose(forces[0], [1.0, 0.0, 0.0])
        np.testing.assert_allclose(forces[1], [-1.0, 0.0, 0.0])

    def test_momentum_conservation_all_fields(self, small_copper):
        atoms, box = small_copper
        for ff in (LennardJones(0.05, 2.3, 5.0), MorsePotential(cutoff=5.0), GuptaPotential(cutoff=5.0)):
            data = build_neighbor_data(atoms.positions, box, 5.0)
            total = ff.compute(atoms, box, data).forces.sum(axis=0)
            np.testing.assert_allclose(total, 0.0, atol=1e-9)
