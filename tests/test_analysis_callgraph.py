"""Call-graph resolver edge cases: the conservative contract, pinned.

Each case builds a :class:`ProjectIndex` + :class:`CallGraph` over a small
in-memory project and asserts the exact edge set (or the exact skip record —
the resolver must *prove* a callee, never guess one).
"""

import textwrap

from repro.analysis.callgraph import CallGraph
from repro.analysis.project import ProjectIndex, module_name_for
from repro.analysis.reprolint import ParsedFile


def build(sources: dict[str, str]) -> tuple[ProjectIndex, CallGraph]:
    parsed = {
        path: ParsedFile.parse(textwrap.dedent(source), path)
        for path, source in sources.items()
    }
    index = ProjectIndex.build(parsed)
    return index, CallGraph.build(index)


def edges(graph: CallGraph, caller: str) -> set[str]:
    return graph.edges.get(caller, set())


# ---------------------------------------------------------------------------
# name resolution
# ---------------------------------------------------------------------------


def test_module_name_strips_src_and_init():
    assert module_name_for("src/repro/md/neighbor.py") == "repro.md.neighbor"
    assert module_name_for("src/repro/parallel/__init__.py") == "repro.parallel"


def test_direct_call_and_module_alias():
    _, graph = build(
        {
            "src/pkg/mod.py": """\
                def f():
                    pass

                g = f

                def caller():
                    g()
                """
        }
    )
    assert edges(graph, "pkg.mod::caller") == {"pkg.mod::f"}


def test_from_import_with_same_name_resolves_across_modules():
    # regression: the resolver's cycle guard must key on (module, name) —
    # a bare-name guard made every `from x import f` self-shadow and return None
    _, graph = build(
        {
            "src/pkg/a.py": """\
                from .b import helper

                def caller():
                    return helper()
                """,
            "src/pkg/b.py": """\
                def helper():
                    pass
                """,
        }
    )
    assert edges(graph, "pkg.a::caller") == {"pkg.b::helper"}


def test_recursion_terminates_and_roots_are_excluded():
    _, graph = build(
        {
            "src/pkg/mod.py": """\
                def loop(n):
                    if n:
                        return loop(n - 1)
                    return other()

                def other():
                    pass
                """
        }
    )
    assert edges(graph, "pkg.mod::loop") == {"pkg.mod::loop", "pkg.mod::other"}
    reached = graph.reachable_from(["pkg.mod::loop"])
    assert reached == {"pkg.mod::other": "pkg.mod::loop"}


# ---------------------------------------------------------------------------
# methods, overrides, constructors
# ---------------------------------------------------------------------------

_FORCEFIELD = """\
    class Base:
        def compute(self):
            pass

    class Sub(Base):
        def compute(self):
            pass

    class SubSub(Sub):
        pass

    def driver():
        field = Base()
        field.compute()
    """


def test_method_call_expands_to_every_subclass_override():
    _, graph = build({"src/pkg/mod.py": _FORCEFIELD})
    assert edges(graph, "pkg.mod::driver") == {
        "pkg.mod::Base.compute",
        "pkg.mod::Sub.compute",
    }


def test_self_method_call_resolves_through_the_owner_class():
    _, graph = build(
        {
            "src/pkg/mod.py": """\
                class Engine:
                    def run(self):
                        self.step()

                    def step(self):
                        pass
                """
        }
    )
    assert edges(graph, "pkg.mod::Engine.run") == {"pkg.mod::Engine.step"}


def test_constructor_reaches_init_through_the_mro():
    _, graph = build(
        {
            "src/pkg/mod.py": """\
                class Base:
                    def __init__(self):
                        pass

                class Sub(Base):
                    pass

                def make():
                    return Sub()
                """
        }
    )
    assert edges(graph, "pkg.mod::make") == {"pkg.mod::Base.__init__"}


def test_dispatch_dict_constructor_edges_to_every_value_class():
    _, graph = build(
        {
            "src/pkg/mod.py": """\
                class A:
                    def __init__(self):
                        pass

                class B:
                    def __init__(self):
                        pass

                KINDS = {"a": A, "b": B}

                def make(kind):
                    return KINDS[kind]()
                """
        }
    )
    assert edges(graph, "pkg.mod::make") == {
        "pkg.mod::A.__init__",
        "pkg.mod::B.__init__",
    }


# ---------------------------------------------------------------------------
# closures, lambdas, callbacks
# ---------------------------------------------------------------------------


def test_nested_def_gets_a_closure_edge_and_its_calls_stay_its_own():
    _, graph = build(
        {
            "src/pkg/mod.py": """\
                def outer():
                    def inner():
                        leaf()

                def leaf():
                    pass
                """
        }
    )
    assert edges(graph, "pkg.mod::outer") == {"pkg.mod::outer.inner"}
    assert edges(graph, "pkg.mod::outer.inner") == {"pkg.mod::leaf"}


def test_lambda_body_is_attributed_to_the_enclosing_function():
    _, graph = build(
        {
            "src/pkg/mod.py": """\
                def apply(f):
                    return f()

                def leaf():
                    pass

                def caller():
                    return apply(lambda: leaf())
                """
        }
    )
    assert "pkg.mod::leaf" in edges(graph, "pkg.mod::caller")


def test_function_passed_as_argument_gets_a_reference_edge():
    _, graph = build(
        {
            "src/pkg/mod.py": """\
                def handler(message):
                    pass

                def register(conn):
                    conn.on_message(handler)
                """
        }
    )
    assert "pkg.mod::handler" in edges(graph, "pkg.mod::register")


# ---------------------------------------------------------------------------
# the conservative contract: skip, never guess
# ---------------------------------------------------------------------------


def test_multi_level_receiver_is_skipped_with_line_and_descriptor():
    _, graph = build(
        {
            "src/pkg/mod.py": """\
                def run(self):
                    self.backend.step()
                """
        }
    )
    assert edges(graph, "pkg.mod::run") == set()
    assert graph.skipped["pkg.mod::run"] == [(2, "self.backend.step")]


def test_unknown_name_call_is_skipped_not_guessed():
    _, graph = build(
        {
            "src/pkg/mod.py": """\
                def run():
                    mystery()
                """
        }
    )
    assert edges(graph, "pkg.mod::run") == set()
    assert graph.skipped["pkg.mod::run"] == [(2, "mystery")]


def test_parameter_receiver_method_is_skipped():
    _, graph = build(
        {
            "src/pkg/mod.py": """\
                def run(engine):
                    engine.compute()
                """
        }
    )
    assert edges(graph, "pkg.mod::run") == set()
    assert graph.skipped["pkg.mod::run"] == [(2, "engine.compute")]


def test_reachability_stop_predicate_is_a_hard_boundary():
    _, graph = build(
        {
            "src/pkg/mod.py": """\
                def root():
                    middle()

                def middle():
                    leaf()

                def leaf():
                    pass
                """
        }
    )
    reached = graph.reachable_from(
        ["pkg.mod::root"], stop=lambda fid: fid == "pkg.mod::middle"
    )
    assert reached == {}
