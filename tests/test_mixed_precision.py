"""Mixed precision as a *production fast path*, pinned the house way.

The regression story of this suite:

* **effective compute dtype** — ``evaluate(compressed=True,
  precision="mix-fp32")`` used to run pure fp64 while ``describe()`` reported
  ``"mix-fp32"``.  The GEMM dtype accounting
  (:attr:`GemmStats.flops_by_dtype`), the table's per-dtype evaluation
  counters and the ``table_dtype`` field of ``describe()`` must all agree on
  what actually executes;
* **once-per-policy operand caches** — the low-precision weight/bias/table
  copies are built exactly once per policy and dropped by
  ``invalidate_kernels``; steady-state mixed GEMMs see zero in-call operand
  casts (``GemmStats.cast_bytes``) — the per-call ``astype`` churn is gone;
* **Table II tolerances** — MIX-fp32 / MIX-fp16 energy/force RMSE vs the
  fp64 golden output, on both the uncompressed and the compressed path,
  inside documented bounds;
* **RDF-level physics** — short water MD under double and MIX-fp32 yields
  overlapping radial distribution functions (the paper's Fig. 6 claim, at
  test scale, a la ``examples/water_precision_rdf.py``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.deepmd import (
    DeepPotential,
    DeepPotentialConfig,
    DeepPotentialForceField,
)
from repro.deepmd.gemm import GemmBackend
from repro.md import LangevinThermostat, Simulation, water_system
from repro.md.neighbor import build_neighbor_data
from repro.md.rdf import radial_distribution_function, rdf_overlap_error
from repro.md.workspace import Workspace

#: Documented MIX-fp32 RMSE bounds vs the fp64 golden evaluate (measured
#: ~2e-9 force / ~1e-8 energy uncompressed, ~4e-7 / ~1e-8 compressed —
#: the compressed path adds the fp32 rounding of the packed table nodes).
FP32_FORCE_RMSE = 1.0e-6
FP32_ENERGY_RMSE = 1.0e-6
#: Documented MIX-fp16 RMSE bounds (measured ~7e-6 force / ~6e-4 energy).
FP16_FORCE_RMSE = 1.0e-3
FP16_ENERGY_RMSE = 1.0e-2
#: Max mean |g_double(r) - g_mix(r)| over the O-O / O-H / H-H RDF curves of
#: a short MD run (the curves must overlap; measured well below this).
RDF_OVERLAP_TOL = 0.15


def _water_model(seed: int = 3):
    atoms, box, _ = water_system(32, rng=seed)
    config = DeepPotentialConfig(
        type_names=("O", "H"),
        cutoff=4.2,
        cutoff_smooth=3.4,
        embedding_sizes=(6, 12),
        axis_neurons=4,
        fitting_sizes=(16, 16),
        max_neighbors=48,
        seed=seed,
    )
    model = DeepPotential(config)
    rng = np.random.default_rng(1000 + seed)
    model.set_descriptor_stats(
        rng.normal(scale=0.1, size=(2, config.descriptor_dim)),
        0.5 + rng.random((2, config.descriptor_dim)),
    )
    model.set_energy_bias(rng.normal(size=2))
    neighbors = build_neighbor_data(atoms.positions, box, config.cutoff)
    return model, atoms, box, neighbors


class TestEffectiveComputeDtype:
    """describe() must report the dtype that actually executes."""

    def test_compressed_mix_fp32_actually_runs_fp32(self):
        """Regression: the compressed table path honours the policy."""
        model, atoms, box, neighbors = _water_model()
        backend = GemmBackend()
        ff = DeepPotentialForceField(
            model, precision="mix-fp32", gemm_backend=backend, compressed=True
        )
        info = ff.describe()
        assert info["precision"] == "mix-fp32"
        assert info["table_dtype"] == "fp32"

        ff.compute(atoms, box, neighbors)
        flops = backend.stats.flops_by_dtype
        # every GEMM of the step ran at the advertised precision
        assert flops.get("fp32", 0.0) > 0.0
        assert flops.get("fp64", 0.0) == 0.0
        # and so did every batched table interpolation
        table = ff._compression_table()
        assert table.eval_dtype_counts.get("fp32", 0) > 0
        assert table.eval_dtype_counts.get("fp64", 0) == 0
        assert "fp32" in table.packed_dtypes()

    def test_double_reports_and_runs_fp64(self):
        model, atoms, box, neighbors = _water_model()
        backend = GemmBackend()
        ff = DeepPotentialForceField(model, gemm_backend=backend, compressed=True)
        assert ff.describe()["table_dtype"] == "fp64"
        ff.compute(atoms, box, neighbors)
        assert backend.stats.flops_by_dtype.get("fp64", 0.0) > 0.0
        assert backend.stats.flops_by_dtype.get("fp32", 0.0) == 0.0
        table = ff._compression_table()
        assert table.eval_dtype_counts.get("fp64", 0) > 0
        assert table.eval_dtype_counts.get("fp32", 0) == 0
        assert ff.describe()["table_dtype"] == "fp64"

    def test_mix_fp16_first_fitting_gemm_is_fp16(self):
        model, atoms, box, neighbors = _water_model()
        backend = GemmBackend()
        model.evaluate(atoms, box, neighbors, precision="mix-fp16", backend=backend)
        flops = backend.stats.flops_by_dtype
        assert flops.get("fp16", 0.0) > 0.0  # the first fitting GEMM (fwd+bwd)
        assert flops.get("fp32", 0.0) > 0.0  # everything else
        assert flops.get("fp64", 0.0) == 0.0

    def test_uncompressed_table_dtype_not_reported(self):
        model, _, _, _ = _water_model()
        ff = DeepPotentialForceField(model, precision="mix-fp32", compressed=False)
        assert ff.describe()["table_dtype"] is None


class TestOperandCaches:
    """Low-precision operands are cast once per policy, not per call."""

    def test_weight_caches_built_once_and_no_gemm_casts(self):
        model, atoms, box, neighbors = _water_model()
        backend = GemmBackend()
        for _ in range(3):
            model.evaluate(atoms, box, neighbors, precision="mix-fp32", backend=backend)
        for net in list(model.fast_embeddings().values()) + list(model.fast_fittings().values()):
            assert net.lp_cache_builds <= 1
        # under MIX-fp32 every operand reaches the GEMM already in fp32:
        # the in-call astype fallback (the pre-fix churn) never fires
        assert backend.stats.cast_bytes == 0.0

    def test_table_cast_once_across_evaluations(self):
        model, atoms, box, neighbors = _water_model()
        for _ in range(3):
            model.evaluate(atoms, box, neighbors, precision="mix-fp32", compressed=True)
        table = model.active_compressed_embeddings()
        assert table.eval_dtype_counts.get("fp32", 0) >= 3
        # exactly one reduced copy exists, shared by all evaluations
        assert table.packed_dtypes() == ("fp64", "fp32")
        packed_before = table.ensure_packed(np.float32)
        model.evaluate(atoms, box, neighbors, precision="mix-fp32", compressed=True)
        assert table.ensure_packed(np.float32) is packed_before

    def test_invalidate_kernels_drops_low_precision_caches(self):
        model, atoms, box, neighbors = _water_model()
        model.evaluate(atoms, box, neighbors, precision="mix-fp32", compressed=True)
        old_emb = model.fast_embeddings()
        generation = model.kernel_generation
        model.invalidate_kernels()
        assert model.kernel_generation == generation + 1
        new_emb = model.fast_embeddings()
        for key, net in new_emb.items():
            assert net is not old_emb[key]
            assert net.lp_cache_builds == 0
        # the fresh table has no reduced copy until a mixed evaluation runs
        assert model.compressed_embeddings().packed_dtypes() == ("fp64",)

    def test_mixed_workspace_steady_state_reuses_buffers(self):
        model, atoms, box, neighbors = _water_model()
        workspace = Workspace()
        model.evaluate(
            atoms, box, neighbors, precision="mix-fp32", compressed=True, workspace=workspace
        )
        misses = workspace.misses
        for _ in range(2):
            model.evaluate(
                atoms, box, neighbors, precision="mix-fp32", compressed=True, workspace=workspace
            )
        assert workspace.misses == misses, "mixed-precision buffers reallocated in steady state"
        assert workspace.hits > 0


class TestTableIITolerances:
    """Energy/force RMSE vs the fp64 golden output, both inference paths."""

    @pytest.mark.parametrize("compressed", [False, True], ids=["uncompressed", "compressed"])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_rmse_within_documented_bounds(self, compressed, seed):
        model, atoms, box, neighbors = _water_model(seed)
        golden = model.evaluate(atoms, box, neighbors, compressed=compressed)
        for precision, force_rmse_tol, energy_rmse_tol in (
            ("mix-fp32", FP32_FORCE_RMSE, FP32_ENERGY_RMSE),
            ("mix-fp16", FP16_FORCE_RMSE, FP16_ENERGY_RMSE),
        ):
            out = model.evaluate(
                atoms, box, neighbors, precision=precision, compressed=compressed
            )
            force_rmse = float(np.sqrt(np.mean((out.forces - golden.forces) ** 2)))
            energy_rmse = float(
                np.sqrt(np.mean((out.per_atom_energy - golden.per_atom_energy) ** 2))
            )
            assert force_rmse < force_rmse_tol, (precision, compressed, force_rmse)
            assert energy_rmse < energy_rmse_tol, (precision, compressed, energy_rmse)
            # the reductions are fp64 regardless of the compute dtype
            assert out.forces.dtype == np.dtype(np.float64)
            assert out.per_atom_energy.dtype == np.dtype(np.float64)
            assert out.virial.dtype == np.dtype(np.float64)


class TestRDFPhysics:
    """Fig. 6 at test scale: double and MIX-fp32 RDF curves overlap."""

    def _rdf_curves(self, model, precision: str):
        atoms, box, _ = water_system(32, rng=21)
        atoms.initialize_velocities(300.0, rng=21)
        skin = max(0.1, min(1.0, box.max_cutoff() - model.config.cutoff - 0.05))
        sim = Simulation(
            atoms,
            box,
            DeepPotentialForceField(model, precision=precision, compressed=True),
            timestep_fs=0.5,
            neighbor_skin=skin,
            thermostat=LangevinThermostat(300.0, damping_fs=25.0, rng=5),
        )
        sim.run(40, trajectory_every=4)
        r_max = min(6.0, box.max_cutoff())
        return {
            pair: radial_distribution_function(
                sim.trajectory, box, atoms.types, a, b, r_max=r_max, n_bins=40
            )
            for pair, (a, b) in {"OO": (0, 0), "OH": (0, 1), "HH": (1, 1)}.items()
        }

    def test_mix_fp32_rdf_overlaps_double(self):
        model, _, _, _ = _water_model(seed=21)
        double = self._rdf_curves(model, "double")
        mixed = self._rdf_curves(model, "mix-fp32")
        for pair in ("OO", "OH", "HH"):
            error = rdf_overlap_error(double[pair], mixed[pair])
            assert error < RDF_OVERLAP_TOL, (pair, error)
