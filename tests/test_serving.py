"""The serving subsystem: packing, fused batched evaluation, engine, caches.

Fast tier: parity pins (batched vs. the frozen serial references at 1e-10),
packing invariants, admission batching, cross-request cache reuse and the
degenerate-request contract.  The ``slow``-marked stress tier drives the
threaded engine with many concurrent clients and mixed request kinds.
"""

import threading

import numpy as np
import pytest

from repro.deepmd import MIX_FP32, DeepPotential, DeepPotentialConfig
from repro.md.atoms import Atoms
from repro.md.box import Box
from repro.md.neighbor import build_neighbor_data
from repro.md.workspace import Workspace
from repro.serving import (
    ServingEngine,
    evaluate_serial,
    pack_systems,
    prepare_system,
    run_bursts_serial,
)

#: fp64 pin of the batched path against the serial golden reference.
PARITY_ATOL = 1e-10


@pytest.fixture(scope="module")
def serving_model():
    """A tiny short-cutoff model so molecule-sized systems are legal."""
    config = DeepPotentialConfig(
        type_names=("Cu",),
        cutoff=4.5,
        cutoff_smooth=3.5,
        embedding_sizes=(6, 12),
        axis_neurons=4,
        fitting_sizes=(16, 16),
        max_neighbors=16,
        seed=3,
    )
    return DeepPotential(config)


def _cluster(n_atoms: int, rng: int):
    """A small jittered-grid cluster in a large open (non-periodic) box."""
    r = np.random.default_rng(rng)
    grid = np.stack(np.meshgrid(*[np.arange(3)] * 3, indexing="ij"), axis=-1)
    positions = grid.reshape(-1, 3)[:n_atoms] * 2.4 + r.normal(scale=0.15, size=(n_atoms, 3)) + 2.0
    atoms = Atoms(
        positions=positions,
        types=np.zeros(n_atoms, dtype=np.int64),
        masses=np.full(n_atoms, 63.546),
    )
    return atoms, Box.cubic(40.0, periodic=False)


def _mixed_systems(model, sizes=(6, 9, 4, 8), rng0=50):
    return [prepare_system(model, *_cluster(n, rng0 + i)) for i, n in enumerate(sizes)]


# ---------------------------------------------------------------------------
# Packing
# ---------------------------------------------------------------------------


class TestPacking:
    def test_offsets_and_system_of_atom(self, serving_model):
        systems = _mixed_systems(serving_model)
        batch = pack_systems(serving_model, systems)
        sizes = [len(atoms) for atoms, _, _ in systems]
        np.testing.assert_array_equal(batch.offsets, np.concatenate([[0], np.cumsum(sizes)]))
        assert batch.n_systems == len(systems)
        assert batch.n_atoms == sum(sizes)
        for s in range(batch.n_systems):
            np.testing.assert_array_equal(batch.system_of_atom[batch.system_slice(s)], s)

    def test_neighbor_indices_rebased_and_padding_preserved(self, serving_model):
        systems = _mixed_systems(serving_model)
        batch = pack_systems(serving_model, systems)
        for s, (atoms, box, neighbors) in enumerate(systems):
            env = serving_model.build_environment(atoms, box, neighbors)
            rows = batch.system_slice(s)
            packed = batch.env.neighbor_indices[rows]
            expected = np.where(env.neighbor_indices >= 0, env.neighbor_indices + rows.start, -1)
            np.testing.assert_array_equal(packed, expected)
            # every real neighbour index stays inside its own system's rows
            real = packed[packed >= 0]
            assert real.min() >= rows.start and real.max() < rows.stop

    def test_empty_batch(self, serving_model):
        batch = pack_systems(serving_model, [])
        assert batch.n_systems == 0 and batch.n_atoms == 0
        out = serving_model.evaluate_many(batch.env, batch.system_of_atom, batch.offsets)
        assert out.energies.shape == (0,) and out.forces.shape == (0, 3)
        assert out.split() == []

    def test_workspace_pack_is_pooled_after_warmup(self, serving_model):
        ws = Workspace()
        systems = _mixed_systems(serving_model)
        pack_systems(serving_model, systems, workspace=ws)
        misses = ws.misses
        # same sizes: pure pool hits; smaller batch: grow-only views, no misses
        pack_systems(serving_model, systems, workspace=ws)
        pack_systems(serving_model, systems[:2], workspace=ws)
        assert ws.misses == misses


# ---------------------------------------------------------------------------
# Fused batched evaluation vs. the serial golden reference
# ---------------------------------------------------------------------------


class TestBatchedParity:
    @pytest.mark.parametrize("compressed", [False, True])
    def test_fp64_parity_with_serial_reference(self, serving_model, compressed):
        systems = _mixed_systems(serving_model)
        table = serving_model.compressed_embeddings() if compressed else None
        reference = evaluate_serial(
            serving_model, systems, compressed=compressed, compression_table=table
        )
        ws = Workspace()
        batch = pack_systems(serving_model, systems, workspace=ws)
        out = serving_model.evaluate_many(
            batch.env,
            batch.system_of_atom,
            batch.offsets,
            compressed=compressed,
            compression_table=table,
            workspace=ws,
        )
        for s, ref in enumerate(reference):
            rows = batch.system_slice(s)
            assert abs(out.energies[s] - ref.energy) < PARITY_ATOL
            np.testing.assert_allclose(out.forces[rows], ref.forces, atol=PARITY_ATOL)
            np.testing.assert_allclose(out.virials[s], ref.virial, atol=PARITY_ATOL)
            np.testing.assert_allclose(
                out.per_atom_energy[rows], ref.per_atom_energy, atol=PARITY_ATOL
            )

    def test_split_copies_match_and_survive_repack(self, serving_model):
        systems = _mixed_systems(serving_model)
        ws = Workspace()
        batch = pack_systems(serving_model, systems, workspace=ws)
        out = serving_model.evaluate_many(
            batch.env, batch.system_of_atom, batch.offsets, workspace=ws
        )
        parts = out.split()
        reference = evaluate_serial(serving_model, systems)
        # overwrite the pool by evaluating a different batch through the same
        # workspace; the split outputs must be unaffected (they are copies)
        other = pack_systems(serving_model, systems[::-1], workspace=ws)
        serving_model.evaluate_many(other.env, other.system_of_atom, other.offsets, workspace=ws)
        for part, ref in zip(parts, reference):
            assert abs(part.energy - ref.energy) < PARITY_ATOL
            np.testing.assert_allclose(part.forces, ref.forces, atol=PARITY_ATOL)

    def test_batch_membership_does_not_change_results(self, serving_model):
        """A system's numbers must not depend on its batch companions."""
        systems = _mixed_systems(serving_model)
        solo = pack_systems(serving_model, systems[:1])
        out_solo = serving_model.evaluate_many(solo.env, solo.system_of_atom, solo.offsets)
        full = pack_systems(serving_model, systems)
        out_full = serving_model.evaluate_many(full.env, full.system_of_atom, full.offsets)
        rows = full.system_slice(0)
        np.testing.assert_allclose(
            out_full.forces[rows], out_solo.forces, atol=PARITY_ATOL
        )
        assert abs(out_full.energies[0] - out_solo.energies[0]) < PARITY_ATOL

    def test_degenerate_systems_inside_a_batch(self, serving_model):
        box = Box.cubic(50.0, periodic=False)
        empty = Atoms(
            positions=np.zeros((0, 3)), types=np.zeros(0, dtype=np.int64), masses=np.zeros(0)
        )
        lone = Atoms(
            positions=np.array([[25.0, 25.0, 25.0]]),
            types=np.zeros(1, dtype=np.int64),
            masses=np.full(1, 63.546),
        )
        systems = [
            (empty, box, build_neighbor_data(empty.positions, box, serving_model.config.cutoff)),
            _mixed_systems(serving_model)[0],
            (lone, box, build_neighbor_data(lone.positions, box, serving_model.config.cutoff)),
        ]
        batch = pack_systems(serving_model, systems)
        out = serving_model.evaluate_many(batch.env, batch.system_of_atom, batch.offsets)
        reference = evaluate_serial(serving_model, systems)
        for s, ref in enumerate(reference):
            assert abs(out.energies[s] - ref.energy) < PARITY_ATOL
        parts = out.split()
        assert parts[0].forces.shape == (0, 3)
        assert parts[2].forces.shape == (1, 3)
        np.testing.assert_allclose(parts[2].forces, 0.0, atol=PARITY_ATOL)

    def test_evaluate_many_validates_inputs(self, serving_model):
        systems = _mixed_systems(serving_model)
        batch = pack_systems(serving_model, systems)
        with pytest.raises(ValueError):
            serving_model.evaluate_many(
                batch.env, batch.system_of_atom[:-1], batch.offsets
            )
        with pytest.raises(ValueError):
            serving_model.evaluate_many(
                batch.env, batch.system_of_atom, batch.offsets[:-1]
            )


# ---------------------------------------------------------------------------
# Engine: admission batching, async pipeline, MD bursts
# ---------------------------------------------------------------------------


class TestServingEngine:
    def test_one_shot_requests_match_serial_reference(self, serving_model):
        systems = _mixed_systems(serving_model)
        table = serving_model.compressed_embeddings()
        reference = evaluate_serial(
            serving_model, systems, compressed=True, compression_table=table
        )
        with ServingEngine(serving_model, max_batch_size=8, max_wait_ms=10.0) as engine:
            futures = [engine.submit(atoms, box) for atoms, box, _ in systems]
            results = [future.result(timeout=60) for future in futures]
        for got, ref in zip(results, reference):
            assert abs(got.energy - ref.energy) < PARITY_ATOL
            np.testing.assert_allclose(got.forces, ref.forces, atol=PARITY_ATOL)
            np.testing.assert_allclose(got.virial, ref.virial, atol=PARITY_ATOL)

    def test_admission_window_coalesces_concurrent_requests(self, serving_model):
        systems = _mixed_systems(serving_model) * 4  # 16 requests
        with ServingEngine(serving_model, max_batch_size=16, max_wait_ms=50.0) as engine:
            futures = [engine.submit(atoms, box) for atoms, box, _ in systems]
            for future in futures:
                future.result(timeout=60)
            stats = engine.stats
            assert stats.n_requests == len(systems)
            # the 50 ms window must have coalesced most of the burst
            assert stats.mean_batch_size() > 1.5
            latency = stats.latency_ms()
            assert latency["p99"] >= latency["p50"] > 0.0

    def test_md_bursts_match_serial_reference(self, serving_model):
        systems = _mixed_systems(serving_model, sizes=(6, 9, 4))
        bursts = [(atoms, box, 3, 0.5) for atoms, box, _ in systems]
        table = serving_model.compressed_embeddings()
        reference = run_bursts_serial(
            serving_model, bursts, compressed=True, compression_table=table
        )
        with ServingEngine(serving_model, max_batch_size=8, max_wait_ms=20.0) as engine:
            futures = [engine.submit_md(atoms, box, 3, 0.5) for atoms, box, _ in systems]
            results = [future.result(timeout=120) for future in futures]
        for got, (ref_atoms, ref_energies) in zip(results, reference):
            assert got.n_steps == 3 and got.energies.shape == (3,)
            np.testing.assert_allclose(got.atoms.positions, ref_atoms.positions, atol=PARITY_ATOL)
            np.testing.assert_allclose(got.atoms.velocities, ref_atoms.velocities, atol=PARITY_ATOL)
            np.testing.assert_allclose(got.energies, ref_energies, atol=PARITY_ATOL)

    def test_failed_request_raises_through_its_future(self, serving_model):
        bad = Atoms(
            positions=np.array([[1.0, 1.0, 1.0]]),
            types=np.full(1, 7, dtype=np.int64),  # no such type in the model
            masses=np.ones(1),
        )
        good = _mixed_systems(serving_model)[0]
        with ServingEngine(serving_model, max_batch_size=1, max_wait_ms=1.0) as engine:
            bad_future = engine.submit(bad, Box.cubic(20.0, periodic=False))
            good_future = engine.submit(good[0], good[1])
            with pytest.raises(Exception):
                bad_future.result(timeout=60)
            # a poisoned batch must not take the engine down with it
            assert good_future.result(timeout=60).forces.shape == (len(good[0]), 3)

    def test_submitted_atoms_are_snapshotted(self, serving_model):
        atoms, box, _ = _mixed_systems(serving_model)[0]
        with ServingEngine(serving_model, max_batch_size=1, max_wait_ms=1.0) as engine:
            future = engine.submit(atoms, box)
            atoms.positions[:] = 0.0  # client mutates after submit
            out = future.result(timeout=60)
        assert np.abs(out.forces).max() > 0.0  # evaluated the snapshot, not the zeros


# ---------------------------------------------------------------------------
# Cross-request cache reuse (the per-model caches are built once)
# ---------------------------------------------------------------------------


class TestCacheReuse:
    def test_compression_table_built_once_across_requests(self):
        config = DeepPotentialConfig(
            type_names=("Cu",),
            cutoff=4.5,
            cutoff_smooth=3.5,
            embedding_sizes=(6, 12),
            axis_neurons=4,
            fitting_sizes=(16, 16),
            max_neighbors=16,
            seed=11,
        )
        model = DeepPotential(config)
        assert model.table_cache_builds == 0
        with ServingEngine(model, max_batch_size=4, max_wait_ms=2.0) as engine:
            for wave in range(3):
                futures = [
                    engine.submit(*_cluster(6, 70 + 10 * wave + i)) for i in range(4)
                ]
                for future in futures:
                    future.result(timeout=60)
            probe = engine.cache_probe()
        assert probe["table_cache_builds"] == 1
        # fp64 policy: no packed low-precision copy, no lp layer caches
        assert probe["packed_cache_builds"] == 0
        assert probe["lp_cache_builds"] == 0

    def test_packed_table_and_standardization_cached_across_requests(self):
        config = DeepPotentialConfig(
            type_names=("Cu",),
            cutoff=4.5,
            cutoff_smooth=3.5,
            embedding_sizes=(6, 12),
            axis_neurons=4,
            fitting_sizes=(16, 16),
            max_neighbors=16,
            seed=12,
        )
        model = DeepPotential(config)
        with ServingEngine(
            model, precision=MIX_FP32, max_batch_size=4, max_wait_ms=2.0
        ) as engine:
            first = None
            for wave in range(3):
                futures = [
                    engine.submit(*_cluster(6, 90 + 10 * wave + i)) for i in range(4)
                ]
                for future in futures:
                    future.result(timeout=60)
                probe = engine.cache_probe()
                if first is None:
                    first = probe
                # nothing is rebuilt by later waves
                assert probe == first
        assert first["table_cache_builds"] == 1
        assert first["packed_cache_builds"] == 1
        assert first["standardization_entries"] >= 1

    def test_two_engines_on_one_model_share_the_table(self, serving_model):
        table_ids = []
        for _ in range(2):
            with ServingEngine(serving_model, max_batch_size=2, max_wait_ms=1.0) as engine:
                engine.submit(*_cluster(6, 123)).result(timeout=60)
                table_ids.append(engine.cache_probe()["table_id"])
        assert table_ids[0] == table_ids[1]
        assert serving_model.table_cache_builds == 1


# ---------------------------------------------------------------------------
# Stress tier (slow): concurrent clients, mixed request kinds
# ---------------------------------------------------------------------------


@pytest.mark.slow
def test_serving_stress_concurrent_mixed_clients(serving_model):
    """Many client threads hammer the engine with mixed one-shots and bursts."""
    n_clients = 8
    requests_per_client = 6
    table = serving_model.compressed_embeddings()
    errors = []
    checked = []

    def client(cid: int):
        try:
            with_engine(cid)
        except Exception as exc:  # pragma: no cover - surfaced via the errors list
            errors.append((cid, exc))

    def with_engine(cid: int):
        for k in range(requests_per_client):
            atoms, box = _cluster(4 + (cid + k) % 6, 1000 + 97 * cid + k)
            if (cid + k) % 3 == 0:
                future = engine.submit_md(atoms, box, 2, 0.5)
                result = future.result(timeout=300)
                assert result.energies.shape == (2,)
            else:
                future = engine.submit(atoms, box)
                out = future.result(timeout=300)
                neighbors = build_neighbor_data(
                    atoms.positions, box, serving_model.config.cutoff
                )
                ref = serving_model.evaluate(
                    atoms, box, neighbors, compressed=True, compression_table=table
                )
                np.testing.assert_allclose(out.forces, ref.forces, atol=PARITY_ATOL)
                assert abs(out.energy - ref.energy) < PARITY_ATOL
                checked.append(1)

    with ServingEngine(serving_model, max_batch_size=16, max_wait_ms=5.0) as engine:
        threads = [threading.Thread(target=client, args=(cid,)) for cid in range(n_clients)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stats = engine.stats
    assert errors == []
    assert stats.n_requests == n_clients * requests_per_client
    assert len(checked) > 0
    assert serving_model.table_cache_builds == 1
