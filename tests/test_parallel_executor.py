"""Concurrent-executor parity and node-box load-balancing suite.

The contract this file pins is stricter than the cross-rank 1e-10 budget of
``test_parallel_engine_parity.py``: the multiprocess executor runs *the same
evaluator code on the same float64 slab bytes* as the sequential golden
reference and gathers replies in fixed rank order, so its trajectories must
be **bitwise identical** (``np.testing.assert_array_equal``, no tolerance) —
for water, the exact / compressed / MIX-fp32 Deep Potential paths, the
density (halo-exchange) strategy and a migration-heavy hot gas alike.

Node-box balancing (``node_balance=True``, §III-C) is pinned three ways:

* the engine's assigned counts equal
  :meth:`IntraNodeLoadBalancer.rank_counts_with_balance` *exactly*,
* the balanced trajectory stays within the 1e-10 cross-rank budget of the
  serial reference (the evaluation split must not change the physics),
* the *measured* atom-count SDMR from :meth:`load_balance_stats` drops to
  the balancer's predicted dispersion (Table III made executable).
"""

import os

import numpy as np
import pytest

from repro.deepmd import DeepPotential, DeepPotentialConfig
from repro.deepmd.pair_style import DeepPotentialForceField
from repro.md import (
    Atoms,
    Box,
    GuptaPotential,
    LennardJones,
    Simulation,
    Workspace,
    copper_system,
    water_system,
)
from repro.md.forcefields.water import WaterReference
from repro.parallel import (
    DomainDecomposedSimulation,
    IntraNodeLoadBalancer,
    MultiprocessRankExecutor,
    PersistentWorkerPool,
    SequentialRankExecutor,
    WorkerError,
    make_executor,
)
from repro.parallel.threadpool import worker_reply

TOLERANCE = 1.0e-10
N_STEPS = 12  # neighbor_every=5 => initial build + 2 rebuilds + migrations


# ---------------------------------------------------------------------------
# Benchmark systems (same recipes as the cross-rank parity suite)
# ---------------------------------------------------------------------------


def _water_setup():
    atoms, box, topology = water_system(64, rng=4, jitter=0.5)
    atoms.initialize_velocities(500.0, rng=5)
    force_field = lambda: WaterReference(topology, cutoff=4.0)  # noqa: E731
    params = dict(timestep_fs=0.5, neighbor_skin=0.5, neighbor_every=5)
    return atoms, box, force_field, params


def _copper_dp_setup(compressed=False, precision="double"):
    config = DeepPotentialConfig(
        type_names=("Cu",),
        cutoff=4.5,
        cutoff_smooth=3.5,
        embedding_sizes=(6, 12),
        axis_neurons=4,
        fitting_sizes=(16, 16),
        max_neighbors=48,
        seed=0,
    )
    model = DeepPotential(config)
    rng = np.random.default_rng(0)
    model.set_descriptor_stats(
        rng.normal(scale=0.1, size=(1, config.descriptor_dim)),
        0.5 + rng.random((1, config.descriptor_dim)),
    )
    model.set_energy_bias(np.array([-1.0]))
    atoms, box = copper_system((3, 3, 3), perturbation=0.05, rng=6)
    atoms.initialize_velocities(300.0, rng=7)
    force_field = lambda: DeepPotentialForceField(  # noqa: E731
        model, compressed=compressed, precision=precision
    )
    params = dict(timestep_fs=0.5, neighbor_skin=0.4, neighbor_every=5)
    return atoms, box, force_field, params


def _copper_lj_setup():
    atoms, box = copper_system((3, 3, 3), perturbation=0.05, rng=0)
    atoms.initialize_velocities(300.0, rng=1)
    force_field = lambda: LennardJones(0.05, 2.3, 5.0)  # noqa: E731
    params = dict(timestep_fs=2.0, neighbor_skin=0.4, neighbor_every=5)
    return atoms, box, force_field, params


def _hot_gas_setup():
    """A hot uniform LJ gas that migrates atoms nearly every step."""
    rng = np.random.default_rng(11)
    box = Box.cubic(14.0)
    atoms = Atoms.from_symbols(rng.uniform(0.0, 14.0, size=(96, 3)), ["Cu"] * 96)
    atoms.initialize_velocities(2500.0, rng=12)
    force_field = lambda: LennardJones(0.01, 2.3, 4.0)  # noqa: E731
    params = dict(timestep_fs=2.0, neighbor_skin=0.4, neighbor_every=1)
    return atoms, box, force_field, params


def _engine(setup, rank_dims, scheme="p2p", **kwargs):
    atoms, box, force_field, params = setup
    return DomainDecomposedSimulation(
        atoms.copy(), box, force_field(), rank_dims=rank_dims, scheme=scheme,
        **params, **kwargs,
    )


def _assert_bitwise_lockstep(setup, rank_dims, scheme="p2p", n_steps=N_STEPS, **kwargs):
    """Run sequential vs process executors side by side; everything must be
    bit-identical at every step (not merely within a tolerance)."""
    sequential = _engine(setup, rank_dims, scheme, executor="sequential", **kwargs)
    concurrent = _engine(
        setup, rank_dims, scheme, executor="process",
        n_workers=min(4, sequential.n_ranks), **kwargs,
    )
    assert concurrent.executor_name == "process"
    try:
        for step in range(n_steps):
            sequential.run(1)
            concurrent.run(1)
            reference, gathered = sequential.gather(), concurrent.gather()
            for field in ("positions", "velocities", "forces"):
                np.testing.assert_array_equal(
                    getattr(gathered, field), getattr(reference, field),
                    err_msg=f"{field} not bitwise at step {step} ({rank_dims}, {scheme})",
                )
            assert concurrent._last_energy == sequential._last_energy
            assert concurrent.n_builds == sequential.n_builds
        # identical communication: the parent performs the same ghost refresh
        # and halo forwarding for both executors
        assert concurrent.comm_messages == sequential.comm_messages
        assert concurrent.comm_bytes_forward == sequential.comm_bytes_forward
        assert concurrent.comm_bytes_reverse == sequential.comm_bytes_reverse
        return sequential, concurrent
    finally:
        concurrent.close()


# ---------------------------------------------------------------------------
# Bitwise sequential-vs-process parity across force fields and grids
# ---------------------------------------------------------------------------


class TestExecutorBitwiseParity:
    @pytest.mark.parametrize(
        "rank_dims, scheme", [((2, 2, 1), "p2p"), ((2, 2, 2), "node-based")]
    )
    def test_water(self, rank_dims, scheme):
        _assert_bitwise_lockstep(_water_setup(), rank_dims, scheme)

    def test_single_rank_grid(self):
        """One rank, one worker: the degenerate pool still matches."""
        _assert_bitwise_lockstep(_copper_lj_setup(), (1, 1, 1))

    def test_copper_deep_potential(self):
        _assert_bitwise_lockstep(_copper_dp_setup(), (2, 2, 2), n_steps=8)

    def test_compressed_deep_potential(self):
        _assert_bitwise_lockstep(
            _copper_dp_setup(compressed=True), (2, 1, 1), n_steps=8
        )

    def test_mixed_precision_deep_potential(self):
        """MIX-fp32: same ranks => same batch shapes => still bitwise.

        The cross-rank mixed contract is loose (fp32 GEMMs are not
        bit-invariant to batch *shapes*), but the executor swap keeps every
        per-rank shape identical, so executor parity stays exact."""
        sequential, _ = _assert_bitwise_lockstep(
            _copper_dp_setup(compressed=True, precision="mix-fp32"),
            (2, 1, 1),
            n_steps=8,
        )
        assert sequential.force_field.describe()["precision"] == "mix-fp32"

    def test_gupta_density_halo_path(self):
        """The density strategy ships its halo through the shared slab."""
        atoms, box = copper_system((3, 3, 3), perturbation=0.05, rng=3)
        atoms.initialize_velocities(400.0, rng=4)
        setup = (
            atoms,
            box,
            lambda: GuptaPotential(cutoff=5.0),
            dict(timestep_fs=1.0, neighbor_skin=0.4, neighbor_every=5),
        )
        _assert_bitwise_lockstep(setup, (2, 2, 1), n_steps=10)

    def test_migration_heavy_hot_gas(self):
        """neighbor_every=1: every step migrates, rebuilds and re-ships the
        structural payloads to the workers."""
        sequential, concurrent = _assert_bitwise_lockstep(
            _hot_gas_setup(), (2, 2, 2), n_steps=10
        )
        assert sequential.n_migrated >= 1
        assert concurrent.n_migrated == sequential.n_migrated

    def test_workspace_disabled_path(self):
        """use_workspace=False: halo sinks come straight off the slab."""
        _assert_bitwise_lockstep(
            _copper_lj_setup(), (2, 1, 1), use_workspace=False, n_steps=8
        )


# ---------------------------------------------------------------------------
# Node-box intra-node load balancing (§III-C)
# ---------------------------------------------------------------------------


class TestNodeBoxBalancing:
    def test_assigned_counts_match_balancer_prediction(self):
        engine = _engine(
            _copper_lj_setup(), (2, 2, 1), scheme="node-based", node_balance=True
        )
        engine.run(N_STEPS)
        balancer = IntraNodeLoadBalancer(engine.decomposition)
        predicted = balancer.rank_counts_with_balance(engine.gather().positions)
        np.testing.assert_array_equal(engine.assigned_counts(), predicted)
        assert engine.assigned_counts().sum() == engine.n_global

    @pytest.mark.parametrize(
        "setup_name", ["lj-pair", "dp-peratom"], ids=["lj-pair", "dp-peratom"]
    )
    def test_balanced_trajectory_matches_serial(self, setup_name):
        """Splitting the node-box evaluation must not change the physics."""
        if setup_name == "lj-pair":
            atoms, box, force_field, params = _copper_lj_setup()
            n_steps = N_STEPS
        else:
            atoms, box, force_field, params = _copper_dp_setup()
            n_steps = 8
        serial = Simulation(atoms.copy(), box, force_field(), **params)
        engine = _engine(
            (atoms, box, force_field, params), (2, 2, 1),
            scheme="node-based", node_balance=True,
        )
        for step in range(n_steps):
            serial.run(1)
            engine.run(1)
            gathered = engine.gather()
            np.testing.assert_allclose(
                gathered.positions, serial.atoms.positions, rtol=0.0, atol=TOLERANCE,
                err_msg=f"balanced positions diverged at step {step} ({setup_name})",
            )
            np.testing.assert_allclose(
                gathered.forces, serial.atoms.forces, rtol=0.0, atol=TOLERANCE,
            )
            assert engine._last_energy == pytest.approx(serial._last_energy, abs=TOLERANCE)

    def test_balanced_executors_stay_bitwise(self):
        """node_balance composes with the process executor bit-identically."""
        _assert_bitwise_lockstep(
            _copper_lj_setup(), (2, 2, 1), scheme="node-based", node_balance=True
        )

    def test_measured_sdmr_matches_prediction(self):
        """The measured Table III: balanced assigned counts reproduce the
        balancer's predicted dispersion, and never exceed the owner-computes
        dispersion they replace."""
        setup = _copper_lj_setup()
        plain = _engine(setup, (2, 2, 1), scheme="node-based")
        balanced = _engine(setup, (2, 2, 1), scheme="node-based", node_balance=True)
        plain.run(N_STEPS)
        balanced.run(N_STEPS)

        measured_plain = plain.load_balance_stats()
        measured_balanced = balanced.load_balance_stats()
        assert measured_balanced.label.endswith("+lb]")
        # per-rank pair times are measured wall-clock, not modelled
        assert (measured_plain.pair_times > 0.0).all()
        assert (measured_balanced.pair_times > 0.0).all()

        balancer = IntraNodeLoadBalancer(balanced.decomposition)
        positions = balanced.gather().positions
        predicted_plain = balancer.rank_counts_without_balance(positions)
        predicted_balanced = balancer.rank_counts_with_balance(positions)
        np.testing.assert_array_equal(measured_balanced.atom_counts, predicted_balanced)

        measured_sdmr = measured_balanced.atom_stats().sdmr_percent
        predicted_sdmr = (
            IntraNodeLoadBalancer(balanced.decomposition)
            .compare(positions, per_atom_time=1e-4, jitter_fraction=0.0)["yes"]
            .atom_stats()
            .sdmr_percent
        )
        assert measured_sdmr == pytest.approx(predicted_sdmr)
        # the balanced split is never more dispersed than owner-computes
        plain_sdmr = measured_plain.atom_stats().sdmr_percent
        assert measured_sdmr <= plain_sdmr + 1e-12
        # sanity: the prediction we matched is the even node-box split
        assert predicted_balanced.max() - predicted_balanced.min() <= 1
        assert predicted_plain.sum() == predicted_balanced.sum() == len(positions)

    def test_p2p_delivery_rejected(self):
        with pytest.raises(ValueError, match="node-based delivery"):
            _engine(_copper_lj_setup(), (2, 2, 1), scheme="p2p", node_balance=True)

    def test_density_strategy_rejected(self):
        atoms, box = copper_system((3, 3, 3), perturbation=0.05, rng=3)
        setup = (
            atoms, box, lambda: GuptaPotential(cutoff=5.0),
            dict(timestep_fs=1.0, neighbor_skin=0.4, neighbor_every=5),
        )
        with pytest.raises(ValueError, match="'pair' and 'peratom'"):
            _engine(setup, (2, 2, 1), scheme="node-based", node_balance=True)


# ---------------------------------------------------------------------------
# Executor/pool plumbing
# ---------------------------------------------------------------------------


def _echo_worker(conn, tag):
    while True:
        try:
            message = conn.recv()
        except EOFError:
            break
        if not worker_reply(conn, lambda msg: _echo_handler(tag, msg), message):
            break
    conn.close()


def _echo_handler(tag, message):
    if message[0] == "boom":
        raise ValueError(f"worker {tag} exploded")
    return (tag, message)


class TestExecutorPlumbing:
    def test_make_executor_names(self):
        assert isinstance(make_executor("sequential"), SequentialRankExecutor)
        assert isinstance(make_executor("process"), MultiprocessRankExecutor)
        assert isinstance(make_executor("multiprocess"), MultiprocessRankExecutor)
        instance = SequentialRankExecutor()
        assert make_executor(instance) is instance
        with pytest.raises(KeyError, match="sequential"):
            make_executor("gpu")

    def test_engine_close_is_idempotent(self):
        engine = _engine(_copper_lj_setup(), (2, 1, 1), executor="process")
        engine.run(2)
        engine.close()
        engine.close()

    def test_engine_context_manager(self):
        with _engine(_copper_lj_setup(), (2, 1, 1), executor="process") as engine:
            engine.run(2)
            reference = _engine(_copper_lj_setup(), (2, 1, 1))
            reference.run(2)
            np.testing.assert_array_equal(
                engine.gather().positions, reference.gather().positions
            )

    def test_pool_fixed_order_gather(self):
        with PersistentWorkerPool(_echo_worker, [(i,) for i in range(3)]) as pool:
            replies = pool.broadcast(("ping",))
            assert [tag for tag, _ in replies] == [0, 1, 2]
            replies = pool.broadcast([("a",), ("b",), ("c",)])
            assert [msg[0] for _, msg in replies] == ["a", "b", "c"]
            with pytest.raises(ValueError, match="expected 3 messages"):
                pool.broadcast([("only",), ("two",)])

    def test_pool_propagates_worker_tracebacks(self):
        with PersistentWorkerPool(_echo_worker, [(0,)]) as pool:
            with pytest.raises(WorkerError, match="worker 0 exploded"):
                pool.broadcast(("boom",))
            # the worker survives its own exception and keeps serving
            assert pool.broadcast(("still-alive",)) == [(0, ("still-alive",))]

    def test_workspace_adopt_points_buffers_at_external_storage(self):
        workspace = Workspace()
        slab = np.arange(12, dtype=np.float64).reshape(4, 3)
        adopted = workspace.adopt("forces", slab)
        assert adopted is slab
        assert workspace.buffer("forces", (4, 3)) is slab
        zeroed = workspace.zeros("forces", (4, 3))
        assert zeroed is slab
        np.testing.assert_array_equal(slab, 0.0)

    def test_worker_count_never_exceeds_cores_by_default(self):
        engine = _engine(_copper_lj_setup(), (2, 2, 2), executor="process")
        try:
            expected = min(engine.n_ranks, os.cpu_count() or 1)
            assert engine._executor.pool.n_workers == expected
        finally:
            engine.close()
