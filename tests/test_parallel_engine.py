"""Unit-level coverage for the domain-decomposed engine.

Report interchangeability with the serial loop (satellite of the parity
suite), measured load-balance / ghost statistics, the measured-comm-volume
bridge into the perf model, topology factories and validation errors.
The step-for-step trajectory contract lives in
``tests/test_parallel_engine_parity.py``.
"""

import numpy as np
import pytest

from repro.deepmd import DeepPotential, DeepPotentialConfig
from repro.deepmd.pair_style import DeepPotentialForceField
from repro.md import BerendsenThermostat, GuptaPotential, LennardJones, Simulation, copper_system, water_system
from repro.md.forcefields.water import WaterReference
from repro.parallel import DomainDecomposedSimulation, RankTopology
from repro.perfmodel import CommCostModel, plan_with_measured_volume


def _copper_pair(rng=1, temperature=300.0):
    atoms, box = copper_system((3, 3, 3), perturbation=0.05, rng=rng)
    atoms.initialize_velocities(temperature, rng=rng + 1)
    return atoms, box


def _tiny_dp_force_field():
    config = DeepPotentialConfig(
        type_names=("Cu",),
        cutoff=4.5,
        cutoff_smooth=3.5,
        embedding_sizes=(6, 12),
        axis_neurons=4,
        fitting_sizes=(16, 16),
        max_neighbors=48,
        seed=3,
    )
    model = DeepPotential(config)
    rng = np.random.default_rng(3)
    model.set_descriptor_stats(
        rng.normal(scale=0.1, size=(1, config.descriptor_dim)),
        0.5 + rng.random((1, config.descriptor_dim)),
    )
    model.set_energy_bias(np.array([-1.0]))
    return DeepPotentialForceField(model)


class TestReportParity:
    """Downstream analysis code can consume either loop's outputs."""

    def test_report_fields_match_serial_classical(self):
        atoms, box = _copper_pair()
        serial = Simulation(atoms.copy(), box, GuptaPotential(cutoff=5.0), timestep_fs=2.0,
                            neighbor_skin=0.4, neighbor_every=5)
        engine = DomainDecomposedSimulation(atoms.copy(), box, GuptaPotential(cutoff=5.0), timestep_fs=2.0,
                                            rank_dims=(2, 2, 1), neighbor_skin=0.4, neighbor_every=5)
        serial_report = serial.run(8, trajectory_every=4)
        engine_report = engine.run(8, trajectory_every=4)

        assert engine_report.n_steps == serial_report.n_steps
        assert engine_report.neighbor_builds == serial_report.neighbor_builds
        assert engine_report.force_field_info == serial_report.force_field_info
        np.testing.assert_allclose(
            engine_report.potential_energies, serial_report.potential_energies, rtol=0.0, atol=1e-10
        )
        np.testing.assert_allclose(
            engine_report.temperatures, serial_report.temperatures, rtol=0.0, atol=1e-10
        )
        # classical pair styles report no virial in either loop
        assert serial.last_virial is None and engine.last_virial is None
        # derived report quantities stay usable on both
        assert engine_report.final_potential_energy == pytest.approx(
            serial_report.final_potential_energy, abs=1e-10
        )
        assert engine_report.energy_drift_per_atom(len(atoms)) == pytest.approx(
            serial_report.energy_drift_per_atom(len(atoms)), abs=1e-10
        )
        assert engine_report.steps_per_second > 0.0
        # both loops account wall-clock spent inside neighbour-list builds
        assert serial_report.neighbor_build_seconds > 0.0
        assert engine_report.neighbor_build_seconds > 0.0
        per_rank = engine.neighbor_build_times()
        assert per_rank.shape == (engine.n_ranks,)
        assert np.all(per_rank > 0.0)
        assert engine_report.neighbor_build_seconds == pytest.approx(per_rank.sum())
        # trajectory snapshots line up frame by frame
        assert len(engine.trajectory) == len(serial.trajectory) == 2
        np.testing.assert_allclose(engine.trajectory[-1], serial.trajectory[-1], atol=1e-10)

    def test_report_fields_match_serial_deep_potential(self):
        atoms, box = _copper_pair(rng=5)
        serial = Simulation(atoms.copy(), box, _tiny_dp_force_field(), timestep_fs=0.5,
                            neighbor_skin=0.4, neighbor_every=4)
        engine = DomainDecomposedSimulation(atoms.copy(), box, _tiny_dp_force_field(), timestep_fs=0.5,
                                            rank_dims=(2, 1, 1), neighbor_skin=0.4, neighbor_every=4)
        serial_report = serial.run(6)
        engine_report = engine.run(6)
        assert engine_report.force_field_info == serial_report.force_field_info
        assert engine_report.force_field_info["path"] == "vectorized"
        assert engine_report.neighbor_builds == serial_report.neighbor_builds
        np.testing.assert_allclose(engine.last_virial, serial.last_virial, rtol=0.0, atol=1e-9)
        # the engine additionally accounts a comm phase next to the serial set
        assert {"pair", "neigh", "integrate"} <= set(serial_report.timers.totals)
        assert {"pair", "neigh", "integrate", "comm"} <= set(engine_report.timers.totals)

    def test_total_energy_matches_serial(self):
        atoms, box = _copper_pair(rng=7)
        serial = Simulation(atoms.copy(), box, LennardJones(0.05, 2.3, 5.0), timestep_fs=1.0, neighbor_skin=0.4)
        engine = DomainDecomposedSimulation(atoms.copy(), box, LennardJones(0.05, 2.3, 5.0), timestep_fs=1.0,
                                            rank_dims=(2, 2, 2), neighbor_skin=0.4)
        assert engine.total_energy() == pytest.approx(serial.total_energy(), abs=1e-10)

    def test_thermostatted_run_matches_serial(self):
        """Thermostats act on the gathered system, so parity survives them."""
        atoms, box = _copper_pair(rng=9, temperature=600.0)
        serial = Simulation(atoms.copy(), box, LennardJones(0.05, 2.3, 5.0), timestep_fs=2.0,
                            neighbor_skin=0.4, thermostat=BerendsenThermostat(300.0, coupling_fs=100.0))
        engine = DomainDecomposedSimulation(atoms.copy(), box, LennardJones(0.05, 2.3, 5.0), timestep_fs=2.0,
                                            rank_dims=(2, 2, 1), neighbor_skin=0.4,
                                            thermostat=BerendsenThermostat(300.0, coupling_fs=100.0))
        serial.run(8)
        engine.run(8)
        np.testing.assert_allclose(engine.gather().velocities, serial.atoms.velocities, atol=1e-10)


class TestMeasuredStatistics:
    def _run_engine(self, rank_dims=(2, 2, 1), scheme="p2p", steps=6):
        atoms, box = _copper_pair(rng=11, temperature=400.0)
        engine = DomainDecomposedSimulation(atoms.copy(), box, GuptaPotential(cutoff=5.0), timestep_fs=2.0,
                                            rank_dims=rank_dims, scheme=scheme,
                                            neighbor_skin=0.4, neighbor_every=3)
        engine.run(steps)
        return atoms, engine

    def test_decomposition_and_ghost_stats_are_measured(self):
        atoms, engine = self._run_engine()
        stats = engine.decomposition_stats()
        assert stats.total == len(atoms)
        assert stats.n_domains == engine.n_ranks
        assert stats.minimum > 0
        ghosts = engine.ghost_stats()
        assert ghosts.total > 0  # multi-rank grids always carry ghosts
        assert ghosts.n_domains == engine.n_ranks

    def test_load_balance_stats_use_measured_pair_times(self):
        atoms, engine = self._run_engine()
        stats = engine.load_balance_stats()
        assert stats.atom_counts.sum() == len(atoms)
        assert np.all(stats.pair_times > 0.0)  # wall-clock, per rank
        summary = stats.summary()
        assert {"natom", "pair"} <= set(summary)
        comparison = engine.intra_node_balance(rng=0)
        assert {"no", "yes"} <= set(comparison)
        assert comparison["yes"].atom_counts.sum() == len(atoms)

    def test_comm_volume_measured_and_priced(self):
        # 2x2x2 spans two nodes, so the node-based plan has inter-node traffic
        _, engine = self._run_engine(rank_dims=(2, 2, 2), scheme="node-based")
        volume = engine.measured_comm_volume()
        assert volume["exchanges"] == engine.n_builds
        assert volume["mean_ghosts_per_rank"] > 0.0
        assert volume["forward_bytes_per_rank"] > 0.0
        assert volume["total_reverse_bytes"] > 0.0
        assert volume["messages"] > 0

        plan = engine.modelled_plan()
        assert plan.scheme == "lb-4l"
        scaled = plan_with_measured_volume(plan, volume["forward_bytes_per_rank"])
        assert scaled.total_message_bytes == pytest.approx(volume["forward_bytes_per_rank"])
        assert scaled.n_messages == plan.n_messages
        assert scaled.notes["measured_forward_bytes"] == volume["forward_bytes_per_rank"]
        model = CommCostModel()
        measured_time = model.exchange_time_measured(plan, volume["forward_bytes_per_rank"])
        assert measured_time > 0.0
        # pricing scales monotonically with the measured volume
        assert model.exchange_time_measured(plan, 10 * volume["forward_bytes_per_rank"]) > measured_time

    def test_plan_rescaling_validation(self):
        _, engine = self._run_engine()
        plan = engine.modelled_plan("p2p-utofu")
        with pytest.raises(ValueError):
            plan_with_measured_volume(plan, -1.0)


class TestConstructionAndValidation:
    def test_rank_grid_topologies(self):
        topo = RankTopology.for_rank_grid((2, 2, 2))
        assert topo.rank_dims == (2, 2, 2)
        assert topo.node_dims == (1, 1, 2)
        assert topo.ranks_per_node == 4
        assert RankTopology.for_rank_grid((1, 1, 1)).n_ranks == 1
        assert RankTopology.for_rank_grid((6, 1, 1)).rank_dims == (6, 1, 1)
        assert RankTopology.for_rank_grid((3, 1, 1)).rank_block == (1, 1, 1)
        with pytest.raises(ValueError):
            RankTopology.for_rank_grid((0, 1, 1))
        with pytest.raises(ValueError):
            RankTopology.for_rank_grid((4, 1, 1), rank_block=(3, 1, 1))

    def test_unknown_scheme_rejected(self):
        atoms, box = _copper_pair()
        with pytest.raises(KeyError):
            DomainDecomposedSimulation(atoms, box, LennardJones(0.05, 2.3, 5.0), timestep_fs=1.0,
                                       rank_dims=(2, 1, 1), scheme="telepathy")

    def test_scheme_aliases_accepted(self):
        atoms, box = _copper_pair()
        engine = DomainDecomposedSimulation(atoms, box, LennardJones(0.05, 2.3, 5.0), timestep_fs=1.0,
                                            rank_dims=(2, 1, 1), scheme="lb-4l")
        assert engine.scheme == "node-based"
        assert engine.scheme_label == "lb-4l"

    def test_requires_positive_cutoff_and_steps(self):
        atoms, box = _copper_pair()

        class NoCutoff:
            cutoff = 0.0

        with pytest.raises(ValueError):
            DomainDecomposedSimulation(atoms, box, NoCutoff(), timestep_fs=1.0)
        engine = DomainDecomposedSimulation(atoms, box, LennardJones(0.05, 2.3, 5.0), timestep_fs=1.0)
        with pytest.raises(ValueError):
            engine.run(-1)

    def test_unknown_parallel_strategy_rejected(self):
        atoms, box = _copper_pair()
        force_field = LennardJones(0.05, 2.3, 5.0)
        force_field.parallel_strategy = "astral-projection"
        with pytest.raises(KeyError):
            DomainDecomposedSimulation(atoms, box, force_field, timestep_fs=1.0)


@pytest.mark.slow
class TestLargerDecompositionSlow:
    """A 4x2x2 grid on a bigger water box; excluded from tier-1 for speed."""

    def test_water_4x2x2_matches_serial(self):
        atoms, box, topology = water_system(216, rng=21, jitter=0.15)
        atoms.initialize_velocities(400.0, rng=22)
        serial = Simulation(atoms.copy(), box, WaterReference(topology, cutoff=4.0), timestep_fs=0.5,
                            neighbor_skin=0.5, neighbor_every=5)
        engine = DomainDecomposedSimulation(atoms.copy(), box, WaterReference(topology, cutoff=4.0),
                                            timestep_fs=0.5, rank_dims=(4, 2, 2), scheme="p2p",
                                            neighbor_skin=0.5, neighbor_every=5)
        for _ in range(10):
            serial.run(1)
            engine.run(1)
            gathered = engine.gather()
            np.testing.assert_allclose(gathered.positions, serial.atoms.positions, rtol=0.0, atol=1e-10)
            np.testing.assert_allclose(gathered.forces, serial.atoms.forces, rtol=0.0, atol=1e-10)
        assert engine.n_builds == serial.neighbor_list.n_builds
