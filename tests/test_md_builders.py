"""Lattice and water-box builders."""

import numpy as np
import pytest

from repro.md import copper_system, fcc_lattice, water_system
from repro.md.lattice import cells_for_atom_count, copper_benchmark_counts
from repro.md.water import water_box_length, water_benchmark_counts
from repro.units import CU_LATTICE_CONSTANT


class TestFCC:
    def test_atom_count_is_four_per_cell(self):
        atoms, box = fcc_lattice((3, 4, 5), 3.615)
        assert len(atoms) == 4 * 3 * 4 * 5
        np.testing.assert_allclose(box.lengths, [3 * 3.615, 4 * 3.615, 5 * 3.615])

    def test_nearest_neighbor_distance(self):
        atoms, box = copper_system((3, 3, 3))
        # FCC nearest neighbour distance = a / sqrt(2)
        delta = box.minimum_image(atoms.positions[1:] - atoms.positions[0])
        dmin = np.min(np.linalg.norm(delta, axis=1))
        assert dmin == pytest.approx(CU_LATTICE_CONSTANT / np.sqrt(2.0), rel=1e-6)

    def test_density_matches_copper(self):
        atoms, box = copper_system((4, 4, 4))
        density = len(atoms) / box.volume
        assert density == pytest.approx(4.0 / CU_LATTICE_CONSTANT ** 3, rel=1e-9)

    def test_perturbation_moves_atoms(self):
        ideal, _ = copper_system((2, 2, 2))
        perturbed, _ = copper_system((2, 2, 2), perturbation=0.05, rng=0)
        assert not np.allclose(ideal.positions, perturbed.positions)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            fcc_lattice((0, 1, 1), 3.615)
        with pytest.raises(ValueError):
            fcc_lattice((1, 1, 1), -1.0)

    def test_cells_for_atom_count_reaches_target(self):
        cells = cells_for_atom_count(540_000)
        total = 4 * cells[0] * cells[1] * cells[2]
        assert total >= 540_000
        assert total <= 540_000 * 1.05  # within 5 %

    def test_cells_for_atom_count_validation(self):
        with pytest.raises(ValueError):
            cells_for_atom_count(0)

    def test_benchmark_counts_match_paper(self):
        counts = copper_benchmark_counts()
        assert counts["strong_scaling"] == 540_000
        assert counts["fugaku_baseline"] == 2_100_000


class TestWater:
    def test_water_system_composition(self):
        atoms, box, topology = water_system(27, rng=0)
        assert len(atoms) == 81
        assert atoms.type_names == ("O", "H")
        np.testing.assert_array_equal(np.bincount(atoms.types), [27, 54])
        assert topology.n_molecules == 27
        assert topology.bonds.shape == (54, 2)
        assert topology.angles.shape == (27, 3)

    def test_water_density_close_to_experimental(self):
        atoms, box, _ = water_system(64, rng=1)
        from repro.units import AVOGADRO, MASSES, WATER_DENSITY

        mass_g = 64 * (MASSES["O"] + 2 * MASSES["H"]) / AVOGADRO
        density = mass_g / (box.volume * 1e-24)
        assert density == pytest.approx(WATER_DENSITY, rel=1e-6)

    def test_oh_bond_lengths_near_one_angstrom(self):
        atoms, box, topology = water_system(27, rng=2)
        delta = box.minimum_image(
            atoms.positions[topology.bonds[:, 0]] - atoms.positions[topology.bonds[:, 1]]
        )
        lengths = np.linalg.norm(delta, axis=1)
        np.testing.assert_allclose(lengths, 1.0, atol=1e-6)

    def test_molecules_do_not_overlap_badly(self):
        atoms, box, _ = water_system(64, rng=3)
        oxygens = atoms.positions[atoms.types == 0]
        delta = box.minimum_image(oxygens[:, None, :] - oxygens[None, :, :])
        dist = np.linalg.norm(delta, axis=2)
        np.fill_diagonal(dist, np.inf)
        assert dist.min() > 1.5  # oxygens at least 1.5 A apart on the jittered grid

    def test_box_length_validation(self):
        with pytest.raises(ValueError):
            water_box_length(0)

    def test_benchmark_counts(self):
        assert water_benchmark_counts()["strong_scaling"] == 558_000
