"""Autodiff correctness of the mini framework."""

import numpy as np
import pytest

from repro.nnframework import Tensor, ops
from repro.nnframework.tensor import no_grad


def numerical_gradient(fn, x, eps=1e-6):
    """Central-difference gradient of scalar fn wrt array x."""
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        up = fn(x)
        flat[i] = orig - eps
        down = fn(x)
        flat[i] = orig
        gflat[i] = (up - down) / (2 * eps)
    return grad


@pytest.mark.parametrize(
    "op,extra",
    [
        (lambda t: ops.sum(ops.square(t)), None),
        (lambda t: ops.sum(ops.tanh(t)), None),
        (lambda t: ops.sum(ops.sigmoid(t)), None),
        (lambda t: ops.sum(ops.relu(t)), None),
        (lambda t: ops.sum(ops.softplus(t)), None),
        (lambda t: ops.sum(ops.exp(t)), None),
        (lambda t: ops.mean(ops.mul(t, t)), None),
        (lambda t: ops.sum(ops.div(1.0, ops.add(ops.square(t), 1.0))), None),
    ],
)
def test_elementwise_gradients_match_finite_differences(op, extra):
    rng = np.random.default_rng(0)
    x = rng.normal(size=(4, 3))
    t = Tensor(x.copy(), requires_grad=True)
    out = op(t)
    out.backward()

    def scalar(arr):
        return float(op(Tensor(arr)).data)

    numeric = numerical_gradient(scalar, x.copy())
    np.testing.assert_allclose(t.grad, numeric, atol=1e-6)


def test_matmul_gradients():
    rng = np.random.default_rng(1)
    a = rng.normal(size=(3, 4))
    b = rng.normal(size=(4, 2))
    ta = Tensor(a.copy(), requires_grad=True)
    tb = Tensor(b.copy(), requires_grad=True)
    loss = ops.sum(ops.square(ops.matmul(ta, tb)))
    loss.backward()

    numeric_a = numerical_gradient(lambda arr: float(ops.sum(ops.square(ops.matmul(Tensor(arr), Tensor(b)))).data), a.copy())
    numeric_b = numerical_gradient(lambda arr: float(ops.sum(ops.square(ops.matmul(Tensor(a), Tensor(arr)))).data), b.copy())
    np.testing.assert_allclose(ta.grad, numeric_a, atol=1e-6)
    np.testing.assert_allclose(tb.grad, numeric_b, atol=1e-6)


def test_batched_matmul_gradients():
    rng = np.random.default_rng(2)
    a = rng.normal(size=(2, 3, 4))
    b = rng.normal(size=(2, 4, 5))
    ta = Tensor(a.copy(), requires_grad=True)
    tb = Tensor(b.copy(), requires_grad=True)
    loss = ops.sum(ops.square(ops.matmul(ta, tb)))
    loss.backward()
    numeric_a = numerical_gradient(lambda arr: float(ops.sum(ops.square(ops.matmul(Tensor(arr), Tensor(b)))).data), a.copy())
    np.testing.assert_allclose(ta.grad, numeric_a, atol=1e-5)
    assert tb.grad.shape == b.shape


def test_reshape_transpose_concat_getitem_gradients():
    rng = np.random.default_rng(3)
    x = rng.normal(size=(2, 6))

    def graph(t):
        r = ops.reshape(t, (2, 2, 3))
        tr = ops.transpose(r, (0, 2, 1))
        sliced = tr[:, :, :1]
        cat = ops.concat([sliced, sliced], axis=2)
        return ops.sum(ops.square(cat))

    t = Tensor(x.copy(), requires_grad=True)
    graph(t).backward()
    numeric = numerical_gradient(lambda arr: float(graph(Tensor(arr)).data), x.copy())
    np.testing.assert_allclose(t.grad, numeric, atol=1e-6)


def test_broadcast_gradient_unbroadcasts():
    a = Tensor(np.ones((3, 2)), requires_grad=True)
    b = Tensor(np.ones((1, 2)), requires_grad=True)
    loss = ops.sum(ops.mul(a, b))
    loss.backward()
    assert a.grad.shape == (3, 2)
    assert b.grad.shape == (1, 2)
    np.testing.assert_allclose(b.grad, np.full((1, 2), 3.0))


def test_grad_accumulates_over_multiple_uses():
    x = Tensor(np.array([2.0]), requires_grad=True)
    y = ops.add(ops.mul(x, 3.0), ops.mul(x, 4.0))
    y.backward()
    np.testing.assert_allclose(x.grad, [7.0])


def test_no_grad_disables_graph():
    x = Tensor(np.ones(3), requires_grad=True)
    with no_grad():
        y = ops.mul(x, 2.0)
    assert y.requires_grad is False
    assert y._backward is None


def test_mse_loss_value_and_gradient():
    pred = Tensor(np.array([[1.0], [2.0]]), requires_grad=True)
    target = Tensor(np.array([[0.0], [0.0]]))
    loss = ops.mse_loss(pred, target)
    assert loss.item() == pytest.approx(2.5)
    loss.backward()
    np.testing.assert_allclose(pred.grad, [[1.0], [2.0]])


def test_tensor_repr_and_helpers():
    t = Tensor.parameter(np.zeros((2, 2)), name="w")
    assert t.requires_grad
    assert t.shape == (2, 2)
    assert t.size == 4
    assert len(t) == 2
    c = Tensor.constant(1.0)
    assert not c.requires_grad
