"""Shared fixtures: small systems and a tiny trained Deep Potential."""

from __future__ import annotations

import pytest

from repro.deepmd import DeepPotential, DeepPotentialConfig, Trainer, generate_copper_dataset
from repro.md import copper_system, water_system
from repro.md.neighbor import build_neighbor_data


@pytest.fixture(scope="session")
def small_copper():
    """A perturbed 3x3x3 FCC copper cell (108 atoms) and its box."""
    atoms, box = copper_system((3, 3, 3), perturbation=0.08, rng=1)
    return atoms, box


@pytest.fixture(scope="session")
def small_water():
    """A 27-molecule water box with topology."""
    atoms, box, topology = water_system(27, rng=2)
    return atoms, box, topology


@pytest.fixture(scope="session")
def tiny_copper_model():
    """A small, untrained copper Deep Potential (fast to evaluate)."""
    config = DeepPotentialConfig(
        type_names=("Cu",),
        cutoff=4.5,
        cutoff_smooth=3.5,
        embedding_sizes=(6, 12),
        axis_neurons=4,
        fitting_sizes=(16, 16),
        max_neighbors=48,
        seed=0,
    )
    return DeepPotential(config)


@pytest.fixture(scope="session")
def tiny_water_model():
    """A small, untrained two-species Deep Potential."""
    config = DeepPotentialConfig(
        type_names=("O", "H"),
        cutoff=4.5,
        cutoff_smooth=3.5,
        embedding_sizes=(6, 12),
        axis_neurons=4,
        fitting_sizes=(16, 16),
        max_neighbors=48,
        seed=1,
    )
    return DeepPotential(config)


@pytest.fixture(scope="session")
def trained_copper_model():
    """A tiny copper model trained for a handful of epochs on Gupta labels."""
    dataset = generate_copper_dataset(n_frames=6, n_cells=(2, 2, 2), cutoff=3.6, rng=3)
    config = DeepPotentialConfig(
        type_names=("Cu",),
        cutoff=3.6,
        cutoff_smooth=3.0,
        embedding_sizes=(8, 16),
        axis_neurons=4,
        fitting_sizes=(24, 24),
        max_neighbors=32,
        seed=4,
    )
    model = DeepPotential(config)
    trainer = Trainer(model, dataset, learning_rate=5.0e-3, rng=5)
    result = trainer.train(n_epochs=25)
    return model, dataset, result


def neighbor_data_for(atoms, box, cutoff):
    """Helper used across force-field tests."""
    return build_neighbor_data(atoms.positions, box, cutoff)
