"""Reference data generation and training of the Deep Potential."""

import numpy as np
import pytest

from repro.deepmd import (
    DeepPotential,
    DeepPotentialConfig,
    Trainer,
    generate_copper_dataset,
    generate_water_dataset,
)
from repro.deepmd.compression import TabulatedEmbeddingSet
from repro.deepmd.embedding import EmbeddingNetSet
from repro.deepmd.fitting import FittingNetSet


class TestReferenceData:
    def test_copper_dataset_contents(self):
        dataset = generate_copper_dataset(n_frames=3, n_cells=(2, 2, 2), cutoff=3.6, rng=0)
        assert len(dataset) == 3
        frame = dataset.frames[0]
        assert frame.per_atom_energy.shape == (32,)
        assert frame.forces.shape == (32, 3)
        assert frame.per_atom_energy.sum() == pytest.approx(frame.energy, rel=1e-10)
        stats = dataset.energy_statistics()
        assert stats["n_frames"] == 3
        assert stats["mean_energy_per_atom"] < 0.0  # cohesive

    def test_water_dataset_contents(self):
        dataset = generate_water_dataset(n_frames=2, n_molecules=32, cutoff=4.5, rng=1)
        assert len(dataset) == 2
        assert dataset.type_names == ("O", "H")
        assert dataset.frames[0].forces.shape == (96, 3)

    def test_split_preserves_frames(self):
        dataset = generate_copper_dataset(n_frames=5, n_cells=(2, 2, 2), cutoff=3.6, rng=2)
        train, val = dataset.split(validation_fraction=0.4, rng=3)
        assert len(train) + len(val) == 5
        assert len(val) == 2
        with pytest.raises(ValueError):
            dataset.split(validation_fraction=1.5)


class TestNetworkSets:
    def test_embedding_set_has_one_net_per_type_pair(self):
        nets = EmbeddingNetSet(2, sizes=(4, 8), rng=0)
        assert len(list(nets.pairs())) == 4
        assert nets.width == 8
        assert nets.n_parameters() > 0
        exported = nets.export()
        assert set(exported) == {(0, 0), (0, 1), (1, 0), (1, 1)}

    def test_fitting_set_validation(self):
        with pytest.raises(ValueError):
            FittingNetSet(0, input_dim=8)
        with pytest.raises(ValueError):
            FittingNetSet(1, input_dim=0)
        nets = FittingNetSet(2, input_dim=8, sizes=(6, 6), rng=1)
        assert len(nets.export()) == 2

    def test_compression_interpolates_embedding_net(self):
        nets = EmbeddingNetSet(1, sizes=(4, 8), rng=2).export()
        table = TabulatedEmbeddingSet(nets, s_max=2.0, n_points=512)
        s = np.linspace(0.05, 1.9, 64)
        exact = nets[(0, 0)].forward(s[:, None], cache=False)
        approx, deriv = table.evaluate((0, 0), s)
        np.testing.assert_allclose(approx, exact, atol=1e-4)
        # derivative consistent with finite differences of the table values
        h = 1e-4
        plus, _ = table.evaluate((0, 0), s + h)
        minus, _ = table.evaluate((0, 0), s - h)
        np.testing.assert_allclose(deriv, (plus - minus) / (2 * h), atol=1e-3)
        assert table.max_interpolation_error((0, 0), nets[(0, 0)], rng=0) < 1e-3

    def test_compression_validation(self):
        nets = EmbeddingNetSet(1, sizes=(4,), rng=3).export()
        with pytest.raises(ValueError):
            TabulatedEmbeddingSet(nets, s_max=-1.0)
        with pytest.raises(ValueError):
            TabulatedEmbeddingSet(nets, s_max=1.0, n_points=2)


class TestTrainer:
    def test_training_reduces_loss_and_sets_stats(self, trained_copper_model):
        model, dataset, result = trained_copper_model
        assert result.improved
        assert result.loss_history[-1] < result.loss_history[0]
        assert result.n_epochs == 25
        # descriptor statistics were estimated (std not all ones anymore)
        assert not np.allclose(model.descriptor_std, 1.0)
        # per-type energy bias close to the cohesive energy of the reference
        assert model.energy_bias[0] < -2.0

    def test_trained_model_beats_untrained_on_energies(self, trained_copper_model):
        model, dataset, result = trained_copper_model
        untrained = DeepPotential(model.config)
        trainer = Trainer(untrained, dataset, rng=0)
        trainer.prepare()
        untrained_rmse = trainer.evaluate_rmse(dataset)
        trained_rmse = result.energy_rmse_per_atom
        assert trained_rmse < untrained_rmse

    def test_trainer_rejects_empty_dataset(self):
        from repro.deepmd.reference import ReferenceDataset

        config = DeepPotentialConfig(type_names=("Cu",), cutoff=3.6, embedding_sizes=(4,), axis_neurons=2, fitting_sizes=(8,))
        with pytest.raises(ValueError):
            Trainer(DeepPotential(config), ReferenceDataset())

    def test_validation_rmse_reported(self):
        dataset = generate_copper_dataset(n_frames=4, n_cells=(2, 2, 2), cutoff=3.6, rng=4)
        train, val = dataset.split(0.25, rng=5)
        config = DeepPotentialConfig(
            type_names=("Cu",), cutoff=3.6, cutoff_smooth=3.0,
            embedding_sizes=(4, 8), axis_neurons=2, fitting_sizes=(8, 8), max_neighbors=32, seed=0,
        )
        model = DeepPotential(config)
        trainer = Trainer(model, train, learning_rate=5e-3, rng=6)
        result = trainer.train(n_epochs=5, validation=val)
        assert result.validation_rmse_per_atom is not None
        assert result.validation_rmse_per_atom > 0.0
