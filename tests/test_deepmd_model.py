"""The Deep Potential model: forces, symmetries, precision, compression, baseline path."""

import numpy as np
import pytest

from repro.deepmd import (
    DOUBLE,
    MIX_FP16,
    MIX_FP32,
    DeepPotentialConfig,
    DeepPotentialForceField,
    GemmBackend,
)
from repro.deepmd.precision import get_policy
from repro.md import copper_system, water_system
from repro.md.atoms import Atoms
from repro.md.neighbor import build_neighbor_data
from repro.nnframework.session import Session


def _copper_case(model, n_cells=(3, 3, 3), perturbation=0.08, rng=1):
    atoms, box = copper_system(n_cells, perturbation=perturbation, rng=rng)
    neighbors = build_neighbor_data(atoms.positions, box, model.config.cutoff)
    return atoms, box, neighbors


class TestConfig:
    def test_defaults_follow_paper(self):
        config = DeepPotentialConfig(type_names=("Cu",), cutoff=8.0)
        assert config.fitting_sizes == (240, 240, 240)
        assert config.embedding_sizes == (25, 50, 100)
        assert config.axis_neurons == 16
        assert config.descriptor_dim == 1600

    def test_validation(self):
        with pytest.raises(ValueError):
            DeepPotentialConfig(type_names=(), cutoff=8.0)
        with pytest.raises(ValueError):
            DeepPotentialConfig(type_names=("Cu",), cutoff=-1.0)
        with pytest.raises(ValueError):
            DeepPotentialConfig(type_names=("Cu",), cutoff=6.0, cutoff_smooth=7.0)
        with pytest.raises(ValueError):
            DeepPotentialConfig(type_names=("Cu",), cutoff=6.0, embedding_sizes=(4,), axis_neurons=8)

    def test_precision_policy_lookup(self):
        assert get_policy("double") is DOUBLE
        assert get_policy(MIX_FP32) is MIX_FP32
        with pytest.raises(KeyError):
            get_policy("fp8")
        assert MIX_FP16.uses_fp16 and MIX_FP16.uses_fp32
        assert not DOUBLE.uses_fp16


class TestForces:
    def test_analytic_forces_match_finite_differences(self, tiny_copper_model):
        model = tiny_copper_model
        atoms, box, neighbors = _copper_case(model)
        output = model.evaluate(atoms, box, neighbors)
        delta = 1e-5
        rng = np.random.default_rng(0)
        for i in rng.choice(len(atoms), size=3, replace=False):
            for axis in range(3):
                energies = []
                for sign in (+1, -1):
                    trial = atoms.copy()
                    trial.positions[i, axis] += sign * delta
                    trial.positions = box.wrap(trial.positions)
                    nd = build_neighbor_data(trial.positions, box, model.config.cutoff)
                    energies.append(model.evaluate(trial, box, nd).energy)
                numeric = -(energies[0] - energies[1]) / (2 * delta)
                assert output.forces[i, axis] == pytest.approx(numeric, abs=5e-8)

    def test_total_force_is_zero(self, tiny_copper_model):
        atoms, box, neighbors = _copper_case(tiny_copper_model, rng=2)
        output = tiny_copper_model.evaluate(atoms, box, neighbors)
        np.testing.assert_allclose(output.forces.sum(axis=0), 0.0, atol=1e-10)

    def test_per_atom_energy_sums_to_total(self, tiny_copper_model):
        atoms, box, neighbors = _copper_case(tiny_copper_model, rng=3)
        output = tiny_copper_model.evaluate(atoms, box, neighbors)
        assert output.per_atom_energy.sum() == pytest.approx(output.energy, rel=1e-12)

    def test_multi_type_forces_match_finite_differences(self, tiny_water_model):
        model = tiny_water_model
        atoms, box, _ = water_system(27, rng=4)
        neighbors = build_neighbor_data(atoms.positions, box, model.config.cutoff)
        output = model.evaluate(atoms, box, neighbors)
        delta = 1e-5
        i, axis = 5, 1
        energies = []
        for sign in (+1, -1):
            trial = atoms.copy()
            trial.positions[i, axis] += sign * delta
            nd = build_neighbor_data(trial.positions, box, model.config.cutoff)
            energies.append(model.evaluate(trial, box, nd).energy)
        numeric = -(energies[0] - energies[1]) / (2 * delta)
        assert output.forces[i, axis] == pytest.approx(numeric, abs=5e-8)


class TestSymmetries:
    def test_translational_invariance(self, tiny_copper_model):
        model = tiny_copper_model
        atoms, box, neighbors = _copper_case(model, rng=5)
        reference = model.evaluate(atoms, box, neighbors).energy
        shifted = atoms.copy()
        shifted.positions = box.wrap(shifted.positions + np.array([1.3, -0.7, 2.2]))
        nd = build_neighbor_data(shifted.positions, box, model.config.cutoff)
        assert model.evaluate(shifted, box, nd).energy == pytest.approx(reference, rel=1e-9)

    def test_permutational_invariance(self, tiny_copper_model):
        model = tiny_copper_model
        atoms, box, neighbors = _copper_case(model, rng=6)
        reference = model.evaluate(atoms, box, neighbors).energy
        perm = np.random.default_rng(0).permutation(len(atoms))
        permuted = atoms.select(perm)
        nd = build_neighbor_data(permuted.positions, box, model.config.cutoff)
        assert model.evaluate(permuted, box, nd).energy == pytest.approx(reference, rel=1e-9)

    def test_rotational_invariance_cluster(self, tiny_copper_model):
        # Use an isolated cluster in a huge box so rotation does not interact
        # with the periodic images.
        model = tiny_copper_model
        rng = np.random.default_rng(7)
        from repro.md import Box

        box = Box.cubic(60.0)
        positions = 25.0 + rng.uniform(0, 4.0, size=(12, 3))
        atoms = Atoms.from_symbols(positions, ["Cu"] * 12)
        nd = build_neighbor_data(atoms.positions, box, model.config.cutoff)
        reference = model.evaluate(atoms, box, nd).energy

        theta = 0.7
        rotation = np.array(
            [[np.cos(theta), -np.sin(theta), 0.0], [np.sin(theta), np.cos(theta), 0.0], [0.0, 0.0, 1.0]]
        )
        center = positions.mean(axis=0)
        rotated = (positions - center) @ rotation.T + center
        atoms_rot = Atoms.from_symbols(rotated, ["Cu"] * 12)
        nd_rot = build_neighbor_data(atoms_rot.positions, box, model.config.cutoff)
        assert model.evaluate(atoms_rot, box, nd_rot).energy == pytest.approx(reference, rel=1e-9)


class TestBaselineFrameworkPath:
    def test_framework_and_fast_paths_agree(self, tiny_copper_model):
        model = tiny_copper_model
        atoms, box, neighbors = _copper_case(model, rng=8)
        fast = model.evaluate(atoms, box, neighbors)
        session = Session()
        framework = model.evaluate_with_framework(atoms, box, neighbors, session=session)
        assert framework.energy == pytest.approx(fast.energy, abs=1e-10)
        np.testing.assert_allclose(framework.forces, fast.forces, atol=1e-10)
        assert framework.used_framework and not fast.used_framework
        # one session run per centre type present
        assert session.stats.runs == 1
        assert session.stats.modeled_overhead_seconds == pytest.approx(4e-3)

    def test_framework_water_agrees_and_counts_sessions(self, tiny_water_model):
        model = tiny_water_model
        atoms, box, _ = water_system(27, rng=9)
        neighbors = build_neighbor_data(atoms.positions, box, model.config.cutoff)
        session = Session()
        fast = model.evaluate(atoms, box, neighbors)
        framework = model.evaluate_with_framework(atoms, box, neighbors, session=session)
        np.testing.assert_allclose(framework.forces, fast.forces, atol=1e-10)
        assert session.stats.runs == 2  # O and H graphs


class TestPrecisionAndCompression:
    def test_precision_policies_perturb_results_slightly(self, tiny_copper_model):
        model = tiny_copper_model
        atoms, box, neighbors = _copper_case(model, rng=10)
        double = model.evaluate(atoms, box, neighbors, precision="double")
        fp32 = model.evaluate(atoms, box, neighbors, precision="mix-fp32")
        fp16 = model.evaluate(atoms, box, neighbors, precision="mix-fp16")
        err32 = abs(fp32.energy - double.energy) / max(abs(double.energy), 1e-12)
        err16 = abs(fp16.energy - double.energy) / max(abs(double.energy), 1e-12)
        assert err32 < 1e-4
        assert err16 < 5e-2
        assert err32 <= err16 + 1e-12

    def test_sve_backend_matches_blas(self, tiny_copper_model):
        model = tiny_copper_model
        atoms, box, neighbors = _copper_case(model, rng=11)
        blas = model.evaluate(atoms, box, neighbors, backend=GemmBackend(kind="blas"))
        sve = model.evaluate(atoms, box, neighbors, backend=GemmBackend(kind="sve"))
        assert sve.energy == pytest.approx(blas.energy, rel=1e-12)

    def test_compressed_embedding_close_to_exact(self, tiny_copper_model):
        model = tiny_copper_model
        atoms, box, neighbors = _copper_case(model, rng=12)
        exact = model.evaluate(atoms, box, neighbors)
        compressed = model.evaluate(atoms, box, neighbors, compressed=True)
        assert compressed.energy == pytest.approx(exact.energy, abs=5e-3)
        assert np.max(np.abs(compressed.forces - exact.forces)) < 5e-3

    def test_descriptor_stats_validation(self, tiny_copper_model):
        model = tiny_copper_model
        dim = model.config.descriptor_dim
        with pytest.raises(ValueError):
            model.set_descriptor_stats(np.zeros((1, dim + 1)), np.ones((1, dim + 1)))
        with pytest.raises(ValueError):
            model.set_descriptor_stats(np.zeros((1, dim)), np.zeros((1, dim)))
        with pytest.raises(ValueError):
            model.set_energy_bias(np.zeros(3))


class TestPairStyle:
    def test_force_field_adapter_runs_md_step(self, tiny_copper_model):
        from repro.md import Simulation

        atoms, box = copper_system((2, 2, 2), perturbation=0.02, rng=13)
        ff = DeepPotentialForceField(tiny_copper_model, precision="mix-fp32")
        # model cutoff 4.5 exceeds the 2x2x2 minimum image; use a 3x3x3 cell
        atoms, box = copper_system((3, 3, 3), perturbation=0.02, rng=13)
        atoms.initialize_velocities(50.0, rng=14)
        sim = Simulation(atoms, box, ff, timestep_fs=1.0, neighbor_skin=0.3)
        report = sim.run(3)
        assert report.n_steps == 3
        assert ff.n_evaluations >= 4  # initial forces + 3 steps
        description = ff.describe()
        assert description["precision"] == "mix-fp32"
        assert description["cutoff"] == pytest.approx(4.5)

    def test_framework_pair_style_accumulates_overhead(self, tiny_copper_model):
        atoms, box = copper_system((3, 3, 3), rng=15)
        neighbors = build_neighbor_data(atoms.positions, box, 4.5)
        ff = DeepPotentialForceField(tiny_copper_model, use_framework=True)
        ff.compute(atoms, box, neighbors)
        assert ff.session.stats.runs == 1


class TestDegenerateSystems:
    """0-atom and empty-neighbour requests return well-formed outputs.

    The serving engine accepts arbitrary client systems, so the degenerate
    cases are part of the evaluate contract now (PR 9), not an accident of
    how the per-type loop falls through.
    """

    def _empty(self):
        atoms = Atoms(
            positions=np.zeros((0, 3)),
            types=np.zeros(0, dtype=np.int64),
            masses=np.zeros(0),
        )
        from repro.md.box import Box

        box = Box.cubic(10.0)
        neighbors = build_neighbor_data(atoms.positions, box, 4.5)
        return atoms, box, neighbors

    def test_zero_atom_system_returns_well_formed_empty_output(self, tiny_copper_model):
        atoms, box, neighbors = self._empty()
        out = tiny_copper_model.evaluate(atoms, box, neighbors)
        assert out.energy == 0.0
        assert out.per_atom_energy.shape == (0,)
        assert out.forces.shape == (0, 3)
        assert out.virial.shape == (3, 3)
        np.testing.assert_array_equal(out.virial, 0.0)

    def test_zero_atom_system_with_workspace_and_compression(self, tiny_copper_model):
        from repro.md.workspace import Workspace

        atoms, box, neighbors = self._empty()
        ws = Workspace()
        table = tiny_copper_model.compressed_embeddings()
        for _ in range(2):  # second call exercises the warm pool
            out = tiny_copper_model.evaluate(
                atoms, box, neighbors, compressed=True, compression_table=table, workspace=ws
            )
            assert out.energy == 0.0 and out.forces.shape == (0, 3)

    def test_isolated_atoms_have_no_neighbours_and_bias_energy(self, tiny_copper_model):
        from repro.md.box import Box

        model = tiny_copper_model
        old_bias = model.energy_bias.copy()
        try:
            model.set_energy_bias(np.array([-2.5]))
            box = Box.cubic(50.0)
            # two atoms far outside each other's cutoff: every neighbour slot
            # is padding, so the energy is exactly the per-type bias
            atoms = Atoms(
                positions=np.array([[5.0, 5.0, 5.0], [40.0, 40.0, 40.0]]),
                types=np.zeros(2, dtype=np.int64),
                masses=np.full(2, 63.546),
            )
            neighbors = build_neighbor_data(atoms.positions, box, model.config.cutoff)
            out = model.evaluate(atoms, box, neighbors)
            np.testing.assert_allclose(out.per_atom_energy, -2.5, atol=1e-12)
            np.testing.assert_array_equal(out.forces, 0.0)
        finally:
            model.set_energy_bias(old_bias)
