"""Perf smoke test: the vectorized inference path must stay fast.

Marked ``slow`` and excluded from the tier-1 run (see ``pytest.ini``); run
explicitly with::

    PYTHONPATH=src python -m pytest -m slow tests/test_perf_smoke.py -s

The assertion is deliberately loose (2x, against a measured ~30x) so the test
only fires when someone genuinely reintroduces Python-level per-atom loops
into the hot path, not on scheduler noise.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.deepmd import DeepPotential, DeepPotentialConfig
from repro.md import water_system
from repro.md.neighbor import build_neighbor_data

#: Minimum speedup of the vectorized path over the scalar reference that this
#: smoke test insists on (the real margin is far larger; see
#: ``benchmarks/bench_inference_vectorized.py`` for the >= 10x benchmark).
SMOKE_SPEEDUP = 2.0


@pytest.mark.slow
def test_vectorized_inference_beats_scalar_on_512_atoms():
    atoms, box, _ = water_system(171, rng=21)  # 513 atoms
    config = DeepPotentialConfig(
        type_names=("O", "H"),
        cutoff=6.0,
        cutoff_smooth=5.0,
        embedding_sizes=(8, 16),
        axis_neurons=4,
        fitting_sizes=(32, 32),
        max_neighbors=128,
        seed=21,
    )
    model = DeepPotential(config)
    neighbors = build_neighbor_data(atoms.positions, box, config.cutoff)
    model.fast_embeddings()
    model.fast_fittings()

    t0 = time.perf_counter()
    out_scalar = model.evaluate_scalar(atoms, box, neighbors)
    t_scalar = time.perf_counter() - t0

    t_vec = np.inf
    for _ in range(3):
        t0 = time.perf_counter()
        out_vec = model.evaluate(atoms, box, neighbors)
        t_vec = min(t_vec, time.perf_counter() - t0)

    np.testing.assert_allclose(out_vec.forces, out_scalar.forces, atol=1.0e-10)
    speedup = t_scalar / t_vec
    print(f"\n512-atom smoke: scalar {t_scalar*1e3:.0f} ms, vectorized {t_vec*1e3:.0f} ms, {speedup:.1f}x")
    assert speedup >= SMOKE_SPEEDUP, (
        f"vectorized path only {speedup:.2f}x faster than the scalar reference - "
        "a Python-level loop has probably crept back into the hot path"
    )
