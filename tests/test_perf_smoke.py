"""Perf smoke tests: the vectorized hot paths must stay fast.

Marked ``slow`` and excluded from the tier-1 run (see ``pytest.ini``); run
explicitly with::

    PYTHONPATH=src python -m pytest -m slow tests/test_perf_smoke.py -s

Two hot paths are guarded: Deep Potential inference (vectorized vs the scalar
reference) and the neighbour-list build (vectorized binned build vs the
brute-force reference).  The assertions are deliberately loose against the
measured margins so they only fire when someone genuinely reintroduces
Python-level loops into a hot path, not on scheduler noise.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.deepmd import DeepPotential, DeepPotentialConfig
from repro.md import Box, water_system
from repro.md.neighbor import _brute_force_pairs, _cell_list_pairs, build_neighbor_data

#: Minimum speedup of the vectorized path over the scalar reference that this
#: smoke test insists on (the real margin is far larger; see
#: ``benchmarks/bench_inference_vectorized.py`` for the >= 10x benchmark).
SMOKE_SPEEDUP = 2.0


@pytest.mark.slow
def test_vectorized_inference_beats_scalar_on_512_atoms():
    atoms, box, _ = water_system(171, rng=21)  # 513 atoms
    config = DeepPotentialConfig(
        type_names=("O", "H"),
        cutoff=6.0,
        cutoff_smooth=5.0,
        embedding_sizes=(8, 16),
        axis_neurons=4,
        fitting_sizes=(32, 32),
        max_neighbors=128,
        seed=21,
    )
    model = DeepPotential(config)
    neighbors = build_neighbor_data(atoms.positions, box, config.cutoff)
    model.fast_embeddings()
    model.fast_fittings()

    t0 = time.perf_counter()
    out_scalar = model.evaluate_scalar(atoms, box, neighbors)
    t_scalar = time.perf_counter() - t0

    t_vec = np.inf
    for _ in range(3):
        t0 = time.perf_counter()
        out_vec = model.evaluate(atoms, box, neighbors)
        t_vec = min(t_vec, time.perf_counter() - t0)

    np.testing.assert_allclose(out_vec.forces, out_scalar.forces, atol=1.0e-10)
    speedup = t_scalar / t_vec
    print(f"\n512-atom smoke: scalar {t_scalar*1e3:.0f} ms, vectorized {t_vec*1e3:.0f} ms, {speedup:.1f}x")
    assert speedup >= SMOKE_SPEEDUP, (
        f"vectorized path only {speedup:.2f}x faster than the scalar reference - "
        "a Python-level loop has probably crept back into the hot path"
    )


@pytest.mark.slow
def test_binned_neighbor_build_beats_brute_force_at_1200_atoms():
    """The vectorized binned build must stay far ahead of the O(N^2) search.

    Measured margin is ~15x at 1200 atoms (brute ~110 ms, binned ~8 ms); the
    3x assertion only fires when a Python-level loop over cells (or an O(N^2)
    fallback) creeps back into ``_cell_list_pairs``.
    """
    rng = np.random.default_rng(23)
    n, density, search = 1200, 0.09, 5.0
    length = (n / density) ** (1.0 / 3.0)
    box = Box.cubic(length)
    positions = rng.uniform(0.0, length, size=(n, 3))

    t0 = time.perf_counter()
    _brute_force_pairs(positions, box, search)
    t_brute = time.perf_counter() - t0

    t_binned = np.inf
    for _ in range(3):
        t0 = time.perf_counter()
        _cell_list_pairs(positions, box, search)
        t_binned = min(t_binned, time.perf_counter() - t0)

    speedup = t_brute / t_binned
    print(
        f"\n1200-atom neighbour build: brute {t_brute*1e3:.0f} ms, "
        f"binned {t_binned*1e3:.0f} ms, {speedup:.1f}x"
    )
    assert speedup >= 3.0, (
        f"binned neighbour build only {speedup:.2f}x faster than brute force - "
        "a Python loop or O(N^2) fallback has probably crept back in"
    )
