"""Units, constants and conversions."""

import numpy as np
import pytest

from repro import units


def test_boltzmann_constant_value():
    assert units.KB == pytest.approx(8.617333262e-5, rel=1e-6)


def test_acceleration_conversion_constant():
    # 1 eV/A on 1 amu is ~0.0096485 A/fs^2
    assert units.ACC_CONV == pytest.approx(9.6485e-3, rel=1e-3)


def test_kinetic_energy_single_particle():
    masses = np.array([1.0])
    velocities = np.array([[0.01, 0.0, 0.0]])
    expected = 0.5 * 1.0 * 0.01 ** 2 / units.ACC_CONV
    assert units.kinetic_energy(masses, velocities) == pytest.approx(expected)


def test_temperature_matches_equipartition():
    rng = np.random.default_rng(0)
    n = 4000
    mass = 40.0
    sigma = units.maxwell_boltzmann_sigma(mass, 300.0)
    velocities = rng.normal(0.0, sigma, size=(n, 3))
    masses = np.full(n, mass)
    temperature = units.temperature(masses, velocities, n_dof=3 * n)
    assert temperature == pytest.approx(300.0, rel=0.05)


def test_temperature_zero_for_empty_system():
    assert units.temperature(np.array([]), np.zeros((0, 3))) == 0.0


def test_ns_per_day_known_value():
    # 149 ns/day at 1 fs per step corresponds to ~0.58 ms per step
    step_time = units.step_time_for_ns_per_day(149.0, 1.0)
    assert step_time == pytest.approx(5.798e-4, rel=1e-3)
    assert units.ns_per_day(step_time, 1.0) == pytest.approx(149.0, rel=1e-12)


def test_ns_per_day_scales_with_timestep():
    assert units.ns_per_day(1e-3, 2.0) == pytest.approx(2 * units.ns_per_day(1e-3, 1.0))


def test_ns_per_day_rejects_nonpositive_step_time():
    with pytest.raises(ValueError):
        units.ns_per_day(0.0, 1.0)
    with pytest.raises(ValueError):
        units.step_time_for_ns_per_day(-1.0, 1.0)


def test_maxwell_boltzmann_sigma_validation():
    with pytest.raises(ValueError):
        units.maxwell_boltzmann_sigma(-1.0, 300.0)
    with pytest.raises(ValueError):
        units.maxwell_boltzmann_sigma(1.0, -300.0)


def test_masses_table_contains_benchmark_elements():
    for symbol in ("H", "O", "Cu"):
        assert symbol in units.MASSES
