"""Smoothing function, environment matrices, GEMM backends, fast MLP kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.deepmd import FastMLP, GemmBackend, build_local_environment, switching_derivative, switching_function
from repro.deepmd.envmat import suggested_max_neighbors
from repro.md.neighbor import build_neighbor_data
from repro.nnframework import MLP


class TestSwitchingFunction:
    def test_inner_region_is_inverse_distance(self):
        r = np.array([0.5, 1.0, 2.0])
        np.testing.assert_allclose(switching_function(r, 6.0, 3.0), 1.0 / r)

    def test_zero_beyond_cutoff_and_at_padding(self):
        r = np.array([0.0, 6.0, 7.5])
        np.testing.assert_allclose(switching_function(r, 6.0, 3.0), 0.0)

    def test_continuity_at_smooth_cutoff_and_cutoff(self):
        eps = 1e-9
        for point in (3.0, 6.0):
            below = switching_function(np.array([point - eps]), 6.0, 3.0)
            above = switching_function(np.array([point + eps]), 6.0, 3.0)
            assert abs(below - above) < 1e-6

    def test_derivative_matches_finite_difference(self):
        r = np.linspace(0.5, 6.5, 200)
        h = 1e-6
        numeric = (switching_function(r + h, 6.0, 3.0) - switching_function(r - h, 6.0, 3.0)) / (2 * h)
        analytic = switching_derivative(r, 6.0, 3.0)
        np.testing.assert_allclose(analytic, numeric, atol=1e-5)

    def test_invalid_cutoffs(self):
        with pytest.raises(ValueError):
            switching_function(np.array([1.0]), 3.0, 3.0)
        with pytest.raises(ValueError):
            switching_derivative(np.array([1.0]), 2.0, 3.0)

    @settings(max_examples=40, deadline=None)
    @given(r=st.floats(0.01, 10.0))
    def test_property_monotone_decreasing_and_nonnegative(self, r):
        value = float(switching_function(np.array([r]), 6.0, 3.0)[0])
        assert value >= 0.0
        slightly_further = float(switching_function(np.array([r + 0.05]), 6.0, 3.0)[0])
        assert slightly_further <= value + 1e-12


class TestEnvironmentMatrix:
    def test_shapes_and_mask(self, small_copper):
        atoms, box = small_copper
        neighbors = build_neighbor_data(atoms.positions, box, 4.5)
        env = build_local_environment(atoms, box, neighbors, cutoff=4.5, cutoff_smooth=3.5, max_neighbors=60)
        n = len(atoms)
        assert env.R.shape == (n, 60, 4)
        assert env.mask.shape == (n, 60)
        assert np.all(env.neighbor_counts() > 0)
        # padded slots carry no data
        padded = env.mask == 0.0
        assert np.all(env.R[padded] == 0.0)
        assert np.all(env.neighbor_indices[padded] == -1)

    def test_first_column_is_switching_function(self, small_copper):
        atoms, box = small_copper
        neighbors = build_neighbor_data(atoms.positions, box, 4.5)
        env = build_local_environment(atoms, box, neighbors, 4.5, 3.5, 60)
        np.testing.assert_allclose(env.R[..., 0], env.s)

    def test_row_norm_relation(self, small_copper):
        # |R[1:4]| = s for every real neighbour (unit vector times s).
        atoms, box = small_copper
        neighbors = build_neighbor_data(atoms.positions, box, 4.5)
        env = build_local_environment(atoms, box, neighbors, 4.5, 3.5, 60)
        norms = np.linalg.norm(env.R[..., 1:], axis=-1)
        np.testing.assert_allclose(norms, env.s, atol=1e-12)

    def test_neighbors_sorted_by_type_when_requested(self, small_water):
        atoms, box, _ = small_water
        neighbors = build_neighbor_data(atoms.positions, box, 4.0)
        env = build_local_environment(atoms, box, neighbors, 4.0, 3.0, 60, sort_neighbors_by_type=True)
        for i in range(len(atoms)):
            types = env.neighbor_types[i][env.mask[i] > 0]
            assert np.all(np.diff(types) >= 0)

    def test_larger_search_radius_is_filtered_to_cutoff(self, small_copper):
        atoms, box = small_copper
        neighbors = build_neighbor_data(atoms.positions, box, 4.5, skin=0.5)
        env = build_local_environment(atoms, box, neighbors, cutoff=4.0, cutoff_smooth=3.0, max_neighbors=80)
        assert np.all(env.distances[env.mask > 0] <= 4.0 + 1e-12)

    def test_suggested_max_neighbors_covers_actual(self, small_copper):
        atoms, box = small_copper
        neighbors = build_neighbor_data(atoms.positions, box, 4.5)
        suggestion = suggested_max_neighbors(atoms, box, neighbors, 4.5)
        env = build_local_environment(atoms, box, neighbors, 4.5, 3.5, suggestion)
        assert env.neighbor_counts().max() <= suggestion


class TestGemmBackend:
    def test_blas_and_sve_agree_numerically(self):
        rng = np.random.default_rng(0)
        a = rng.normal(size=(2, 7))
        b = rng.normal(size=(7, 5))
        blas = GemmBackend(kind="blas").matmul(a, b)
        sve = GemmBackend(kind="sve").matmul(a, b)
        np.testing.assert_allclose(blas, sve, atol=1e-12)

    def test_sve_only_engages_for_tall_skinny(self):
        backend = GemmBackend(kind="sve")
        backend.matmul(np.ones((2, 4)), np.ones((4, 3)))
        backend.matmul(np.ones((10, 4)), np.ones((4, 3)))
        assert backend.stats.sve_calls == 1
        assert backend.stats.blas_calls == 1
        assert backend.stats.tall_skinny_calls == 1

    def test_transposed_b_and_stats(self):
        backend = GemmBackend(kind="blas")
        a = np.ones((2, 3))
        b = np.ones((4, 3))
        out = backend.matmul(a, b, transposed_b=True)
        assert out.shape == (2, 4)
        assert backend.stats.nt_calls == 1
        assert backend.stats.flops == pytest.approx(2 * 2 * 4 * 3)

    def test_fp16_reduces_precision(self):
        rng = np.random.default_rng(1)
        a = rng.normal(size=(3, 64))
        b = rng.normal(size=(64, 32))
        exact = a @ b
        half = GemmBackend().matmul(a, b, dtype=np.float16)
        error = np.max(np.abs(exact - half))
        assert 0.0 < error < 1.0

    def test_invalid_inputs(self):
        backend = GemmBackend()
        with pytest.raises(ValueError):
            backend.matmul(np.ones((2, 3)), np.ones((4, 5)))
        with pytest.raises(ValueError):
            GemmBackend(kind="gpu")

    def test_stats_merge_and_reset(self):
        a, b = GemmBackend(), GemmBackend()
        a.matmul(np.ones((1, 2)), np.ones((2, 2)))
        b.matmul(np.ones((1, 2)), np.ones((2, 2)))
        a.stats.merge(b.stats)
        assert a.stats.calls == 2
        a.reset_stats()
        assert a.stats.calls == 0


class TestFastMLP:
    def test_matches_framework_mlp(self):
        mlp = MLP(3, [8, 8], out_features=2, rng=0)
        fast = FastMLP.from_mlp(mlp)
        x = np.random.default_rng(1).normal(size=(5, 3))
        from repro.nnframework import Tensor

        expected = mlp(Tensor(x)).data
        np.testing.assert_allclose(fast.forward(x), expected, atol=1e-12)

    def test_backward_input_matches_autodiff(self):
        from repro.nnframework import Tensor, ops

        mlp = MLP(4, [8, 8], out_features=1, rng=2)
        fast = FastMLP.from_mlp(mlp)
        x = np.random.default_rng(3).normal(size=(6, 4))
        t = Tensor(x, requires_grad=True)
        ops.sum(mlp(t)).backward()
        fast.forward(x)
        grad = fast.backward_input(np.ones((6, 1)))
        np.testing.assert_allclose(grad, t.grad, atol=1e-10)

    def test_nt_vs_nn_backward_identical(self):
        mlp = MLP(4, [6], out_features=1, rng=4)
        fast = FastMLP.from_mlp(mlp)
        x = np.random.default_rng(5).normal(size=(3, 4))
        fast.forward(x)
        nn = fast.backward_input(np.ones((3, 1)), backend=GemmBackend(pretranspose=True))
        fast.forward(x)
        nt = fast.backward_input(np.ones((3, 1)), backend=GemmBackend(pretranspose=False))
        np.testing.assert_allclose(nn, nt, atol=1e-12)

    def test_backward_requires_forward_cache(self):
        fast = FastMLP.from_mlp(MLP(2, [4], out_features=1, rng=6))
        with pytest.raises(RuntimeError):
            fast.backward_input(np.ones((1, 1)))

    def test_parameter_count_and_shapes(self):
        mlp = MLP(3, [5], out_features=2, rng=7)
        fast = FastMLP.from_mlp(mlp)
        assert fast.n_parameters() == 3 * 5 + 5 + 5 * 2 + 2
        assert fast.layer_shapes() == [(3, 5), (5, 2)]
