"""Cross-rank parity suite for the domain-decomposed MD engine.

The headline contract: for the water and copper benchmark systems, every
decomposition in {1x1x1, 2x1x1, 2x2x1, 2x2x2} under both ghost-delivery
schemes (p2p and node-based) reproduces the single-rank ``Simulation``
trajectory step-for-step — positions, velocities, forces and energies within
1e-10 over >= 20 steps that include several neighbour rebuilds and (for
multi-rank grids) rank-to-rank migrations.

Also here: the engine's conservation/equivalence properties (global atom
count under migration, ghost-force reverse scatter summing to the serial
force, p2p vs node-based scheme equivalence) and the migration edge cases
(atoms exactly on a sub-box face, atoms crossing a periodic boundary in one
step, 2- and 3-layer ghost shells).
"""

import numpy as np
import pytest

from repro.deepmd import DeepPotential, DeepPotentialConfig
from repro.deepmd.pair_style import DeepPotentialForceField
from repro.md import (
    Atoms,
    Box,
    GuptaPotential,
    LennardJones,
    MorsePotential,
    Simulation,
    copper_system,
    water_system,
)
from repro.md.forcefields.water import WaterReference
from repro.parallel import DomainDecomposedSimulation
from repro.parallel.ghost import layers_for_cutoff

TOLERANCE = 1.0e-10
#: Cross-rank bound for the MIX-fp32 Deep Potential case.  The per-atom
#: kernels are batch-shape independent, so on this container the engine is
#: bit-identical to the serial mixed trajectory (measured max |dF| ~3e-19
#: over 20 steps at 2x2x2) — but fp32 GEMMs do not contractually promise
#: bitwise invariance to the per-rank batch shapes (a BLAS may pick a
#: different blocking per shape and round at ~1e-7 relative), so the mixed
#: contract is documented looser than the fp64 1e-10 one.
MIXED_TOLERANCE = 1.0e-6
N_STEPS = 20
DECOMPOSITIONS = [(1, 1, 1), (2, 1, 1), (2, 2, 1), (2, 2, 2)]
SCHEMES = ["p2p", "node-based"]


# ---------------------------------------------------------------------------
# Benchmark systems (module-scoped: the serial references are shared by every
# decomposition x scheme combination)
# ---------------------------------------------------------------------------


def _water_setup():
    """A 64-molecule box, hot and jittered enough to migrate within 20 steps."""
    atoms, box, topology = water_system(64, rng=4, jitter=0.5)
    atoms.initialize_velocities(500.0, rng=5)
    force_field = lambda: WaterReference(topology, cutoff=4.0)  # noqa: E731
    params = dict(timestep_fs=0.5, neighbor_skin=0.5, neighbor_every=5)
    return atoms, box, force_field, params


def _copper_dp_setup(compressed=False, precision="double"):
    """A 108-atom FCC copper cell driven by a tiny Deep Potential."""
    config = DeepPotentialConfig(
        type_names=("Cu",),
        cutoff=4.5,
        cutoff_smooth=3.5,
        embedding_sizes=(6, 12),
        axis_neurons=4,
        fitting_sizes=(16, 16),
        max_neighbors=48,
        seed=0,
    )
    model = DeepPotential(config)
    rng = np.random.default_rng(0)
    model.set_descriptor_stats(
        rng.normal(scale=0.1, size=(1, config.descriptor_dim)),
        0.5 + rng.random((1, config.descriptor_dim)),
    )
    model.set_energy_bias(np.array([-1.0]))
    atoms, box = copper_system((3, 3, 3), perturbation=0.05, rng=6)
    atoms.initialize_velocities(300.0, rng=7)
    force_field = lambda: DeepPotentialForceField(  # noqa: E731
        model, compressed=compressed, precision=precision
    )
    params = dict(timestep_fs=0.5, neighbor_skin=0.4, neighbor_every=5)
    return atoms, box, force_field, params


def _serial_reference(atoms, box, force_field, params, n_steps=N_STEPS):
    """Per-step snapshots of the single-rank trajectory."""
    sim = Simulation(atoms.copy(), box, force_field(), **params)
    snapshots = []
    for _ in range(n_steps):
        sim.run(1)
        snapshots.append(
            {
                "positions": sim.atoms.positions.copy(),
                "velocities": sim.atoms.velocities.copy(),
                "forces": sim.atoms.forces.copy(),
                "energy": sim._last_energy,
                "builds": sim.neighbor_list.n_builds,
            }
        )
    return snapshots


@pytest.fixture(scope="module")
def water_case():
    atoms, box, force_field, params = _water_setup()
    return atoms, box, force_field, params, _serial_reference(atoms, box, force_field, params)


@pytest.fixture(scope="module")
def copper_dp_case():
    atoms, box, force_field, params = _copper_dp_setup()
    return atoms, box, force_field, params, _serial_reference(atoms, box, force_field, params)


@pytest.fixture(scope="module")
def compressed_copper_dp_case():
    atoms, box, force_field, params = _copper_dp_setup(compressed=True)
    return atoms, box, force_field, params, _serial_reference(atoms, box, force_field, params)


@pytest.fixture(scope="module")
def mixed_copper_dp_case():
    atoms, box, force_field, params = _copper_dp_setup(compressed=True, precision="mix-fp32")
    return atoms, box, force_field, params, _serial_reference(atoms, box, force_field, params)


def _assert_engine_matches(case, rank_dims, scheme, n_steps=N_STEPS, atol=TOLERANCE):
    atoms, box, force_field, params, reference = case
    engine = DomainDecomposedSimulation(
        atoms.copy(), box, force_field(), rank_dims=rank_dims, scheme=scheme, **params
    )
    for step in range(n_steps):
        engine.run(1)
        gathered = engine.gather()
        expected = reference[step]
        np.testing.assert_allclose(
            gathered.positions, expected["positions"], rtol=0.0, atol=atol,
            err_msg=f"positions diverged at step {step} ({rank_dims}, {scheme})",
        )
        np.testing.assert_allclose(
            gathered.velocities, expected["velocities"], rtol=0.0, atol=atol,
            err_msg=f"velocities diverged at step {step} ({rank_dims}, {scheme})",
        )
        np.testing.assert_allclose(
            gathered.forces, expected["forces"], rtol=0.0, atol=atol,
            err_msg=f"forces diverged at step {step} ({rank_dims}, {scheme})",
        )
        assert engine._last_energy == pytest.approx(expected["energy"], abs=atol)
        # the rebuild schedule itself must be in lockstep with the serial loop
        assert engine.n_builds == expected["builds"]
        # the global atom set is conserved through every migration
        owned = np.concatenate([domain.gids for domain in engine.domains])
        np.testing.assert_array_equal(np.sort(owned), np.arange(engine.n_global))
    assert engine.n_builds >= 2  # >= 1 rebuild beyond the initial build
    if engine.n_ranks > 1:
        assert engine.n_migrated >= 1  # >= 1 rank-to-rank migration
    return engine


# ---------------------------------------------------------------------------
# The headline matrix: decomposition x scheme x {water classical, copper DP}
# ---------------------------------------------------------------------------


class TestTrajectoryParityWater:
    @pytest.mark.parametrize("scheme", SCHEMES)
    @pytest.mark.parametrize("rank_dims", DECOMPOSITIONS)
    def test_water_matches_serial(self, water_case, rank_dims, scheme):
        _assert_engine_matches(water_case, rank_dims, scheme)


class TestTrajectoryParityCopperDeepPotential:
    @pytest.mark.parametrize("scheme", SCHEMES)
    @pytest.mark.parametrize("rank_dims", DECOMPOSITIONS)
    def test_copper_dp_matches_serial(self, copper_dp_case, rank_dims, scheme):
        _assert_engine_matches(copper_dp_case, rank_dims, scheme)


class TestTrajectoryParityCompressedDeepPotential:
    """compressed=True runs the batched multi-table interpolation on every
    rank (masked ghost rows, per-rank workspaces); it must stay in lockstep
    with the serial compressed trajectory exactly like the exact path."""

    @pytest.mark.parametrize("scheme", SCHEMES)
    @pytest.mark.parametrize("rank_dims", [(2, 1, 1), (2, 2, 2)])
    def test_compressed_copper_dp_matches_serial(
        self, compressed_copper_dp_case, rank_dims, scheme
    ):
        engine = _assert_engine_matches(compressed_copper_dp_case, rank_dims, scheme)
        assert engine.force_field.describe()["compressed"] is True


class TestTrajectoryParityMixedPrecisionDeepPotential:
    """MIX-fp32 + compressed: the production fast path under decomposition.

    The reference here is the *serial mixed* trajectory (not the fp64 one):
    cross-rank parity asserts that decomposition does not change what the
    mixed kernels compute, under its own :data:`MIXED_TOLERANCE` bound —
    looser than the fp64 1e-10 contract because the fp32 GEMM/table path is
    not contractually bit-invariant to the per-rank batch shapes.
    """

    @pytest.mark.parametrize("scheme", SCHEMES)
    @pytest.mark.parametrize("rank_dims", [(2, 1, 1), (2, 2, 2)])
    def test_mixed_copper_dp_matches_serial_mixed(
        self, mixed_copper_dp_case, rank_dims, scheme
    ):
        engine = _assert_engine_matches(
            mixed_copper_dp_case, rank_dims, scheme, atol=MIXED_TOLERANCE
        )
        info = engine.force_field.describe()
        assert info["precision"] == "mix-fp32"
        assert info["table_dtype"] == "fp32"


# ---------------------------------------------------------------------------
# Force-decomposition parity for the remaining classical force fields
# ---------------------------------------------------------------------------


class TestOtherForceFields:
    """Each parallel strategy reproduces the serial trajectory (one grid)."""

    def _copper(self, temperature, seed):
        atoms, box = copper_system((3, 3, 3), perturbation=0.05, rng=seed)
        atoms.initialize_velocities(temperature, rng=seed + 1)
        return atoms, box

    @pytest.mark.parametrize(
        "force_field, params",
        [
            (lambda: LennardJones(0.05, 2.3, 5.0), dict(timestep_fs=2.0, neighbor_skin=0.4, neighbor_every=5)),
            (lambda: MorsePotential(cutoff=5.0), dict(timestep_fs=2.0, neighbor_skin=0.4, neighbor_every=5)),
            (lambda: GuptaPotential(cutoff=5.0), dict(timestep_fs=2.0, neighbor_skin=0.4, neighbor_every=5)),
        ],
        ids=["lj", "morse", "gupta"],
    )
    def test_classical_parity_2x2x2(self, force_field, params):
        atoms, box = self._copper(400.0, 2)
        case = (atoms, box, force_field, params, _serial_reference(atoms, box, force_field, params))
        engine = _assert_engine_matches(case, (2, 2, 2), "p2p")
        assert engine.n_migrated >= 1


# ---------------------------------------------------------------------------
# Thermostatted parity (the shared loop applies thermostats identically)
# ---------------------------------------------------------------------------


class TestThermostattedParity:
    """Step-for-step parity survives a thermostat: the shared stepping core
    applies it at the same point (after the second half-kick, before
    sampling) in both backends, and the engine's gathered-velocity collective
    is bit-compatible with the serial update."""

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_berendsen_parity_2x2x1(self, scheme):
        from repro.md import BerendsenThermostat

        atoms, box = copper_system((3, 3, 3), perturbation=0.05, rng=20)
        atoms.initialize_velocities(600.0, rng=21)
        force_field = lambda: LennardJones(0.05, 2.3, 5.0)  # noqa: E731
        params = dict(timestep_fs=2.0, neighbor_skin=0.4, neighbor_every=5)

        serial = Simulation(
            atoms.copy(), box, force_field(),
            thermostat=BerendsenThermostat(300.0, coupling_fs=60.0), **params,
        )
        engine = DomainDecomposedSimulation(
            atoms.copy(), box, force_field(), rank_dims=(2, 2, 1), scheme=scheme,
            thermostat=BerendsenThermostat(300.0, coupling_fs=60.0), **params,
        )
        for step in range(15):
            serial.run(1)
            engine.run(1)
            gathered = engine.gather()
            np.testing.assert_allclose(
                gathered.positions, serial.atoms.positions, rtol=0.0, atol=TOLERANCE,
                err_msg=f"thermostatted positions diverged at step {step} ({scheme})",
            )
            np.testing.assert_allclose(
                gathered.velocities, serial.atoms.velocities, rtol=0.0, atol=TOLERANCE,
                err_msg=f"thermostatted velocities diverged at step {step} ({scheme})",
            )
            assert engine.n_builds == serial.neighbor_list.n_builds
        assert engine.n_builds >= 2


# ---------------------------------------------------------------------------
# Property tests
# ---------------------------------------------------------------------------


class TestEngineProperties:
    def test_atom_count_conserved_under_heavy_migration(self):
        """A hot gas rebuilding every step keeps exactly one owner per atom."""
        rng = np.random.default_rng(0)
        box = Box.cubic(14.0)
        positions = rng.uniform(0.0, 14.0, size=(96, 3))
        atoms = Atoms.from_symbols(positions, ["Cu"] * 96)
        atoms.initialize_velocities(2500.0, rng=1)
        engine = DomainDecomposedSimulation(
            atoms, box, LennardJones(0.01, 2.3, 4.0), timestep_fs=2.0,
            rank_dims=(2, 2, 2), neighbor_skin=0.3, neighbor_every=1,
        )
        for _ in range(15):
            engine.run(1)
            owned = np.concatenate([domain.gids for domain in engine.domains])
            assert len(owned) == 96
            np.testing.assert_array_equal(np.sort(owned), np.arange(96))
            assert engine.decomposition_stats().total == 96
        assert engine.n_migrated > 0

    @pytest.mark.parametrize(
        "force_field",
        [
            lambda: LennardJones(0.05, 2.3, 5.0),
            lambda: GuptaPotential(cutoff=5.0),
        ],
        ids=["lj", "gupta"],
    )
    def test_ghost_reverse_scatter_sums_to_serial_force(self, force_field):
        """Owner contributions + scattered ghost forces == the serial forces."""
        atoms, box = copper_system((3, 3, 3), perturbation=0.08, rng=9)
        serial = Simulation(atoms.copy(), box, force_field(), timestep_fs=1.0, neighbor_skin=0.4)
        serial.compute_forces()
        engine = DomainDecomposedSimulation(
            atoms.copy(), box, force_field(), timestep_fs=1.0,
            rank_dims=(2, 2, 2), neighbor_skin=0.4,
        )
        engine.compute_forces()
        # the scatter genuinely moves force: cross-rank pairs left nonzero
        # contributions on ghost copies before the reverse exchange
        assert engine.comm_bytes_reverse > 0
        np.testing.assert_allclose(
            engine.gather().forces, serial.atoms.forces, rtol=0.0, atol=1.0e-12
        )
        assert engine._last_energy == pytest.approx(serial._last_energy, abs=1.0e-12)

    def test_scheme_equivalence_p2p_vs_node_based(self):
        """Both delivery schemes produce the same dynamics (1e-10)."""
        atoms, box = copper_system((3, 3, 3), perturbation=0.05, rng=12)
        atoms.initialize_velocities(400.0, rng=13)
        engines = {
            scheme: DomainDecomposedSimulation(
                atoms.copy(), box, GuptaPotential(cutoff=5.0), timestep_fs=2.0,
                rank_dims=(2, 2, 2), scheme=scheme, neighbor_skin=0.4, neighbor_every=5,
            )
            for scheme in SCHEMES
        }
        for _ in range(10):
            states = {}
            for scheme, engine in engines.items():
                engine.run(1)
                states[scheme] = engine.gather()
            np.testing.assert_allclose(
                states["p2p"].positions, states["node-based"].positions, rtol=0.0, atol=TOLERANCE
            )
            np.testing.assert_allclose(
                states["p2p"].forces, states["node-based"].forces, rtol=0.0, atol=TOLERANCE
            )
        # node-based ships node-box slabs: never fewer ghosts than p2p needs
        assert engines["node-based"].ghost_counts().min() >= engines["p2p"].ghost_counts().min()


# ---------------------------------------------------------------------------
# Migration edge cases (exact faces, periodic crossings, deep ghost shells)
# ---------------------------------------------------------------------------


def _gas_engine(box_length, rank_dims, cutoff, positions, velocities, neighbor_skin=1.0):
    box = Box.cubic(box_length)
    atoms = Atoms.from_symbols(np.asarray(positions, dtype=np.float64), ["Cu"] * len(positions))
    atoms.velocities = np.asarray(velocities, dtype=np.float64)
    return DomainDecomposedSimulation(
        atoms, box, LennardJones(0.01, 2.3, cutoff), timestep_fs=1.0,
        rank_dims=rank_dims, neighbor_skin=neighbor_skin, neighbor_every=1,
    )


class TestMigrationEdgeCases:
    def _assert_unique_ownership(self, engine):
        owned = np.concatenate([domain.gids for domain in engine.domains])
        assert len(owned) == engine.n_global, "an atom was lost or duplicated"
        np.testing.assert_array_equal(np.sort(owned), np.arange(engine.n_global))
        for domain in engine.domains:
            # a rank never holds an owned atom as its own ghost
            assert not np.intersect1d(domain.gids, domain.ghost_gids).size

    @pytest.mark.parametrize(
        "rank_dims, box_length, cutoff, expected_layers",
        [((4, 1, 1), 24.0, 7.0, (2, 1, 1)), ((6, 1, 1), 24.0, 9.0, (3, 1, 1))],
        ids=["two-layer", "three-layer"],
    )
    def test_face_atom_owned_exactly_once(self, rank_dims, box_length, cutoff, expected_layers):
        rng = np.random.default_rng(3)
        positions = rng.uniform(0.0, box_length, size=(40, 3))
        # park atoms exactly on internal sub-box faces and on the box edge
        sub = box_length / rank_dims[0]
        positions[0] = [sub, 5.0, 5.0]
        positions[1] = [2.0 * sub, 9.0, 9.0]
        positions[2] = [0.0, 12.0, 3.0]
        positions[3] = [box_length, 7.0, 7.0]  # wraps onto the x=0 face
        velocities = rng.normal(scale=5.0e-3, size=(40, 3))
        engine = _gas_engine(box_length, rank_dims, cutoff, positions, velocities)
        layers = layers_for_cutoff(engine.decomposition.sub_box_lengths, engine.exchange.cutoff)
        assert layers == expected_layers
        engine.compute_forces()
        self._assert_unique_ownership(engine)
        # the exact-face atoms land in the upper cell of their face
        assert engine._owner_of[0] == engine.decomposition.assign_to_ranks(positions[:1])[0]
        assert engine._owner_of[2] == 0
        assert engine._owner_of[3] == 0
        for _ in range(3):
            engine.run(1)
            self._assert_unique_ownership(engine)

    @pytest.mark.parametrize(
        "rank_dims, box_length, cutoff",
        [((4, 1, 1), 24.0, 7.0), ((6, 1, 1), 24.0, 9.0)],
        ids=["two-layer", "three-layer"],
    )
    def test_periodic_crossing_in_one_step(self, rank_dims, box_length, cutoff):
        rng = np.random.default_rng(4)
        positions = rng.uniform(0.5, box_length - 0.5, size=(30, 3))
        velocities = np.zeros((30, 3))
        # atom 0 charges through the periodic +x boundary in a single step
        positions[0] = [box_length - 0.05, 11.0, 11.0]
        velocities[0] = [0.2, 0.0, 0.0]
        # atom 1 crosses an interior face backwards
        sub = box_length / rank_dims[0]
        positions[1] = [sub + 0.05, 4.0, 4.0]
        velocities[1] = [-0.2, 0.0, 0.0]
        engine = _gas_engine(box_length, rank_dims, cutoff, positions, velocities)
        engine.compute_forces()
        first_owner = int(engine._owner_of[0])
        assert first_owner == engine.n_ranks - 1
        engine.run(1)  # neighbor_every=1: migration happens this step
        self._assert_unique_ownership(engine)
        assert int(engine._owner_of[0]) == 0, "periodic crossing must hand the atom to rank 0"
        assert int(engine._owner_of[1]) == 0
        assert engine.n_migrated >= 2
