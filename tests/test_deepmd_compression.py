"""Tabulated-compression fast path: batched vs golden tables, analytic
derivatives, the stale-cache and clamped-derivative regressions, convergence
with n_points, and the workspace out-buffer path."""

import numpy as np
import pytest

from repro.deepmd.compression import (
    TabulatedEmbeddingSet,
    analytic_input_jacobian,
)
from repro.deepmd.embedding import EmbeddingNetSet
from repro.md import Box, copper_system
from repro.md.atoms import Atoms
from repro.md.neighbor import build_neighbor_data
from repro.md.workspace import Workspace

GOLDEN_TOLERANCE = 1.0e-12


@pytest.fixture(scope="module")
def two_type_tables():
    """All four (centre, neighbour) tables of a two-species embedding set."""
    nets = EmbeddingNetSet(2, sizes=(6, 12), rng=3).export()
    return TabulatedEmbeddingSet(nets, s_max=2.0, n_points=256), nets


def _copper_case(model, rng=12):
    atoms, box = copper_system((3, 3, 3), perturbation=0.08, rng=rng)
    neighbors = build_neighbor_data(atoms.positions, box, model.config.cutoff)
    return atoms, box, neighbors


class TestBatchedVsGolden:
    def test_batched_matches_golden_per_key_path(self, two_type_tables):
        """The production stacked evaluator is pinned to the per-key golden
        reference at 1e-12, including clamped out-of-range inputs."""
        table, _ = two_type_tables
        rng = np.random.default_rng(0)
        s = rng.uniform(-0.3, 2.5, size=4096)  # includes both out-of-range ends
        for key, slot in table._slot_of.items():
            slots = np.full(s.shape, slot)
            batched_v, batched_d = table.evaluate_batched(slots, s)
            golden_v, golden_d = table.evaluate(key, s)
            np.testing.assert_allclose(batched_v, golden_v, rtol=0.0, atol=GOLDEN_TOLERANCE)
            np.testing.assert_allclose(batched_d, golden_d, rtol=0.0, atol=GOLDEN_TOLERANCE)

    def test_mixed_slots_in_one_call(self, two_type_tables):
        """One batched call over a random mixture of all four tables."""
        table, _ = two_type_tables
        rng = np.random.default_rng(1)
        s = rng.uniform(0.0, 2.0, size=(7, 33))
        keys = list(table._slot_of)
        choice = rng.integers(0, len(keys), size=s.shape)
        slots = np.array([table._slot_of[k] for k in keys])[choice]
        values, derivs = table.evaluate_batched(slots, s)
        assert values.shape == (*s.shape, table.width)
        for key, slot in table._slot_of.items():
            sel = slots == slot
            golden_v, golden_d = table.evaluate(key, s[sel])
            np.testing.assert_allclose(values[sel], golden_v, rtol=0.0, atol=GOLDEN_TOLERANCE)
            np.testing.assert_allclose(derivs[sel], golden_d, rtol=0.0, atol=GOLDEN_TOLERANCE)

    def test_out_buffers_match_returned_arrays(self, two_type_tables):
        table, _ = two_type_tables
        rng = np.random.default_rng(2)
        s = rng.uniform(0.0, 2.0, size=200)
        slots = np.zeros(200, dtype=np.int64)
        ref_v, ref_d = table.evaluate_batched(slots, s)
        out_v = np.empty((200, table.width))
        out_d = np.empty((200, table.width))
        ret_v, ret_d = table.evaluate_batched(slots, s, out_values=out_v, out_derivatives=out_d)
        assert ret_v is out_v and ret_d is out_d
        np.testing.assert_array_equal(out_v, ref_v)
        np.testing.assert_array_equal(out_d, ref_d)
        with pytest.raises(ValueError):
            table.evaluate_batched(slots, s, out_values=out_v)  # buffers come in pairs

    def test_slot_index_padding_and_unknown_types(self, two_type_tables):
        table, _ = two_type_tables
        types = np.array([[0, 1, -1], [1, -1, -1]])
        slots = table.slot_index(0, types)
        assert slots.shape == types.shape
        assert slots[0, 0] == table._slot_of[(0, 0)]
        assert slots[0, 1] == table._slot_of[(0, 1)]
        np.testing.assert_array_equal(slots[types < 0], 0)  # padding maps to slot 0
        with pytest.raises(KeyError):
            table.slot_index(0, np.array([5]))

    def test_model_compressed_evaluation_unchanged_by_batching(self, tiny_water_model):
        """The model-level compressed path (batched) agrees with evaluating
        the golden per-key tables through the same descriptor chain, i.e.
        with the uncompressed path at table accuracy."""
        from repro.md import water_system

        model = tiny_water_model
        atoms, box, _ = water_system(27, rng=5)
        neighbors = build_neighbor_data(atoms.positions, box, model.config.cutoff)
        exact = model.evaluate(atoms, box, neighbors)
        model.compressed_embeddings(n_points=4096)
        compressed = model.evaluate(atoms, box, neighbors, compressed=True)
        np.testing.assert_allclose(compressed.forces, exact.forces, rtol=0.0, atol=1e-8)
        assert compressed.energy == pytest.approx(exact.energy, abs=1e-8)


class TestAnalyticDerivatives:
    def test_jacobian_matches_finite_differences(self):
        nets = EmbeddingNetSet(1, sizes=(4, 8), rng=7).export()
        net = nets[(0, 0)]
        s = np.linspace(0.1, 1.9, 23)
        _, jacobian = analytic_input_jacobian(net, s)
        step = 1.0e-6
        plus = net.forward((s + step)[:, None], cache=False)
        minus = net.forward((s - step)[:, None], cache=False)
        np.testing.assert_allclose(jacobian, (plus - minus) / (2 * step), atol=1e-7)

    def test_first_node_derivative_is_one_sided_exact(self):
        """The node-0 derivative is the analytic dG/ds at s=0 — the builder
        never evaluates the net at s < 0 (the old centered difference did)."""
        nets = EmbeddingNetSet(1, sizes=(4, 8), rng=8).export()
        net = nets[(0, 0)]
        table = TabulatedEmbeddingSet(nets, s_max=1.0, n_points=64)
        step = 1.0e-6  # one-sided second-order difference, s >= 0 only
        f0 = net.forward(np.array([[0.0]]), cache=False)[0]
        f1 = net.forward(np.array([[step]]), cache=False)[0]
        f2 = net.forward(np.array([[2 * step]]), cache=False)[0]
        one_sided = (-3.0 * f0 + 4.0 * f1 - f2) / (2 * step)
        np.testing.assert_allclose(table.tables[(0, 0)].derivatives[0], one_sided, atol=1e-6)

    def test_table_nodes_are_exact(self):
        """Analytic build makes the table exact at every grid node."""
        nets = EmbeddingNetSet(1, sizes=(4, 8), rng=9).export()
        table = TabulatedEmbeddingSet(nets, s_max=1.5, n_points=32)
        grid = table.tables[(0, 0)].grid
        values, _ = table.evaluate((0, 0), grid)
        exact = nets[(0, 0)].forward(grid[:, None], cache=False)
        np.testing.assert_allclose(values, exact, rtol=0.0, atol=1e-13)


class TestClampedDerivative:
    def test_derivative_is_zero_outside_range(self, two_type_tables):
        """Constant extrapolation outside [0, s_max] means dG/ds = 0 there;
        returning the end-node derivative made forces inconsistent."""
        table, _ = two_type_tables
        s = np.array([-0.5, -1.0e-9, 0.0, 2.0, 2.0 + 1.0e-9, 5.0])
        values, derivs = table.evaluate((0, 0), s)
        end_lo, _ = table.evaluate((0, 0), np.array([0.0]))
        end_hi, _ = table.evaluate((0, 0), np.array([2.0]))
        np.testing.assert_array_equal(values[0], end_lo[0])
        np.testing.assert_array_equal(values[1], end_lo[0])
        np.testing.assert_array_equal(values[4], end_hi[0])
        np.testing.assert_array_equal(values[5], end_hi[0])
        np.testing.assert_array_equal(derivs[[0, 1, 4, 5]], 0.0)
        assert np.any(derivs[2] != 0.0) and np.any(derivs[3] != 0.0)
        batched_v, batched_d = table.evaluate_batched(np.zeros(len(s), dtype=int), s)
        np.testing.assert_allclose(batched_v, values, rtol=0.0, atol=GOLDEN_TOLERANCE)
        np.testing.assert_allclose(batched_d, derivs, rtol=0.0, atol=GOLDEN_TOLERANCE)

    def test_close_approach_forces_consistent_with_energy(self, tiny_copper_model):
        """A dimer inside min_distance drives s beyond s_max: the compressed
        forces must still be the gradient of the compressed energy."""
        model = tiny_copper_model
        box = Box.cubic(30.0)
        positions = np.array([[15.0, 15.0, 15.0], [15.4, 15.0, 15.0]])
        atoms = Atoms.from_symbols(positions, ["Cu", "Cu"])
        neighbors = build_neighbor_data(atoms.positions, box, model.config.cutoff)
        table = model.compressed_embeddings()  # s_max = 2, while s(0.4 A) = 2.5
        assert 1.0 / 0.4 > table.s_max
        output = model.evaluate(atoms, box, neighbors, compressed=True)
        delta = 1.0e-6
        energies = []
        for sign in (+1, -1):
            trial = atoms.copy()
            trial.positions[0, 0] += sign * delta
            nd = build_neighbor_data(trial.positions, box, model.config.cutoff)
            energies.append(model.evaluate(trial, box, nd, compressed=True).energy)
        numeric = -(energies[0] - energies[1]) / (2 * delta)
        assert output.forces[0, 0] == pytest.approx(numeric, abs=1e-6)


class TestStaleCacheRegression:
    def test_cache_rekeys_on_parameters(self, tiny_copper_model):
        """A second call with different n_points/min_distance must not return
        the stale first table."""
        model = tiny_copper_model
        first = model.compressed_embeddings(n_points=64)
        assert first.n_points == 64
        second = model.compressed_embeddings(n_points=128)
        assert second.n_points == 128
        assert second is not first
        third = model.compressed_embeddings(n_points=128, min_distance=0.25)
        assert third.s_max == pytest.approx(4.0)
        assert third is not second
        # unchanged parameters hit the cache
        assert model.compressed_embeddings(n_points=128, min_distance=0.25) is third

    def test_invalidate_kernels_drops_table_and_key(self, tiny_copper_model):
        model = tiny_copper_model
        model.compressed_embeddings(n_points=64)
        model.invalidate_kernels()
        assert model._compressed is None and model._compressed_key is None
        rebuilt = model.compressed_embeddings(n_points=64)
        assert rebuilt.n_points == 64

    def test_evaluate_uses_the_active_table(self, tiny_copper_model):
        """evaluate(compressed=True) honours a pre-built custom table instead
        of silently rebuilding the default grid."""
        model = tiny_copper_model
        model.compressed_embeddings(n_points=96)
        assert model.active_compressed_embeddings().n_points == 96
        atoms, box, neighbors = _copper_case(model)
        model.evaluate(atoms, box, neighbors, compressed=True)
        assert model._compressed.n_points == 96  # still the custom table

    def test_pair_style_grid_is_authoritative_at_compute_time(self, tiny_copper_model):
        """A compressed pair style owns its table by reference: another
        consumer rebuilding the shared model's cache slot must not swap the
        grid under a running force field."""
        from repro.deepmd import DeepPotentialForceField

        model = tiny_copper_model
        atoms, box, neighbors = _copper_case(model)
        ff = DeepPotentialForceField(model, compressed=True, compression_points=256)
        reference = ff.compute(atoms, box, neighbors)
        model.compressed_embeddings(n_points=16)  # someone else's coarse grid
        swapped = ff.compute(atoms, box, neighbors)
        assert ff._compression_table().n_points == 256
        np.testing.assert_array_equal(swapped.forces, reference.forces)

    def test_two_pair_styles_with_different_grids_do_not_thrash(self, tiny_copper_model):
        """Alternating computes from pair styles with different grids must
        not rebuild the tables every step (each holds its own reference)."""
        from repro.deepmd import DeepPotentialForceField

        model = tiny_copper_model
        atoms, box, neighbors = _copper_case(model)
        fine = DeepPotentialForceField(model, compressed=True, compression_points=256)
        coarse = DeepPotentialForceField(model, compressed=True, compression_points=32)
        fine_table, coarse_table = fine._table, coarse._table
        for _ in range(3):
            fine.compute(atoms, box, neighbors)
            coarse.compute(atoms, box, neighbors)
        assert fine._table is fine_table and coarse._table is coarse_table

    def test_pair_style_table_refreshes_after_invalidate_kernels(self, tiny_copper_model):
        """invalidate_kernels (the trainer updated weights) must propagate to
        the pair style's held table on the next compute."""
        from repro.deepmd import DeepPotentialForceField

        model = tiny_copper_model
        atoms, box, neighbors = _copper_case(model)
        ff = DeepPotentialForceField(model, compressed=True, compression_points=64)
        stale = ff._table
        model.invalidate_kernels()
        ff.compute(atoms, box, neighbors)
        assert ff._table is not stale
        assert ff._table.n_points == 64


class TestCompressionQuality:
    def test_interpolation_errors_reports_both(self, two_type_tables):
        table, nets = two_type_tables
        errors = table.interpolation_errors((0, 0), nets[(0, 0)], rng=0)
        assert errors.value > 0.0 and errors.derivative > 0.0
        assert errors.value < 1e-4 and errors.derivative < 1e-2
        # the scalar helper still reports the value error
        assert table.max_interpolation_error((0, 0), nets[(0, 0)], rng=0) == errors.value

    def test_table_errors_decrease_monotonically_with_n_points(self):
        nets = EmbeddingNetSet(1, sizes=(6, 12), rng=11).export()
        value_errors, deriv_errors = [], []
        for n_points in (32, 128, 512):
            table = TabulatedEmbeddingSet(nets, s_max=2.0, n_points=n_points)
            errors = table.interpolation_errors((0, 0), nets[(0, 0)], rng=1)
            value_errors.append(errors.value)
            deriv_errors.append(errors.derivative)
        assert value_errors[0] > value_errors[1] > value_errors[2]
        assert deriv_errors[0] > deriv_errors[1] > deriv_errors[2]

    def test_force_error_converges_to_exact_path(self, tiny_copper_model):
        """n_points sweep: the max force error vs the exact path shrinks
        monotonically toward zero (h^4 Hermite convergence)."""
        model = tiny_copper_model
        atoms, box, neighbors = _copper_case(model, rng=14)
        exact = model.evaluate(atoms, box, neighbors)
        errors = []
        for n_points in (32, 128, 512, 2048):
            model.compressed_embeddings(n_points=n_points)
            compressed = model.evaluate(atoms, box, neighbors, compressed=True)
            errors.append(float(np.max(np.abs(compressed.forces - exact.forces))))
        assert errors[0] > errors[1] > errors[2] > errors[3]
        assert errors[-1] < 1e-9


class TestWorkspacePath:
    def test_workspace_compressed_evaluation_matches_allocating(self, tiny_water_model):
        from repro.md import water_system

        model = tiny_water_model
        atoms, box, _ = water_system(27, rng=6)
        neighbors = build_neighbor_data(atoms.positions, box, model.config.cutoff)
        model.compressed_embeddings()
        reference = model.evaluate(atoms, box, neighbors, compressed=True)
        workspace = Workspace()
        pooled = model.evaluate(atoms, box, neighbors, compressed=True, workspace=workspace)
        np.testing.assert_allclose(pooled.forces, reference.forces, rtol=0.0, atol=1e-12)
        np.testing.assert_allclose(
            pooled.per_atom_energy, reference.per_atom_energy, rtol=0.0, atol=1e-12
        )
        assert pooled.energy == pytest.approx(reference.energy, abs=1e-12)

    def test_workspace_buffers_are_reused_across_calls(self, tiny_water_model):
        from repro.md import water_system

        model = tiny_water_model
        atoms, box, _ = water_system(27, rng=6)
        neighbors = build_neighbor_data(atoms.positions, box, model.config.cutoff)
        model.compressed_embeddings()
        workspace = Workspace()
        model.evaluate(atoms, box, neighbors, compressed=True, workspace=workspace)
        misses = workspace.misses
        for _ in range(3):
            model.evaluate(atoms, box, neighbors, compressed=True, workspace=workspace)
        assert workspace.misses == misses, "steady-state evaluation must not reallocate"
        assert workspace.hits > 0
