"""Utilities: RNG helpers, timers, tables."""

import time

import numpy as np
import pytest

from repro.utils.rng import default_rng, random_unit_vectors, spawn_rngs
from repro.utils.tables import Table, format_table
from repro.utils.timer import PhaseTimer, Timer


def test_default_rng_passthrough():
    rng = np.random.default_rng(0)
    assert default_rng(rng) is rng


def test_default_rng_seed_reproducible():
    a = default_rng(42).random(5)
    b = default_rng(42).random(5)
    np.testing.assert_allclose(a, b)


def test_spawn_rngs_independent_streams():
    streams = spawn_rngs(7, 3)
    values = [s.random(4) for s in streams]
    assert not np.allclose(values[0], values[1])
    assert not np.allclose(values[1], values[2])


def test_spawn_rngs_negative_count_rejected():
    with pytest.raises(ValueError):
        spawn_rngs(0, -1)


def test_spawn_rngs_from_generator_is_deterministic():
    """The regression: seeding with a Generator used to fall through to
    ``SeedSequence(generator)``'s OS-entropy path, so two identically seeded
    parents spawned *different* children on every call."""
    values_a = [rng.random(3) for rng in spawn_rngs(np.random.default_rng(42), 3)]
    values_b = [rng.random(3) for rng in spawn_rngs(np.random.default_rng(42), 3)]
    for a, b in zip(values_a, values_b):
        np.testing.assert_array_equal(a, b)


def test_spawn_rngs_from_generator_consumes_parent_state():
    """Spawning draws from the parent, so successive spawns differ (the
    children stay independent streams, not copies)."""
    parent = np.random.default_rng(42)
    first = spawn_rngs(parent, 1)[0].random(3)
    second = spawn_rngs(parent, 1)[0].random(3)
    assert not np.allclose(first, second)


def test_random_unit_vectors_are_normalized():
    vectors = random_unit_vectors(default_rng(1), 100)
    norms = np.linalg.norm(vectors, axis=1)
    np.testing.assert_allclose(norms, 1.0, atol=1e-12)


def test_timer_accumulates():
    timer = Timer()
    with timer:
        time.sleep(0.01)
    assert timer.elapsed > 0.005


def test_timer_stop_without_start_raises():
    with pytest.raises(RuntimeError):
        Timer().stop()


def test_phase_timer_fractions_sum_to_one():
    timers = PhaseTimer()
    timers.add("pair", 3.0)
    timers.add("comm", 1.0)
    assert timers.total() == pytest.approx(4.0)
    assert timers.fraction("pair") == pytest.approx(0.75)
    assert "pair" in timers.summary()


def test_phase_timer_merge():
    a = PhaseTimer()
    a.add("pair", 1.0)
    b = PhaseTimer()
    b.add("pair", 2.0)
    b.add("comm", 1.0)
    merged = a.merge(b)
    assert merged.totals["pair"] == pytest.approx(3.0)
    assert merged.totals["comm"] == pytest.approx(1.0)


def test_table_roundtrip_and_column():
    table = Table(headers=["a", "b"], title="t")
    table.add_row(1, 2.5)
    table.add_row(3, 4.5)
    assert len(table) == 2
    assert table.column("b") == [2.5, 4.5]
    text = table.to_text()
    assert "a" in text and "4.5" in text
    records = table.to_records()
    assert records[0] == {"a": 1, "b": 2.5}


def test_table_row_length_validation():
    table = Table(headers=["a", "b"])
    with pytest.raises(ValueError):
        table.add_row(1)
    with pytest.raises(KeyError):
        table.column("missing")


def test_format_table_mismatched_row_raises():
    with pytest.raises(ValueError):
        format_table(["x"], [[1, 2]])
