"""Performance model, engine and the paper-level experiment claims."""

import numpy as np
import pytest

from repro.analysis import energy_error_per_atom, force_max_error, force_rmse, sdmr_percent
from repro.analysis.errors import precision_error_table
from repro.core import (
    DeepMDEngine,
    FIG9_STAGES,
    OptimizationConfig,
    baseline_config,
    copper_spec,
    optimized_config,
    water_spec,
)
from repro.core.config import fig9_stage_configs
from repro.core.experiments import (
    FIG11_NODE_COUNTS,
    communication_reduction,
    computation_speedup,
    dispersion_reduction,
    end_to_end_speedup,
    fig7_comm_schemes,
    fig8_memory_pool,
    fig9_computation,
    table1_packages,
    table3_loadbalance,
)
from repro.core.systems import get_system
from repro.parallel.schemes import ExchangeContext, build_scheme
from repro.parallel.topology import RankTopology
from repro.perfmodel import CommCostModel, KernelCostModel, StepTimeline, parallel_efficiency, scaling_table


class TestKernelCostModel:
    def test_flop_counts_scale_with_network_size(self):
        small = KernelCostModel(fitting_sizes=(120, 120, 120), neighbors_per_atom=64)
        large = KernelCostModel(fitting_sizes=(240, 240, 240), neighbors_per_atom=64)
        assert large.per_atom_flops().fitting_forward > small.per_atom_flops().fitting_forward
        assert small.per_atom_flops().total > 0

    def test_compression_removes_embedding_work(self):
        model = KernelCostModel(neighbors_per_atom=512)
        compressed = model.per_atom_flops(compressed=True)
        full = model.per_atom_flops(compressed=False)
        assert compressed.embedding_forward < full.embedding_forward

    def test_compressed_flops_reconciled_with_real_kernel(self):
        """The priced Hermite op counts are the real batched kernel's
        constants (repro.deepmd.compression), not an independent guess."""
        from repro.deepmd.compression import (
            EMBEDDING_GRAD_DOT_FLOPS_PER_COMPONENT,
            HERMITE_DERIVATIVE_FLOPS_PER_COMPONENT,
            HERMITE_DERIVATIVE_FLOPS_PER_NEIGHBOR,
            HERMITE_VALUE_FLOPS_PER_COMPONENT,
            HERMITE_VALUE_FLOPS_PER_NEIGHBOR,
        )

        model = KernelCostModel(neighbors_per_atom=512)
        flops = model.per_atom_flops(compressed=True)
        n, m = model.neighbors_per_atom, model.m_width
        assert flops.embedding_forward == pytest.approx(
            (HERMITE_VALUE_FLOPS_PER_COMPONENT * m + HERMITE_VALUE_FLOPS_PER_NEIGHBOR) * n
        )
        assert flops.embedding_backward == pytest.approx(
            (
                (HERMITE_DERIVATIVE_FLOPS_PER_COMPONENT + EMBEDDING_GRAD_DOT_FLOPS_PER_COMPONENT) * m
                + HERMITE_DERIVATIVE_FLOPS_PER_NEIGHBOR
            )
            * n
        )
        # the 4-term cubic Hermite combination: 4 multiplies + 3 adds
        assert HERMITE_VALUE_FLOPS_PER_COMPONENT == 7.0
        assert HERMITE_DERIVATIVE_FLOPS_PER_COMPONENT == 7.0

    def test_optimization_ladder_monotonic_per_atom_time(self):
        model = KernelCostModel(neighbors_per_atom=512)
        baseline = model.per_atom_time(1, backend="blas", precision="double", pretranspose=False, framework=True)
        rmtf = model.per_atom_time(1, backend="blas", precision="double", pretranspose=True, framework=False)
        fp32 = model.per_atom_time(1, backend="blas", precision="mix-fp32", pretranspose=True)
        sve32 = model.per_atom_time(1, backend="sve", precision="mix-fp32", pretranspose=True)
        fp16 = model.per_atom_time(1, backend="sve", precision="mix-fp16", pretranspose=True)
        assert baseline > rmtf > fp32 > sve32 > fp16 > 0

    def test_framework_adds_fixed_overhead(self):
        model = KernelCostModel(neighbors_per_atom=128)
        with_framework = model.rank_compute_time(12, framework=True)
        without = model.rank_compute_time(12, framework=False)
        assert with_framework - without > 3.5e-3  # the ~4 ms session cost

    def test_rank_compute_time_increases_with_atoms(self):
        model = KernelCostModel(neighbors_per_atom=128)
        t12 = model.rank_compute_time(12)
        t24 = model.rank_compute_time(24)
        assert t24 > t12
        with pytest.raises(ValueError):
            model.rank_compute_time(-1)
        with pytest.raises(ValueError):
            model.per_atom_time(0)

    def test_unbatched_inference_never_beats_batched(self):
        # atom-at-a-time inference degrades every fitting GEMM to M=1; with a
        # whole rank of atoms per thread the batched path must win, and with a
        # single atom per thread the two layouts coincide.
        model = KernelCostModel(neighbors_per_atom=128)
        batched = model.rank_compute_time(240, batched=True)
        unbatched = model.rank_compute_time(240, batched=False)
        assert unbatched > batched
        assert model.rank_compute_time(1, batched=False) == pytest.approx(
            model.rank_compute_time(1, batched=True)
        )


class TestCommCostModel:
    def _context(self, factors):
        topo = RankTopology((4, 6, 4))
        return ExchangeContext.from_subbox_factors(topo, 8.0, factors, copper_spec().atom_density)

    def test_fig7_qualitative_orderings(self):
        cost = CommCostModel()
        strong = self._context((0.5, 0.5, 0.5))
        times = {n: cost.exchange_time(build_scheme(n).plan(strong)) for n in ("baseline", "3stage-utofu", "p2p-utofu", "lb-1l", "lb-4l", "sg-lb-4l", "ref-4l")}
        # baseline (MPI 3-stage) is the slowest in the strong-scaling regime
        assert all(times["baseline"] > t for name, t in times.items() if name != "baseline")
        # the node-based scheme with 4 leaders beats both rank-level patterns
        assert times["lb-4l"] < times["3stage-utofu"]
        assert times["lb-4l"] < times["p2p-utofu"]
        # fewer leaders / single-thread communication are slower
        assert times["lb-1l"] > times["lb-4l"]
        assert times["sg-lb-4l"] > times["lb-4l"]
        # the original atomic organization performs about the same (+-15 %)
        assert times["ref-4l"] == pytest.approx(times["lb-4l"], rel=0.15)

    def test_node_scheme_loses_at_large_subboxes(self):
        cost = CommCostModel()
        weak = self._context((1, 1, 1))
        node = cost.exchange_time(build_scheme("lb-4l").plan(weak))
        p2p = cost.exchange_time(build_scheme("p2p-utofu").plan(weak))
        assert node > p2p  # the paper's [1,1,1] r_cut observation

    def test_breakdown_components_nonnegative(self):
        cost = CommCostModel()
        plan = build_scheme("lb-4l").plan(self._context((0.5, 0.5, 1)))
        breakdown = cost.evaluate(plan)
        for value in breakdown.as_dict().values():
            assert value >= 0.0
        assert breakdown.total == pytest.approx(breakdown.forward + breakdown.reverse)


class TestTimelineAndScaling:
    def test_timeline_ns_day_and_speedup(self):
        a = StepTimeline(timestep_fs=1.0)
        a.add("pair", 1e-3)
        b = StepTimeline(timestep_fs=1.0)
        b.add("pair", 2e-3)
        assert a.ns_day == pytest.approx(86.4)
        assert a.speedup_over(b) == pytest.approx(2.0)
        assert a.fraction("pair") == 1.0
        assert "ns/day" in a.summary()
        with pytest.raises(ValueError):
            a.add("comm", -1.0)

    def test_parallel_efficiency_definition(self):
        eff = parallel_efficiency([10.0, 40.0], [100, 800])
        assert eff[0] == pytest.approx(1.0)
        assert eff[1] == pytest.approx(0.5)
        with pytest.raises(ValueError):
            parallel_efficiency([1.0], [1, 2])
        table = scaling_table([100, 800], [10.0, 40.0], "copper", baseline_ns_day=5.0)
        assert len(table) == 2
        assert table.column("speedup vs baseline")[1] == pytest.approx(8.0)


class TestConfigs:
    def test_stage_ladder_names(self):
        assert FIG9_STAGES == ["baseline", "rmtf-fp64", "blas-fp32", "sve-fp32", "sve-fp16", "comm_nolb", "comm_lb"]
        stages = fig9_stage_configs()
        assert stages[0].use_framework and not stages[1].use_framework
        assert stages[-1].load_balance and not stages[-2].load_balance

    def test_config_validation_and_derive(self):
        with pytest.raises(ValueError):
            OptimizationConfig(name="x", precision="fp8")
        with pytest.raises(ValueError):
            OptimizationConfig(name="x", gemm_backend="tpu")
        derived = optimized_config().derive("alt", precision="double")
        assert derived.precision == "double"
        assert optimized_config().comm_scheme == "lb-4l"
        assert baseline_config().comm_scheme == "baseline"


class TestSystems:
    def test_copper_and_water_specs(self):
        copper = copper_spec()
        water = water_spec()
        assert copper.cutoff == 8.0 and water.cutoff == 6.0
        assert copper.timestep_fs == 1.0 and water.timestep_fs == 0.5
        assert copper.neighbors_per_atom == 512
        # densities: copper ~0.0847 atoms/A^3, water ~0.1 atoms/A^3
        assert copper.atom_density == pytest.approx(0.0847, abs=0.001)
        assert water.atom_density == pytest.approx(0.10, abs=0.01)
        with pytest.raises(KeyError):
            get_system("helium")

    def test_build_positions_counts_and_density(self):
        spec = copper_spec()
        positions, box = spec.build_positions(5000, rng=0)
        assert abs(len(positions) - 5000) / 5000 < 0.1
        assert len(positions) / box.volume == pytest.approx(spec.atom_density, rel=0.05)
        wspec = water_spec()
        wpos, wbox = wspec.build_positions(3000, rng=1)
        assert len(wpos) % 3 == 0
        assert len(wpos) / wbox.volume == pytest.approx(wspec.atom_density, rel=0.05)


class TestEngineAndExperiments:
    def test_step_report_structure(self):
        engine = DeepMDEngine(copper_spec())
        report = engine.step_report(optimized_config(), n_nodes=96, atoms_per_core=1)
        assert report.n_nodes == 96
        assert report.ns_day > 0
        assert {"pair", "comm"} <= set(report.timeline.phases)
        assert report.rank_count_stats["max"] >= report.rank_count_stats["avg"]

    def test_optimization_ladder_is_monotonic(self):
        engine = DeepMDEngine(copper_spec())
        reports = engine.optimization_ladder(fig9_stage_configs(), n_nodes=96, atoms_per_core=1)
        ns_day = [r.ns_day for r in reports]
        assert all(b >= a * 0.999 for a, b in zip(ns_day, ns_day[1:]))
        # overall speedup of the full ladder is large (paper: >10x at 1-2 atoms/core)
        assert ns_day[-1] / ns_day[0] > 8.0

    def test_fig11_strong_scaling_monotonic_and_efficiency_band(self):
        engine = DeepMDEngine(copper_spec())
        reports = engine.strong_scaling(optimized_config(), FIG11_NODE_COUNTS, n_atoms=540_000)
        ns_day = [r.ns_day for r in reports]
        assert all(b >= a * 0.995 for a, b in zip(ns_day, ns_day[1:]))
        eff = parallel_efficiency(ns_day, FIG11_NODE_COUNTS)
        assert 0.3 < eff[-1] < 1.0
        # the optimized code exceeds 100 ns/day for copper at 12,000 nodes
        assert ns_day[-1] > 100.0

    def test_headline_claims_directions(self):
        # 81 % communication reduction claim: ours should remove well over half
        assert communication_reduction() > 0.55
        # 14.11x computation claim: ours should be > 5x
        assert computation_speedup() > 5.0
        # 79.7 % dispersion reduction claim: ours should be > 40 % for copper
        assert dispersion_reduction("copper") > 0.4
        # 31.7x end-to-end claim: ours should be > 8x at full scale
        assert end_to_end_speedup() > 8.0

    def test_fig7_table_contents(self):
        table = fig7_comm_schemes(cutoffs=(8.0,), subbox_factors=((0.5, 0.5, 0.5),))
        assert len(table) == 8  # one row per scheme
        relative = dict(zip(table.column("scheme"), table.column("relative to baseline")))
        assert relative["baseline"] == pytest.approx(1.0)
        assert relative["lb-4l"] < 0.5

    def test_fig8_memory_pool_table(self):
        table = fig8_memory_pool(neighbor_counts=(26, 124), iterations=1000)
        records = table.to_records()
        pooled = {r["neighbors"]: r["time [s]"] for r in records if r["buffers"] == "buf_pool"}
        unpooled = {r["neighbors"]: r["time [s]"] for r in records if r["buffers"] == "no_buf_pool"}
        # pooling does not matter at 26 neighbours, but wins clearly at 124
        assert unpooled[26] == pytest.approx(pooled[26], rel=0.05)
        assert unpooled[124] > 1.3 * pooled[124]

    def test_fig9_and_table1_shapes(self):
        table = fig9_computation(systems=("copper",), atoms_per_core=(1,))
        assert len(table) == len(FIG9_STAGES)
        speedups = table.column("speedup vs baseline")
        assert speedups[0] == pytest.approx(1.0)
        assert speedups[-1] > speedups[1] > 1.0

        t1 = table1_packages(n_nodes=12_000)
        rows = t1.to_records()
        ours = [r for r in rows if "This work" in str(r["Work"])]
        assert len(ours) == 2
        assert all(r["ns/day"] > 20 for r in ours)

    def test_table3_loadbalance_sdmr_reduction(self):
        table = table3_loadbalance(system_name="water", atoms_per_core=(1,), n_nodes=96)
        records = table.to_records()
        natom = {r["lb"]: r for r in records if r["metric"] == "natom"}
        assert natom["yes"]["SDMR%"] < natom["no"]["SDMR%"]
        assert natom["yes"]["max"] <= natom["no"]["max"]


class TestAnalysis:
    def test_error_metrics(self):
        assert energy_error_per_atom(-10.0, -10.5, 10) == pytest.approx(0.05)
        forces_a = np.zeros((4, 3))
        forces_b = np.full((4, 3), 0.1)
        assert force_rmse(forces_a, forces_b) == pytest.approx(0.1)
        assert force_max_error(forces_a, forces_b) == pytest.approx(0.1)
        with pytest.raises(ValueError):
            force_rmse(np.zeros((2, 3)), np.zeros((3, 3)))
        with pytest.raises(ValueError):
            energy_error_per_atom(1.0, 1.0, 0)

    def test_sdmr_and_table(self):
        assert sdmr_percent([5, 5, 5]) == 0.0
        assert sdmr_percent([]) == 0.0
        assert sdmr_percent([1, 3]) > 0.0
        table = precision_error_table({"Double": {"energy": 1e-3, "force": 4e-2}})
        assert "Double" in table.to_text()
