"""Topology, decomposition, ghost geometry, schemes, load balance, simulated exchange."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.systems import copper_spec
from repro.md import Box, copper_system
from repro.parallel import (
    GhostExchange,
    GhostExchangeSimulator,
    IntraNodeLoadBalancer,
    RankTopology,
    RdmaBufferManager,
    SpatialDecomposition,
    ThreadingModel,
    build_scheme,
    ghost_count_load_balanced,
    ghost_count_original,
    layers_for_cutoff,
    resolve_delivery_scheme,
)
from repro.parallel.ghost import ghost_overhead_ratio, ghost_shell_ranks, neighbor_count, overlap_volume
from repro.parallel.loadbalance import PAIR_TIME_NOISE_FLOOR, pair_time_model
from repro.parallel.schemes import SCHEME_NAMES, ExchangeContext


class TestTopology:
    def test_paper_topology_sizes(self):
        topo = RankTopology.for_nodes(96)
        assert topo.n_nodes == 96
        assert topo.ranks_per_node == 4
        assert topo.n_ranks == 384
        assert topo.n_cores == 4608
        topo12k = RankTopology.for_nodes(12000)
        assert topo12k.n_nodes == 12000
        assert topo12k.n_cores == 576_000  # the paper's 576K cores

    def test_unknown_node_count_raises(self):
        with pytest.raises(KeyError):
            RankTopology.for_nodes(1000)

    def test_rank_coordinate_roundtrip_and_node_mapping(self):
        topo = RankTopology((2, 3, 2))
        for rank in range(topo.n_ranks):
            coord = topo.rank_coord(rank)
            assert topo.rank_index(coord) == rank
        # ranks of a node are distinct and map back to that node
        for node in ((0, 0, 0), (1, 2, 1)):
            ranks = topo.ranks_on_node(node)
            assert len(ranks) == 4
            assert len(set(ranks)) == 4
            for rank in ranks:
                assert topo.node_of_rank(rank) == node

    def test_numa_assignment_covers_all_domains(self):
        topo = RankTopology((2, 2, 2))
        numas = {topo.numa_of_rank(r) for r in topo.ranks_on_node((0, 0, 0))}
        assert numas == {0, 1, 2, 3}

    def test_validation(self):
        with pytest.raises(ValueError):
            RankTopology((0, 1, 1))
        with pytest.raises(ValueError):
            RankTopology((1, 1, 1), threads_per_rank=0)


class TestDecomposition:
    def test_counts_sum_to_total(self):
        atoms, box = copper_system((6, 6, 6), perturbation=0.05, rng=0)
        topo = RankTopology((2, 2, 2))
        decomposition = SpatialDecomposition(box, topo)
        stats = decomposition.rank_counts(atoms.positions)
        assert stats.total == len(atoms)
        node_stats = decomposition.node_counts(atoms.positions)
        assert node_stats.total == len(atoms)

    def test_rank_bounds_partition_box(self):
        box = Box.cubic(16.0)
        topo = RankTopology((2, 2, 2))
        decomposition = SpatialDecomposition(box, topo)
        lower, upper = decomposition.rank_bounds(0)
        np.testing.assert_allclose(lower, 0.0)
        np.testing.assert_allclose(upper, box.lengths / np.array(topo.rank_dims))

    def test_sdmr_zero_for_equal_counts(self):
        from repro.parallel.decomposition import DecompositionStats

        stats = DecompositionStats(np.full(10, 7))
        assert stats.sdmr_percent == 0.0
        assert stats.summary()["max"] == 7

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 500))
    def test_property_every_atom_assigned_to_exactly_one_rank(self, seed):
        rng = np.random.default_rng(seed)
        box = Box.cubic(12.0)
        positions = rng.uniform(0, 12.0, size=(200, 3))
        decomposition = SpatialDecomposition(box, RankTopology((2, 2, 2)))
        ranks = decomposition.assign_to_ranks(positions)
        assert np.all((ranks >= 0) & (ranks < decomposition.topology.n_ranks))
        assert decomposition.rank_counts(positions).total == 200


class TestGhostGeometry:
    def test_layers_for_cutoff(self):
        assert layers_for_cutoff([8.0, 8.0, 8.0], 8.0) == (1, 1, 1)
        assert layers_for_cutoff([4.0, 4.0, 8.0], 8.0) == (2, 2, 1)
        assert layers_for_cutoff([4.0, 4.0, 4.0], 8.0) == (2, 2, 2)

    def test_neighbor_counts_match_paper(self):
        assert neighbor_count((1, 1, 1)) == 26
        assert neighbor_count((2, 2, 1)) == 74
        assert neighbor_count((2, 2, 2)) == 124

    def test_ghost_shell_ranks_dedup_on_small_grid(self):
        shell = ghost_shell_ranks((0, 0, 0), (3, 3, 3), (1, 1, 1))
        assert len(shell) == 26
        aliased = ghost_shell_ranks((0, 0, 0), (2, 2, 2), (1, 1, 1))
        assert len(aliased) == 7  # 2x2x2 torus: only 7 other nodes exist

    def test_overlap_volume_face_edge_corner(self):
        sub = [8.0, 8.0, 8.0]
        face = overlap_volume((1, 0, 0), sub, 8.0)
        edge = overlap_volume((1, 1, 0), sub, 8.0)
        corner = overlap_volume((1, 1, 1), sub, 8.0)
        assert face == pytest.approx(8.0 * 8.0 * 8.0)
        assert edge == pytest.approx(8.0 * 8.0 * 8.0)
        assert corner == pytest.approx(8.0 ** 3)
        # second-layer neighbour only contributes the remaining sliver
        assert overlap_volume((2, 0, 0), [4.0, 4.0, 4.0], 6.0) == pytest.approx(2.0 * 4.0 * 4.0)

    def test_ghost_count_equations_and_ratio(self):
        # the paper's example: a = 0.5 r gives ~1.44x more ghosts with load balance
        ratio = ghost_overhead_ratio(0.5, 1.0)
        assert ratio == pytest.approx(1.44, abs=0.05)
        assert ghost_count_load_balanced(1.0, 1.0) > ghost_count_original(1.0, 1.0)
        with pytest.raises(ValueError):
            ghost_count_original(-1.0, 1.0)


class TestSchemes:
    def _context(self, factors, cutoff=8.0):
        topo = RankTopology((4, 6, 4))
        return ExchangeContext.from_subbox_factors(topo, cutoff, factors, copper_spec().atom_density)

    def test_paper_neighbor_counts(self):
        ctx = self._context((0.5, 0.5, 0.5))
        p2p = build_scheme("p2p-utofu").plan(ctx)
        node = build_scheme("lb-4l").plan(ctx)
        assert p2p.notes["n_neighbors"] == 124
        assert node.notes["n_neighbor_nodes"] == 44
        assert node.notes["messages_per_rank"] == pytest.approx(11.0)
        ctx_1l = self._context((1, 1, 1))
        assert build_scheme("p2p-utofu").plan(ctx_1l).notes["n_neighbors"] == 26
        assert build_scheme("lb-4l").plan(ctx_1l).notes["n_neighbor_nodes"] == 26

    def test_three_stage_rounds_match_layers(self):
        ctx = self._context((0.5, 0.5, 1))
        plan = build_scheme("baseline").plan(ctx)
        # layers (2,2,1): 5 sequential rounds with 2 messages each
        assert len(plan.rounds) == 5
        assert all(r.n_messages == 2 for r in plan.rounds)
        assert not plan.use_rdma
        assert plan.ranks_sharing_network == 4

    def test_node_scheme_properties(self):
        ctx = self._context((0.5, 0.5, 0.5))
        plan = build_scheme("lb-4l").plan(ctx)
        assert plan.use_rdma
        assert plan.ranks_sharing_network == 1
        assert plan.n_intra_node_syncs == 2
        assert plan.registered_regions is None  # memory pool
        assert len(plan.gather_bytes_per_rank) == 4
        assert plan.total_message_bytes > 0

    def test_all_scheme_names_buildable(self):
        ctx = self._context((1, 1, 1))
        for name in SCHEME_NAMES:
            plan = build_scheme(name).plan(ctx)
            assert plan.scheme == name
        with pytest.raises(KeyError):
            build_scheme("telepathy")

    def test_leader_variants_differ_in_threads(self):
        ctx = self._context((0.5, 0.5, 0.5))
        lb1 = build_scheme("lb-1l").plan(ctx)
        lb4 = build_scheme("lb-4l").plan(ctx)
        sg = build_scheme("sg-lb-4l").plan(ctx)
        assert lb1.copy_threads < lb4.copy_threads
        assert sg.rounds[0].threads == 4
        assert lb4.rounds[0].threads == 24


class TestLoadBalance:
    def _setup(self, atoms_per_core=1):
        spec = copper_spec()
        topo = RankTopology((4, 6, 4))
        n_atoms = int(topo.n_cores * atoms_per_core)
        positions, box = spec.build_positions(n_atoms, rng=0)
        decomposition = SpatialDecomposition(box, topo)
        return positions, IntraNodeLoadBalancer(decomposition)

    def test_atom_conservation(self):
        positions, balancer = self._setup()
        without = balancer.rank_counts_without_balance(positions)
        with_lb = balancer.rank_counts_with_balance(positions)
        assert without.sum() == len(positions)
        assert with_lb.sum() == len(positions)

    def test_balance_reduces_dispersion_and_maximum(self):
        positions, balancer = self._setup()
        without = balancer.rank_counts_without_balance(positions)
        with_lb = balancer.rank_counts_with_balance(positions)
        assert with_lb.max() <= without.max()
        assert with_lb.std() < without.std()
        assert balancer.dispersion_reduction(positions) > 0.2

    def test_node_box_split_is_even(self):
        positions, balancer = self._setup(atoms_per_core=2)
        counts = balancer.rank_counts_with_balance(positions)
        topo = balancer.decomposition.topology
        for node_index in range(0, topo.n_nodes, 17):
            coord = (
                node_index // (topo.node_dims[1] * topo.node_dims[2]),
                (node_index // topo.node_dims[2]) % topo.node_dims[1],
                node_index % topo.node_dims[2],
            )
            ranks = topo.ranks_on_node(coord)
            node_counts = counts[ranks]
            assert node_counts.max() - node_counts.min() <= 1

    def test_pair_time_model_scaling(self):
        times = pair_time_model(np.array([1, 2, 4]), per_atom_time=1.0e-3, jitter_fraction=0.0)
        np.testing.assert_allclose(times, [1e-3, 2e-3, 4e-3])
        with pytest.raises(ValueError):
            pair_time_model(np.array([1]), per_atom_time=0.0)

    def test_pair_time_model_times_stay_positive(self):
        """The regression: unbounded Gaussian jitter could draw a negative
        multiplier and emit negative per-rank wall-clock times, corrupting
        the SDMR statistics.  The noise is clamped at a positive floor."""
        counts = np.full(4096, 10)
        times = pair_time_model(counts, per_atom_time=1e-3, jitter_fraction=5.0, rng=0)
        assert (times > 0.0).all()
        assert times.min() >= 10 * 1e-3 * PAIR_TIME_NOISE_FLOOR - 1e-15

    def test_compare_summary_structure(self):
        positions, balancer = self._setup()
        comparison = balancer.compare(positions, per_atom_time=1e-4, rng=1)
        for key in ("no", "yes"):
            summary = comparison[key].summary()
            assert {"natom", "pair"} <= set(summary)
            assert summary["natom"]["max"] >= summary["natom"]["min"]


class TestGhostExchangeSimulator:
    def test_p2p_exact_and_node_covers(self):
        atoms, box = copper_system((6, 6, 6), perturbation=0.05, rng=1)
        topo = RankTopology((2, 2, 2))
        decomposition = SpatialDecomposition(box, topo)
        simulator = GhostExchangeSimulator(decomposition, cutoff=5.0)
        for rank in (0, 7, 13):
            checks = simulator.verify_rank(rank, atoms.positions)
            assert checks["p2p_exact"]
            assert checks["node_covers"]
            assert checks["node_size"] >= checks["reference_size"]


class TestGhostExchangeComponent:
    """The promoted delivery component preserves the simulator's properties."""

    def _setup(self, cutoff=5.0):
        atoms, box = copper_system((6, 6, 6), perturbation=0.05, rng=1)
        decomposition = SpatialDecomposition(box, RankTopology((2, 2, 2)))
        return atoms, GhostExchange(decomposition, cutoff=cutoff)

    def test_subset_and_exactness_through_new_api(self):
        atoms, exchange = self._setup()
        owners = exchange.owners(atoms.positions)
        for rank in (0, 7, 13):
            reference = exchange.reference_ghosts(rank, atoms.positions, owners)
            p2p = exchange.deliver_p2p(rank, atoms.positions, owners)
            node = exchange.deliver_node_based(rank, atoms.positions, owners)
            # p2p delivers exactly the reference set; node-based a superset
            np.testing.assert_array_equal(np.sort(reference), p2p)
            assert set(reference.tolist()) <= set(node.tolist())
            # no rank receives its own atoms as ghosts
            assert not np.any(owners[p2p] == rank)
            assert not np.any(owners[node] == rank)

    def test_simulator_delegates_to_component(self):
        atoms, exchange = self._setup()
        simulator = GhostExchangeSimulator(exchange.decomposition, cutoff=exchange.cutoff)
        assert isinstance(simulator.exchange, GhostExchange)
        for rank in (0, 9):
            assert simulator.deliver_p2p(rank, atoms.positions) == set(
                exchange.deliver_p2p(rank, atoms.positions).tolist()
            )
            assert simulator.deliver_node_based(rank, atoms.positions) == set(
                exchange.deliver_node_based(rank, atoms.positions).tolist()
            )

    def test_per_sender_selection_matches_delivery(self):
        """Assembling per-sender masks reproduces the aggregate delivery."""
        atoms, exchange = self._setup()
        owners = exchange.owners(atoms.positions)
        rank = 5
        assembled = []
        for sender in exchange.p2p_neighbor_ranks(rank):
            sender_atoms = np.nonzero(owners == sender)[0]
            mask = exchange.p2p_selection(atoms.positions[sender_atoms], rank)
            assembled.extend(sender_atoms[mask].tolist())
        np.testing.assert_array_equal(
            np.unique(assembled), exchange.deliver_p2p(rank, atoms.positions, owners)
        )

    def test_scheme_labels_resolve_to_delivery_patterns(self):
        atoms, exchange = self._setup()
        assert resolve_delivery_scheme("p2p-utofu") == "p2p"
        assert resolve_delivery_scheme("lb-4l") == "node-based"
        with pytest.raises(KeyError):
            resolve_delivery_scheme("baseline-telepathy")
        np.testing.assert_array_equal(
            exchange.deliver("p2p-utofu", 0, atoms.positions),
            exchange.deliver_p2p(0, atoms.positions),
        )
        np.testing.assert_array_equal(
            exchange.deliver("lb-4l", 0, atoms.positions),
            exchange.deliver_node_based(0, atoms.positions),
        )

    def test_cutoff_validation(self):
        atoms, exchange = self._setup()
        with pytest.raises(ValueError):
            GhostExchange(exchange.decomposition, cutoff=0.0)


class TestMemoryPoolAndThreading:
    def test_buffer_manager_regions(self):
        pooled = RdmaBufferManager(pooled=True)
        pooled.allocate_for_neighbors(124, 8)
        assert pooled.registered_regions == 1
        unpooled = RdmaBufferManager(pooled=False)
        unpooled.allocate_for_neighbors(124, 8)
        assert unpooled.registered_regions == 248
        assert unpooled.per_message_penalty() > pooled.per_message_penalty()
        assert pooled.total_registered_bytes == unpooled.total_registered_bytes
        pooled.reset()
        assert pooled.registered_regions == 0

    def test_buffer_manager_validation(self):
        manager = RdmaBufferManager()
        with pytest.raises(ValueError):
            manager.allocate(0, -5)
        with pytest.raises(ValueError):
            manager.allocate(0, 8, "sideways")

    def test_threadpool_cheaper_than_openmp(self):
        openmp = ThreadingModel("openmp")
        pool = ThreadingModel("threadpool")
        assert pool.per_step_overhead() < openmp.per_step_overhead()
        assert pool.speedup_over(openmp) > 1.0
        with pytest.raises(ValueError):
            ThreadingModel("green-threads")
