"""Layers, optimizers and the session overhead accounting."""

import numpy as np
import pytest

from repro.nnframework import MLP, Adam, Dense, SGD, Session, Tensor, ops
from repro.nnframework.initializers import constant, glorot_uniform, he_normal, zeros
from repro.nnframework.session import DEFAULT_SESSION_OVERHEAD_S
from repro.nnframework.tensor import collect_parameters


def test_dense_shapes_and_parameters():
    layer = Dense(3, 5, rng=0)
    out = layer(Tensor(np.zeros((7, 3))))
    assert out.shape == (7, 5)
    assert len(layer.parameters()) == 2


def test_dense_invalid_arguments():
    with pytest.raises(ValueError):
        Dense(0, 3)
    with pytest.raises(ValueError):
        Dense(3, 3, activation="nope")


def test_dense_set_weights_validation():
    layer = Dense(2, 3, rng=0)
    with pytest.raises(ValueError):
        layer.set_weights(np.zeros((3, 2)), np.zeros(3))
    layer.set_weights(np.ones((2, 3)), np.zeros(3))
    np.testing.assert_allclose(layer.weight.data, 1.0)


def test_mlp_resnet_skip_applied_for_equal_widths():
    mlp = MLP(4, [4], out_features=None, activation="linear", resnet=True, rng=0)
    # zero the weights: with a skip connection the output equals the input
    mlp.layers[0].set_weights(np.zeros((4, 4)), np.zeros(4))
    x = np.arange(8.0).reshape(2, 4)
    out = mlp(Tensor(x))
    np.testing.assert_allclose(out.data, x)


def test_mlp_doubling_resnet_concatenates_input():
    mlp = MLP(3, [6], out_features=None, activation="linear", resnet=True, rng=0)
    mlp.layers[0].set_weights(np.zeros((3, 6)), np.zeros(6))
    x = np.arange(6.0).reshape(2, 3)
    out = mlp(Tensor(x))
    np.testing.assert_allclose(out.data, np.concatenate([x, x], axis=1))


def test_mlp_export_weights_structure():
    mlp = MLP(2, [4, 4], out_features=1, rng=1)
    exported = mlp.export_weights()
    assert len(exported) == 3
    assert exported[0]["weight"].shape == (2, 4)
    assert exported[1]["resnet"] is True
    assert exported[-1]["weight"].shape == (4, 1)


def test_sgd_and_adam_reduce_loss_on_regression():
    rng = np.random.default_rng(0)
    X = rng.normal(size=(64, 3))
    Y = np.sin(X.sum(axis=1, keepdims=True))

    for optimizer_cls, lr in ((SGD, 5e-2), (Adam, 1e-2)):
        mlp = MLP(3, [12, 12], out_features=1, rng=2)
        optimizer = optimizer_cls(mlp.parameters(), lr=lr)
        first = None
        for _ in range(80):
            optimizer.zero_grad()
            loss = ops.mse_loss(mlp(Tensor(X)), Tensor(Y))
            if first is None:
                first = loss.item()
            loss.backward()
            optimizer.step()
        assert loss.item() < 0.5 * first


def test_optimizer_rejects_empty_parameter_list():
    with pytest.raises(ValueError):
        Adam([Tensor(np.zeros(2))])  # not trainable


def test_adam_lr_validation_and_update():
    mlp = MLP(2, [4], out_features=1, rng=0)
    opt = Adam(mlp.parameters(), lr=1e-3)
    with pytest.raises(ValueError):
        opt.set_lr(0.0)
    opt.set_lr(5e-4)
    assert opt.lr == pytest.approx(5e-4)


def test_initializers_shapes_and_ranges():
    w = glorot_uniform((10, 20), rng=0)
    assert w.shape == (10, 20)
    assert np.abs(w).max() <= np.sqrt(6.0 / 30.0) + 1e-12
    assert he_normal((5, 5), rng=0).shape == (5, 5)
    np.testing.assert_allclose(zeros((2, 2)), 0.0)
    np.testing.assert_allclose(constant(3.0)((2,)), 3.0)


def test_collect_parameters_deduplicates():
    mlp = MLP(2, [4], out_features=1, rng=0)
    params = collect_parameters([mlp, mlp, mlp.layers[0].weight])
    assert len(params) == len(mlp.parameters())


def test_session_accounts_fixed_overhead():
    session = Session(overhead_seconds=4e-3)
    result = session.run(lambda: 42)
    assert result == 42
    assert session.stats.runs == 1
    assert session.stats.modeled_overhead_seconds == pytest.approx(4e-3)
    # a trivial callable: nearly all modelled time is framework overhead
    assert session.overhead_fraction() > 0.6
    session.reset()
    assert session.stats.runs == 0


def test_session_default_overhead_matches_paper():
    assert DEFAULT_SESSION_OVERHEAD_S == pytest.approx(4.0e-3)


def test_session_kernel_tracking():
    session = Session(track_kernels=True)
    out = session.run(lambda: ("result", 7))
    assert out == "result"
    assert session.stats.kernel_calls == 7
