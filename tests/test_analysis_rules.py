"""reprolint self-test corpus: every rule fires on seeded violations.

Each case lints an in-memory snippet through :func:`lint_source` under a
synthetic path chosen to land inside (or outside) the rule's scope, and
asserts the exact ``rule_id`` and line number — then shows the matching
``allow[...]`` pragma suppressing it.  The final test runs the real linter
over the real tree: the production source must stay clean.
"""

import textwrap

from repro.analysis import lint_paths, lint_source, lint_sources
from repro.analysis.contracts import GOLDEN_SITES
from repro.analysis.fingerprint import (
    find_site_region,
    golden_site_key,
    region_fingerprint,
)
from repro.analysis.reprolint import FRAMEWORK_RULE_ID, ParsedFile

GOLDEN_MODULE_PATH = "src/repro/deepmd/scalar.py"
GOLDEN_FUNC_PATH = "src/repro/md/neighbor.py"
GOLDEN_CLASS_PATH = "src/repro/parallel/executor.py"
HOT_PATH = "src/repro/md/forcefields/fake.py"
BACKEND_PATH = "src/repro/parallel/fake_engine.py"
PARALLEL_PATH = "src/repro/parallel/fake_reduce.py"
SERVING_PATH = "src/repro/serving/fake_dispatch.py"
SERVING_GOLDEN_PATH = "src/repro/serving/serial.py"
PRODUCTION_PATH = "src/repro/md/fake_field.py"


def lint(source: str, path: str):
    return lint_source(textwrap.dedent(source), path)


def fired(violations, rule_id: str):
    return [v for v in violations if v.rule_id == rule_id]


# ---------------------------------------------------------------------------
# RL001 — golden-freeze
# ---------------------------------------------------------------------------


def test_rl001_einsum_in_frozen_module_fires_with_line():
    violations = lint(
        """\
        import numpy as np

        def reference(a, b):
            return np.einsum("ij,ij->i", a, b)
        """,
        GOLDEN_MODULE_PATH,
    )
    (violation,) = fired(violations, "RL001")
    assert violation.line == 4
    assert "einsum" in violation.message
    assert violation.format().startswith(f"{GOLDEN_MODULE_PATH}:4: RL001")


def test_rl001_scoped_to_the_declared_function_only():
    source = """\
        import numpy as np

        def _brute_force_pairs(positions):
            return np.bincount(positions)

        def binned_build(positions):
            return np.bincount(positions)
        """
    violations = fired(lint(source, GOLDEN_FUNC_PATH), "RL001")
    assert [v.line for v in violations] == [4]


def test_rl001_workspace_parameter_and_kwarg_fire():
    violations = fired(
        lint(
            """\
            class SequentialRankExecutor:
                def run(self, engine, workspace=None):
                    return engine.compute(workspace=workspace)
            """,
            GOLDEN_CLASS_PATH,
        ),
        "RL001",
    )
    assert {v.line for v in violations} == {2, 3}


def test_rl001_fast_path_import_fires():
    violations = fired(
        lint(
            """\
            from ..md.workspace import scatter_add_vectors
            """,
            GOLDEN_MODULE_PATH,
        ),
        "RL001",
    )
    assert [v.line for v in violations] == [1]


def test_rl001_pragma_with_reason_suppresses():
    violations = lint(
        """\
        import numpy as np

        def reference(a, b):
            return np.einsum("ij,ij->i", a, b)  # reprolint: allow[golden] frozen formulation
        """,
        GOLDEN_MODULE_PATH,
    )
    assert violations == []


# ---------------------------------------------------------------------------
# RL002 — hot-path allocation
# ---------------------------------------------------------------------------


def test_rl002_marked_function_flags_alloc_scatter_and_astype():
    violations = fired(
        lint(
            """\
            import numpy as np

            # reprolint: hot-path
            def compute(pairs, values, n):
                out = np.zeros(n)
                np.add.at(out, pairs, values)
                return out.reshape(-1, 1).astype(np.float64)
            """,
            HOT_PATH,
        ),
        "RL002",
    )
    assert [v.line for v in violations] == [5, 6, 7]
    assert "np.zeros" in violations[0].message
    assert "bincount" in violations[1].message
    assert ".astype" in violations[2].message


def test_rl002_unmarked_function_is_not_checked():
    violations = lint(
        """\
        import numpy as np

        def setup(n):
            return np.zeros(n)
        """,
        HOT_PATH,
    )
    assert violations == []


def test_rl002_marker_on_def_line_registers_too():
    violations = fired(
        lint(
            """\
            import numpy as np

            def compute(n):  # reprolint: hot-path
                return np.empty(n)
            """,
            HOT_PATH,
        ),
        "RL002",
    )
    assert [v.line for v in violations] == [4]


def test_rl002_copy_false_astype_is_a_view_request_not_an_alloc():
    violations = lint(
        """\
        import numpy as np

        # reprolint: hot-path
        def compute(x):
            return x.astype(np.float64, copy=False)
        """,
        HOT_PATH,
    )
    assert violations == []


def test_rl002_pragma_with_reason_suppresses():
    violations = lint(
        """\
        import numpy as np

        # reprolint: hot-path
        def compute(n):
            return np.zeros(n)  # reprolint: allow[alloc] reference branch allocates by design
        """,
        HOT_PATH,
    )
    assert violations == []


# ---------------------------------------------------------------------------
# RL003 — backend purity
# ---------------------------------------------------------------------------

_IMPURE_BACKEND = """\
    class FastBackend(EngineBackend):
        def sprint(self, n_steps):
            for _ in range(n_steps):
                self.integrate_first_half()

        def report(self):
            return SimulationReport(n_steps=1)

        def snapshot(self):
            self.trajectory.append(self.positions.copy())

        def nudge(self):
            self.thermostat.apply(self, 0.1)

        def apply_thermostat(self):
            self.thermostat.apply(self, 0.1)
    """


def test_rl003_backend_with_run_loop_features_fires_per_feature():
    violations = fired(lint(_IMPURE_BACKEND, BACKEND_PATH), "RL003")
    assert [v.line for v in violations] == [3, 7, 10, 13]
    # the protocol hook itself (apply_thermostat, line 16) stays legal


def test_rl003_plain_class_is_not_a_backend():
    violations = lint(
        """\
        class Helper:
            def sprint(self, n_steps):
                for _ in range(n_steps):
                    self.integrate_first_half()
        """,
        BACKEND_PATH,
    )
    assert violations == []


def test_rl003_stepping_module_is_exempt():
    assert lint(_IMPURE_BACKEND, "src/repro/md/stepping.py") == []


# ---------------------------------------------------------------------------
# RL004 — fixed-order reductions
# ---------------------------------------------------------------------------


def test_rl004_set_iteration_fires_in_parallel_package():
    violations = fired(
        lint(
            """\
            def gather(results_by_rank):
                total = 0.0
                for rank in set(results_by_rank):
                    total += results_by_rank[rank]
                return total
            """,
            PARALLEL_PATH,
        ),
        "RL004",
    )
    assert [v.line for v in violations] == [3]


def test_rl004_tracks_names_assigned_a_set():
    violations = fired(
        lint(
            """\
            def gather(ranks):
                pending = set(ranks)
                return [r for r in pending]
            """,
            PARALLEL_PATH,
        ),
        "RL004",
    )
    assert [v.line for v in violations] == [3]


def test_rl004_sorted_iteration_is_fixed_order():
    violations = lint(
        """\
        def gather(ranks):
            return [r for r in sorted(set(ranks))]
        """,
        PARALLEL_PATH,
    )
    assert violations == []


def test_rl004_set_iteration_fires_in_serving_package():
    violations = fired(
        lint(
            """\
            def fulfill(futures_by_request):
                for request in set(futures_by_request):
                    futures_by_request[request].set_result(None)
            """,
            SERVING_PATH,
        ),
        "RL004",
    )
    assert [v.line for v in violations] == [2]


def test_rl004_does_not_apply_outside_parallel():
    violations = lint(
        """\
        def gather(ranks):
            return [r for r in set(ranks)]
        """,
        PRODUCTION_PATH,
    )
    assert violations == []


def test_rl001_serving_serial_module_is_frozen():
    violations = fired(
        lint(
            """\
            import numpy as np

            def evaluate_serial(model, systems):
                return np.bincount(systems)
            """,
            SERVING_GOLDEN_PATH,
        ),
        "RL001",
    )
    assert [v.line for v in violations] == [4]


# ---------------------------------------------------------------------------
# RL005 — dtype discipline
# ---------------------------------------------------------------------------


def test_rl005_low_precision_literal_fires_in_production():
    violations = fired(
        lint(
            """\
            import numpy as np

            def pack(x):
                return x.astype(np.float32)
            """,
            PRODUCTION_PATH,
        ),
        "RL005",
    )
    assert [v.line for v in violations] == [4]


def test_rl005_sanctioned_modules_and_tests_are_exempt():
    source = """\
        import numpy as np

        DTYPE = np.float16
        """
    assert lint(source, "src/repro/deepmd/gemm.py") == []
    assert lint(source, "tests/test_precision_probe.py") == []


def test_rl005_pragma_with_reason_suppresses():
    violations = lint(
        """\
        import numpy as np

        def pack(x):
            return x.astype(np.float32)  # reprolint: allow[dtype] guarded prefilter cast
        """,
        PRODUCTION_PATH,
    )
    assert violations == []


# ---------------------------------------------------------------------------
# RL006 — transitive hot-path allocation (call-graph propagation)
# ---------------------------------------------------------------------------


def test_rl006_helper_reached_through_the_call_graph_fires():
    violations = fired(
        lint(
            """\
            import numpy as np

            # reprolint: hot-path
            def compute(n):
                return helper(n)

            def helper(n):
                return np.zeros(n)
            """,
            HOT_PATH,
        ),
        "RL006",
    )
    assert [v.line for v in violations] == [8]
    assert "helper (reachable from hot path compute)" in violations[0].message
    assert "np.zeros" in violations[0].message


def test_rl006_propagates_through_call_chains():
    violations = fired(
        lint(
            """\
            import numpy as np

            # reprolint: hot-path
            def compute(pairs, n):
                return outer(pairs, n)

            def outer(pairs, n):
                return inner(pairs, n)

            def inner(pairs, n):
                out = np.empty(n)
                np.add.at(out, pairs, 1.0)
                return out
            """,
            HOT_PATH,
        ),
        "RL006",
    )
    assert [v.line for v in violations] == [11, 12]
    assert all("reachable from hot path compute" in v.message for v in violations)


def test_rl006_resolves_helpers_imported_from_another_module():
    # the cross-file case: the hot root and the allocating helper live in
    # different modules, connected only by a relative import
    violations = fired(
        lint_sources(
            {
                "src/repro/md/fake_hot.py": textwrap.dedent(
                    """\
                    from .fake_util import helper

                    # reprolint: hot-path
                    def compute(n):
                        return helper(n)
                    """
                ),
                "src/repro/md/fake_util.py": textwrap.dedent(
                    """\
                    import numpy as np

                    def helper(n):
                        return np.zeros(n)
                    """
                ),
            }
        ),
        "RL006",
    )
    (violation,) = violations
    assert violation.path == "src/repro/md/fake_util.py"
    assert violation.line == 4


def test_rl006_cold_path_marker_is_a_boundary():
    violations = lint(
        """\
        import numpy as np

        # reprolint: hot-path
        def compute(n):
            return build(n)

        # reprolint: cold-path table builds once per rebuild and is cached
        def build(n):
            return np.zeros(n)
        """,
        HOT_PATH,
    )
    assert violations == []


def test_rl006_cold_path_boundary_shields_transitive_callees_too():
    violations = lint(
        """\
        import numpy as np

        # reprolint: hot-path
        def compute(n):
            return build(n)

        # reprolint: cold-path cache rebuild cadence, not per step
        def build(n):
            return fill(n)

        def fill(n):
            return np.zeros(n)
        """,
        HOT_PATH,
    )
    assert violations == []


def test_rl006_allow_alloc_pragma_suppresses():
    violations = lint(
        """\
        import numpy as np

        # reprolint: hot-path
        def compute(n):
            return helper(n)

        def helper(n):
            return np.zeros(n)  # reprolint: allow[alloc] reference branch allocates by design
        """,
        HOT_PATH,
    )
    assert violations == []


def test_rl006_does_not_fire_outside_the_production_tree():
    violations = lint(
        """\
        import numpy as np

        # reprolint: hot-path
        def compute(n):
            return helper(n)

        def helper(n):
            return np.zeros(n)
        """,
        "tests/fake_probe.py",
    )
    assert violations == []


# ---------------------------------------------------------------------------
# RL007 — golden-drift fingerprints
# ---------------------------------------------------------------------------

_GOLDEN_FUNC_SOURCE = textwrap.dedent(
    '''\
    import numpy as np

    def _brute_force_pairs(positions, box, cutoff):
        """All pairs within cutoff, O(N^2)."""
        pairs = []
        for i in range(len(positions)):
            for j in range(i + 1, len(positions)):
                pairs.append((i, j))
        return pairs
    '''
)


def _fingerprint_for(source: str, rel_path: str) -> tuple[str, str]:
    """``(baseline key, hash)`` of the golden region inside ``source``."""
    parsed = ParsedFile.parse(source, rel_path)
    (site,) = [s for s in GOLDEN_SITES if rel_path.endswith(s.path_suffix)]
    region = find_site_region(site, parsed)
    assert region is not None
    return golden_site_key(site), region_fingerprint(region)


def test_rl007_matching_fingerprint_is_clean():
    key, fingerprint = _fingerprint_for(_GOLDEN_FUNC_SOURCE, GOLDEN_FUNC_PATH)
    violations = lint_sources(
        {GOLDEN_FUNC_PATH: _GOLDEN_FUNC_SOURCE}, golden_baseline={key: fingerprint}
    )
    assert violations == []


def test_rl007_semantic_edit_fires_until_refreshed():
    key, fingerprint = _fingerprint_for(_GOLDEN_FUNC_SOURCE, GOLDEN_FUNC_PATH)
    edited = _GOLDEN_FUNC_SOURCE.replace("range(i + 1,", "range(i + 2,")
    violations = fired(
        lint_sources({GOLDEN_FUNC_PATH: edited}, golden_baseline={key: fingerprint}),
        "RL007",
    )
    (violation,) = violations
    assert violation.line == 3  # the region's def line
    assert "drifted" in violation.message
    assert "--update-golden" in violation.message
    # refreshing the baseline (what --update-golden records) clears it
    _, new_fingerprint = _fingerprint_for(edited, GOLDEN_FUNC_PATH)
    assert (
        lint_sources({GOLDEN_FUNC_PATH: edited}, golden_baseline={key: new_fingerprint})
        == []
    )


def test_rl007_comment_and_docstring_edits_never_fire():
    key, fingerprint = _fingerprint_for(_GOLDEN_FUNC_SOURCE, GOLDEN_FUNC_PATH)
    reworded = _GOLDEN_FUNC_SOURCE.replace(
        '"""All pairs within cutoff, O(N^2)."""',
        '"""Reworded docstring."""  # and a new comment',
    )
    assert (
        lint_sources({GOLDEN_FUNC_PATH: reworded}, golden_baseline={key: fingerprint})
        == []
    )


def test_rl007_missing_recorded_fingerprint_fires():
    violations = fired(
        lint_sources({GOLDEN_FUNC_PATH: _GOLDEN_FUNC_SOURCE}, golden_baseline={}),
        "RL007",
    )
    (violation,) = violations
    assert "no recorded fingerprint" in violation.message


def test_rl007_region_gone_fires_on_line_one():
    key, fingerprint = _fingerprint_for(_GOLDEN_FUNC_SOURCE, GOLDEN_FUNC_PATH)
    gutted = "import numpy as np\n"
    violations = fired(
        lint_sources({GOLDEN_FUNC_PATH: gutted}, golden_baseline={key: fingerprint}),
        "RL007",
    )
    (violation,) = violations
    assert violation.line == 1
    assert "is gone" in violation.message


def test_rl007_disabled_without_a_baseline():
    edited = _GOLDEN_FUNC_SOURCE.replace("range(i + 1,", "range(i + 2,")
    assert fired(lint_source(edited, GOLDEN_FUNC_PATH), "RL007") == []


# ---------------------------------------------------------------------------
# RL008 — worker-context write discipline
# ---------------------------------------------------------------------------

WORKER_PATH = "src/repro/parallel/executor.py"
SERVING_ENGINE_PATH = "src/repro/serving/engine.py"


def test_rl008_entrypoint_and_reachable_helpers_are_policed():
    violations = fired(
        lint(
            """\
            def _worker_main(conn):
                task = conn.recv()
                run_task(task)

            def run_task(task):
                exchange = GhostExchange(task)
                task.first_half(0.5)
                return exchange
            """,
            WORKER_PATH,
        ),
        "RL008",
    )
    assert [(v.line, v.path) for v in violations] == [
        (6, WORKER_PATH),
        (7, WORKER_PATH),
    ]
    assert "constructs the parent-owned comm component GhostExchange" in violations[0].message
    assert "reachable from _worker_main" in violations[0].message
    assert "calls parent-only primitive task.first_half()" in violations[1].message


def test_rl008_shared_slab_write_fires_with_line():
    violations = fired(
        lint(
            """\
            def _worker_main(conn):
                write_back(conn.recv())

            def write_back(domain):
                domain.shared.forces[0] = 1.0
            """,
            WORKER_PATH,
        ),
        "RL008",
    )
    (violation,) = violations
    assert violation.line == 5
    assert "writes the shared slab domain.shared.forces" in violation.message
    assert "own rank's views" in violation.message


def test_rl008_forbidden_call_in_the_entrypoint_itself():
    violations = fired(
        lint(
            """\
            def _worker_main(conn):
                future.set_result(None)
            """,
            WORKER_PATH,
        ),
        "RL008",
    )
    (violation,) = violations
    assert violation.line == 2
    assert "is a worker entrypoint" in violation.message


def test_rl008_serving_prep_loop_is_an_entrypoint_too():
    violations = fired(
        lint(
            """\
            class ServingEngine:
                def _prep_loop(self):
                    self._exchange_ghosts()
            """,
            SERVING_ENGINE_PATH,
        ),
        "RL008",
    )
    (violation,) = violations
    assert violation.line == 3
    assert "is a worker entrypoint" in violation.message


def test_rl008_allow_worker_pragma_suppresses():
    violations = lint(
        """\
        def _worker_main(conn):
            write_back(conn.recv())

        def write_back(domain):
            domain.shared.forces[0] = 1.0  # reprolint: allow[worker] single-writer handshake owns this slab here
        """,
        WORKER_PATH,
    )
    assert violations == []


def test_rl008_functions_outside_worker_context_are_untouched():
    violations = lint(
        """\
        def parent_step(domain):
            domain.shared.forces[0] = 1.0
            exchange = GhostExchange(domain)
            return exchange
        """,
        WORKER_PATH,
    )
    assert violations == []


# ---------------------------------------------------------------------------
# RL000 — pragma hygiene (the framework polices its own escape hatch)
# ---------------------------------------------------------------------------


def test_rl000_reasonless_allow_is_a_violation():
    violations = lint(
        """\
        import numpy as np

        def reference(a, b):
            return np.einsum("ij,ij->i", a, b)  # reprolint: allow[golden]
        """,
        GOLDEN_MODULE_PATH,
    )
    assert [v.rule_id for v in violations] == [FRAMEWORK_RULE_ID]
    assert "no reason" in violations[0].message


def test_rl000_unknown_slug_is_a_violation():
    violations = lint(
        "x = 1  # reprolint: allow[speed] because fast\n", PRODUCTION_PATH
    )
    assert [v.rule_id for v in violations] == [FRAMEWORK_RULE_ID]
    assert "no known rule slug" in violations[0].message


def test_rl000_stale_allow_is_a_violation():
    violations = lint(
        "x = 1  # reprolint: allow[alloc] nothing to suppress here\n", PRODUCTION_PATH
    )
    assert [v.rule_id for v in violations] == [FRAMEWORK_RULE_ID]
    assert "stale" in violations[0].message


def test_rl000_unrecognised_directive_is_a_violation():
    violations = lint("x = 1  # reprolint: ignore-all\n", PRODUCTION_PATH)
    assert [v.rule_id for v in violations] == [FRAMEWORK_RULE_ID]


def test_rl000_orphan_hot_path_marker_is_a_violation():
    violations = lint(
        """\
        # reprolint: hot-path
        x = 1
        """,
        PRODUCTION_PATH,
    )
    assert [v.rule_id for v in violations] == [FRAMEWORK_RULE_ID]
    assert "not attached" in violations[0].message


def test_rl000_orphan_cold_path_marker_is_a_violation():
    violations = lint(
        """\
        # reprolint: cold-path cache rebuild only
        x = 1
        """,
        PRODUCTION_PATH,
    )
    assert [v.rule_id for v in violations] == [FRAMEWORK_RULE_ID]
    assert "not attached" in violations[0].message


def test_rl000_reasonless_cold_path_marker_is_a_violation():
    violations = lint(
        """\
        import numpy as np

        # reprolint: cold-path
        def build(n):
            return np.zeros(n)
        """,
        PRODUCTION_PATH,
    )
    assert [v.rule_id for v in violations] == [FRAMEWORK_RULE_ID]
    assert "no reason" in violations[0].message


def test_rl000_syntax_error_is_reported_not_raised():
    violations = lint_source("def broken(:\n", PRODUCTION_PATH)
    assert [v.rule_id for v in violations] == [FRAMEWORK_RULE_ID]
    assert "syntax error" in violations[0].message


def test_pragma_text_inside_string_literals_is_inert():
    violations = lint(
        '''\
        CORPUS = """
        np.zeros(n)  # reprolint: allow[alloc]
        # reprolint: hot-path
        """
        ''',
        PRODUCTION_PATH,
    )
    assert violations == []


# ---------------------------------------------------------------------------
# Reporting layer, file discovery and the CLI
# ---------------------------------------------------------------------------


def test_render_json_report_round_trips_as_a_baseline(tmp_path):
    import json

    from repro.analysis.report import apply_baseline, load_report_baseline, render_json

    violations = lint(
        """\
        import numpy as np

        # reprolint: hot-path
        def compute(n):
            return np.zeros(n)
        """,
        HOT_PATH,
    )
    payload = json.loads(render_json(violations))
    assert payload["tool"] == "reprolint"
    assert payload["counts"] == {"RL002": 1}
    assert {entry["id"] for entry in payload["rules"]} >= {
        "RL000", "RL002", "RL006", "RL007", "RL008",
    }
    report = tmp_path / "report.json"
    report.write_text(render_json(violations), encoding="utf-8")
    kept, suppressed = apply_baseline(violations, load_report_baseline(report))
    assert kept == [] and suppressed == 1


def test_render_sarif_carries_rule_and_location():
    import json

    from repro.analysis.report import render_sarif

    violations = lint("x = 1  # reprolint: ignore-all\n", PRODUCTION_PATH)
    sarif = json.loads(render_sarif(violations))
    assert sarif["version"] == "2.1.0"
    (result,) = sarif["runs"][0]["results"]
    assert result["ruleId"] == FRAMEWORK_RULE_ID
    location = result["locations"][0]["physicalLocation"]
    assert location["artifactLocation"]["uri"] == PRODUCTION_PATH


def test_iter_python_files_dedupes_and_skips_cache_dirs(tmp_path):
    from repro.analysis.reprolint import iter_python_files

    (tmp_path / "pkg").mkdir()
    (tmp_path / "pkg" / "a.py").write_text("x = 1\n")
    (tmp_path / "pkg" / "__pycache__").mkdir()
    (tmp_path / "pkg" / "__pycache__" / "a.cpython-312.py").write_text("x = 1\n")
    (tmp_path / "pkg" / ".hidden").mkdir()
    (tmp_path / "pkg" / ".hidden" / "b.py").write_text("x = 1\n")
    # overlapping roots plus the file named directly: still one entry
    files = iter_python_files(
        [tmp_path, tmp_path / "pkg", tmp_path / "pkg" / "a.py"]
    )
    assert [f.name for f in files] == ["a.py"]


def test_cli_list_rules_and_explain(capsys):
    from repro.analysis.__main__ import main

    assert main(["--list-rules"]) == 0
    listing = capsys.readouterr().out
    for rule_id in ("RL000", "RL001", "RL006", "RL007", "RL008"):
        assert rule_id in listing
    assert main(["--explain", "RL006"]) == 0
    assert "call graph" in capsys.readouterr().out
    assert main(["--explain", "RL999"]) == 2


def test_cli_json_output_file_and_exit_codes(tmp_path, capsys):
    from repro.analysis.__main__ import main

    bad = tmp_path / "src" / "repro" / "md" / "probe.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("import numpy as np\n\n# reprolint: hot-path\ndef f(n):\n    return np.zeros(n)\n")
    report = tmp_path / "report.json"
    assert main([str(bad), "--format", "json", "--output", str(report)]) == 1
    assert "RL002: 1" in capsys.readouterr().out
    # the JSON report doubles as a baseline: the same findings now pass
    assert main([str(bad), "--baseline", str(report)]) == 0
    assert "hidden by --baseline" in capsys.readouterr().out


def test_cli_update_golden_requires_a_reason(tmp_path):
    import pytest

    from repro.analysis.__main__ import main

    with pytest.raises(SystemExit):
        main(["--update-golden", str(tmp_path)])


# ---------------------------------------------------------------------------
# The real tree stays clean (the CI acceptance gate)
# ---------------------------------------------------------------------------


def test_production_tree_is_clean():
    violations = lint_paths(["src"])
    assert violations == [], "\n".join(v.format() for v in violations)
