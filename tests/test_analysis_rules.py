"""reprolint self-test corpus: every rule fires on seeded violations.

Each case lints an in-memory snippet through :func:`lint_source` under a
synthetic path chosen to land inside (or outside) the rule's scope, and
asserts the exact ``rule_id`` and line number — then shows the matching
``allow[...]`` pragma suppressing it.  The final test runs the real linter
over the real tree: the production source must stay clean.
"""

import textwrap

from repro.analysis import lint_paths, lint_source
from repro.analysis.reprolint import FRAMEWORK_RULE_ID

GOLDEN_MODULE_PATH = "src/repro/deepmd/scalar.py"
GOLDEN_FUNC_PATH = "src/repro/md/neighbor.py"
GOLDEN_CLASS_PATH = "src/repro/parallel/executor.py"
HOT_PATH = "src/repro/md/forcefields/fake.py"
BACKEND_PATH = "src/repro/parallel/fake_engine.py"
PARALLEL_PATH = "src/repro/parallel/fake_reduce.py"
SERVING_PATH = "src/repro/serving/fake_dispatch.py"
SERVING_GOLDEN_PATH = "src/repro/serving/serial.py"
PRODUCTION_PATH = "src/repro/md/fake_field.py"


def lint(source: str, path: str):
    return lint_source(textwrap.dedent(source), path)


def fired(violations, rule_id: str):
    return [v for v in violations if v.rule_id == rule_id]


# ---------------------------------------------------------------------------
# RL001 — golden-freeze
# ---------------------------------------------------------------------------


def test_rl001_einsum_in_frozen_module_fires_with_line():
    violations = lint(
        """\
        import numpy as np

        def reference(a, b):
            return np.einsum("ij,ij->i", a, b)
        """,
        GOLDEN_MODULE_PATH,
    )
    (violation,) = fired(violations, "RL001")
    assert violation.line == 4
    assert "einsum" in violation.message
    assert violation.format().startswith(f"{GOLDEN_MODULE_PATH}:4: RL001")


def test_rl001_scoped_to_the_declared_function_only():
    source = """\
        import numpy as np

        def _brute_force_pairs(positions):
            return np.bincount(positions)

        def binned_build(positions):
            return np.bincount(positions)
        """
    violations = fired(lint(source, GOLDEN_FUNC_PATH), "RL001")
    assert [v.line for v in violations] == [4]


def test_rl001_workspace_parameter_and_kwarg_fire():
    violations = fired(
        lint(
            """\
            class SequentialRankExecutor:
                def run(self, engine, workspace=None):
                    return engine.compute(workspace=workspace)
            """,
            GOLDEN_CLASS_PATH,
        ),
        "RL001",
    )
    assert {v.line for v in violations} == {2, 3}


def test_rl001_fast_path_import_fires():
    violations = fired(
        lint(
            """\
            from ..md.workspace import scatter_add_vectors
            """,
            GOLDEN_MODULE_PATH,
        ),
        "RL001",
    )
    assert [v.line for v in violations] == [1]


def test_rl001_pragma_with_reason_suppresses():
    violations = lint(
        """\
        import numpy as np

        def reference(a, b):
            return np.einsum("ij,ij->i", a, b)  # reprolint: allow[golden] frozen formulation
        """,
        GOLDEN_MODULE_PATH,
    )
    assert violations == []


# ---------------------------------------------------------------------------
# RL002 — hot-path allocation
# ---------------------------------------------------------------------------


def test_rl002_marked_function_flags_alloc_scatter_and_astype():
    violations = fired(
        lint(
            """\
            import numpy as np

            # reprolint: hot-path
            def compute(pairs, values, n):
                out = np.zeros(n)
                np.add.at(out, pairs, values)
                return out.reshape(-1, 1).astype(np.float64)
            """,
            HOT_PATH,
        ),
        "RL002",
    )
    assert [v.line for v in violations] == [5, 6, 7]
    assert "np.zeros" in violations[0].message
    assert "bincount" in violations[1].message
    assert ".astype" in violations[2].message


def test_rl002_unmarked_function_is_not_checked():
    violations = lint(
        """\
        import numpy as np

        def setup(n):
            return np.zeros(n)
        """,
        HOT_PATH,
    )
    assert violations == []


def test_rl002_marker_on_def_line_registers_too():
    violations = fired(
        lint(
            """\
            import numpy as np

            def compute(n):  # reprolint: hot-path
                return np.empty(n)
            """,
            HOT_PATH,
        ),
        "RL002",
    )
    assert [v.line for v in violations] == [4]


def test_rl002_copy_false_astype_is_a_view_request_not_an_alloc():
    violations = lint(
        """\
        import numpy as np

        # reprolint: hot-path
        def compute(x):
            return x.astype(np.float64, copy=False)
        """,
        HOT_PATH,
    )
    assert violations == []


def test_rl002_pragma_with_reason_suppresses():
    violations = lint(
        """\
        import numpy as np

        # reprolint: hot-path
        def compute(n):
            return np.zeros(n)  # reprolint: allow[alloc] reference branch allocates by design
        """,
        HOT_PATH,
    )
    assert violations == []


# ---------------------------------------------------------------------------
# RL003 — backend purity
# ---------------------------------------------------------------------------

_IMPURE_BACKEND = """\
    class FastBackend(EngineBackend):
        def sprint(self, n_steps):
            for _ in range(n_steps):
                self.integrate_first_half()

        def report(self):
            return SimulationReport(n_steps=1)

        def snapshot(self):
            self.trajectory.append(self.positions.copy())

        def nudge(self):
            self.thermostat.apply(self, 0.1)

        def apply_thermostat(self):
            self.thermostat.apply(self, 0.1)
    """


def test_rl003_backend_with_run_loop_features_fires_per_feature():
    violations = fired(lint(_IMPURE_BACKEND, BACKEND_PATH), "RL003")
    assert [v.line for v in violations] == [3, 7, 10, 13]
    # the protocol hook itself (apply_thermostat, line 16) stays legal


def test_rl003_plain_class_is_not_a_backend():
    violations = lint(
        """\
        class Helper:
            def sprint(self, n_steps):
                for _ in range(n_steps):
                    self.integrate_first_half()
        """,
        BACKEND_PATH,
    )
    assert violations == []


def test_rl003_stepping_module_is_exempt():
    assert lint(_IMPURE_BACKEND, "src/repro/md/stepping.py") == []


# ---------------------------------------------------------------------------
# RL004 — fixed-order reductions
# ---------------------------------------------------------------------------


def test_rl004_set_iteration_fires_in_parallel_package():
    violations = fired(
        lint(
            """\
            def gather(results_by_rank):
                total = 0.0
                for rank in set(results_by_rank):
                    total += results_by_rank[rank]
                return total
            """,
            PARALLEL_PATH,
        ),
        "RL004",
    )
    assert [v.line for v in violations] == [3]


def test_rl004_tracks_names_assigned_a_set():
    violations = fired(
        lint(
            """\
            def gather(ranks):
                pending = set(ranks)
                return [r for r in pending]
            """,
            PARALLEL_PATH,
        ),
        "RL004",
    )
    assert [v.line for v in violations] == [3]


def test_rl004_sorted_iteration_is_fixed_order():
    violations = lint(
        """\
        def gather(ranks):
            return [r for r in sorted(set(ranks))]
        """,
        PARALLEL_PATH,
    )
    assert violations == []


def test_rl004_set_iteration_fires_in_serving_package():
    violations = fired(
        lint(
            """\
            def fulfill(futures_by_request):
                for request in set(futures_by_request):
                    futures_by_request[request].set_result(None)
            """,
            SERVING_PATH,
        ),
        "RL004",
    )
    assert [v.line for v in violations] == [2]


def test_rl004_does_not_apply_outside_parallel():
    violations = lint(
        """\
        def gather(ranks):
            return [r for r in set(ranks)]
        """,
        PRODUCTION_PATH,
    )
    assert violations == []


def test_rl001_serving_serial_module_is_frozen():
    violations = fired(
        lint(
            """\
            import numpy as np

            def evaluate_serial(model, systems):
                return np.bincount(systems)
            """,
            SERVING_GOLDEN_PATH,
        ),
        "RL001",
    )
    assert [v.line for v in violations] == [4]


# ---------------------------------------------------------------------------
# RL005 — dtype discipline
# ---------------------------------------------------------------------------


def test_rl005_low_precision_literal_fires_in_production():
    violations = fired(
        lint(
            """\
            import numpy as np

            def pack(x):
                return x.astype(np.float32)
            """,
            PRODUCTION_PATH,
        ),
        "RL005",
    )
    assert [v.line for v in violations] == [4]


def test_rl005_sanctioned_modules_and_tests_are_exempt():
    source = """\
        import numpy as np

        DTYPE = np.float16
        """
    assert lint(source, "src/repro/deepmd/gemm.py") == []
    assert lint(source, "tests/test_precision_probe.py") == []


def test_rl005_pragma_with_reason_suppresses():
    violations = lint(
        """\
        import numpy as np

        def pack(x):
            return x.astype(np.float32)  # reprolint: allow[dtype] guarded prefilter cast
        """,
        PRODUCTION_PATH,
    )
    assert violations == []


# ---------------------------------------------------------------------------
# RL000 — pragma hygiene (the framework polices its own escape hatch)
# ---------------------------------------------------------------------------


def test_rl000_reasonless_allow_is_a_violation():
    violations = lint(
        """\
        import numpy as np

        def reference(a, b):
            return np.einsum("ij,ij->i", a, b)  # reprolint: allow[golden]
        """,
        GOLDEN_MODULE_PATH,
    )
    assert [v.rule_id for v in violations] == [FRAMEWORK_RULE_ID]
    assert "no reason" in violations[0].message


def test_rl000_unknown_slug_is_a_violation():
    violations = lint(
        "x = 1  # reprolint: allow[speed] because fast\n", PRODUCTION_PATH
    )
    assert [v.rule_id for v in violations] == [FRAMEWORK_RULE_ID]
    assert "no known rule slug" in violations[0].message


def test_rl000_stale_allow_is_a_violation():
    violations = lint(
        "x = 1  # reprolint: allow[alloc] nothing to suppress here\n", PRODUCTION_PATH
    )
    assert [v.rule_id for v in violations] == [FRAMEWORK_RULE_ID]
    assert "stale" in violations[0].message


def test_rl000_unrecognised_directive_is_a_violation():
    violations = lint("x = 1  # reprolint: ignore-all\n", PRODUCTION_PATH)
    assert [v.rule_id for v in violations] == [FRAMEWORK_RULE_ID]


def test_rl000_orphan_hot_path_marker_is_a_violation():
    violations = lint(
        """\
        # reprolint: hot-path
        x = 1
        """,
        PRODUCTION_PATH,
    )
    assert [v.rule_id for v in violations] == [FRAMEWORK_RULE_ID]
    assert "not attached" in violations[0].message


def test_rl000_syntax_error_is_reported_not_raised():
    violations = lint_source("def broken(:\n", PRODUCTION_PATH)
    assert [v.rule_id for v in violations] == [FRAMEWORK_RULE_ID]
    assert "syntax error" in violations[0].message


def test_pragma_text_inside_string_literals_is_inert():
    violations = lint(
        '''\
        CORPUS = """
        np.zeros(n)  # reprolint: allow[alloc]
        # reprolint: hot-path
        """
        ''',
        PRODUCTION_PATH,
    )
    assert violations == []


# ---------------------------------------------------------------------------
# The real tree stays clean (the CI acceptance gate)
# ---------------------------------------------------------------------------


def test_production_tree_is_clean():
    violations = lint_paths(["src"])
    assert violations == [], "\n".join(v.format() for v in violations)
