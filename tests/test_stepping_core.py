"""The shared run-loop core: report conventions, workspace parity, backends.

Covers the contracts both backends inherit from
:class:`repro.md.stepping.SteppingLoop`:

* ``neighbor_build_seconds`` is a **per-run delta** (the cumulative counter
  convention was a bug: a second ``run()`` used to re-report the first run's
  builds),
* ``trajectory`` survives runs that do not capture (``trajectory_every=0``)
  and resets only when capture is requested,
* sampling edge cases (``sample_every=0``, ``n_steps=0``) and the
  thermostat-before-sampling ordering are identical between the serial and
  domain-decomposed backends,
* the workspace (preallocated) force-field paths match the allocating
  reference paths, and steady-state steps run entirely out of the pools,
* cutoff validation and ``describe()`` harvesting behave identically across
  backends (they are deduplicated into the core).
"""

import numpy as np
import pytest

from repro.md import (
    BerendsenThermostat,
    GuptaPotential,
    LennardJones,
    MorsePotential,
    Simulation,
    VelocityRescale,
    Workspace,
    copper_system,
    water_system,
)
from repro.md.forcefields.water import WaterReference
from repro.md.neighbor import build_neighbor_data
from repro.md.stepping import harvest_force_field_info, validate_cutoff
from repro.parallel import DomainDecomposedSimulation


def _copper(rng=0, temperature=300.0):
    atoms, box = copper_system((3, 3, 3), perturbation=0.05, rng=rng)
    atoms.initialize_velocities(temperature, rng=rng + 1)
    return atoms, box


def _serial(atoms, box, **kwargs):
    kwargs.setdefault("timestep_fs", 2.0)
    kwargs.setdefault("neighbor_skin", 0.4)
    kwargs.setdefault("neighbor_every", 5)
    return Simulation(atoms.copy(), box, LennardJones(0.05, 2.3, 5.0), **kwargs)


def _engine(atoms, box, **kwargs):
    kwargs.setdefault("timestep_fs", 2.0)
    kwargs.setdefault("neighbor_skin", 0.4)
    kwargs.setdefault("neighbor_every", 5)
    kwargs.setdefault("rank_dims", (2, 1, 1))
    return DomainDecomposedSimulation(atoms.copy(), box, LennardJones(0.05, 2.3, 5.0), **kwargs)


BACKENDS = {"serial": _serial, "engine": _engine}


# ---------------------------------------------------------------------------
# neighbor_build_seconds: per-run delta, not the cumulative counter
# ---------------------------------------------------------------------------


class TestNeighborBuildSecondsPerRun:
    @pytest.mark.parametrize("backend", sorted(BACKENDS), ids=sorted(BACKENDS))
    def test_two_runs_report_their_own_builds(self, backend):
        atoms, box = _copper()
        sim = BACKENDS[backend](atoms, box)
        first = sim.run(8)
        second = sim.run(8)
        # both runs rebuild (neighbor_every=5), so both report nonzero time
        assert first.neighbor_build_seconds > 0.0
        assert second.neighbor_build_seconds > 0.0
        # the regression: the second report must NOT re-report the first
        # run's builds — the two deltas sum to the cumulative counter
        cumulative = sim.neighbor_build_seconds()
        assert first.neighbor_build_seconds < cumulative
        assert first.neighbor_build_seconds + second.neighbor_build_seconds == pytest.approx(
            cumulative
        )

    @pytest.mark.parametrize("backend", sorted(BACKENDS), ids=sorted(BACKENDS))
    def test_two_runs_report_their_own_build_counts(self, backend):
        """``neighbor_builds`` is a per-run delta like the seconds field.

        The regression: the report used to copy the backend's *cumulative*
        counter, so a second ``run()`` re-reported the first run's builds."""
        atoms, box = _copper()
        sim = BACKENDS[backend](atoms, box)
        first = sim.run(8)
        second = sim.run(8)
        assert first.neighbor_builds > 0
        assert second.neighbor_builds > 0
        cumulative = sim.neighbor_build_count()
        assert first.neighbor_builds < cumulative
        assert first.neighbor_builds + second.neighbor_builds == cumulative

    def test_first_run_includes_the_initial_build(self):
        atoms, box = _copper()
        sim = _serial(atoms, box)
        report = sim.run(2)
        # the lazily triggered initial build is attributed to the run that
        # caused it: the delta equals the cumulative counter on a fresh sim
        assert report.neighbor_build_seconds == pytest.approx(sim.neighbor_list.build_seconds)


# ---------------------------------------------------------------------------
# trajectory lifecycle
# ---------------------------------------------------------------------------


class TestTrajectoryLifecycle:
    @pytest.mark.parametrize("backend", sorted(BACKENDS), ids=sorted(BACKENDS))
    def test_plain_run_preserves_previous_snapshots(self, backend):
        atoms, box = _copper()
        sim = BACKENDS[backend](atoms, box)
        sim.run(4, trajectory_every=2)
        frames = [frame.copy() for frame in sim.trajectory]
        assert len(frames) == 2
        sim.run(4)  # no capture: must not silently discard the frames
        assert len(sim.trajectory) == 2
        for kept, expected in zip(sim.trajectory, frames):
            np.testing.assert_array_equal(kept, expected)

    @pytest.mark.parametrize("backend", sorted(BACKENDS), ids=sorted(BACKENDS))
    def test_new_capture_resets_the_trajectory(self, backend):
        atoms, box = _copper()
        sim = BACKENDS[backend](atoms, box)
        sim.run(4, trajectory_every=1)
        assert len(sim.trajectory) == 4
        sim.run(2, trajectory_every=1)
        assert len(sim.trajectory) == 2

    @pytest.mark.parametrize("backend", sorted(BACKENDS), ids=sorted(BACKENDS))
    def test_held_trajectory_list_survives_a_new_capture(self, backend):
        """A trajectory handed out by one capture run must stay intact when
        a later run re-captures (the loop rebinds, never clears in place)."""
        atoms, box = _copper()
        sim = BACKENDS[backend](atoms, box)
        sim.run(4, trajectory_every=2)
        held = sim.trajectory
        first_frame = held[0].copy()
        sim.run(2, trajectory_every=1)
        assert sim.trajectory is not held
        assert len(held) == 2
        np.testing.assert_array_equal(held[0], first_frame)

    def test_public_force_and_virial_surfaces_do_not_alias_the_pool(self):
        """atoms.forces / last_virial keep their values across later steps
        even though the force-field outputs live in reused buffers."""
        from repro.deepmd import DeepPotential, DeepPotentialConfig
        from repro.deepmd.pair_style import DeepPotentialForceField

        config = DeepPotentialConfig(
            type_names=("Cu",), cutoff=4.5, cutoff_smooth=3.5, embedding_sizes=(6, 12),
            axis_neurons=4, fitting_sizes=(16, 16), max_neighbors=48, seed=0,
        )
        model = DeepPotential(config)
        rng = np.random.default_rng(0)
        model.set_descriptor_stats(
            rng.normal(scale=0.1, size=(1, config.descriptor_dim)),
            0.5 + rng.random((1, config.descriptor_dim)),
        )
        model.set_energy_bias(np.array([-1.0]))
        atoms, box = _copper()
        sim = Simulation(
            atoms.copy(), box, DeepPotentialForceField(model),
            timestep_fs=0.5, neighbor_skin=0.4, neighbor_every=5,
        )
        sim.run(3)
        held_forces = sim.atoms.forces.copy()
        held_virial = sim.last_virial
        held_virial_values = held_virial.copy()
        sim.run(3)
        # the held virial snapshot kept its values (it is not a pool buffer)
        np.testing.assert_array_equal(held_virial, held_virial_values)
        # forces moved on (the dynamics advanced) but never to transient
        # mid-compute garbage: the persistent array always holds a full result
        assert np.abs(sim.atoms.forces - held_forces).max() > 0.0
        assert np.all(np.isfinite(sim.atoms.forces))

    def test_engine_frames_are_independent_snapshots(self):
        """Captured frames must not alias the engine's reusable gather pool."""
        atoms, box = _copper()
        engine = _engine(atoms, box)
        engine.run(4, trajectory_every=2)
        first, second = engine.trajectory
        assert first is not second
        assert np.abs(first - second).max() > 0.0  # atoms moved between frames


# ---------------------------------------------------------------------------
# sampling / thermostat interplay (identical across backends)
# ---------------------------------------------------------------------------


class TestSamplingEdgeCases:
    @pytest.mark.parametrize("backend", sorted(BACKENDS), ids=sorted(BACKENDS))
    def test_sample_every_zero_records_nothing(self, backend):
        atoms, box = _copper()
        sim = BACKENDS[backend](atoms, box)
        report = sim.run(5, sample_every=0)
        assert report.n_steps == 5
        assert len(report.potential_energies) == 0
        assert len(report.temperatures) == 0
        assert report.final_potential_energy == 0.0
        assert report.mean_temperature == 0.0

    @pytest.mark.parametrize("backend", sorted(BACKENDS), ids=sorted(BACKENDS))
    def test_zero_steps_still_yields_a_report(self, backend):
        atoms, box = _copper()
        sim = BACKENDS[backend](atoms, box)
        report = sim.run(0)
        assert report.n_steps == 0
        assert len(report.potential_energies) == 0
        assert report.steps_per_second == 0.0
        assert report.energy_drift_per_atom(len(atoms)) == 0.0

    @pytest.mark.parametrize("backend", sorted(BACKENDS), ids=sorted(BACKENDS))
    def test_negative_steps_rejected(self, backend):
        atoms, box = _copper()
        sim = BACKENDS[backend](atoms, box)
        with pytest.raises(ValueError):
            sim.run(-1)

    def test_thermostat_applies_before_sampling_in_both_backends(self):
        """VelocityRescale pins the temperature *before* it is sampled, so
        every recorded temperature equals the target — in both loops."""
        target = 250.0
        atoms, box = _copper(temperature=500.0)
        for make in BACKENDS.values():
            sim = make(atoms, box, thermostat=VelocityRescale(target))
            report = sim.run(6)
            # n_dof uses 3N-3; rescale targets the same estimator
            np.testing.assert_allclose(report.temperatures, target, rtol=1e-10)

    def test_thermostatted_reports_match_across_backends(self):
        atoms, box = _copper(rng=4, temperature=600.0)
        serial = _serial(atoms, box, thermostat=BerendsenThermostat(300.0, coupling_fs=80.0))
        engine = _engine(atoms, box, thermostat=BerendsenThermostat(300.0, coupling_fs=80.0))
        serial_report = serial.run(10, sample_every=2)
        engine_report = engine.run(10, sample_every=2)
        np.testing.assert_allclose(
            engine_report.potential_energies,
            serial_report.potential_energies,
            rtol=0.0,
            atol=1e-10,
        )
        np.testing.assert_allclose(
            engine_report.temperatures, serial_report.temperatures, rtol=0.0, atol=1e-10
        )


# ---------------------------------------------------------------------------
# workspace (preallocated) vs reference (allocating) force-field paths
# ---------------------------------------------------------------------------


def _force_field_cases():
    atoms_cu, box_cu = copper_system((3, 3, 3), perturbation=0.08, rng=7)
    atoms_w, box_w, topology = water_system(32, rng=8, jitter=0.3)
    return [
        ("lj", LennardJones(0.05, 2.3, 5.0), atoms_cu, box_cu),
        ("morse", MorsePotential(cutoff=5.0), atoms_cu, box_cu),
        ("gupta", GuptaPotential(cutoff=5.0), atoms_cu, box_cu),
        ("water", WaterReference(topology, cutoff=4.0), atoms_w, box_w),
    ]


class TestWorkspaceParity:
    @pytest.mark.parametrize(
        "name, force_field, atoms, box",
        _force_field_cases(),
        ids=[case[0] for case in _force_field_cases()],
    )
    def test_workspace_path_matches_reference(self, name, force_field, atoms, box):
        data = build_neighbor_data(atoms.positions, box, force_field.cutoff, 0.4)
        reference = force_field.compute(atoms, box, data)
        workspace = Workspace()
        for _ in range(2):  # second call exercises fully warmed buffers
            fast = force_field.compute(atoms, box, data, workspace=workspace)
            assert fast.energy == pytest.approx(reference.energy, abs=1e-10)
            np.testing.assert_allclose(fast.forces, reference.forces, rtol=0.0, atol=1e-12)
            np.testing.assert_allclose(
                fast.per_atom_energy, reference.per_atom_energy, rtol=0.0, atol=1e-12
            )

    def test_workspace_trajectory_matches_reference_loop(self):
        """40 steps across rebuilds: pooled and allocating loops agree."""
        atoms, box = _copper(rng=11)
        pooled = _serial(atoms, box, use_workspace=True)
        reference = _serial(atoms, box, use_workspace=False)
        pooled.run(40)
        reference.run(40)
        np.testing.assert_allclose(
            pooled.atoms.positions, reference.atoms.positions, rtol=0.0, atol=1e-10
        )
        np.testing.assert_allclose(
            pooled.atoms.velocities, reference.atoms.velocities, rtol=0.0, atol=1e-10
        )

    def test_steady_state_buffers_are_reused(self):
        atoms, box = _copper()
        sim = _serial(atoms, box, neighbor_every=0)
        sim.run(5)
        misses = sim.workspace.misses
        sim.run(10)
        assert sim.workspace.misses == misses, "steady-state steps must not reallocate"
        assert sim.workspace.hits > 0

    def test_workspace_buffer_semantics(self):
        w = Workspace()
        a = w.zeros("a", (4, 3))
        assert w.misses == 1
        a[:] = 5.0
        b = w.zeros("a", (4, 3))
        assert b is a and b.sum() == 0.0 and w.hits == 1
        # shape change reallocates; capacity buffers only grow
        c = w.buffer("a", (6, 3))
        assert c is not a and w.misses == 2
        v1 = w.capacity("p", 10, (3,))
        v2 = w.capacity("p", 8, (3,))
        assert v2.base is v1.base and v2.shape == (8, 3)
        v3 = w.capacity("p", 40, (3,))
        assert v3.base is not v1.base


# ---------------------------------------------------------------------------
# shared validation / report assembly
# ---------------------------------------------------------------------------


class TestSharedValidation:
    def test_cutoff_validation_is_shared(self):
        class NoCutoff:
            cutoff = 0.0

        with pytest.raises(ValueError):
            validate_cutoff(NoCutoff())
        atoms, box = _copper()
        for make_backend in (Simulation, DomainDecomposedSimulation):
            with pytest.raises(ValueError, match="positive cutoff"):
                make_backend(atoms.copy(), box, NoCutoff(), timestep_fs=1.0)

    def test_force_field_info_harvesting_is_shared(self):
        assert harvest_force_field_info(LennardJones(0.05, 2.3, 5.0)) == {}

        class Described:
            cutoff = 5.0

            def describe(self):
                return {"path": "x"}

        assert harvest_force_field_info(Described()) == {"path": "x"}

    def test_phase_seconds_is_a_per_run_breakdown(self):
        atoms, box = _copper()
        sim = _serial(atoms, box)
        report = sim.run(6)
        assert {"pair", "neigh", "integrate"} <= set(report.phase_seconds)
        assert sum(report.phase_seconds.values()) == pytest.approx(report.elapsed_seconds)
        second = sim.run(6)
        # per-run: the cumulative timers keep growing but the breakdown is new
        assert sum(second.phase_seconds.values()) == pytest.approx(second.elapsed_seconds)
        assert second.timers.total() > sum(second.phase_seconds.values())
