"""Reference-parity harness: the vectorized Deep Potential inference hot path
is pinned to the scalar (per-atom loop) golden implementation.

Coverage:

* environment matrices — vectorized :func:`build_local_environment` vs the
  scalar :func:`build_local_environment_scalar`, exact to the bit,
* descriptors, per-atom energies, forces and the virial — batched
  :meth:`DeepPotential.evaluate` vs :func:`evaluate_scalar`, to 1e-10 in
  double precision,
* the documented mixed-precision tolerances (MIX-fp32 / MIX-fp16),
* edge cases: an atom with zero neighbours, a fully used padding row, and a
  padding budget smaller than the true neighbour count,

across >= 5 random seeds on both benchmark chemistries (water and copper).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.deepmd import (
    MIX_FP16,
    MIX_FP32,
    DeepPotential,
    DeepPotentialConfig,
    build_local_environment,
    build_local_environment_scalar,
)
from repro.deepmd.scalar import atom_raw_descriptor
from repro.md import Box, copper_system, water_system
from repro.md.atoms import Atoms
from repro.md.neighbor import build_neighbor_data

SEEDS = [0, 1, 2, 3, 4]

#: Double-precision parity bound between the batched and scalar paths.
DOUBLE_ATOL = 1.0e-10
#: Documented single-precision (MIX-fp32) deviation bounds vs the double
#: scalar reference (measured ~5e-9 forces / ~1e-7 energies; ~100x margin).
FP32_FORCE_ATOL = 1.0e-6
FP32_ENERGY_ATOL = 1.0e-5
#: Documented MIX-fp16 bounds (measured ~1e-5 forces / ~2e-4 energies).
FP16_FORCE_ATOL = 1.0e-3
FP16_ENERGY_ATOL = 1.0e-2
#: Compressed-path MIX-fp32 force bound vs the *same-path* fp64 golden
#: (measured ~7e-7: the fp32 rounding of the packed Hermite nodes dominates
#: over the GEMM rounding).  The compressed reference is the fp64 compressed
#: evaluate — the tabulation error itself is pinned separately by
#: ``tests/test_deepmd_compression.py`` and can exceed these bounds wherever
#: s leaves the tabulated range (constant extrapolation), which is a table
#: property, not a precision one.
COMPRESSED_FP32_FORCE_ATOL = 5.0e-6

ENV_FIELDS = (
    "R",
    "displacements",
    "distances",
    "s",
    "ds_dr",
    "mask",
    "neighbor_indices",
    "neighbor_types",
    "types",
)


def make_system(kind: str, seed: int):
    """A small periodic system plus cutoffs that respect its minimum image."""
    if kind == "water":
        atoms, box, _ = water_system(32, rng=seed)
        return atoms, box, 4.2, 3.4
    atoms, box = copper_system((2, 2, 2), perturbation=0.10, rng=seed)
    return atoms, box, 3.4, 2.8


def make_model(kind: str, seed: int, cutoff: float, cutoff_smooth: float, max_neighbors: int = 64):
    """A tiny untrained model with non-trivial stats and biases."""
    type_names = ("O", "H") if kind == "water" else ("Cu",)
    config = DeepPotentialConfig(
        type_names=type_names,
        cutoff=cutoff,
        cutoff_smooth=cutoff_smooth,
        embedding_sizes=(6, 12),
        axis_neurons=4,
        fitting_sizes=(16, 16),
        max_neighbors=max_neighbors,
        seed=seed,
    )
    model = DeepPotential(config)
    rng = np.random.default_rng(1000 + seed)
    n_types = config.n_types
    model.set_descriptor_stats(
        rng.normal(scale=0.1, size=(n_types, config.descriptor_dim)),
        0.5 + rng.random((n_types, config.descriptor_dim)),
    )
    model.set_energy_bias(rng.normal(size=n_types))
    return model


def assert_env_equal(env_a, env_b):
    for name in ENV_FIELDS:
        np.testing.assert_array_equal(
            getattr(env_a, name), getattr(env_b, name), err_msg=f"field {name}"
        )


class TestEnvironmentMatrixParity:
    @pytest.mark.parametrize("kind", ["water", "copper"])
    @pytest.mark.parametrize("seed", SEEDS)
    def test_vectorized_matches_scalar_exactly(self, kind, seed):
        atoms, box, cutoff, smooth = make_system(kind, seed)
        neighbors = build_neighbor_data(atoms.positions, box, cutoff, skin=0.2)
        for max_nei in (None, 64, 8):
            for sort in (True, False):
                env_vec = build_local_environment(
                    atoms, box, neighbors, cutoff, smooth,
                    max_neighbors=max_nei, sort_neighbors_by_type=sort,
                )
                env_ref = build_local_environment_scalar(
                    atoms, box, neighbors, cutoff, smooth,
                    max_neighbors=max_nei, sort_neighbors_by_type=sort,
                )
                assert_env_equal(env_vec, env_ref)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_padding_wider_than_neighbor_table(self, seed):
        atoms, box, cutoff, smooth = make_system("copper", seed)
        neighbors = build_neighbor_data(atoms.positions, box, cutoff)
        wide = neighbors.max_neighbors + 17
        env_vec = build_local_environment(atoms, box, neighbors, cutoff, smooth, max_neighbors=wide)
        env_ref = build_local_environment_scalar(atoms, box, neighbors, cutoff, smooth, max_neighbors=wide)
        assert_env_equal(env_vec, env_ref)
        # the extra slots are pure padding
        assert np.all(env_vec.mask[:, neighbors.max_neighbors:] == 0.0)


class TestInferenceParity:
    @pytest.mark.parametrize("kind", ["water", "copper"])
    @pytest.mark.parametrize("seed", SEEDS)
    def test_double_precision_parity(self, kind, seed):
        atoms, box, cutoff, smooth = make_system(kind, seed)
        model = make_model(kind, seed, cutoff, smooth)
        neighbors = build_neighbor_data(atoms.positions, box, cutoff)
        out_vec = model.evaluate(atoms, box, neighbors)
        out_ref = model.evaluate_scalar(atoms, box, neighbors)
        np.testing.assert_allclose(
            out_vec.per_atom_energy, out_ref.per_atom_energy, rtol=0.0, atol=DOUBLE_ATOL
        )
        np.testing.assert_allclose(out_vec.forces, out_ref.forces, rtol=0.0, atol=DOUBLE_ATOL)
        np.testing.assert_allclose(out_vec.virial, out_ref.virial, rtol=0.0, atol=DOUBLE_ATOL)
        assert abs(out_vec.energy - out_ref.energy) < DOUBLE_ATOL * len(atoms)

    @pytest.mark.parametrize("kind", ["water", "copper"])
    def test_descriptor_parity(self, kind):
        seed = 11
        atoms, box, cutoff, smooth = make_system(kind, seed)
        model = make_model(kind, seed, cutoff, smooth)
        neighbors = build_neighbor_data(atoms.positions, box, cutoff)
        env = model.build_environment(atoms, box, neighbors)
        for center_type in range(model.n_types):
            batched = model.compute_raw_descriptors(env, center_type)
            idx = np.nonzero(env.types == center_type)[0]
            for row, i in enumerate(idx):
                scalar = atom_raw_descriptor(model, env, int(i))
                np.testing.assert_allclose(batched[row], scalar, rtol=0.0, atol=DOUBLE_ATOL)

    @pytest.mark.parametrize("compressed", [False, True], ids=["uncompressed", "compressed"])
    @pytest.mark.parametrize("seed", SEEDS)
    def test_mixed_precision_documented_tolerances(self, seed, compressed):
        """MIX policies vs the fp64 golden of the *same* inference path.

        Uncompressed mixed runs are pinned to the scalar golden reference;
        compressed mixed runs are pinned to the fp64 compressed evaluate, so
        the bound isolates the precision error from the (separately pinned)
        tabulation error.
        """
        atoms, box, cutoff, smooth = make_system("water", seed)
        model = make_model("water", seed, cutoff, smooth)
        neighbors = build_neighbor_data(atoms.positions, box, cutoff)
        if compressed:
            out_ref = model.evaluate(atoms, box, neighbors, compressed=True)
        else:
            out_ref = model.evaluate_scalar(atoms, box, neighbors)
        fp32_force_atol = COMPRESSED_FP32_FORCE_ATOL if compressed else FP32_FORCE_ATOL
        for policy, force_atol, energy_atol in (
            (MIX_FP32, fp32_force_atol, FP32_ENERGY_ATOL),
            (MIX_FP16, FP16_FORCE_ATOL, FP16_ENERGY_ATOL),
        ):
            out = model.evaluate(atoms, box, neighbors, precision=policy, compressed=compressed)
            np.testing.assert_allclose(out.forces, out_ref.forces, rtol=0.0, atol=force_atol)
            np.testing.assert_allclose(
                out.per_atom_energy, out_ref.per_atom_energy, rtol=0.0, atol=energy_atol
            )

    @pytest.mark.parametrize("kind", ["water", "copper"])
    def test_newton_third_law_and_translation_invariance(self, kind):
        seed = 3
        atoms, box, cutoff, smooth = make_system(kind, seed)
        model = make_model(kind, seed, cutoff, smooth)
        neighbors = build_neighbor_data(atoms.positions, box, cutoff)
        out = model.evaluate(atoms, box, neighbors)
        np.testing.assert_allclose(out.forces.sum(axis=0), np.zeros(3), atol=1.0e-9)

        shifted = atoms.copy()
        shifted.positions = box.wrap(shifted.positions + np.array([1.3, -0.7, 2.1]))
        neighbors_shifted = build_neighbor_data(shifted.positions, box, cutoff)
        out_shifted = model.evaluate(shifted, box, neighbors_shifted)
        assert abs(out.energy - out_shifted.energy) < 1.0e-8


class TestPairStyleAndSimulationThreading:
    """The vectorized path is what the MD stack drives by default, and the
    scalar golden path stays reachable end-to-end."""

    def test_pair_style_paths_agree(self):
        from repro.deepmd import DeepPotentialForceField

        atoms, box, cutoff, smooth = make_system("copper", 5)
        model = make_model("copper", 5, cutoff, smooth)
        neighbors = build_neighbor_data(atoms.positions, box, cutoff)

        fast = DeepPotentialForceField(model)
        golden = DeepPotentialForceField(model, use_scalar_reference=True)
        assert fast.path == "vectorized"
        assert golden.path == "scalar-reference"
        assert fast.describe()["path"] == "vectorized"

        out_fast = fast.compute(atoms, box, neighbors)
        out_golden = golden.compute(atoms, box, neighbors)
        np.testing.assert_allclose(out_fast.forces, out_golden.forces, rtol=0.0, atol=DOUBLE_ATOL)
        np.testing.assert_allclose(out_fast.virial, out_golden.virial, rtol=0.0, atol=DOUBLE_ATOL)
        assert out_fast.virial is not None

        with pytest.raises(ValueError):
            DeepPotentialForceField(model, use_framework=True, use_scalar_reference=True)

    def test_simulation_records_inference_path_and_virial(self):
        from repro.deepmd import DeepPotentialForceField
        from repro.md.simulation import Simulation

        atoms, box, cutoff, smooth = make_system("copper", 6)
        model = make_model("copper", 6, cutoff, smooth)
        sim = Simulation(
            atoms=atoms,
            box=box,
            force_field=DeepPotentialForceField(model),
            timestep_fs=0.5,
            neighbor_skin=0.2,
        )
        report = sim.run(2)
        assert report.force_field_info["path"] == "vectorized"
        assert sim.last_virial is not None and sim.last_virial.shape == (3, 3)


class TestEdgeCases:
    def _isolated_plus_cluster(self):
        """Ten clustered atoms plus one atom out of everyone's cutoff."""
        rng = np.random.default_rng(42)
        box = Box.cubic(30.0)
        cluster = 12.0 + rng.random((10, 3)) * 3.0
        loner = np.array([[2.0, 2.0, 2.0]])
        positions = np.vstack([cluster, loner])
        types = np.zeros(len(positions), dtype=np.int64)
        atoms = Atoms(
            positions=positions,
            types=types,
            masses=np.full(len(positions), 63.5),
            type_names=("Cu",),
        )
        return atoms, box

    def test_atom_with_zero_neighbors(self):
        atoms, box = self._isolated_plus_cluster()
        cutoff, smooth = 4.5, 3.5
        model = make_model("copper", 0, cutoff, smooth, max_neighbors=16)
        neighbors = build_neighbor_data(atoms.positions, box, cutoff)
        env_vec = build_local_environment(atoms, box, neighbors, cutoff, smooth, max_neighbors=16)
        env_ref = build_local_environment_scalar(
            atoms, box, neighbors, cutoff, smooth, max_neighbors=16
        )
        assert_env_equal(env_vec, env_ref)
        assert env_vec.neighbor_counts()[-1] == 0
        assert np.all(env_vec.R[-1] == 0.0)

        out_vec = model.evaluate(atoms, box, neighbors)
        out_ref = model.evaluate_scalar(atoms, box, neighbors)
        np.testing.assert_allclose(out_vec.forces, out_ref.forces, rtol=0.0, atol=DOUBLE_ATOL)
        np.testing.assert_allclose(
            out_vec.per_atom_energy, out_ref.per_atom_energy, rtol=0.0, atol=DOUBLE_ATOL
        )
        # the isolated atom feels no force and only the bias-shifted constant energy
        np.testing.assert_allclose(out_vec.forces[-1], np.zeros(3), atol=1.0e-12)
        assert np.isfinite(out_vec.energy)

    def test_full_padding_row_and_truncation(self):
        atoms, box, cutoff, smooth = make_system("copper", 8)
        neighbors = build_neighbor_data(atoms.positions, box, cutoff)
        env_probe = build_local_environment(atoms, box, neighbors, cutoff, smooth)
        densest = int(env_probe.neighbor_counts().max())
        assert densest >= 2

        # max_neighbors exactly at the densest row: at least one row has no
        # padding at all.
        env_vec = build_local_environment(
            atoms, box, neighbors, cutoff, smooth, max_neighbors=densest
        )
        env_ref = build_local_environment_scalar(
            atoms, box, neighbors, cutoff, smooth, max_neighbors=densest
        )
        assert_env_equal(env_vec, env_ref)
        assert np.any(env_vec.mask.sum(axis=1) == densest)

        # padding budget below the true neighbour count: both paths keep the
        # same closest neighbours.
        env_vec = build_local_environment(
            atoms, box, neighbors, cutoff, smooth, max_neighbors=densest - 1
        )
        env_ref = build_local_environment_scalar(
            atoms, box, neighbors, cutoff, smooth, max_neighbors=densest - 1
        )
        assert_env_equal(env_vec, env_ref)
        assert env_vec.max_neighbors == densest - 1

        model = make_model("copper", 8, cutoff, smooth, max_neighbors=densest)
        out_vec = model.evaluate(atoms, box, neighbors)
        out_ref = model.evaluate_scalar(atoms, box, neighbors)
        np.testing.assert_allclose(out_vec.forces, out_ref.forces, rtol=0.0, atol=DOUBLE_ATOL)
