"""Thin wrapper over :mod:`logging` giving the package a uniform format."""

from __future__ import annotations

import logging

_FORMAT = "%(asctime)s %(name)s %(levelname)s: %(message)s"
_configured = False


def _configure_root() -> None:
    global _configured
    if _configured:
        return
    handler = logging.StreamHandler()
    handler.setFormatter(logging.Formatter(_FORMAT))
    root = logging.getLogger("repro")
    if not root.handlers:
        root.addHandler(handler)
    root.setLevel(logging.WARNING)
    _configured = True


def get_logger(name: str) -> logging.Logger:
    """Return a logger under the ``repro`` namespace."""
    _configure_root()
    if not name.startswith("repro"):
        name = f"repro.{name}"
    return logging.getLogger(name)


def set_verbosity(level: int | str) -> None:
    """Set the package-wide log level (e.g. ``logging.INFO`` or ``"DEBUG"``)."""
    _configure_root()
    logging.getLogger("repro").setLevel(level)
