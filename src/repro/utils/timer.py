"""Wall-clock timers with LAMMPS-style per-phase accounting.

The MD engine reports a timing breakdown similar to LAMMPS' ``Pair``, ``Neigh``,
``Comm``, ``Other`` summary.  ``PhaseTimer`` accumulates seconds per named
phase; ``Timer`` is a simple context-manager stopwatch.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field


@dataclass
class Timer:
    """A simple stopwatch; use as a context manager or via start/stop."""

    elapsed: float = 0.0
    _start: float | None = None

    def start(self) -> None:
        self._start = time.perf_counter()

    def stop(self) -> float:
        if self._start is None:
            raise RuntimeError("timer was not started")
        delta = time.perf_counter() - self._start
        self.elapsed += delta
        self._start = None
        return delta

    def reset(self) -> None:
        self.elapsed = 0.0
        self._start = None

    def __enter__(self) -> "Timer":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


@dataclass
class PhaseTimer:
    """Accumulates elapsed wall-clock time per named phase.

    Example
    -------
    >>> timers = PhaseTimer()
    >>> with timers.phase("pair"):
    ...     pass
    >>> "pair" in timers.totals
    True
    """

    totals: dict[str, float] = field(default_factory=dict)
    counts: dict[str, int] = field(default_factory=dict)

    @contextmanager
    def phase(self, name: str):
        start = time.perf_counter()
        try:
            yield
        finally:
            delta = time.perf_counter() - start
            self.add(name, delta)

    def add(self, name: str, seconds: float) -> None:
        """Record ``seconds`` against phase ``name`` (also used by cost models)."""
        self.totals[name] = self.totals.get(name, 0.0) + seconds
        self.counts[name] = self.counts.get(name, 0) + 1

    def total(self) -> float:
        return sum(self.totals.values())

    def snapshot(self) -> dict[str, float]:
        """A frozen copy of the per-phase totals (for per-run deltas)."""
        return dict(self.totals)

    def totals_since(self, snapshot: dict[str, float]) -> dict[str, float]:
        """Per-phase seconds accumulated since ``snapshot`` was taken.

        The run-loop core uses this to report each ``run`` call's own phase
        breakdown while the timer itself keeps accumulating across runs.
        """
        return {
            name: secs - snapshot.get(name, 0.0)
            for name, secs in self.totals.items()
            if secs - snapshot.get(name, 0.0) > 0.0
        }

    def fraction(self, name: str) -> float:
        tot = self.total()
        if tot == 0.0:
            return 0.0
        return self.totals.get(name, 0.0) / tot

    def reset(self) -> None:
        self.totals.clear()
        self.counts.clear()

    def summary(self) -> str:
        """LAMMPS-style breakdown string sorted by descending time."""
        tot = self.total()
        lines = ["%-12s %12s %8s" % ("phase", "seconds", "%")]
        for name, secs in sorted(self.totals.items(), key=lambda kv: -kv[1]):
            pct = 100.0 * secs / tot if tot else 0.0
            lines.append("%-12s %12.6f %7.2f%%" % (name, secs, pct))
        lines.append("%-12s %12.6f %7.2f%%" % ("total", tot, 100.0 if tot else 0.0))
        return "\n".join(lines)

    def merge(self, other: "PhaseTimer") -> "PhaseTimer":
        """Return a new PhaseTimer holding the sum of both breakdowns."""
        merged = PhaseTimer()
        for src in (self, other):
            for name, secs in src.totals.items():
                merged.totals[name] = merged.totals.get(name, 0.0) + secs
            for name, cnt in src.counts.items():
                merged.counts[name] = merged.counts.get(name, 0) + cnt
        return merged
