"""Small shared utilities: RNG helpers, phase timers, ASCII tables, logging."""

from .rng import default_rng, spawn_rngs
from .timer import PhaseTimer, Timer
from .tables import Table, format_table
from .logging import get_logger

__all__ = [
    "default_rng",
    "spawn_rngs",
    "PhaseTimer",
    "Timer",
    "Table",
    "format_table",
    "get_logger",
]
