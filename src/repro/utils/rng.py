"""Seeded random number generator helpers.

All stochastic components of the package (velocity initialization, thermostat
noise, network initialization, workload jitter) accept either an integer seed
or a ``numpy.random.Generator``.  These helpers normalize that choice so that
experiments are reproducible end to end.
"""

from __future__ import annotations

import numpy as np

RngLike = "int | np.random.Generator | None"


def default_rng(seed=None) -> np.random.Generator:
    """Return a ``numpy.random.Generator``.

    ``seed`` may be ``None`` (non-deterministic), an integer, or an existing
    generator (returned unchanged so RNG state can be threaded through call
    chains without re-seeding).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed, n: int) -> list[np.random.Generator]:
    """Create ``n`` statistically independent child generators.

    Used when a simulation component (e.g. per-rank workload jitter, or the
    per-rank streams of the multiprocess executor's worker ranks) needs one
    stream per simulated MPI rank while remaining reproducible regardless of
    evaluation order.

    ``seed`` may be an integer, ``None``, or an existing ``Generator``.  When a
    generator is passed, the child entropy is drawn *from that generator's
    stream* (``bit_generator.random_raw``), so two generators in the same
    state spawn identical children — previously this case silently fell back
    to ``SeedSequence(None)`` (fresh OS entropy) and was irreproducible.  Note
    that deriving the entropy advances the parent generator.
    """
    if n < 0:
        raise ValueError("number of streams must be non-negative")
    if isinstance(seed, np.random.Generator):
        entropy = [int(word) for word in seed.bit_generator.random_raw(4)]
        root = np.random.SeedSequence(entropy)
    else:
        root = np.random.SeedSequence(seed)
    return [np.random.default_rng(s) for s in root.spawn(n)]


def random_unit_vectors(rng: np.random.Generator, n: int) -> np.ndarray:
    """``n`` uniformly distributed unit vectors, shape ``(n, 3)``."""
    v = rng.normal(size=(n, 3))
    norms = np.linalg.norm(v, axis=1, keepdims=True)
    norms[norms == 0.0] = 1.0
    return v / norms
