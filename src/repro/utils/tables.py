"""ASCII table formatting used by the benchmark harnesses.

Every benchmark in ``benchmarks/`` regenerates one table or figure from the
paper; the harness prints the rows/series in plain text so the output can be
compared side-by-side with the published numbers.  ``Table`` keeps the data as
rows of Python values and renders them with aligned columns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence


def _fmt(value: Any, floatfmt: str) -> str:
    if isinstance(value, float):
        return format(value, floatfmt)
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    floatfmt: str = ".4g",
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as a fixed-width ASCII table."""
    rendered = [[_fmt(v, floatfmt) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in rendered:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


@dataclass
class Table:
    """A named table with typed rows, convertible to text or dict records."""

    headers: list[str]
    title: str | None = None
    rows: list[list[Any]] = field(default_factory=list)

    def add_row(self, *values: Any) -> None:
        if len(values) != len(self.headers):
            raise ValueError(
                f"expected {len(self.headers)} values, got {len(values)}"
            )
        self.rows.append(list(values))

    def to_text(self, floatfmt: str = ".4g") -> str:
        return format_table(self.headers, self.rows, floatfmt=floatfmt, title=self.title)

    def to_records(self) -> list[dict[str, Any]]:
        return [dict(zip(self.headers, row)) for row in self.rows]

    def column(self, name: str) -> list[Any]:
        try:
            idx = self.headers.index(name)
        except ValueError as exc:
            raise KeyError(f"no column named {name!r}") from exc
        return [row[idx] for row in self.rows]

    def __len__(self) -> int:
        return len(self.rows)
