"""GEMM back-ends for the framework-free kernels.

§III-B.2 of the paper replaces the BLAS GEMM of the fitting net with a
hand-written SVE-512 kernel specialized for tall-and-skinny inputs (M <= 3
rows once each core only holds one or two atoms), and pre-transposes the
parameter matrices so the backward pass uses NN instead of NT products.

Running on commodity hardware we cannot execute SVE instructions, so the two
back-ends here are *numerically identical* (both ultimately call NumPy), but
they differ in

* how the multiplication is organised (the ``sve`` backend reproduces the
  row-broadcast multiply-accumulate structure of the kernel, and only engages
  when the M dimension is at most :attr:`GemmBackend.sve_m_threshold`, exactly
  like the real implementation),
* the *accounting*: FLOPs, the precision used, and whether an NT or NN product
  was issued are all recorded in :class:`GemmStats`, which the performance
  model (:mod:`repro.perfmodel`) converts into modelled execution time with
  the per-backend efficiencies reported in the paper (sve-gemm 1.4x over
  BLAS, fp32 1.6x over fp64, fp16 1.5x over fp32).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

#: dtype aliases accepted by the precision policies.
DTYPES = {
    "fp64": np.float64,
    "fp32": np.float32,
    "fp16": np.float16,
}


@dataclass
class GemmStats:
    """Accumulated accounting of GEMM work."""

    flops: float = 0.0
    flops_by_dtype: dict[str, float] = field(default_factory=dict)
    calls: int = 0
    nn_calls: int = 0
    nt_calls: int = 0
    sve_calls: int = 0
    blas_calls: int = 0
    tall_skinny_calls: int = 0
    #: bytes of operand data down/up-cast *inside* :meth:`GemmBackend.matmul`
    #: because an operand arrived in a dtype other than the compute dtype.
    #: The true mixed-precision fast path pre-casts its parameter matrices
    #: once (see :meth:`repro.deepmd.networks.FastMLP.operands`), so in steady
    #: state this counts only activation casts — the regression tests pin it.
    cast_bytes: float = 0.0

    def record(self, m: int, n: int, k: int, dtype: str, transposed_b: bool, used_sve: bool) -> None:
        flops = 2.0 * m * n * k
        self.flops += flops
        self.flops_by_dtype[dtype] = self.flops_by_dtype.get(dtype, 0.0) + flops
        self.calls += 1
        if transposed_b:
            self.nt_calls += 1
        else:
            self.nn_calls += 1
        if used_sve:
            self.sve_calls += 1
        else:
            self.blas_calls += 1
        if m <= 3:
            self.tall_skinny_calls += 1

    def reset(self) -> None:
        self.flops = 0.0
        self.flops_by_dtype.clear()
        self.calls = 0
        self.nn_calls = 0
        self.nt_calls = 0
        self.sve_calls = 0
        self.blas_calls = 0
        self.tall_skinny_calls = 0
        self.cast_bytes = 0.0

    def merge(self, other: "GemmStats") -> None:
        self.flops += other.flops
        for k, v in other.flops_by_dtype.items():
            self.flops_by_dtype[k] = self.flops_by_dtype.get(k, 0.0) + v
        self.calls += other.calls
        self.nn_calls += other.nn_calls
        self.nt_calls += other.nt_calls
        self.sve_calls += other.sve_calls
        self.blas_calls += other.blas_calls
        self.tall_skinny_calls += other.tall_skinny_calls
        self.cast_bytes += other.cast_bytes


def _dtype_name(dtype) -> str:
    for name, dt in DTYPES.items():
        if np.dtype(dtype) == np.dtype(dt):
            return name
    return str(np.dtype(dtype))


def _sve_like_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Row-broadcast multiply-accumulate, mirroring the SVE kernel structure.

    Each element ``a[i, k]`` is broadcast against row ``b[k, :]`` and
    accumulated (the svmla pattern).  For the tall-and-skinny shapes this is
    the same arithmetic as a dot product, just organised the way the paper's
    kernel organises it.
    """
    m, k = a.shape
    k2, n = b.shape
    assert k == k2
    out = np.zeros((m, n), dtype=np.result_type(a.dtype, b.dtype))
    for row in range(m):
        # One pass of MLA accumulations over the K dimension.
        out[row] = (a[row][:, None] * b).sum(axis=0)
    return out


@dataclass
class GemmBackend:
    """Executes (and accounts) the GEMM calls of the fast kernels.

    Parameters
    ----------
    kind:
        ``"blas"`` (plain NumPy dot) or ``"sve"`` (row-broadcast kernel for
        tall-and-skinny inputs, falling back to BLAS above the threshold —
        the same switch the paper uses).
    pretranspose:
        when true, callers are expected to supply pre-transposed parameter
        matrices so backward products are NN; :meth:`matmul` records NT calls
        otherwise.  (The numerical result is identical either way.)
    sve_m_threshold:
        maximum M dimension for which the sve kernel engages (3 in the paper).
    """

    kind: str = "blas"
    pretranspose: bool = True
    sve_m_threshold: int = 3
    stats: GemmStats = field(default_factory=GemmStats)

    def __post_init__(self) -> None:
        if self.kind not in ("blas", "sve"):
            raise ValueError("gemm backend kind must be 'blas' or 'sve'")

    def matmul(
        self,
        a: np.ndarray,
        b: np.ndarray,
        dtype=np.float64,
        transposed_b: bool = False,
        native_out: bool = False,
    ) -> np.ndarray:
        """Compute ``a @ b`` (or ``a @ b.T`` when ``transposed_b``).

        ``dtype`` is the compute precision: inputs not already at that
        precision are cast (the cast traffic is charged to
        ``stats.cast_bytes``) and the product is accumulated at that
        precision.  With ``native_out=True`` — the mixed-precision fast path —
        the result stays in the compute dtype so low-precision activations
        flow between layers without a round trip through float64; otherwise
        the result is returned in float64 so downstream bookkeeping stays
        simple (the precision loss has already happened, which is what
        matters for accuracy experiments).

        Callers on the hot path are expected to supply operands *already* in
        the compute dtype (pre-cast parameter matrices, native activations);
        the per-call ``astype`` here is a compatibility fallback, not the
        production route.
        """
        a = np.asarray(a)
        b = np.asarray(b)
        if transposed_b:
            b_eff = b.T
        else:
            b_eff = b
        if a.ndim != 2 or b_eff.ndim != 2:
            raise ValueError("GemmBackend.matmul expects 2-D operands")
        m, k = a.shape
        k2, n = b_eff.shape
        if k != k2:
            raise ValueError(f"inner dimensions mismatch: {a.shape} x {b_eff.shape}")

        dt = np.dtype(dtype)
        if a.dtype != dt:
            self.stats.cast_bytes += float(a.nbytes)
        if b_eff.dtype != dt:
            self.stats.cast_bytes += float(b_eff.nbytes)
        a_cast = a.astype(dt, copy=False)
        b_cast = b_eff.astype(dt, copy=False)
        use_sve = self.kind == "sve" and m <= self.sve_m_threshold
        if use_sve:
            out = _sve_like_matmul(a_cast, b_cast)
        else:
            out = a_cast @ b_cast
        self.stats.record(m, n, k, _dtype_name(dtype), transposed_b, use_sve)
        if native_out:
            return out
        return out.astype(np.float64, copy=False)

    def reset_stats(self) -> None:
        self.stats.reset()
