"""Model compression: tabulated embedding networks.

Guo et al. (PPoPP'22) — the baseline this paper builds on — compress the
embedding network by tabulating G(s) on a fine grid and replacing the MLP
evaluation with piecewise polynomial interpolation, which removes most of the
embedding-net GEMMs.  :class:`TabulatedEmbeddingSet` reproduces that scheme
with cubic Hermite interpolation: values and derivatives are stored per grid
node, so both G(s) and dG/ds (needed by the force computation) are obtained
directly from the table.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .networks import FastMLP


@dataclass
class _Table:
    grid: np.ndarray  # (K,)
    values: np.ndarray  # (K, M)
    derivatives: np.ndarray  # (K, M)

    @property
    def width(self) -> int:
        return self.values.shape[1]


class TabulatedEmbeddingSet:
    """Tabulated (compressed) versions of every embedding net.

    Parameters
    ----------
    fast_embeddings:
        exported :class:`FastMLP` embedding nets keyed by (centre, neighbour)
        type pair.
    s_max:
        upper end of the tabulated range of the switching function; s(r) is
        bounded by 1/r_cs so a safe default can be derived from the model
        cutoffs.
    n_points:
        number of grid nodes (the original implementation uses a stride of
        1e-2 split into a coarse and a fine table; a single uniform grid is
        enough to reproduce both the numerics and the cost structure).
    """

    def __init__(
        self,
        fast_embeddings: dict[tuple[int, int], FastMLP],
        s_max: float,
        n_points: int = 1024,
        derivative_step: float = 1.0e-4,
    ) -> None:
        if s_max <= 0:
            raise ValueError("s_max must be positive")
        if n_points < 4:
            raise ValueError("need at least 4 grid points")
        self.s_max = float(s_max)
        self.n_points = int(n_points)
        self.tables: dict[tuple[int, int], _Table] = {}
        grid = np.linspace(0.0, self.s_max, self.n_points)
        for key, net in fast_embeddings.items():
            values = net.forward(grid[:, None], cache=False)
            plus = net.forward((grid + derivative_step)[:, None], cache=False)
            minus = net.forward((grid - derivative_step)[:, None], cache=False)
            derivatives = (plus - minus) / (2.0 * derivative_step)
            self.tables[key] = _Table(grid=grid, values=values, derivatives=derivatives)

    @property
    def width(self) -> int:
        return next(iter(self.tables.values())).width

    def evaluate(self, key: tuple[int, int], s: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Interpolated ``(G, dG/ds)`` for the scalar inputs ``s``.

        Values outside the tabulated range are clamped to the end nodes (the
        switching function is bounded, so this only happens for padding).
        """
        table = self.tables[key]
        s = np.asarray(s, dtype=np.float64).reshape(-1)
        grid = table.grid
        h = grid[1] - grid[0]
        clamped = np.clip(s, grid[0], grid[-1])
        idx = np.minimum((clamped - grid[0]) / h, len(grid) - 2).astype(int)
        t = (clamped - grid[idx]) / h

        y0 = table.values[idx]
        y1 = table.values[idx + 1]
        d0 = table.derivatives[idx] * h
        d1 = table.derivatives[idx + 1] * h

        t = t[:, None]
        t2 = t * t
        t3 = t2 * t
        h00 = 2.0 * t3 - 3.0 * t2 + 1.0
        h10 = t3 - 2.0 * t2 + t
        h01 = -2.0 * t3 + 3.0 * t2
        h11 = t3 - t2
        values = h00 * y0 + h10 * d0 + h01 * y1 + h11 * d1

        dh00 = (6.0 * t2 - 6.0 * t) / h
        dh10 = (3.0 * t2 - 4.0 * t + 1.0) / h
        dh01 = (-6.0 * t2 + 6.0 * t) / h
        dh11 = (3.0 * t2 - 2.0 * t) / h
        derivs = dh00 * y0 + dh10 * d0 + dh01 * y1 + dh11 * d1
        return values, derivs

    def max_interpolation_error(self, key: tuple[int, int], net: FastMLP, n_samples: int = 512, rng=None) -> float:
        """Max |table - net| over random samples, a compression-quality metric."""
        rng = np.random.default_rng(rng)
        s = rng.uniform(0.0, self.s_max, size=n_samples)
        exact = net.forward(s[:, None], cache=False)
        approx, _ = self.evaluate(key, s)
        return float(np.max(np.abs(exact - approx)))
