"""Model compression: tabulated embedding networks.

Guo et al. (PPoPP'22) — the baseline this paper builds on — compress the
embedding network by tabulating G(s) on a fine grid and replacing the MLP
evaluation with piecewise polynomial interpolation, which removes most of the
embedding-net GEMMs.  :class:`TabulatedEmbeddingSet` reproduces that scheme
with cubic Hermite interpolation: values and derivatives are stored per grid
node, so both G(s) and dG/ds (needed by the force computation) are obtained
directly from the table.

Node derivatives come from the **analytic** input-Jacobian of the exported
net (:meth:`FastMLP.backward_input`, one vector-Jacobian product per output
component), not from finite differences — the table is exact at the nodes and
never evaluates the net outside the tabulated range.

Two evaluation paths, the ``deepmd/scalar.py`` pattern:

* :meth:`TabulatedEmbeddingSet.evaluate` — the per-key golden reference.
  One ``(center_type, neighbor_type)`` table at a time, kept deliberately
  simple; do not optimize it.
* :meth:`TabulatedEmbeddingSet.evaluate_batched` — the production hot path.
  All tables are stacked into one packed node array so every neighbour of a
  whole batch is interpolated with a single fused gather per Hermite node and
  one vectorized kernel, whatever mixture of neighbour types the rows hold.
  Pinned to the golden path at 1e-12 by ``tests/test_deepmd_compression.py``.

Inputs outside ``[0, s_max]`` clamp to the end nodes — the value is
constant-extrapolated there, so **dG/ds is zero** outside the range (a
non-zero end-node derivative would make forces inconsistent with the energy
for close approaches).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .gemm import _dtype_name
from .networks import FastMLP

#: FLOP counts of the batched Hermite kernel, reconciled with
#: :class:`repro.perfmodel.kernels.KernelCostModel` (see the cross-module
#: assertion in ``tests/test_perfmodel_core.py``).  Per (neighbour, output
#: component): the 4-term value combination (4 mul + 3 add; node derivatives
#: are pre-scaled by the grid step at build time, so no per-evaluation
#: scaling remains).
HERMITE_VALUE_FLOPS_PER_COMPONENT = 7.0
#: Per neighbour, shared across components: t, t^2, t^3 and the four value
#: basis polynomials h00/h10/h01/h11.
HERMITE_VALUE_FLOPS_PER_NEIGHBOR = 17.0
#: Per (neighbour, component): the 4-term derivative combination.
HERMITE_DERIVATIVE_FLOPS_PER_COMPONENT = 7.0
#: Per neighbour: the four derivative basis polynomials dh00..dh11.
HERMITE_DERIVATIVE_FLOPS_PER_NEIGHBOR = 17.0
#: Per (neighbour, component): the dE/ds contraction of dG/ds with dE/dG.
EMBEDDING_GRAD_DOT_FLOPS_PER_COMPONENT = 2.0

#: Rows per cache block of the batched kernel: the gathered (rows, 4, M)
#: operand block and both output slices stay resident between the gather and
#: the two contractions (measured ~3x over whole-array passes at 90k rows).
HERMITE_CHUNK_ROWS = 1024


@dataclass
class _Table:
    grid: np.ndarray  # (K,)
    values: np.ndarray  # (K, M)
    derivatives: np.ndarray  # (K, M)

    @property
    def width(self) -> int:
        return self.values.shape[1]


@dataclass
class InterpolationErrors:
    """Max |table - net| and max |dG/ds table - analytic| over random samples."""

    value: float
    derivative: float


def analytic_input_jacobian(net: FastMLP, s: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Forward values and the full dG/ds Jacobian of a scalar-input net.

    The input dimension is 1, so the Jacobian of the ``(K,)`` inputs is a
    ``(K, M)`` array obtained with one :meth:`FastMLP.backward_input`
    vector-Jacobian product per output component (all sharing the cached
    forward activations).  Never evaluates the net outside ``s`` — unlike a
    centered difference at the first grid node.
    """
    s = np.asarray(s, dtype=np.float64).reshape(-1)
    values = net.forward(s[:, None], cache=True)
    m = values.shape[1]
    jacobian = np.empty_like(values)
    seed = np.zeros((len(s), m))
    for component in range(m):
        seed[:, component] = 1.0
        jacobian[:, component] = net.backward_input(seed)[:, 0]
        seed[:, component] = 0.0
    net._cache = None  # the K-row grid cache has no further use
    return values, jacobian


class TabulatedEmbeddingSet:
    """Tabulated (compressed) versions of every embedding net.

    Parameters
    ----------
    fast_embeddings:
        exported :class:`FastMLP` embedding nets keyed by (centre, neighbour)
        type pair.
    s_max:
        upper end of the tabulated range of the switching function; s(r) is
        bounded by 1/r_cs so a safe default can be derived from the model
        cutoffs.
    n_points:
        number of grid nodes (the original implementation uses a stride of
        1e-2 split into a coarse and a fine table; a single uniform grid is
        enough to reproduce both the numerics and the cost structure).
    """

    def __init__(
        self,
        fast_embeddings: dict[tuple[int, int], FastMLP],
        s_max: float,
        n_points: int = 1024,
    ) -> None:
        if s_max <= 0:
            raise ValueError("s_max must be positive")
        if n_points < 4:
            raise ValueError("need at least 4 grid points")
        if not fast_embeddings:
            raise ValueError("need at least one embedding net to tabulate")
        self.s_max = float(s_max)
        self.n_points = int(n_points)
        self.tables: dict[tuple[int, int], _Table] = {}
        grid = np.linspace(0.0, self.s_max, self.n_points)
        for key, net in fast_embeddings.items():
            values, derivatives = analytic_input_jacobian(net, grid)
            self.tables[key] = _Table(grid=grid, values=values, derivatives=derivatives)
        self._build_stacked()

    # -- stacked multi-table layout (the production path) -----------------------
    def _build_stacked(self) -> None:
        """Stack every table into one packed node array for batched gathers.

        Node ``k`` of table slot ``p`` is the ``2M`` row ``[values_k |
        h * derivatives_k]`` at flat index ``p * n_points + k``, so
        interpolating a neighbour costs one fused gather per Hermite node
        regardless of which (centre, neighbour) table it reads.  The node
        derivatives are pre-scaled by the grid step (the ``d * h`` terms of
        the Hermite form), which drops two whole-array multiplies from every
        evaluation without changing a bit of the result.
        """
        keys = sorted(self.tables)
        self._slot_of = {key: slot for slot, key in enumerate(keys)}
        n_types = 1 + max(max(ti, tj) for ti, tj in keys)
        self._slot_grid = np.full((n_types, n_types), -1, dtype=np.int64)
        for (ti, tj), slot in self._slot_of.items():
            self._slot_grid[ti, tj] = slot
        m = self.width
        grid = self.tables[keys[0]].grid
        h = float(grid[1] - grid[0])
        packed = np.empty((len(keys), self.n_points, 2 * m))
        for key, slot in self._slot_of.items():
            packed[slot, :, :m] = self.tables[key].values
            packed[slot, :, m:] = self.tables[key].derivatives * h
        self._packed = packed.reshape(len(keys) * self.n_points, 2 * m)
        # read-only overlapping window view: row i is the (2, 2M) node pair
        # [i, i+1], so one fancy-index gathers all four Hermite operands
        # [y0 | h*d0 | y1 | h*d1] of every element at once
        self._node_windows = self._windows_over(self._packed)
        self._grid = grid
        self._h = h
        #: reduced-precision copies of the packed node array (plus their
        #: window views), built once per dtype by :meth:`ensure_packed` —
        #: the mixed-precision production path reads fp32 nodes, halving the
        #: gather bandwidth of every interpolation
        self._packed_lp: dict[np.dtype, tuple[np.ndarray, np.ndarray]] = {}
        #: :meth:`evaluate_batched` invocations per compute dtype — the
        #: regression probe that proves the table path honours the precision
        #: policy instead of silently running fp64
        self.eval_dtype_counts: dict[str, int] = {}
        #: how many reduced-precision packed-node copies were actually built —
        #: the cross-request cache-reuse probe of the serving engine: one
        #: build per dtype per table, however many batches read it
        self.packed_cache_builds = 0

    @staticmethod
    def _windows_over(packed: np.ndarray) -> np.ndarray:
        stride_row, stride_col = packed.strides
        return np.lib.stride_tricks.as_strided(
            packed,
            shape=(packed.shape[0] - 1, 2, packed.shape[1]),
            strides=(stride_row, stride_row, stride_col),
            writeable=False,
        )

    # reprolint: cold-path packed low-precision copies are built once per dtype and cached; steady-state evaluation gathers from the cache
    def ensure_packed(self, dtype) -> np.ndarray:
        """The packed node array at ``dtype``, cast once and cached.

        float64 returns the master table.  Lower precisions round the node
        values/derivatives a single time at build; every subsequent batched
        evaluation gathers directly from the reduced copy (no per-call
        downcast, half the memory traffic for fp32).
        """
        dt = np.dtype(dtype)
        if dt == np.dtype(np.float64):
            return self._packed
        entry = self._packed_lp.get(dt)
        if entry is None:
            packed = self._packed.astype(dt)
            entry = (packed, self._windows_over(packed))
            self._packed_lp[dt] = entry
            self.packed_cache_builds += 1
        return entry[0]

    def packed_dtypes(self) -> tuple[str, ...]:
        """Dtypes for which a packed node array exists (probe for tests)."""
        return ("fp64",) + tuple(sorted(_dtype_name(dt) for dt in self._packed_lp))

    @property
    def width(self) -> int:
        return next(iter(self.tables.values())).width

    def slot_index(self, center_type: int, neighbor_types: np.ndarray) -> np.ndarray:
        """Stacked-table slot of every neighbour entry for one centre type.

        Padding entries (type < 0) map to slot 0 — callers mask their
        contributions out, exactly as the per-type loop skipped them.
        """
        row = self._slot_grid[int(center_type)]
        neighbor_types = np.asarray(neighbor_types)
        valid = neighbor_types >= 0
        if np.any(valid & (neighbor_types >= len(row))):
            raise KeyError(f"no table for centre type {center_type} and some neighbour types")
        slots = row[np.where(valid, neighbor_types, 0)]
        if np.any((slots < 0) & valid):
            raise KeyError(
                f"no table for centre type {center_type} and some neighbour types"
            )
        return np.where(valid, slots, 0)

    # reprolint: hot-path
    def evaluate_batched(
        self,
        slots: np.ndarray,
        s: np.ndarray,
        out_values: np.ndarray | None = None,
        out_derivatives: np.ndarray | None = None,
        dtype=np.float64,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Interpolated ``(G, dG/ds)`` where element ``i`` reads table ``slots[i]``.

        ``slots`` and ``s`` share any leading shape; the result appends the
        table width M.  ``out_values`` / ``out_derivatives`` are optional
        preallocated buffers of that output shape (the workspace path of the
        model); outputs are written in place and returned.  Outside
        ``[0, s_max]`` the value clamps to the end node and the derivative is
        zero, matching :meth:`evaluate`.

        The slot indices are free-form: nothing here assumes the rows belong
        to one system, so the serving batch path
        (:meth:`repro.deepmd.model.DeepPotential.evaluate_many`) passes the
        concatenated slot/s arrays of a whole multi-system batch and every
        neighbour of every packed system interpolates in the same fused
        gather + Hermite kernel.

        ``dtype`` is the compute precision of the interpolation
        (:attr:`PrecisionPolicy.compute_dtype` on the production path):
        float64 reads the master table and is the golden-pinned reference;
        lower precisions gather from the once-cast reduced node array of
        :meth:`ensure_packed` and run the basis arithmetic and contractions
        natively at that precision.  The node *placement* (grid index and the
        out-of-range clamp) is always resolved in float64 so every precision
        interpolates the same segment.

        One fancy-index over the window view gathers all four Hermite
        operands of a row block; the value/derivative combinations run as two
        ``einsum`` contractions against the (row, 4) basis weights — no
        per-term temporaries, and the k-order of the contraction matches the
        golden 4-term sum exactly.  Rows are processed in
        :data:`HERMITE_CHUNK_ROWS` blocks so the gathered operands stay
        cache-resident between the gather and the contractions.
        """
        dt = np.dtype(dtype)
        name = _dtype_name(dt)
        self.eval_dtype_counts[name] = self.eval_dtype_counts.get(name, 0) + 1
        if dt == np.dtype(np.float64):
            windows = self._node_windows
        else:
            self.ensure_packed(dt)
            windows = self._packed_lp[dt][1]
        s_arr = np.asarray(s, dtype=np.float64)
        flat_s = s_arr.reshape(-1)
        flat_slots = np.asarray(slots, dtype=np.int64).reshape(-1)
        grid = self._grid
        h = self._h if dt == np.dtype(np.float64) else dt.type(self._h)
        m = self.width
        n_flat = len(flat_s)
        clamped = np.clip(flat_s, grid[0], grid[-1])
        idx = np.minimum((clamped - grid[0]) / self._h, len(grid) - 2).astype(int)  # reprolint: allow[alloc] fp64 node placement must produce a fresh int index array
        t_all = ((clamped - grid[idx]) / self._h)[:, None]
        if dt != np.dtype(np.float64):
            t_all = t_all.astype(dt)  # reprolint: allow[alloc] one (n,1) downcast per call at the precision boundary
        base = flat_slots * len(grid) + idx

        if (out_values is None) != (out_derivatives is None):
            raise ValueError("out_values and out_derivatives must be provided together")
        shape = (*s_arr.shape, m)
        if out_values is None:
            values = np.empty((n_flat, m), dtype=dt)  # reprolint: allow[alloc] out-less reference branch; the workspace path passes buffers
            derivs = np.empty((n_flat, m), dtype=dt)  # reprolint: allow[alloc] out-less reference branch; the workspace path passes buffers
        else:
            if out_values.dtype != dt or out_derivatives.dtype != dt:
                raise ValueError(f"out buffers must match the compute dtype {dt}")
            values = out_values.reshape(n_flat, m)
            derivs = out_derivatives.reshape(n_flat, m)
            if not (
                np.may_share_memory(values, out_values)
                and np.may_share_memory(derivs, out_derivatives)
            ):
                # a reshape that copies would silently drop every write
                raise ValueError("out buffers must reshape to views (C-contiguous)")

        for lo in range(0, n_flat, HERMITE_CHUNK_ROWS):
            hi = min(lo + HERMITE_CHUNK_ROWS, n_flat)
            # block gather: (rows, 4, M) operands [y0, h*d0, y1, h*d1]
            nodes = windows[base[lo:hi]].reshape(hi - lo, 4, m)
            t = t_all[lo:hi]
            t2 = t * t
            t3 = t2 * t
            value_weights = np.concatenate(  # reprolint: allow[alloc] per-chunk (rows,4) basis block, cache-resident by design
                [
                    2.0 * t3 - 3.0 * t2 + 1.0,  # h00 -> y0
                    t3 - 2.0 * t2 + t,  # h10 -> h*d0
                    -2.0 * t3 + 3.0 * t2,  # h01 -> y1
                    t3 - t2,  # h11 -> h*d1
                ],
                axis=1,
            )
            deriv_weights = np.concatenate(  # reprolint: allow[alloc] per-chunk (rows,4) basis block, cache-resident by design
                [
                    (6.0 * t2 - 6.0 * t) / h,
                    (3.0 * t2 - 4.0 * t + 1.0) / h,
                    (-6.0 * t2 + 6.0 * t) / h,
                    (3.0 * t2 - 2.0 * t) / h,
                ],
                axis=1,
            )
            np.einsum("nkm,nk->nm", nodes, value_weights, out=values[lo:hi])
            np.einsum("nkm,nk->nm", nodes, deriv_weights, out=derivs[lo:hi])

        out_of_range = (flat_s < grid[0]) | (flat_s > grid[-1])
        if np.any(out_of_range):
            derivs[out_of_range] = 0.0

        if out_values is None:
            return values.reshape(shape), derivs.reshape(shape)
        return out_values, out_derivatives

    # -- golden per-key reference (the deepmd/scalar.py pattern) -----------------
    def evaluate(self, key: tuple[int, int], s: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Interpolated ``(G, dG/ds)`` for the scalar inputs ``s``, one table.

        The un-optimized golden reference the batched path is pinned to at
        1e-12: one (centre, neighbour) table at a time, no stacking.  Do not
        optimize this method.  Values outside the tabulated range are clamped
        to the end nodes, and the derivative there is zero (the value is
        constant-extrapolated, so a non-zero dG/ds would make forces
        inconsistent with the energy for close approaches).
        """
        table = self.tables[key]
        s = np.asarray(s, dtype=np.float64).reshape(-1)
        grid = table.grid
        h = grid[1] - grid[0]
        clamped = np.clip(s, grid[0], grid[-1])
        idx = np.minimum((clamped - grid[0]) / h, len(grid) - 2).astype(int)
        t = (clamped - grid[idx]) / h

        y0 = table.values[idx]
        y1 = table.values[idx + 1]
        d0 = table.derivatives[idx] * h
        d1 = table.derivatives[idx + 1] * h

        t = t[:, None]
        t2 = t * t
        t3 = t2 * t
        h00 = 2.0 * t3 - 3.0 * t2 + 1.0
        h10 = t3 - 2.0 * t2 + t
        h01 = -2.0 * t3 + 3.0 * t2
        h11 = t3 - t2
        values = h00 * y0 + h10 * d0 + h01 * y1 + h11 * d1

        dh00 = (6.0 * t2 - 6.0 * t) / h
        dh10 = (3.0 * t2 - 4.0 * t + 1.0) / h
        dh01 = (-6.0 * t2 + 6.0 * t) / h
        dh11 = (3.0 * t2 - 2.0 * t) / h
        derivs = dh00 * y0 + dh10 * d0 + dh01 * y1 + dh11 * d1
        out_of_range = (s < grid[0]) | (s > grid[-1])
        if np.any(out_of_range):
            derivs[out_of_range] = 0.0
        return values, derivs

    # -- compression-quality metrics ---------------------------------------------
    def interpolation_errors(
        self, key: tuple[int, int], net: FastMLP, n_samples: int = 512, rng=None
    ) -> InterpolationErrors:
        """Max value and derivative error vs the exact net over random samples.

        The derivative reference is the analytic input-Jacobian of the net,
        so the metric covers the quantity the force computation consumes, not
        just the energy side.
        """
        rng = np.random.default_rng(rng)
        s = rng.uniform(0.0, self.s_max, size=n_samples)
        exact, exact_deriv = analytic_input_jacobian(net, s)
        approx, approx_deriv = self.evaluate(key, s)
        return InterpolationErrors(
            value=float(np.max(np.abs(exact - approx))),
            derivative=float(np.max(np.abs(exact_deriv - approx_deriv))),
        )

    def max_interpolation_error(self, key: tuple[int, int], net: FastMLP, n_samples: int = 512, rng=None) -> float:
        """Max |table - net| over random samples, a compression-quality metric.

        See :meth:`interpolation_errors` for the derivative error as well.
        """
        return self.interpolation_errors(key, net, n_samples=n_samples, rng=rng).value
