"""Mixed-precision policies (Table II of the paper).

Three modes are evaluated in the paper:

* ``Double``   — everything in fp64 (the baseline),
* ``MIX-fp32`` — embedding-net and fitting-net calculations in fp32, the rest
  (environment matrix, descriptor contraction, accumulation) in fp64,
* ``MIX-fp16`` — additionally the GEMM of the *first* fitting-net layer in
  fp16.

A :class:`PrecisionPolicy` maps those choices onto per-layer compute dtypes
for the fast kernels; the accuracy experiments re-evaluate the same trained
model under each policy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class PrecisionPolicy:
    """Per-component compute precisions.

    Attributes
    ----------
    name:
        policy identifier (``double``, ``mix-fp32``, ``mix-fp16``).
    env_dtype:
        precision of the environment matrix and descriptor contraction.
    embedding_dtype:
        precision of the embedding-net layers.
    fitting_dtype:
        precision of fitting-net layers after the first.
    fitting_first_layer_dtype:
        precision of the first fitting-net GEMM (fp16 in MIX-fp16).
    """

    name: str
    env_dtype: type = np.float64
    embedding_dtype: type = np.float64
    fitting_dtype: type = np.float64
    fitting_first_layer_dtype: type | None = None

    def embedding_dtypes(self, n_layers: int) -> list:
        return [self.embedding_dtype] * n_layers

    def fitting_dtypes(self, n_layers: int) -> list:
        first = self.fitting_first_layer_dtype or self.fitting_dtype
        if n_layers == 0:
            return []
        return [first] + [self.fitting_dtype] * (n_layers - 1)

    @property
    def uses_fp16(self) -> bool:
        return np.dtype(self.fitting_first_layer_dtype or self.fitting_dtype) == np.dtype(np.float16)

    @property
    def uses_fp32(self) -> bool:
        return np.dtype(self.embedding_dtype) == np.dtype(np.float32)

    @property
    def is_double(self) -> bool:
        """True when every component computes in float64 (the golden path)."""
        return (
            np.dtype(self.embedding_dtype) == np.dtype(np.float64)
            and np.dtype(self.fitting_dtype) == np.dtype(np.float64)
            and self.fitting_first_layer_dtype is None
        )

    @property
    def compute_dtype(self) -> type:
        """Dtype of the embedding/descriptor pipeline of the fast kernels.

        float64 for the Double policy; the embedding dtype (fp32 for both MIX
        policies) otherwise.  The environment matrix is always *built* in
        float64 and the per-atom energy/force/virial reductions always
        *accumulate* in float64 — this dtype governs the compute in between
        (table interpolation / embedding nets, descriptor contraction,
        fitting nets, and their backward chain).
        """
        return np.float64 if self.is_double else self.embedding_dtype


DOUBLE = PrecisionPolicy("double")

MIX_FP32 = PrecisionPolicy(
    "mix-fp32",
    env_dtype=np.float64,
    embedding_dtype=np.float32,
    fitting_dtype=np.float32,
)

MIX_FP16 = PrecisionPolicy(
    "mix-fp16",
    env_dtype=np.float64,
    embedding_dtype=np.float32,
    fitting_dtype=np.float32,
    fitting_first_layer_dtype=np.float16,
)

POLICIES = {p.name: p for p in (DOUBLE, MIX_FP32, MIX_FP16)}


def get_policy(name_or_policy) -> PrecisionPolicy:
    """Resolve a policy from its name or pass an existing policy through."""
    if isinstance(name_or_policy, PrecisionPolicy):
        return name_or_policy
    try:
        return POLICIES[str(name_or_policy)]
    except KeyError as exc:
        raise KeyError(
            f"unknown precision policy {name_or_policy!r}; available: {sorted(POLICIES)}"
        ) from exc
