"""Deep Potential (DeePMD) model: descriptor, networks, forces, training.

This package implements the DeepPot-SE ("smooth edition") model that
DeePMD-kit evaluates inside LAMMPS:

* :mod:`smoothing` — the switching function s(r) defining the smoothed
  environment matrix,
* :mod:`envmat` — local environment matrices R_i for all atoms at once,
  built as batched NumPy from the MD engine's padded neighbour lists (with
  the paper's per-type pre-classification),
* :mod:`scalar` — the loop-based golden reference (per-atom environment
  build and per-atom inference) that the parity test suite pins the
  vectorized hot path to,
* :mod:`embedding` / :mod:`fitting` — the embedding and fitting networks
  (framework-backed for training, exportable to fast NumPy kernels),
* :mod:`descriptor` — the symmetry-preserving descriptor D_i and its
  framework-graph construction,
* :mod:`model` — :class:`DeepPotential`, with two evaluation paths: the
  *baseline* path running through :mod:`repro.nnframework` (a stand-in for
  TensorFlow, with per-session overhead), and the *optimized* framework-free
  path with hand-written forward/backward kernels, mixed precision, the
  sve-style tall-skinny GEMM backend, and tabulated (compressed) embedding
  nets,
* :mod:`reference` / :mod:`training` — pseudo-AIMD data generation and the
  trainer,
* :mod:`pair_style` — the adapter exposing the model as an MD force field.
"""

from .smoothing import switching_function, switching_derivative
from .envmat import LocalEnvironment, build_local_environment
from .scalar import build_local_environment_scalar, evaluate_scalar
from .gemm import GemmBackend, GemmStats
from .networks import FastMLP
from .precision import PrecisionPolicy, DOUBLE, MIX_FP32, MIX_FP16
from .embedding import EmbeddingNetSet
from .fitting import FittingNetSet
from .compression import TabulatedEmbeddingSet
from .model import DeepPotential, DeepPotentialConfig, ModelOutput
from .reference import ReferenceDataset, generate_copper_dataset, generate_water_dataset
from .training import Trainer, TrainingResult
from .pair_style import DeepPotentialForceField

__all__ = [
    "switching_function",
    "switching_derivative",
    "LocalEnvironment",
    "build_local_environment",
    "build_local_environment_scalar",
    "evaluate_scalar",
    "GemmBackend",
    "GemmStats",
    "FastMLP",
    "PrecisionPolicy",
    "DOUBLE",
    "MIX_FP32",
    "MIX_FP16",
    "EmbeddingNetSet",
    "FittingNetSet",
    "TabulatedEmbeddingSet",
    "DeepPotential",
    "DeepPotentialConfig",
    "ModelOutput",
    "ReferenceDataset",
    "generate_copper_dataset",
    "generate_water_dataset",
    "Trainer",
    "TrainingResult",
    "DeepPotentialForceField",
]
