"""Framework-free MLP kernels (the "TensorFlow removement" code path).

:class:`FastMLP` evaluates an exported multi-layer perceptron with plain
NumPy, caching activations so the input-gradient (vector-Jacobian product)
needed by the analytic force computation can be obtained without a framework.
All matrix products are routed through a :class:`~repro.deepmd.gemm.GemmBackend`
so that precision, kernel choice (blas vs sve) and NT-vs-NN layout are
accounted exactly as in the paper's optimized implementation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..nnframework.layers import MLP
from .gemm import GemmBackend


def _activation(name: str):
    if name == "tanh":
        return np.tanh, lambda y: 1.0 - y * y  # derivative expressed via output
    if name == "sigmoid":
        return (
            lambda x: 1.0 / (1.0 + np.exp(-x)),
            lambda y: y * (1.0 - y),
        )
    if name == "relu":
        return lambda x: np.maximum(x, 0.0), lambda y: (y > 0.0).astype(y.dtype)
    if name == "softplus":
        return (
            lambda x: np.log1p(np.exp(-np.abs(x))) + np.maximum(x, 0.0),
            lambda y: 1.0 - np.exp(-y),
        )
    if name == "linear":
        # scalar derivative: broadcasting keeps the VJP allocation-free
        return lambda x: x, lambda y: 1.0
    raise ValueError(f"unknown activation {name!r}")


@dataclass
class _LayerSpec:
    weight: np.ndarray
    weight_t: np.ndarray
    bias: np.ndarray
    activation: str
    resnet: bool


class FastMLP:
    """An exported MLP evaluated with hand-written kernels.

    Parameters
    ----------
    layer_specs:
        the output of :meth:`repro.nnframework.layers.MLP.export_weights`.
    """

    def __init__(self, layer_specs: list[dict]) -> None:
        if not layer_specs:
            raise ValueError("FastMLP needs at least one layer")
        self.layers: list[_LayerSpec] = []
        for spec in layer_specs:
            weight = np.asarray(spec["weight"], dtype=np.float64)
            self.layers.append(
                _LayerSpec(
                    weight=weight,
                    weight_t=np.ascontiguousarray(weight.T),
                    bias=np.asarray(spec["bias"], dtype=np.float64),
                    activation=spec["activation"],
                    resnet=bool(spec.get("resnet", False)),
                )
            )
        self.in_features = self.layers[0].weight.shape[0]
        self.out_features = self.layers[-1].weight.shape[1]
        self._cache: list[dict] | None = None
        #: low-precision copies of the layer operands, built once per dtype
        #: (the weights are frozen at export time, so the copies stay valid
        #: for the lifetime of this kernel; re-exporting after a weight
        #: update — ``DeepPotential.invalidate_kernels`` — drops them along
        #: with the kernel itself)
        self._lp_operands: dict[np.dtype, list[_LayerSpec]] = {}
        #: number of low-precision operand builds (regression probe: steady
        #: state must not rebuild)
        self.lp_cache_builds = 0

    @classmethod
    def from_mlp(cls, mlp: MLP) -> "FastMLP":
        return cls(mlp.export_weights())

    def operands(self, dtype) -> list[_LayerSpec]:
        """Layer operands (weight, weight_t, bias) at the compute dtype.

        float64 returns the exported arrays themselves; lower precisions are
        cast **once** and cached, so mixed-precision GEMMs stop paying a
        fresh ``astype`` weight copy on every call (the pre-fix churn).
        """
        dt = np.dtype(dtype)
        if dt == np.dtype(np.float64):
            return self.layers
        specs = self._lp_operands.get(dt)
        if specs is None:
            specs = [
                _LayerSpec(
                    weight=layer.weight.astype(dt),
                    weight_t=layer.weight_t.astype(dt),
                    bias=layer.bias.astype(dt),
                    activation=layer.activation,
                    resnet=layer.resnet,
                )
                for layer in self.layers
            ]
            self._lp_operands[dt] = specs
            self.lp_cache_builds += 1
        return specs

    # -- forward ---------------------------------------------------------------
    def forward(
        self,
        x: np.ndarray,
        backend: GemmBackend | None = None,
        dtypes: list | None = None,
        cache: bool = True,
    ) -> np.ndarray:
        """Evaluate the network on a ``(batch, in_features)`` input.

        ``dtypes`` optionally gives the compute precision per layer (defaults
        to float64 everywhere); this is how the mixed-precision policies pick
        the fp32/fp16 layers.  Low-precision layers run **natively**: the
        cached pre-cast operands from :meth:`operands` feed the GEMM, the
        bias add and activation execute at that precision, and the output
        stays in it — only float64 layers follow the original (golden)
        arithmetic, which is preserved bit-for-bit.
        """
        x = np.atleast_2d(np.asarray(x))
        if x.dtype not in (np.dtype(np.float32), np.dtype(np.float16)):  # reprolint: allow[dtype] dtype guard only; casts are governed by PrecisionPolicy
            x = x.astype(np.float64, copy=False)
        backend = backend or GemmBackend()
        cache_entries: list[dict] = []
        h = x
        for li, layer in enumerate(self.layers):
            dtype = np.float64 if dtypes is None else dtypes[min(li, len(dtypes) - 1)]
            dt = np.dtype(dtype)
            act, _ = _activation(layer.activation)
            if dt == np.dtype(np.float64):
                h_c = h
                pre = backend.matmul(h, layer.weight, dtype=dtype) + layer.bias
            else:
                lp = self.operands(dt)[li]
                h_c = h if h.dtype == dt else h.astype(dt)
                pre = backend.matmul(h_c, lp.weight, dtype=dt, native_out=True)
                pre += lp.bias
            out = act(pre)
            if layer.resnet:
                if layer.weight.shape[1] == layer.weight.shape[0]:
                    out = out + h_c
                elif layer.weight.shape[1] == 2 * layer.weight.shape[0]:
                    out = out + np.concatenate([h_c, h_c], axis=-1)
            if cache:
                cache_entries.append({"input": h_c, "output": out, "pre": pre, "dtype": dt})
            h = out
        if cache:
            self._cache = cache_entries
        return h

    def __call__(self, x, backend=None, dtypes=None):
        return self.forward(x, backend=backend, dtypes=dtypes)

    # -- backward (input gradient) ----------------------------------------------
    def backward_input(
        self,
        grad_output: np.ndarray,
        backend: GemmBackend | None = None,
        dtypes: list | None = None,
    ) -> np.ndarray:
        """Vector-Jacobian product: gradient of the cached forward wrt its input.

        When the backend was created with ``pretranspose=True`` the backward
        products use the stored transposed weights as NN GEMMs (the paper's
        GEMM-NT -> GEMM-NN preprocessing); otherwise NT products are issued.
        """
        if self._cache is None:
            raise RuntimeError("forward(cache=True) must run before backward_input")
        backend = backend or GemmBackend()
        grad = np.atleast_2d(np.asarray(grad_output))
        if grad.dtype not in (np.dtype(np.float32), np.dtype(np.float16)):  # reprolint: allow[dtype] dtype guard only; casts are governed by PrecisionPolicy
            grad = grad.astype(np.float64, copy=False)
        for li in range(len(self.layers) - 1, -1, -1):
            layer = self.layers[li]
            entry = self._cache[li]
            dtype = np.float64 if dtypes is None else dtypes[min(li, len(dtypes) - 1)]
            dt = np.dtype(dtype)
            native = dt != np.dtype(np.float64)
            weight, weight_t = layer.weight, layer.weight_t
            if native:
                lp = self.operands(dt)[li]
                weight, weight_t = lp.weight, lp.weight_t
            _, act_deriv = _activation(layer.activation)
            grad_resnet = None
            if layer.resnet:
                if layer.weight.shape[1] == layer.weight.shape[0]:
                    grad_resnet = grad
                elif layer.weight.shape[1] == 2 * layer.weight.shape[0]:
                    n_in = layer.weight.shape[0]
                    grad_resnet = grad[..., :n_in] + grad[..., n_in:]
            # d(out)/d(pre) expressed in terms of the activation output with the
            # skip contribution removed.
            act_out = entry["output"]
            if layer.resnet:
                if layer.weight.shape[1] == layer.weight.shape[0]:
                    act_out = act_out - entry["input"]
                elif layer.weight.shape[1] == 2 * layer.weight.shape[0]:
                    act_out = act_out - np.concatenate([entry["input"], entry["input"]], axis=-1)
            grad_pre = grad * act_deriv(act_out)
            if backend.pretranspose:
                grad = backend.matmul(grad_pre, weight_t, dtype=dt, native_out=native)
            else:
                grad = backend.matmul(grad_pre, weight, dtype=dt, transposed_b=True, native_out=native)
            if grad_resnet is not None:
                grad = grad + grad_resnet
        return grad

    # -- convenience -------------------------------------------------------------
    def n_parameters(self) -> int:
        return int(sum(l.weight.size + l.bias.size for l in self.layers))

    def layer_shapes(self) -> list[tuple[int, int]]:
        return [tuple(l.weight.shape) for l in self.layers]
