"""Local environment matrices R_i for the DeepPot-SE descriptor.

For every centre atom i the environment matrix collects, for each neighbour j
within the cutoff, the row

    R_ij = [ s(r_ij),  s(r_ij) x_ij / r_ij,  s(r_ij) y_ij / r_ij,  s(r_ij) z_ij / r_ij ]

where d_ij = r_j - r_i (minimum image).  Rows are padded to a fixed maximum
neighbour count so all per-atom quantities are dense arrays.

The paper's kernel-simplification optimization ("reorganize the environment
matrix to pre-classify each type of atom") is reproduced by
``sort_neighbors_by_type=True``: neighbours are grouped by species so the
per-type embedding nets operate on contiguous slices instead of slicing and
concatenating intermediate matrices.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..md.atoms import Atoms
from ..md.box import Box
from ..md.neighbor import NeighborData
from .smoothing import switching_derivative, switching_function


@dataclass
class LocalEnvironment:
    """Dense per-atom environment data (all arrays padded to ``max_neighbors``).

    Attributes
    ----------
    R:
        ``(n, N, 4)`` environment matrices.
    displacements:
        ``(n, N, 3)`` minimum-image vectors d_ij = r_j - r_i (0 for padding).
    distances:
        ``(n, N)`` |d_ij| (0 for padding).
    s, ds_dr:
        ``(n, N)`` switching function values and radial derivatives.
    mask:
        ``(n, N)`` 1.0 for real neighbours, 0.0 for padding.
    neighbor_indices:
        ``(n, N)`` neighbour atom indices (-1 for padding).
    neighbor_types:
        ``(n, N)`` neighbour species (-1 for padding).
    types:
        ``(n,)`` centre-atom species.
    cutoff, cutoff_smooth:
        the switching-function radii used.
    """

    R: np.ndarray
    displacements: np.ndarray
    distances: np.ndarray
    s: np.ndarray
    ds_dr: np.ndarray
    mask: np.ndarray
    neighbor_indices: np.ndarray
    neighbor_types: np.ndarray
    types: np.ndarray
    cutoff: float
    cutoff_smooth: float

    @property
    def n_atoms(self) -> int:
        return self.R.shape[0]

    @property
    def max_neighbors(self) -> int:
        return self.R.shape[1]

    def neighbor_counts(self) -> np.ndarray:
        return self.mask.sum(axis=1).astype(np.int64)

    def select(self, index) -> "LocalEnvironment":
        """Sub-environment for a subset of centre atoms (used per-type)."""
        return LocalEnvironment(
            R=self.R[index],
            displacements=self.displacements[index],
            distances=self.distances[index],
            s=self.s[index],
            ds_dr=self.ds_dr[index],
            mask=self.mask[index],
            neighbor_indices=self.neighbor_indices[index],
            neighbor_types=self.neighbor_types[index],
            types=self.types[index],
            cutoff=self.cutoff,
            cutoff_smooth=self.cutoff_smooth,
        )

    def compute_arrays(self, dtype, workspace=None, key: str = "") -> tuple[np.ndarray, np.ndarray]:
        """``(R, s)`` at the model's compute dtype.

        The environment matrix is always *built* in float64 (the invariant the
        precision policies document); the mixed-precision kernels read these
        once-downcast copies instead.  float64 returns the original arrays —
        no copy, so the golden path is untouched.  With a ``workspace`` the
        reduced copies live in named pool buffers (``env.cast.R/s.<key>``) and
        steady-state steps re-fill them without allocating.
        """
        dt = np.dtype(dtype)
        if dt == self.R.dtype:
            return self.R, self.s
        if workspace is not None:
            r_c = workspace.buffer(f"env.cast.R.{key}", self.R.shape, dtype=dt)
            s_c = workspace.buffer(f"env.cast.s.{key}", self.s.shape, dtype=dt)
            np.copyto(r_c, self.R)
            np.copyto(s_c, self.s)
            return r_c, s_c
        return self.R.astype(dt), self.s.astype(dt)


def build_local_environment(
    atoms: Atoms,
    box: Box,
    neighbors: NeighborData,
    cutoff: float,
    cutoff_smooth: float,
    max_neighbors: int | None = None,
    sort_neighbors_by_type: bool = True,
    workspace=None,
) -> LocalEnvironment:
    """Build the dense local environments of all atoms.

    ``neighbors`` may have been built with a larger search radius (cutoff +
    skin); neighbours beyond ``cutoff`` are dropped here.  ``workspace`` (a
    :class:`repro.md.workspace.Workspace`) reuses the padded per-atom output
    arrays across calls — the returned environment then aliases pool buffers
    and must not outlive the next build from the same workspace.
    """
    if cutoff <= 0 or not 0 < cutoff_smooth < cutoff:
        raise ValueError("require 0 < cutoff_smooth < cutoff")
    n = len(atoms)
    nei = neighbors.neighbors
    n_pad = nei.shape[1] if max_neighbors is None else int(max_neighbors)
    n_pad = max(n_pad, 1)

    positions = atoms.positions
    types = atoms.types

    # Gather displacement vectors for every (centre, slot) pair.
    slot_valid = nei >= 0
    safe_idx = np.where(slot_valid, nei, 0)
    disp = positions[safe_idx] - positions[:, None, :]
    disp = box.minimum_image(disp)
    dist = np.linalg.norm(disp, axis=2)
    within = slot_valid & (dist > 0.0) & (dist <= cutoff)

    # Compact each row to the leading slots, optionally grouped by type then
    # by distance (deterministic ordering aids reproducibility and mirrors the
    # paper's pre-classified layout).  The whole compaction runs as one global
    # lexsort over all (centre, slot) pairs — no Python-level per-atom loop.
    # The scalar per-atom version of this layout lives in
    # :mod:`repro.deepmd.scalar` and pins this implementation in the parity
    # test suite.
    nei_types_raw = np.where(slot_valid, types[safe_idx], -1)
    width = nei.shape[1]

    # Budget truncation: among the in-cutoff slots of each row, keep the
    # ``n_pad`` closest (distance ties broken by slot order, as the scalar
    # reference does with its stable argsort).
    dist_key = np.where(within, dist, np.inf)
    order_by_dist = np.argsort(dist_key, axis=1, kind="stable")
    if workspace is not None:
        rank = workspace.buffer("dp.env.rank", (n, width), dtype=np.int64)
    else:
        rank = np.empty((n, width), dtype=np.int64)  # reprolint: allow[alloc] workspace-less reference branch allocates per call by design
    np.put_along_axis(
        rank, order_by_dist, np.broadcast_to(np.arange(width), (n, width)), axis=1
    )
    kept = within & (rank < n_pad)

    # One global stable lexsort: row-major, valid slots first, then by
    # (type, distance) or by distance alone; remaining ties fall back to the
    # original slot order via stability.
    type_key = nei_types_raw if sort_neighbors_by_type else np.zeros_like(nei_types_raw)
    rows = np.repeat(np.arange(n), width)
    perm = np.lexsort((dist.ravel(), type_key.ravel(), (~kept).ravel(), rows))

    # After the sort, position p belongs to centre p // width; the kept slots
    # of each centre occupy its leading positions, i.e. output slot p % width.
    pos = np.nonzero(kept.ravel()[perm])[0]
    src = perm[pos]
    out_r = pos // width
    out_s = pos % width
    src_r = src // width
    src_c = src % width

    if workspace is not None:
        R = workspace.zeros("dp.env.R", (n, n_pad, 4))
        displacements = workspace.zeros("dp.env.displacements", (n, n_pad, 3))
        distances = workspace.zeros("dp.env.distances", (n, n_pad))
        mask = workspace.zeros("dp.env.mask", (n, n_pad))
        neighbor_indices = workspace.buffer("dp.env.neighbor_indices", (n, n_pad), dtype=np.int64)
        neighbor_indices.fill(-1)
        neighbor_types = workspace.buffer("dp.env.neighbor_types", (n, n_pad), dtype=np.int64)
        neighbor_types.fill(-1)
    else:
        R = np.zeros((n, n_pad, 4))  # reprolint: allow[alloc] workspace-less reference branch allocates per call by design
        displacements = np.zeros((n, n_pad, 3))  # reprolint: allow[alloc] workspace-less reference branch allocates per call by design
        distances = np.zeros((n, n_pad))  # reprolint: allow[alloc] workspace-less reference branch allocates per call by design
        mask = np.zeros((n, n_pad))  # reprolint: allow[alloc] workspace-less reference branch allocates per call by design
        neighbor_indices = np.full((n, n_pad), -1, dtype=np.int64)  # reprolint: allow[alloc] workspace-less reference branch allocates per call by design
        neighbor_types = np.full((n, n_pad), -1, dtype=np.int64)  # reprolint: allow[alloc] workspace-less reference branch allocates per call by design

    displacements[out_r, out_s] = disp[src_r, src_c]
    distances[out_r, out_s] = dist[src_r, src_c]
    neighbor_indices[out_r, out_s] = nei[src_r, src_c]
    neighbor_types[out_r, out_s] = nei_types_raw[src_r, src_c]
    mask[out_r, out_s] = 1.0

    s_values = switching_function(distances, cutoff, cutoff_smooth) * mask
    ds_values = switching_derivative(distances, cutoff, cutoff_smooth) * mask

    safe_dist = np.where(distances > 0.0, distances, 1.0)
    unit = displacements / safe_dist[..., None]
    R[..., 0] = s_values
    R[..., 1:] = s_values[..., None] * unit
    R *= mask[..., None]

    return LocalEnvironment(
        R=R,
        displacements=displacements,
        distances=distances,
        s=s_values,
        ds_dr=ds_values,
        mask=mask,
        neighbor_indices=neighbor_indices,
        neighbor_types=neighbor_types,
        types=types.copy(),
        cutoff=cutoff,
        cutoff_smooth=cutoff_smooth,
    )


def suggested_max_neighbors(atoms: Atoms, box: Box, neighbors: NeighborData, cutoff: float, margin: float = 1.2) -> int:
    """A padding size comfortably above the observed neighbour count.

    The paper quotes 46/92/512 neighbours for H/O/Cu at the benchmark cutoffs;
    the suggestion here simply measures the actual maximum and adds a margin.
    """
    positions = atoms.positions
    nei = neighbors.neighbors
    valid = nei >= 0
    safe_idx = np.where(valid, nei, 0)
    disp = positions[safe_idx] - positions[:, None, :]
    disp = box.minimum_image(disp)
    dist = np.linalg.norm(disp, axis=2)
    within = valid & (dist > 0.0) & (dist <= cutoff)
    max_count = int(within.sum(axis=1).max()) if len(positions) else 0
    return max(int(np.ceil(max_count * margin)), 1)
