"""DeepPot-SE descriptor assembled as a framework computation graph.

The descriptor of centre atom i is

    A_i = (1/N) R_i^T G_i                (4 x M)
    D_i = A_i^T A_i[:, :M2]              (M x M2, flattened)

where G_i stacks the per-neighbour embedding features and R_i is the smoothed
environment matrix.  D_i is invariant under translations and rotations (R_i
enters only through the Gram-like contraction) and under neighbour
permutations (the sum over neighbours).

This module builds that computation as a graph of :mod:`repro.nnframework`
tensors for a *batch of atoms sharing the same centre type*.  The graph is
used by

* the trainer (gradients with respect to the network parameters), and
* the baseline ("TensorFlow") evaluation path, where the input leaves
  ``s`` and ``R^T`` are marked ``requires_grad`` so that automatic
  differentiation supplies dE/ds and dE/dR for the force chain.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..nnframework import ops
from ..nnframework.tensor import Tensor
from .embedding import EmbeddingNetSet
from .envmat import LocalEnvironment
from .fitting import FittingNetSet


@dataclass
class DescriptorGraph:
    """Handles to the interesting tensors of one per-type energy graph."""

    center_type: int
    atom_indices: np.ndarray
    energies: Tensor  # (B, 1) per-atom energies (bias included)
    descriptor: Tensor  # (B, M*M2) standardized descriptor
    s_input: Tensor  # (B*N, 1) switching-function leaf
    r_transpose_input: Tensor  # (B, 4, N) environment-matrix leaf


def build_descriptor_graph(
    env: LocalEnvironment,
    center_type: int,
    atom_indices: np.ndarray,
    embeddings: EmbeddingNetSet,
    fittings: FittingNetSet,
    axis_neurons: int,
    descriptor_mean: np.ndarray,
    descriptor_std: np.ndarray,
    energy_bias: float,
    inputs_require_grad: bool = False,
) -> DescriptorGraph:
    """Build the per-atom energy graph for atoms ``atom_indices`` (one type).

    ``descriptor_mean`` / ``descriptor_std`` are the standardization constants
    of the flattened descriptor for this centre type; ``energy_bias`` is the
    per-type atomic energy shift.
    """
    sub = env.select(atom_indices)
    batch, n_nei = sub.s.shape
    m_width = embeddings.width
    m2 = int(axis_neurons)
    if m2 > m_width:
        raise ValueError("axis_neurons cannot exceed the embedding width")

    s_flat = Tensor(
        sub.s.reshape(batch * n_nei, 1), requires_grad=inputs_require_grad, name="s"
    )
    r_transpose = Tensor(
        np.transpose(sub.R, (0, 2, 1)), requires_grad=inputs_require_grad, name="R^T"
    )

    # Per-neighbour embedding features, assembled per neighbour type through
    # masking (padded slots have type -1 and never match).
    g_total = None
    for tj in range(embeddings.n_types):
        type_mask = (sub.neighbor_types == tj).astype(np.float64).reshape(batch * n_nei, 1)
        if not np.any(type_mask):
            continue
        net = embeddings.net(center_type, tj)
        g_tj = net(s_flat)
        masked = ops.mul(g_tj, Tensor(type_mask))
        g_total = masked if g_total is None else ops.add(g_total, masked)
    if g_total is None:
        # No neighbours at all (isolated atoms): zero features.
        g_total = Tensor(np.zeros((batch * n_nei, m_width)))

    g_matrix = ops.reshape(g_total, (batch, n_nei, m_width))
    # A = (1/N) R^T G  -> (B, 4, M)
    a_matrix = ops.mul(ops.matmul(r_transpose, g_matrix), 1.0 / n_nei)
    a_axis = a_matrix[:, :, :m2]
    # D = A^T A_axis -> (B, M, M2)
    d_matrix = ops.matmul(ops.transpose(a_matrix, (0, 2, 1)), a_axis)
    d_flat = ops.reshape(d_matrix, (batch, m_width * m2))
    d_std = ops.div(
        ops.sub(d_flat, Tensor(descriptor_mean.reshape(1, -1))),
        Tensor(descriptor_std.reshape(1, -1)),
    )

    fitting_net = fittings.net(center_type)
    energies = ops.add(fitting_net(d_std), float(energy_bias))

    return DescriptorGraph(
        center_type=center_type,
        atom_indices=np.asarray(atom_indices),
        energies=energies,
        descriptor=d_std,
        s_input=s_flat,
        r_transpose_input=r_transpose,
    )


def raw_descriptors(
    env: LocalEnvironment,
    center_type: int,
    atom_indices: np.ndarray,
    fast_embeddings,
    axis_neurons: int,
) -> np.ndarray:
    """Un-standardized flattened descriptors computed with the fast kernels.

    Used by the trainer to estimate the standardization statistics before any
    graph is built.
    """
    sub = env.select(atom_indices)
    batch, n_nei = sub.s.shape
    m_width = next(iter(fast_embeddings.values())).out_features
    m2 = int(axis_neurons)

    g = np.zeros((batch, n_nei, m_width))
    for tj in np.unique(sub.neighbor_types):
        if tj < 0:
            continue
        sel = sub.neighbor_types == tj
        s_sel = sub.s[sel]
        g_sel = fast_embeddings[(center_type, int(tj))].forward(s_sel[:, None], cache=False)
        g[sel] = g_sel
    a = np.einsum("bnk,bnm->bkm", sub.R, g) / n_nei
    d = np.einsum("bkm,bkq->bmq", a, a[:, :, :m2])
    return d.reshape(batch, m_width * m2)
