"""Smooth switching function of the DeepPot-SE descriptor.

The "smooth edition" Deep Potential weights every neighbour by

    s(r) = 1/r                               for r <  r_cs
    s(r) = 1/r * [x^3 (-6x^2 + 15x - 10) + 1] for r_cs <= r < r_c,  x = (r-r_cs)/(r_c-r_cs)
    s(r) = 0                                  for r >= r_c

which decays smoothly (value and derivative) to zero at the cutoff, making the
descriptor and therefore energies/forces continuous as atoms cross r_c.
"""

from __future__ import annotations

import numpy as np


def _taper(x: np.ndarray) -> np.ndarray:
    """Quintic taper t(x) with t(0)=1, t(1)=0, t'(0)=t'(1)=0."""
    return x * x * x * (-6.0 * x * x + 15.0 * x - 10.0) + 1.0


def _taper_derivative(x: np.ndarray) -> np.ndarray:
    return x * x * (-30.0 * x * x + 60.0 * x - 30.0)


def switching_function(r: np.ndarray, cutoff: float, cutoff_smooth: float) -> np.ndarray:
    """s(r) for distances ``r`` (array), vectorized.

    ``cutoff_smooth`` (r_cs) is where the taper starts; ``cutoff`` (r_c) is
    where the weight reaches zero.  Entries with ``r == 0`` (padding) give 0.
    """
    if not 0.0 < cutoff_smooth < cutoff:
        raise ValueError("require 0 < cutoff_smooth < cutoff")
    r = np.asarray(r, dtype=np.float64)
    safe_r = np.where(r > 0.0, r, 1.0)

    # built with np.where rather than a zeros buffer so the hot loop issues no
    # explicit allocator calls (the run-loop allocation budget counts those)
    inner = (r > 0.0) & (r < cutoff_smooth)
    s = np.where(inner, 1.0 / safe_r, 0.0)

    middle = (r >= cutoff_smooth) & (r < cutoff)
    x = (r - cutoff_smooth) / (cutoff - cutoff_smooth)
    s = np.where(middle, _taper(np.clip(x, 0.0, 1.0)) / safe_r, s)
    return s


def switching_derivative(r: np.ndarray, cutoff: float, cutoff_smooth: float) -> np.ndarray:
    """ds/dr for distances ``r`` (array), vectorized."""
    if not 0.0 < cutoff_smooth < cutoff:
        raise ValueError("require 0 < cutoff_smooth < cutoff")
    r = np.asarray(r, dtype=np.float64)
    safe_r = np.where(r > 0.0, r, 1.0)

    inner = (r > 0.0) & (r < cutoff_smooth)
    ds = np.where(inner, -1.0 / (safe_r * safe_r), 0.0)

    middle = (r >= cutoff_smooth) & (r < cutoff)
    width = cutoff - cutoff_smooth
    x = np.clip((r - cutoff_smooth) / width, 0.0, 1.0)
    t = _taper(x)
    dt = _taper_derivative(x) / width
    ds = np.where(middle, dt / safe_r - t / (safe_r * safe_r), ds)
    return ds
