"""Pseudo-AIMD reference data generation.

The paper trains its Deep Potential models on ab initio (DFT) data.  DFT is
not available here, so the "ab initio reference" is an analytic many-body
potential (:class:`~repro.md.forcefields.GuptaPotential` for copper, the
flexible SPC-like model for water).  The substitution is documented in
DESIGN.md; what matters for the reproduction is that the training pipeline,
the accuracy comparison of Table II, and the precision-insensitivity of
Fig. 6 all exercise the same code paths they would with DFT labels.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..md.atoms import Atoms
from ..md.box import Box
from ..md.forcefields import ForceField, GuptaPotential, WaterReference
from ..md.lattice import copper_system
from ..md.neighbor import build_neighbor_data
from ..md.water import water_system
from ..utils.rng import default_rng


@dataclass
class ReferenceFrame:
    """One labelled configuration."""

    atoms: Atoms
    box: Box
    energy: float
    per_atom_energy: np.ndarray
    forces: np.ndarray


@dataclass
class ReferenceDataset:
    """A list of labelled frames plus the generating force field."""

    frames: list[ReferenceFrame] = field(default_factory=list)
    force_field: ForceField | None = None
    type_names: tuple[str, ...] = ()

    def __len__(self) -> int:
        return len(self.frames)

    def add_frame(self, atoms: Atoms, box: Box, force_field: ForceField) -> ReferenceFrame:
        neighbors = build_neighbor_data(atoms.positions, box, force_field.cutoff)
        result = force_field.compute(atoms, box, neighbors)
        frame = ReferenceFrame(
            atoms=atoms,
            box=box,
            energy=result.energy,
            per_atom_energy=(
                result.per_atom_energy
                if result.per_atom_energy is not None
                else np.full(len(atoms), result.energy / max(len(atoms), 1))
            ),
            forces=result.forces,
        )
        self.frames.append(frame)
        return frame

    def split(self, validation_fraction: float = 0.2, rng=None) -> tuple["ReferenceDataset", "ReferenceDataset"]:
        """Random train/validation split."""
        if not 0.0 <= validation_fraction < 1.0:
            raise ValueError("validation fraction must be in [0, 1)")
        rng = default_rng(rng)
        indices = rng.permutation(len(self.frames))
        n_val = int(round(validation_fraction * len(self.frames)))
        val_idx = set(indices[:n_val].tolist())
        train = ReferenceDataset(force_field=self.force_field, type_names=self.type_names)
        val = ReferenceDataset(force_field=self.force_field, type_names=self.type_names)
        for i, frame in enumerate(self.frames):
            (val if i in val_idx else train).frames.append(frame)
        return train, val

    def energy_statistics(self) -> dict[str, float]:
        energies = np.array([f.energy / len(f.atoms) for f in self.frames])
        return {
            "mean_energy_per_atom": float(energies.mean()) if len(energies) else 0.0,
            "std_energy_per_atom": float(energies.std()) if len(energies) else 0.0,
            "n_frames": float(len(self.frames)),
        }


def generate_copper_dataset(
    n_frames: int = 20,
    n_cells: tuple[int, int, int] = (3, 3, 3),
    cutoff: float = 5.0,
    max_perturbation: float = 0.18,
    rng=None,
) -> ReferenceDataset:
    """Perturbed-FCC copper frames labelled with the Gupta potential.

    Frames span a range of perturbation amplitudes so the model sees both
    near-equilibrium and strongly distorted environments (what thermal MD at a
    few hundred kelvin explores).
    """
    rng = default_rng(rng)
    potential = GuptaPotential(cutoff=cutoff)
    dataset = ReferenceDataset(force_field=potential, type_names=("Cu",))
    for k in range(n_frames):
        amplitude = max_perturbation * (k + 1) / n_frames
        atoms, box = copper_system(n_cells, perturbation=amplitude, rng=rng)
        dataset.add_frame(atoms, box, potential)
    return dataset


def generate_water_dataset(
    n_frames: int = 20,
    n_molecules: int = 64,
    cutoff: float = 6.0,
    jitter: float = 0.08,
    rng=None,
) -> ReferenceDataset:
    """Randomly oriented water boxes labelled with the flexible-SPC reference."""
    rng = default_rng(rng)
    dataset = ReferenceDataset(type_names=("O", "H"))
    for _ in range(n_frames):
        atoms, box, topology = water_system(n_molecules, rng=rng, jitter=jitter)
        # Small intramolecular distortions so bond/angle terms are sampled.
        atoms.positions += rng.normal(scale=0.03, size=atoms.positions.shape)
        atoms.positions = box.wrap(atoms.positions)
        potential = WaterReference(topology, cutoff=cutoff)
        if dataset.force_field is None:
            dataset.force_field = potential
        dataset.add_frame(atoms, box, potential)
    return dataset
