"""Training the Deep Potential model against reference data.

The trainer fits the per-atom energies of the reference frames (the
pseudo-AIMD labels) by gradient descent through the framework graph of
:mod:`repro.deepmd.descriptor`.  Per-atom energy matching gives far more
signal per frame than total-energy matching and keeps the optimization
first-order (force matching would require differentiating through the force
computation, i.e. second-order gradients, which the mini framework does not
support — the paper's training is done offline in any case; what this repo
needs is a model whose accuracy/precision behaviour can be measured).

Before training the trainer

* estimates per-type descriptor standardization statistics, and
* sets the per-type atomic energy bias from a least-squares fit,

both standard steps of the DeePMD-kit training pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..md.neighbor import build_neighbor_data
from ..nnframework import ops
from ..nnframework.optimizers import Adam
from ..nnframework.tensor import Tensor
from ..utils.rng import default_rng
from .descriptor import build_descriptor_graph
from .envmat import LocalEnvironment
from .model import DeepPotential
from .reference import ReferenceDataset


@dataclass
class TrainingResult:
    """Loss history and final per-atom energy errors."""

    loss_history: list[float] = field(default_factory=list)
    energy_rmse_per_atom: float = 0.0
    validation_rmse_per_atom: float | None = None
    n_epochs: int = 0

    @property
    def final_loss(self) -> float:
        return self.loss_history[-1] if self.loss_history else float("nan")

    @property
    def improved(self) -> bool:
        """Did the loss decrease over training?"""
        if len(self.loss_history) < 2:
            return False
        return self.loss_history[-1] < self.loss_history[0]


class Trainer:
    """Fits a :class:`DeepPotential` to a :class:`ReferenceDataset`."""

    def __init__(
        self,
        model: DeepPotential,
        dataset: ReferenceDataset,
        learning_rate: float = 2.0e-3,
        rng=None,
    ) -> None:
        if len(dataset) == 0:
            raise ValueError("dataset is empty")
        self.model = model
        self.dataset = dataset
        self.rng = default_rng(rng)
        self.optimizer = Adam(model.parameters(), lr=learning_rate)
        self._environments: list[LocalEnvironment] = []
        self._prepared = False

    # -- preparation ---------------------------------------------------------
    def prepare(self) -> None:
        """Build environments, descriptor statistics and energy biases."""
        cfg = self.model.config
        self._environments = []
        for frame in self.dataset.frames:
            neighbors = build_neighbor_data(frame.atoms.positions, frame.box, cfg.cutoff)
            self._environments.append(
                self.model.build_environment(frame.atoms, frame.box, neighbors)
            )

        # Per-type energy bias: mean reference per-atom energy of that type.
        n_types = self.model.n_types
        bias = np.zeros(n_types)
        for ti in range(n_types):
            values = []
            for frame in self.dataset.frames:
                sel = frame.atoms.types == ti
                if np.any(sel):
                    values.append(frame.per_atom_energy[sel])
            if values:
                bias[ti] = float(np.concatenate(values).mean())
        self.model.set_energy_bias(bias)

        # Descriptor standardization statistics per centre type.
        dim = cfg.descriptor_dim
        mean = np.zeros((n_types, dim))
        std = np.ones((n_types, dim))
        for ti in range(n_types):
            descriptors = [
                self.model.compute_raw_descriptors(env, ti) for env in self._environments
            ]
            descriptors = [d for d in descriptors if len(d)]
            if not descriptors:
                continue
            stacked = np.vstack(descriptors)
            mean[ti] = stacked.mean(axis=0)
            sigma = stacked.std(axis=0)
            std[ti] = np.where(sigma > 1.0e-8, sigma, 1.0)
        self.model.set_descriptor_stats(mean, std)
        self._prepared = True

    # -- training loop ---------------------------------------------------------
    def train(
        self,
        n_epochs: int = 50,
        frames_per_epoch: int | None = None,
        validation: ReferenceDataset | None = None,
        verbose: bool = False,
    ) -> TrainingResult:
        """Run ``n_epochs`` of Adam on the per-atom energy MSE."""
        if not self._prepared:
            self.prepare()
        result = TrainingResult()
        n_frames = len(self.dataset.frames)
        frames_per_epoch = frames_per_epoch or n_frames

        for epoch in range(n_epochs):
            order = self.rng.permutation(n_frames)[:frames_per_epoch]
            epoch_loss = 0.0
            for frame_idx in order:
                frame = self.dataset.frames[frame_idx]
                env = self._environments[frame_idx]
                loss = self._frame_loss(frame, env)
                self.optimizer.zero_grad()
                loss.backward()
                self.optimizer.step()
                epoch_loss += loss.item()
            result.loss_history.append(epoch_loss / max(len(order), 1))
            if verbose:  # pragma: no cover - console convenience
                print(f"epoch {epoch + 1:4d}  loss {result.loss_history[-1]:.6e}")

        self.model.invalidate_kernels()
        result.n_epochs = n_epochs
        result.energy_rmse_per_atom = self.evaluate_rmse(self.dataset)
        if validation is not None and len(validation):
            result.validation_rmse_per_atom = self.evaluate_rmse(validation)
        return result

    def _frame_loss(self, frame, env: LocalEnvironment) -> Tensor:
        """Per-atom energy MSE of one frame as a framework scalar."""
        cfg = self.model.config
        losses = []
        for ti in range(self.model.n_types):
            idx = np.nonzero(env.types == ti)[0]
            if len(idx) == 0:
                continue
            graph = build_descriptor_graph(
                env,
                ti,
                idx,
                self.model.embeddings,
                self.model.fittings,
                cfg.axis_neurons,
                self.model.descriptor_mean[ti],
                self.model.descriptor_std[ti],
                self.model.energy_bias[ti],
                inputs_require_grad=False,
            )
            target = Tensor(frame.per_atom_energy[idx].reshape(-1, 1))
            losses.append(ops.mse_loss(graph.energies, target))
        if not losses:
            return Tensor(0.0)
        total = losses[0]
        for extra in losses[1:]:
            total = ops.add(total, extra)
        return ops.mul(total, 1.0 / len(losses))

    # -- evaluation ---------------------------------------------------------------
    def evaluate_rmse(self, dataset: ReferenceDataset) -> float:
        """Per-atom energy RMSE of the current model over ``dataset`` (eV/atom)."""
        cfg = self.model.config
        self.model.invalidate_kernels()
        errors = []
        for frame in dataset.frames:
            neighbors = build_neighbor_data(frame.atoms.positions, frame.box, cfg.cutoff)
            output = self.model.evaluate(frame.atoms, frame.box, neighbors)
            errors.append(output.per_atom_energy - frame.per_atom_energy)
        if not errors:
            return 0.0
        stacked = np.concatenate(errors)
        return float(np.sqrt(np.mean(stacked * stacked)))
