"""Scalar (per-atom loop) golden reference for the Deep Potential hot path.

The production inference path (:mod:`repro.deepmd.envmat` and
:meth:`repro.deepmd.model.DeepPotential.evaluate`) is fully batched NumPy.
This module keeps the original loop-based formulation alive as golden code:

* :func:`build_local_environment_scalar` builds the environment matrices with
  an explicit per-atom Python loop (the implementation the vectorized
  ``build_local_environment`` replaced), and
* :func:`evaluate_scalar` evaluates energies, forces and the virial atom by
  atom and neighbour by neighbour, calling the embedding and fitting kernels
  on single rows.

Both are deliberately slow and deliberately simple: every tensor contraction
of the batched path appears here as a loop whose body is a handful of scalar
or per-row operations, so the parity suite
(``tests/test_deepmd_vectorized_parity.py``) can pin the fast path to this
reference at double-precision tolerance 1e-10.  Do not optimize this module.
"""

from __future__ import annotations

import numpy as np

from ..md.atoms import Atoms
from ..md.box import Box
from ..md.neighbor import NeighborData
from .envmat import LocalEnvironment
from .smoothing import switching_derivative, switching_function


def build_local_environment_scalar(
    atoms: Atoms,
    box: Box,
    neighbors: NeighborData,
    cutoff: float,
    cutoff_smooth: float,
    max_neighbors: int | None = None,
    sort_neighbors_by_type: bool = True,
) -> LocalEnvironment:
    """Per-atom-loop construction of the dense local environments.

    Semantics are identical to :func:`repro.deepmd.envmat.build_local_environment`
    (same ordering, same truncation, same padding); only the implementation
    strategy differs.
    """
    if cutoff <= 0 or not 0 < cutoff_smooth < cutoff:
        raise ValueError("require 0 < cutoff_smooth < cutoff")
    n = len(atoms)
    nei = neighbors.neighbors
    n_pad = nei.shape[1] if max_neighbors is None else int(max_neighbors)
    n_pad = max(n_pad, 1)

    positions = atoms.positions
    types = atoms.types

    slot_valid = nei >= 0
    safe_idx = np.where(slot_valid, nei, 0)
    disp = positions[safe_idx] - positions[:, None, :]
    disp = box.minimum_image(disp)
    dist = np.linalg.norm(disp, axis=2)
    within = slot_valid & (dist > 0.0) & (dist <= cutoff)
    nei_types_raw = np.where(slot_valid, types[safe_idx], -1)

    R = np.zeros((n, n_pad, 4))
    displacements = np.zeros((n, n_pad, 3))
    distances = np.zeros((n, n_pad))
    mask = np.zeros((n, n_pad))
    neighbor_indices = np.full((n, n_pad), -1, dtype=np.int64)
    neighbor_types = np.full((n, n_pad), -1, dtype=np.int64)

    for i in range(n):
        cols = np.nonzero(within[i])[0]
        if len(cols) == 0:
            continue
        if len(cols) > n_pad:
            # Keep the closest neighbours if the padding budget is exceeded.
            order = np.argsort(dist[i, cols], kind="stable")
            cols = cols[order[:n_pad]]
        if sort_neighbors_by_type:
            order = np.lexsort((dist[i, cols], nei_types_raw[i, cols]))
        else:
            order = np.argsort(dist[i, cols], kind="stable")
        cols = cols[order]
        m = len(cols)
        displacements[i, :m] = disp[i, cols]
        distances[i, :m] = dist[i, cols]
        neighbor_indices[i, :m] = nei[i, cols]
        neighbor_types[i, :m] = nei_types_raw[i, cols]
        mask[i, :m] = 1.0

    s_values = switching_function(distances, cutoff, cutoff_smooth) * mask
    ds_values = switching_derivative(distances, cutoff, cutoff_smooth) * mask

    safe_dist = np.where(distances > 0.0, distances, 1.0)
    unit = displacements / safe_dist[..., None]
    R[..., 0] = s_values
    R[..., 1:] = s_values[..., None] * unit
    R *= mask[..., None]

    return LocalEnvironment(
        R=R,
        displacements=displacements,
        distances=distances,
        s=s_values,
        ds_dr=ds_values,
        mask=mask,
        neighbor_indices=neighbor_indices,
        neighbor_types=neighbor_types,
        types=types.copy(),
        cutoff=cutoff,
        cutoff_smooth=cutoff_smooth,
    )


def atom_raw_descriptor(model, env: LocalEnvironment, atom_index: int) -> np.ndarray:
    """Un-standardized flattened descriptor of one atom, computed per neighbour."""
    i = int(atom_index)
    n_nei = env.max_neighbors
    m_width = model.embeddings.width
    m2 = model.config.axis_neurons
    center_type = int(env.types[i])
    fast_emb = model.fast_embeddings()

    g = np.zeros((n_nei, m_width))
    for k in range(n_nei):
        if env.mask[i, k] <= 0.0:
            continue
        tj = int(env.neighbor_types[i, k])
        g[k] = fast_emb[(center_type, tj)].forward(
            np.array([[env.s[i, k]]]), cache=False
        )[0]

    a = np.zeros((4, m_width))
    for k in range(n_nei):
        a += np.outer(env.R[i, k], g[k])
    a /= n_nei
    d = a.T @ a[:, :m2]
    return d.reshape(m_width * m2)


def evaluate_scalar(
    model,
    atoms: Atoms,
    box: Box,
    neighbors: NeighborData,
    environment: LocalEnvironment | None = None,
):
    """Golden per-atom inference: energies, forces and virial, loop by loop.

    Double precision only; mirrors the math of
    :meth:`repro.deepmd.model.DeepPotential.evaluate` exactly, but every atom
    is processed independently and every neighbour contribution is accumulated
    with explicit Python loops.
    """
    from .model import ModelOutput  # local import to avoid a cycle

    env = (
        environment
        if environment is not None
        else build_local_environment_scalar(
            atoms,
            box,
            neighbors,
            cutoff=model.config.cutoff,
            cutoff_smooth=model.config.cutoff_smooth,
            max_neighbors=model.config.max_neighbors,
        )
    )
    n = env.n_atoms
    n_nei = env.max_neighbors
    m_width = model.embeddings.width
    m2 = model.config.axis_neurons
    fast_emb = model.fast_embeddings()
    fast_fit = model.fast_fittings()

    per_atom = np.zeros(n)
    forces = np.zeros((n, 3))
    virial = np.zeros((3, 3))

    for i in range(n):
        center_type = int(env.types[i])

        # --- embedding features, one neighbour at a time (caches kept for the
        # backward pass)
        g = np.zeros((n_nei, m_width))
        caches: list[tuple[object, object] | None] = [None] * n_nei
        for k in range(n_nei):
            if env.mask[i, k] <= 0.0:
                continue
            tj = int(env.neighbor_types[i, k])
            net = fast_emb[(center_type, tj)]
            g[k] = net.forward(np.array([[env.s[i, k]]]), cache=True)[0]
            caches[k] = (net, net._cache)

        # --- descriptor: A = (1/N) R^T G accumulated neighbour by neighbour
        a = np.zeros((4, m_width))
        for k in range(n_nei):
            a += np.outer(env.R[i, k], g[k])
        a /= n_nei
        a_axis = a[:, :m2]
        d_flat = (a.T @ a_axis).reshape(m_width * m2)
        mean = model.descriptor_mean[center_type]
        std = model.descriptor_std[center_type]
        d_std = (d_flat - mean) / std

        # --- fitting net forward + backward (dE/dD)
        fit_net = fast_fit[center_type]
        energy_i = fit_net.forward(d_std[None, :], cache=True)
        per_atom[i] = float(energy_i[0, 0]) + model.energy_bias[center_type]
        grad_dstd = fit_net.backward_input(np.ones((1, 1)))[0]
        grad_d = (grad_dstd / std).reshape(m_width, m2)

        # --- descriptor backward: dE/dA, then per-neighbour dE/dR, dE/dG
        grad_a = np.einsum("kq,mq->km", a_axis, grad_d)  # reprolint: allow[golden] frozen descriptor-backward formulation the fast path is pinned against
        grad_a[:, :m2] += np.einsum("km,mq->kq", a, grad_d)  # reprolint: allow[golden] frozen descriptor-backward formulation the fast path is pinned against

        for k in range(n_nei):
            if env.mask[i, k] <= 0.0:
                continue
            grad_r_k = (grad_a @ g[k]) / n_nei  # (4,) dE/dR_ik
            grad_g_k = (env.R[i, k] @ grad_a) / n_nei  # (M,) dE/dG_ik
            net, cache = caches[k]
            net._cache = cache
            grad_s_k = float(net.backward_input(grad_g_k[None, :])[0, 0])

            # --- geometric chain for this one neighbour
            r = env.distances[i, k]
            d_vec = env.displacements[i, k]
            unit = d_vec / r
            s = env.s[i, k]
            ds_dr = env.ds_dr[i, k]
            h = s / r
            dh_dr = ds_dr / r - s / (r * r)
            grad_s_total = grad_s_k + grad_r_k[0]
            grad_r_vec = grad_r_k[1:4]
            radial = grad_s_total * ds_dr + float(grad_r_vec @ d_vec) * dh_dr
            g_d = radial * unit + grad_r_vec * h

            # --- scatter: F_i += dE/dd, F_j -= dE/dd; virial -= d (x) dE/dd
            j = int(env.neighbor_indices[i, k])
            forces[i] += g_d
            forces[j] -= g_d
            virial -= np.outer(d_vec, g_d)

    return ModelOutput(
        energy=float(per_atom.sum()),
        per_atom_energy=per_atom,
        forces=forces,
        precision="double",
        used_framework=False,
        virial=virial,
    )
