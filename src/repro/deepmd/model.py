"""The Deep Potential model: energies and analytic forces.

:class:`DeepPotential` combines the environment matrix, the embedding and
fitting networks, descriptor standardization and per-type energy shifts into
an interatomic potential with two evaluation paths:

* :meth:`evaluate` — the **optimized, framework-free** path.  All kernels are
  hand-written NumPy (forward + analytic backward), matrix products run
  through a :class:`~repro.deepmd.gemm.GemmBackend` (blas or sve-like, NT→NN
  pre-transposition), the precision policy selects fp64/fp32/fp16 per
  component, and the embedding nets can be replaced by the compressed
  (tabulated) variant.  This is the code path the paper ships.

* :meth:`evaluate_with_framework` — the **baseline** path.  The embedding and
  fitting networks execute inside the mini framework
  (:mod:`repro.nnframework`), one :class:`Session` run per evaluation, with
  dE/ds and dE/dR obtained by automatic differentiation.  Numerically this
  gives the same double-precision result, but it carries the framework's
  fixed per-run overhead — the overhead the paper removes.

Both paths share the geometric force chain (descriptor → neighbour
displacements → atoms), so the equivalence of the two paths is testable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..md.atoms import Atoms
from ..md.box import Box
from ..md.neighbor import NeighborData
from ..md.workspace import scatter_add_vectors
from ..nnframework.session import Session
from ..utils.rng import default_rng
from .compression import TabulatedEmbeddingSet
from .descriptor import build_descriptor_graph, raw_descriptors
from .embedding import EmbeddingNetSet
from .envmat import LocalEnvironment, build_local_environment
from .fitting import FittingNetSet
from .gemm import GemmBackend
from .precision import DOUBLE, PrecisionPolicy, get_policy


@dataclass
class DeepPotentialConfig:
    """Hyper-parameters of a Deep Potential model.

    Defaults follow the paper's benchmark configuration (fitting net
    (240, 240, 240)); tests and examples use smaller networks for speed.
    """

    type_names: tuple[str, ...]
    cutoff: float
    cutoff_smooth: float | None = None
    embedding_sizes: tuple[int, ...] = (25, 50, 100)
    axis_neurons: int = 16
    fitting_sizes: tuple[int, ...] = (240, 240, 240)
    max_neighbors: int = 128
    seed: int | None = None

    def __post_init__(self) -> None:
        self.type_names = tuple(self.type_names)
        if not self.type_names:
            raise ValueError("need at least one atom type")
        if self.cutoff <= 0:
            raise ValueError("cutoff must be positive")
        if self.cutoff_smooth is None:
            self.cutoff_smooth = max(self.cutoff - 1.0, 0.5 * self.cutoff)
        if not 0 < self.cutoff_smooth < self.cutoff:
            raise ValueError("require 0 < cutoff_smooth < cutoff")
        if self.axis_neurons > self.embedding_sizes[-1]:
            raise ValueError("axis_neurons cannot exceed the embedding width")
        if self.max_neighbors < 1:
            raise ValueError("max_neighbors must be positive")

    @property
    def n_types(self) -> int:
        return len(self.type_names)

    @property
    def descriptor_dim(self) -> int:
        return self.embedding_sizes[-1] * self.axis_neurons


@dataclass
class ModelOutput:
    """Energies and forces from one model evaluation.

    Shapes are well-formed for every system size, including the degenerate
    ones serving traffic produces: a 0-atom system yields ``energy == 0.0``,
    a ``(0,)`` per-atom energy array, ``(0, 3)`` forces and a zero ``(3, 3)``
    virial — never ``None``-shaped or scalar-collapsed arrays.
    """

    energy: float
    per_atom_energy: np.ndarray
    forces: np.ndarray
    precision: str
    used_framework: bool = False
    virial: np.ndarray | None = None


@dataclass
class BatchModelOutput:
    """Per-system energies/forces/virials from one fused multi-system evaluation.

    Produced by :meth:`DeepPotential.evaluate_many`: atoms of all systems are
    concatenated, so ``per_atom_energy``/``forces`` are global ``(n_total,)``
    and ``(n_total, 3)`` arrays while ``energies``/``virials`` carry one entry
    per system (fixed-order ``bincount`` segment reductions, always float64).
    With a workspace the arrays alias pool buffers valid until the next
    evaluation; :meth:`split` copies them out into per-system
    :class:`ModelOutput` objects.
    """

    energies: np.ndarray  # (S,)
    per_atom_energy: np.ndarray  # (n_total,)
    forces: np.ndarray  # (n_total, 3)
    virials: np.ndarray  # (S, 3, 3)
    offsets: np.ndarray  # (S + 1,) atom offsets of each system
    precision: str

    @property
    def n_systems(self) -> int:
        return len(self.energies)

    def split(self) -> list[ModelOutput]:
        """Freshly owned per-system outputs (not a hot path — copies)."""
        outputs = []
        for s in range(self.n_systems):
            lo, hi = int(self.offsets[s]), int(self.offsets[s + 1])
            outputs.append(
                ModelOutput(
                    energy=float(self.energies[s]),
                    per_atom_energy=self.per_atom_energy[lo:hi].copy(),
                    forces=self.forces[lo:hi].copy(),
                    precision=self.precision,
                    used_framework=False,
                    virial=self.virials[s].copy(),
                )
            )
        return outputs


class DeepPotential:
    """A trainable Deep Potential model."""

    def __init__(self, config: DeepPotentialConfig) -> None:
        self.config = config
        rng = default_rng(config.seed)
        self.embeddings = EmbeddingNetSet(config.n_types, config.embedding_sizes, rng=rng)
        self.fittings = FittingNetSet(
            config.n_types, config.descriptor_dim, config.fitting_sizes, rng=rng
        )
        dim = config.descriptor_dim
        self.descriptor_mean = np.zeros((config.n_types, dim))
        self.descriptor_std = np.ones((config.n_types, dim))
        self.energy_bias = np.zeros(config.n_types)
        self._fast_embeddings = None
        self._fast_fittings = None
        self._compressed: TabulatedEmbeddingSet | None = None
        self._compressed_key: tuple[int, float] | None = None
        #: once-cast low-precision descriptor mean/std per (type, dtype) —
        #: rebuilt lazily after :meth:`set_descriptor_stats` or
        #: :meth:`invalidate_kernels`
        self._lp_standardization: dict[tuple[int, np.dtype], tuple[np.ndarray, np.ndarray]] = {}
        #: bumped by :meth:`invalidate_kernels`; consumers holding exported
        #: kernels or tables compare it to know theirs went stale
        self.kernel_generation = 0
        #: how many times a compressed table was actually (re)built — the
        #: cross-request cache-reuse probe: a serving run of N requests over
        #: one model must leave this at 1, however many batches were formed
        self.table_cache_builds = 0

    # -- bookkeeping -------------------------------------------------------------
    @property
    def n_types(self) -> int:
        return self.config.n_types

    def parameters(self):
        return self.embeddings.parameters() + self.fittings.parameters()

    def n_parameters(self) -> int:
        return int(sum(p.size for p in self.parameters()))

    def invalidate_kernels(self) -> None:
        """Drop exported kernels (call after the trainer updates weights)."""
        self._fast_embeddings = None
        self._fast_fittings = None
        self._compressed = None
        self._compressed_key = None
        self._lp_standardization.clear()
        self.kernel_generation += 1

    def fast_embeddings(self):
        if self._fast_embeddings is None:
            self._fast_embeddings = self.embeddings.export()
        return self._fast_embeddings

    def fast_fittings(self):
        if self._fast_fittings is None:
            self._fast_fittings = self.fittings.export()
        return self._fast_fittings

    # reprolint: cold-path tabulation builds once per (n_points, min_distance) key and is cached; the hot loop only reads the finished table
    def compressed_embeddings(
        self, n_points: int = 2048, min_distance: float = 0.5
    ) -> TabulatedEmbeddingSet:
        """Tabulated embedding nets covering s(r) down to ``min_distance`` A.

        The switching function equals 1/r below the smooth cutoff, so the
        table must extend to 1/min_distance to cover the closest approaches
        seen in practice.  The cache is keyed on ``(n_points, min_distance)``:
        asking for a different grid rebuilds the table instead of returning
        the stale first one.
        """
        key = (int(n_points), float(min_distance))
        if self._compressed is None or self._compressed_key != key:
            s_max = 1.0 / max(min_distance, 1.0e-3)
            self._compressed = TabulatedEmbeddingSet(
                self.fast_embeddings(), s_max=s_max, n_points=n_points
            )
            self._compressed_key = key
            self.table_cache_builds += 1
        return self._compressed

    def active_compressed_embeddings(self) -> TabulatedEmbeddingSet:
        """The table ``evaluate(compressed=True)`` uses: whatever table is
        cached (however it was parameterized), else the default-parameter one."""
        if self._compressed is None:
            return self.compressed_embeddings()
        return self._compressed

    def set_descriptor_stats(self, mean: np.ndarray, std: np.ndarray) -> None:
        mean = np.asarray(mean, dtype=np.float64)
        std = np.asarray(std, dtype=np.float64)
        expected = (self.n_types, self.config.descriptor_dim)
        if mean.shape != expected or std.shape != expected:
            raise ValueError(f"descriptor stats must have shape {expected}")
        if np.any(std <= 0):
            raise ValueError("descriptor std must be positive")
        self.descriptor_mean = mean
        self.descriptor_std = std
        self._lp_standardization.clear()

    def _standardization(self, center_type: int, dtype) -> tuple[np.ndarray, np.ndarray]:
        """Descriptor mean/std of one type at the compute dtype.

        float64 returns the master arrays; lower precisions are cast once and
        cached so the mixed-precision hot loop never re-casts them per step.
        """
        dt = np.dtype(dtype)
        if dt == np.dtype(np.float64):
            return self.descriptor_mean[center_type], self.descriptor_std[center_type]
        key = (center_type, dt)
        entry = self._lp_standardization.get(key)
        if entry is None:
            entry = (
                self.descriptor_mean[center_type].astype(dt),  # reprolint: allow[alloc] cast once per (type, dtype), cached across steps
                self.descriptor_std[center_type].astype(dt),  # reprolint: allow[alloc] cast once per (type, dtype), cached across steps
            )
            self._lp_standardization[key] = entry
        return entry

    def set_energy_bias(self, bias: np.ndarray) -> None:
        bias = np.asarray(bias, dtype=np.float64)
        if bias.shape != (self.n_types,):
            raise ValueError("energy bias must have one entry per type")
        self.energy_bias = bias

    # -- environments --------------------------------------------------------------
    def build_environment(
        self, atoms: Atoms, box: Box, neighbors: NeighborData, workspace=None
    ) -> LocalEnvironment:
        return build_local_environment(
            atoms,
            box,
            neighbors,
            cutoff=self.config.cutoff,
            cutoff_smooth=self.config.cutoff_smooth,
            max_neighbors=self.config.max_neighbors,
            workspace=workspace,
        )

    # ---------------------------------------------------------------------------
    # Optimized, framework-free evaluation
    # ---------------------------------------------------------------------------
    # reprolint: hot-path
    def evaluate(
        self,
        atoms: Atoms,
        box: Box,
        neighbors: NeighborData,
        precision: PrecisionPolicy | str = DOUBLE,
        backend: GemmBackend | None = None,
        compressed: bool = False,
        compression_table: TabulatedEmbeddingSet | None = None,
        environment: LocalEnvironment | None = None,
        workspace=None,
    ) -> ModelOutput:
        """Energies and analytic forces with the hand-written kernels.

        ``workspace`` (a :class:`repro.md.workspace.Workspace`) reuses the
        per-atom/force/virial output buffers across calls — the arithmetic is
        unchanged (buffers are zero-filled), only the allocations go away.
        ``compression_table`` lets a caller that owns a specific table (the
        compressed pair style) evaluate with it; by default the model's
        active cached table is used.
        """
        policy = get_policy(precision)
        backend = backend or GemmBackend()
        env = (
            environment
            if environment is not None
            else self.build_environment(atoms, box, neighbors, workspace=workspace)
        )
        n = env.n_atoms
        if workspace is not None:
            per_atom = workspace.zeros("dp.per_atom", n)
            forces = workspace.zeros("dp.forces", (n, 3))
            virial = workspace.zeros("dp.virial", (3, 3))
        else:
            per_atom = np.zeros(n)  # reprolint: allow[alloc] workspace-less reference branch allocates per call by design
            forces = np.zeros((n, 3))  # reprolint: allow[alloc] workspace-less reference branch allocates per call by design
            virial = np.zeros((3, 3))  # reprolint: allow[alloc] workspace-less reference branch allocates per call by design

        if n == 0:
            # degenerate (0-atom) serving request: the contract is a
            # well-formed empty output — (0,) energies, (0, 3) forces and a
            # zero virial — stated explicitly rather than left to whatever
            # shapes the per-type loop happens to fall through with
            return ModelOutput(
                energy=0.0,
                per_atom_energy=per_atom,
                forces=forces,
                precision=policy.name,
                used_framework=False,
                virial=virial,
            )

        for ti in range(self.n_types):
            idx = np.nonzero(env.types == ti)[0]
            if len(idx) == 0:
                continue
            energies_t, g_d, sub = self._per_type_fast(
                env,
                ti,
                idx,
                policy,
                backend,
                compressed,
                compression_table=compression_table,
                workspace=workspace,
            )
            per_atom[idx] = energies_t
            self._scatter_forces(forces, idx, sub, g_d)
            virial -= np.einsum("bni,bnj->ij", sub.displacements, g_d)

        return ModelOutput(
            energy=float(per_atom.sum()),
            per_atom_energy=per_atom,
            forces=forces,
            precision=policy.name,
            used_framework=False,
            virial=virial,
        )

    # ---------------------------------------------------------------------------
    # Fused multi-system evaluation (the serving batch path)
    # ---------------------------------------------------------------------------
    # reprolint: hot-path
    def evaluate_many(
        self,
        env: LocalEnvironment,
        system_of_atom: np.ndarray,
        offsets: np.ndarray,
        precision: PrecisionPolicy | str = DOUBLE,
        backend: GemmBackend | None = None,
        compressed: bool = False,
        compression_table: TabulatedEmbeddingSet | None = None,
        workspace=None,
    ) -> BatchModelOutput:
        """Energies, forces and virials for many independent systems at once.

        ``env`` is a *concatenated* local environment: the per-system
        environment matrices stacked along the atom axis with neighbour
        indices rebased to the global (concatenated) atom numbering — the
        layout :func:`repro.serving.batch.pack_systems` produces.
        ``system_of_atom`` maps each global atom row to its system index and
        ``offsets`` is the ``(S + 1,)`` atom-offset array of the packing.

        The compute reuses the single-system kernels unchanged: the per-type
        compaction of :meth:`_per_type_fast` does not care which system a row
        came from, so each embedding/fitting GEMM and each batched Hermite
        table evaluation runs once over the whole multi-system batch instead
        of once per system — the per-call dispatch and the under-filled small
        GEMMs of one-at-a-time serving disappear.  Per-atom quantities reduce
        to per-system energies/virials through fixed-order ``np.bincount``
        segment sums, always in float64 (the same accumulation-precision
        boundary as :meth:`evaluate`), so batching a system with different
        companions never changes its reduction order.
        """
        policy = get_policy(precision)
        backend = backend or GemmBackend()
        system_of_atom = np.asarray(system_of_atom, dtype=np.int64)
        offsets = np.asarray(offsets, dtype=np.int64)
        n = env.n_atoms
        if system_of_atom.shape != (n,):
            raise ValueError("system_of_atom must hold one system index per packed atom")
        n_systems = len(offsets) - 1
        if n_systems < 0 or (n and int(offsets[-1]) != n):
            raise ValueError("offsets must be a (S + 1,) cumulative atom-count array")
        if workspace is not None:
            per_atom = workspace.zeros("dp.many.per_atom", n)
            forces = workspace.zeros("dp.many.forces", (n, 3))
            energies = workspace.zeros("dp.many.energies", n_systems)
            virials = workspace.zeros("dp.many.virials", (n_systems, 3, 3))
        else:
            per_atom = np.zeros(n)  # reprolint: allow[alloc] workspace-less reference branch allocates per call by design
            forces = np.zeros((n, 3))  # reprolint: allow[alloc] workspace-less reference branch allocates per call by design
            energies = np.zeros(n_systems)  # reprolint: allow[alloc] workspace-less reference branch allocates per call by design
            virials = np.zeros((n_systems, 3, 3))  # reprolint: allow[alloc] workspace-less reference branch allocates per call by design

        for ti in range(self.n_types):
            idx = np.nonzero(env.types == ti)[0]
            if len(idx) == 0:
                continue
            energies_t, g_d, sub = self._per_type_fast(
                env,
                ti,
                idx,
                policy,
                backend,
                compressed,
                compression_table=compression_table,
                workspace=workspace,
            )
            per_atom[idx] = energies_t
            self._scatter_forces(forces, idx, sub, g_d)
            # per-centre virial tensors, segment-reduced per system: the
            # (B, 3, 3) contraction keeps each centre's contribution separate
            # so the bincount below can assign it to the right system
            if workspace is not None:
                pav = workspace.buffer(f"dp.many.pav.{ti}", (len(idx), 3, 3))
            else:
                pav = np.empty((len(idx), 3, 3))  # reprolint: allow[alloc] workspace-less reference branch allocates per call by design
            np.einsum("bni,bnj->bij", sub.displacements, g_d, out=pav)
            sys_ids = system_of_atom[idx]
            for a in range(3):
                for b in range(3):
                    virials[:, a, b] -= np.bincount(
                        sys_ids, weights=pav[:, a, b], minlength=n_systems
                    )

        # per-system energy segment reduction (fixed bincount order, float64)
        if n:
            energies += np.bincount(system_of_atom, weights=per_atom, minlength=n_systems)
        return BatchModelOutput(
            energies=energies,
            per_atom_energy=per_atom,
            forces=forces,
            virials=virials,
            offsets=offsets,
            precision=policy.name,
        )

    # reprolint: hot-path
    def _per_type_fast(
        self,
        env: LocalEnvironment,
        center_type: int,
        atom_indices: np.ndarray,
        policy: PrecisionPolicy,
        backend: GemmBackend,
        compressed: bool,
        compression_table: TabulatedEmbeddingSet | None = None,
        workspace=None,
    ):
        """Per-atom energies and per-neighbour displacement gradients for one type.

        The compute precision between the (always-float64) environment matrix
        and the (always-float64) per-atom energy/force/virial reductions is
        :attr:`PrecisionPolicy.compute_dtype`: under the MIX policies the
        environment-matrix operands are downcast once per step into workspace
        buffers and the table interpolation / embedding nets, descriptor
        contraction, fitting net and the whole backward chain run natively at
        that precision.  The float64 policy takes the original (golden) code
        path with the original arrays — bit-for-bit unchanged.
        """
        sub = env.select(atom_indices)
        batch, n_nei = sub.s.shape
        m_width = self.embeddings.width
        m2 = self.config.axis_neurons
        emb_dtypes = policy.embedding_dtypes(len(self.config.embedding_sizes))
        fit_dtypes = policy.fitting_dtypes(len(self.config.fitting_sizes) + 1)
        cd = np.dtype(policy.compute_dtype)
        mixed = cd != np.dtype(np.float64)
        # one downcast of the environment operands per step (into reused
        # workspace buffers): everything downstream reads these natively;
        # float64 gets the original arrays back, untouched
        r_c, s_c = sub.compute_arrays(cd, workspace=workspace, key=str(center_type))

        fast_emb = self.fast_embeddings()
        table = None
        if compressed:
            table = compression_table or self.active_compressed_embeddings()

        # --- embedding features G and the bookkeeping needed for the backward
        g_shape = (batch, n_nei, m_width)
        group_cache: dict[int, tuple[np.ndarray, object]] = {}
        if compressed:
            # batched multi-table interpolation: every real neighbour of the
            # batch in one gather + Hermite kernel, keyed by its table slot;
            # padded slots are never evaluated (their G rows stay exactly
            # zero, as the per-type loop left them)
            valid = sub.neighbor_types >= 0
            slots = table.slot_index(center_type, sub.neighbor_types[valid])
            # node placement inside evaluate_batched is float64 regardless of
            # the compute dtype, so the table always reads the fp64 s values
            s_valid = sub.s[valid]
            nv = len(s_valid)
            if workspace is not None:
                g = workspace.buffer(f"dp.emb.g.{center_type}", g_shape, dtype=cd)
                g_valid = workspace.capacity(f"dp.emb.vals.{center_type}", nv, trailing=(m_width,), dtype=cd)
                dg_valid = workspace.capacity(f"dp.emb.ders.{center_type}", nv, trailing=(m_width,), dtype=cd)
                table.evaluate_batched(
                    slots, s_valid, out_values=g_valid, out_derivatives=dg_valid, dtype=cd
                )
            else:
                g = np.empty(g_shape, dtype=cd)  # reprolint: allow[alloc] workspace-less reference branch allocates per call by design
                g_valid, dg_valid = table.evaluate_batched(slots, s_valid, dtype=cd)
            # dG/ds stays compact: only G must be dense for the descriptor
            # contraction (padded rows exactly zero, as the loop left them)
            g[~valid] = 0.0
            g[valid] = g_valid
        else:
            valid = dg_valid = None
            if workspace is not None:
                g = workspace.zeros(f"dp.emb.g.{center_type}", g_shape, dtype=cd)
            else:
                g = np.zeros(g_shape, dtype=cd)  # reprolint: allow[alloc] workspace-less reference branch allocates per call by design
            for tj in np.unique(sub.neighbor_types):
                if tj < 0:
                    continue
                tj = int(tj)
                sel = sub.neighbor_types == tj
                s_sel = s_c[sel]
                net = fast_emb[(center_type, tj)]
                g_sel = net.forward(s_sel[:, None], backend=backend, dtypes=emb_dtypes, cache=True)
                g[sel] = g_sel
                group_cache[tj] = (sel, net._cache)

        # --- descriptor (batched matmuls: BLAS-backed, unlike c_einsum)
        a = np.matmul(r_c.transpose(0, 2, 1), g) / n_nei  # (B, 4, M)
        a_axis = a[:, :, :m2]
        d = np.matmul(a.transpose(0, 2, 1), a_axis)  # (B, M, M2)
        d_flat = d.reshape(batch, m_width * m2)
        mean, std = self._standardization(center_type, cd)
        d_std = (d_flat - mean) / std

        # --- fitting net forward + backward (dE/dD)
        fit_net = self.fast_fittings()[center_type]
        energies = fit_net.forward(d_std, backend=backend, dtypes=fit_dtypes, cache=True)
        if mixed:
            # the per-atom energy accumulation (bias add onwards) is float64
            energies = energies.reshape(batch).astype(np.float64) + self.energy_bias[center_type]  # reprolint: allow[alloc] one tiny (B,) upcast per step at the fp64 accumulation boundary
        else:
            energies = energies.reshape(batch) + self.energy_bias[center_type]
        if workspace is not None:
            ones = workspace.buffer(f"dp.fit.ones.{center_type}", (batch, 1), dtype=cd)
            ones.fill(1.0)
        else:
            ones = np.ones((batch, 1), dtype=cd)  # reprolint: allow[alloc] workspace-less reference branch allocates per call by design
        grad_dstd = fit_net.backward_input(ones, backend=backend, dtypes=fit_dtypes)
        grad_dflat = grad_dstd / std
        grad_d = grad_dflat.reshape(batch, m_width, m2)

        # --- descriptor backward: dE/dA, dE/dR, dE/dG
        grad_a = np.matmul(a_axis, grad_d.transpose(0, 2, 1))  # (B, 4, M)
        grad_a[:, :, :m2] += np.matmul(a, grad_d)  # (B, 4, M2)
        grad_r = np.matmul(g, grad_a.transpose(0, 2, 1)) / n_nei  # (B, N, 4)
        grad_g = np.matmul(r_c, grad_a) / n_nei  # (B, N, M)

        # --- embedding backward: dE/ds from the G path
        if compressed:
            # contract against the compact dG/ds rows: padded slots contribute
            # exactly zero, so only the valid rows need the dot product
            if workspace is not None:
                grad_s_embed = workspace.zeros(f"dp.emb.grad_s.{center_type}", (batch, n_nei), dtype=cd)
            else:
                grad_s_embed = np.zeros((batch, n_nei), dtype=cd)  # reprolint: allow[alloc] workspace-less reference branch allocates per call by design
            grad_s_embed[valid] = np.einsum("nm,nm->n", grad_g[valid], dg_valid)
        else:
            if workspace is not None:
                grad_s_embed = workspace.zeros(f"dp.emb.grad_s.{center_type}", (batch, n_nei), dtype=cd)
            else:
                grad_s_embed = np.zeros((batch, n_nei), dtype=cd)  # reprolint: allow[alloc] workspace-less reference branch allocates per call by design
            for tj, (sel, cache) in group_cache.items():
                net = fast_emb[(center_type, tj)]
                net._cache = cache
                gs_sel = net.backward_input(grad_g[sel], backend=backend, dtypes=emb_dtypes)
                grad_s_embed[sel] = gs_sel[:, 0]

        g_d = self._geometric_chain(sub, grad_r, grad_s_embed)
        return energies, g_d, sub

    # ---------------------------------------------------------------------------
    # Golden scalar reference evaluation
    # ---------------------------------------------------------------------------
    def evaluate_scalar(
        self,
        atoms: Atoms,
        box: Box,
        neighbors: NeighborData,
        environment: LocalEnvironment | None = None,
    ) -> ModelOutput:
        """Per-atom loop-based reference path (see :mod:`repro.deepmd.scalar`).

        Orders of magnitude slower than :meth:`evaluate`; exists as the golden
        implementation the vectorized hot path is pinned to by the parity
        suite and the inference benchmark.
        """
        from .scalar import evaluate_scalar

        return evaluate_scalar(self, atoms, box, neighbors, environment=environment)

    # ---------------------------------------------------------------------------
    # Baseline ("framework") evaluation
    # ---------------------------------------------------------------------------
    def evaluate_with_framework(
        self,
        atoms: Atoms,
        box: Box,
        neighbors: NeighborData,
        session: Session | None = None,
        environment: LocalEnvironment | None = None,
    ) -> ModelOutput:
        """Energies/forces with the embedding+fitting graphs run in the framework.

        One session run is issued per centre type per evaluation, mirroring the
        original hybrid-parallel model in which every thread executes a
        TensorFlow session; the session accumulates the modelled fixed
        overhead that §III-B.1 measures at ~4 ms per run.
        """
        session = session or Session()
        env = environment if environment is not None else self.build_environment(atoms, box, neighbors)
        n = env.n_atoms
        per_atom = np.zeros(n)
        forces = np.zeros((n, 3))
        virial = np.zeros((3, 3))

        for ti in range(self.n_types):
            idx = np.nonzero(env.types == ti)[0]
            if len(idx) == 0:
                continue

            def run_graph(ti=ti, idx=idx):
                graph = build_descriptor_graph(
                    env,
                    ti,
                    idx,
                    self.embeddings,
                    self.fittings,
                    self.config.axis_neurons,
                    self.descriptor_mean[ti],
                    self.descriptor_std[ti],
                    self.energy_bias[ti],
                    inputs_require_grad=True,
                )
                total = graph.energies.sum()
                total.backward()
                return graph

            graph = session.run(run_graph)
            sub = env.select(idx)
            batch, n_nei = sub.s.shape
            per_atom[idx] = graph.energies.data.reshape(batch)
            grad_s_embed = graph.s_input.grad.reshape(batch, n_nei)
            grad_r = np.transpose(graph.r_transpose_input.grad, (0, 2, 1))
            g_d = self._geometric_chain(sub, grad_r, grad_s_embed)
            self._scatter_forces(forces, idx, sub, g_d)
            virial -= np.einsum("bni,bnj->ij", sub.displacements, g_d)

        return ModelOutput(
            energy=float(per_atom.sum()),
            per_atom_energy=per_atom,
            forces=forces,
            precision=DOUBLE.name,
            used_framework=True,
            virial=virial,
        )

    # ---------------------------------------------------------------------------
    # Shared geometric chain
    # ---------------------------------------------------------------------------
    @staticmethod
    def _geometric_chain(sub: LocalEnvironment, grad_r: np.ndarray, grad_s_embed: np.ndarray) -> np.ndarray:
        """Gradient of the per-atom energies with respect to the displacements.

        Combines dE/dR (direct environment-matrix dependence) and dE/ds (the
        embedding path) with ds/dr and the R-row geometry to give
        g_d[b, n, :] = dE_b / d(d_bn), the gradient with respect to the
        minimum-image displacement vector of each neighbour slot.

        ``grad_r`` / ``grad_s_embed`` may arrive in a reduced compute dtype
        (the MIX policies); every geometry operand here is float64, so the
        chain — and the force/virial scatters consuming its output — always
        accumulates in float64 through NumPy's binary promotion.
        """
        mask = sub.mask
        safe_r = np.where(sub.distances > 0.0, sub.distances, 1.0)
        unit = sub.displacements / safe_r[..., None]
        s = sub.s
        ds_dr = sub.ds_dr
        h = s / safe_r
        dh_dr = ds_dr / safe_r - s / (safe_r * safe_r)

        grad_s_total = grad_s_embed + grad_r[..., 0]
        grad_r_vec = grad_r[..., 1:4]
        radial = grad_s_total * ds_dr + np.einsum("bnk,bnk->bn", grad_r_vec, sub.displacements) * dh_dr
        g_d = radial[..., None] * unit + grad_r_vec * h[..., None]
        return g_d * mask[..., None]

    @staticmethod
    # reprolint: hot-path
    def _scatter_forces(forces: np.ndarray, atom_indices: np.ndarray, sub: LocalEnvironment, g_d: np.ndarray) -> None:
        """Accumulate forces from the displacement gradients.

        The energy of centre i depends on d_ij = r_j - r_i, so
        F_j -= dE_i/dd_ij and F_i += dE_i/dd_ij.  The scatter runs through
        the bincount reduction (:func:`scatter_add_vectors`), not
        ``np.add.at`` — both evaluation paths share this chain, so the
        path-equivalence tests see identical accumulation on both sides.
        """
        batch, n_nei = sub.s.shape
        valid = sub.mask > 0.0
        centers = np.repeat(np.asarray(atom_indices), n_nei).reshape(batch, n_nei)
        neighbor_ids = sub.neighbor_indices
        scatter_add_vectors(forces, centers[valid], neighbor_ids[valid], g_d[valid])

    # ---------------------------------------------------------------------------
    # Descriptor statistics helper (used by the trainer)
    # ---------------------------------------------------------------------------
    def compute_raw_descriptors(self, env: LocalEnvironment, center_type: int) -> np.ndarray:
        idx = np.nonzero(env.types == center_type)[0]
        if len(idx) == 0:
            return np.empty((0, self.config.descriptor_dim))
        return raw_descriptors(env, center_type, idx, self.fast_embeddings(), self.config.axis_neurons)
