"""Fitting networks mapping the descriptor D_i to the atomic energy E_i.

DeePMD-kit uses one fitting network per centre species; the paper's benchmark
configuration is a three-layer (240, 240, 240) network, whose tall-and-skinny
GEMMs dominate the per-step compute time in the strong-scaling limit
(>35 % of the simulation time before optimization).
"""

from __future__ import annotations

import numpy as np

from ..nnframework.layers import MLP
from ..nnframework.tensor import Tensor
from ..utils.rng import spawn_rngs
from .networks import FastMLP


class FittingNetSet:
    """One fitting MLP per centre type."""

    def __init__(
        self,
        n_types: int,
        input_dim: int,
        sizes: tuple[int, ...] = (240, 240, 240),
        rng=None,
    ) -> None:
        if n_types < 1:
            raise ValueError("need at least one atom type")
        if input_dim < 1:
            raise ValueError("fitting net input dimension must be positive")
        self.n_types = int(n_types)
        self.input_dim = int(input_dim)
        self.sizes = tuple(int(s) for s in sizes)
        rngs = spawn_rngs(
            rng if not isinstance(rng, np.random.Generator) else None, self.n_types
        )
        if isinstance(rng, np.random.Generator):
            rngs = [rng] * self.n_types
        self.nets: dict[int, MLP] = {
            ti: MLP(
                self.input_dim,
                list(self.sizes),
                out_features=1,
                activation="tanh",
                output_activation="linear",
                resnet=True,
                rng=rngs[ti],
                name=f"fitting.{ti}",
            )
            for ti in range(self.n_types)
        }

    def net(self, center_type: int) -> MLP:
        return self.nets[center_type]

    def parameters(self) -> list[Tensor]:
        params: list[Tensor] = []
        for net in self.nets.values():
            params.extend(net.parameters())
        return params

    def export(self) -> dict[int, FastMLP]:
        return {ti: FastMLP.from_mlp(net) for ti, net in self.nets.items()}

    def n_parameters(self) -> int:
        return int(sum(p.size for p in self.parameters()))
