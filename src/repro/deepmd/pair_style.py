"""The Deep Potential model exposed as an MD force field ("pair style").

``pair_style deepmd`` is how LAMMPS users consume DeePMD-kit; this adapter
plays the same role for :class:`repro.md.Simulation`, selecting the
evaluation path (optimized kernels vs the framework baseline), the precision
policy, the GEMM backend and optionally the compressed embedding tables.
"""

from __future__ import annotations

from ..md.atoms import Atoms
from ..md.box import Box
from ..md.forcefields.base import ForceField, ForceResult
from ..md.neighbor import NeighborData
from ..nnframework.session import Session
from .gemm import GemmBackend, _dtype_name
from .model import DeepPotential
from .precision import DOUBLE, get_policy


class DeepPotentialForceField(ForceField):
    """Adapter from :class:`DeepPotential` to the MD engine force-field API."""

    #: The energy is a sum of per-atom terms over full neighbour lists: each
    #: rank evaluates its owned atoms only (ghost rows are masked out of the
    #: padded table) and reverse-scatters the neighbour forces.
    parallel_strategy = "peratom"

    def __init__(
        self,
        model: DeepPotential,
        precision=DOUBLE,
        gemm_backend: GemmBackend | None = None,
        compressed: bool = False,
        compression_points: int = 2048,
        compression_min_distance: float = 0.5,
        use_framework: bool = False,
        use_scalar_reference: bool = False,
        session: Session | None = None,
    ) -> None:
        if use_framework and use_scalar_reference:
            raise ValueError("choose at most one of use_framework / use_scalar_reference")
        self.model = model
        self.precision = get_policy(precision)
        self.backend = gemm_backend or GemmBackend()
        self.compressed = bool(compressed)
        self.compression_points = int(compression_points)
        self.compression_min_distance = float(compression_min_distance)
        self.use_framework = bool(use_framework)
        self.use_scalar_reference = bool(use_scalar_reference)
        self.session = session or Session()
        self.cutoff = model.config.cutoff
        self.n_evaluations = 0
        self._table = None
        self._table_generation = None
        if self.compressed and not self.use_scalar_reference and not self.use_framework:
            # build the tables eagerly so the first MD step pays no tabulation
            # cost and the grid parameters are fixed by this pair style
            self._compression_table()

    def _compression_table(self):
        """This pair style's own table at its configured grid.

        Held by reference so other consumers of the shared model cannot swap
        the grid underneath a running force field (and so two pair styles
        with different grids never trigger a per-step rebuild storm through
        the model's single cache slot); rebuilt only when
        :meth:`DeepPotential.invalidate_kernels` bumps the kernel generation.
        """
        if self._table is None or self._table_generation != self.model.kernel_generation:
            self._table = self.model.compressed_embeddings(
                n_points=self.compression_points,
                min_distance=self.compression_min_distance,
            )
            self._table_generation = self.model.kernel_generation
            if not self.precision.is_double:
                # build the reduced-precision packed nodes up front so the
                # first mixed-precision MD step pays no cast either
                self._table.ensure_packed(self.precision.compute_dtype)
        return self._table

    @property
    def path(self) -> str:
        """Which inference path this pair style drives."""
        if self.use_scalar_reference:
            return "scalar-reference"
        if self.use_framework:
            return "framework"
        return "vectorized"

    def compute(
        self, atoms: Atoms, box: Box, neighbors: NeighborData, workspace=None
    ) -> ForceResult:
        self.n_evaluations += 1
        if self.use_scalar_reference:
            output = self.model.evaluate_scalar(atoms, box, neighbors)
        elif self.use_framework:
            output = self.model.evaluate_with_framework(atoms, box, neighbors, session=self.session)
        else:
            output = self.model.evaluate(
                atoms,
                box,
                neighbors,
                precision=self.precision,
                backend=self.backend,
                compressed=self.compressed,
                compression_table=self._compression_table() if self.compressed else None,
                workspace=workspace,
            )
        return ForceResult(
            energy=output.energy,
            forces=output.forces,
            per_atom_energy=output.per_atom_energy,
            virial=output.virial,
        )

    def describe(self) -> dict[str, object]:
        """A summary of the *effective* configuration (useful in reports).

        The scalar-reference path always runs double-precision, uncompressed,
        with plain NumPy products, whatever was configured — the description
        reports what actually executes.
        """
        scalar = self.use_scalar_reference
        compressed = False if scalar else self.compressed
        table_dtype = None
        if compressed and not self.use_framework:
            # the dtype the batched table kernel actually gathers/computes in
            # (regression: must match what the precision field promises)
            table_dtype = _dtype_name(self.precision.compute_dtype)
        return {
            "path": self.path,
            "precision": "double" if scalar else self.precision.name,
            "gemm": "numpy-loop" if scalar else self.backend.kind,
            "compressed": compressed,
            "compression_points": self.compression_points if compressed else None,
            "compression_min_distance": self.compression_min_distance if compressed else None,
            "table_dtype": table_dtype,
            "framework": self.use_framework,
            "cutoff": self.cutoff,
            "n_parameters": self.model.n_parameters(),
        }
