"""Embedding networks of the DeepPot-SE descriptor.

For a model without type embedding (the configuration used by the paper),
DeePMD-kit trains one embedding network per (centre type, neighbour type)
pair.  Each network maps the scalar s(r_ij) to an M-dimensional feature
G(s(r_ij)); translational/rotational invariance comes from feeding only
s(r), permutational invariance from the symmetric contraction performed in the
descriptor.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..nnframework.layers import MLP
from ..nnframework.tensor import Tensor
from ..utils.rng import spawn_rngs
from .networks import FastMLP


class EmbeddingNetSet:
    """One embedding MLP per (centre type, neighbour type) pair."""

    def __init__(
        self,
        n_types: int,
        sizes: tuple[int, ...] = (25, 50, 100),
        rng=None,
    ) -> None:
        if n_types < 1:
            raise ValueError("need at least one atom type")
        if not sizes:
            raise ValueError("embedding net needs at least one layer")
        self.n_types = int(n_types)
        self.sizes = tuple(int(s) for s in sizes)
        rngs = spawn_rngs(
            rng if not isinstance(rng, np.random.Generator) else None,
            self.n_types * self.n_types,
        )
        if isinstance(rng, np.random.Generator):
            rngs = [rng] * (self.n_types * self.n_types)
        self.nets: dict[tuple[int, int], MLP] = {}
        k = 0
        for ti in range(self.n_types):
            for tj in range(self.n_types):
                self.nets[(ti, tj)] = MLP(
                    1,
                    list(self.sizes),
                    out_features=None,
                    activation="tanh",
                    resnet=True,
                    rng=rngs[k],
                    name=f"embedding.{ti}.{tj}",
                )
                k += 1

    @property
    def width(self) -> int:
        """Output dimension M of every embedding net."""
        return self.sizes[-1]

    def net(self, center_type: int, neighbor_type: int) -> MLP:
        return self.nets[(center_type, neighbor_type)]

    def parameters(self) -> list[Tensor]:
        params: list[Tensor] = []
        for net in self.nets.values():
            params.extend(net.parameters())
        return params

    def export(self) -> dict[tuple[int, int], FastMLP]:
        """Export all nets to framework-free kernels."""
        return {key: FastMLP.from_mlp(net) for key, net in self.nets.items()}

    def n_parameters(self) -> int:
        return int(sum(p.size for p in self.parameters()))

    def pairs(self) -> Iterable[tuple[int, int]]:
        return self.nets.keys()
