"""repro — reproduction of "Scaling Molecular Dynamics with ab initio Accuracy
to 149 Nanoseconds per Day" (SC'24).

The package is organised in layers (see DESIGN.md):

* substrates: :mod:`repro.nnframework` (mini NN framework), :mod:`repro.md`
  (MD engine), :mod:`repro.deepmd` (Deep Potential model),
* machine: :mod:`repro.hardware` (Fugaku model), :mod:`repro.parallel`
  (decomposition + communication schemes), :mod:`repro.perfmodel`
  (per-step cost model, ns/day),
* top: :mod:`repro.core` (optimization configuration + engine + experiment
  harness) and :mod:`repro.analysis`.

Most users should start from :class:`repro.core.OptimizationConfig` and
:class:`repro.core.DeepMDEngine`; see ``examples/quickstart.py``.
"""

from .version import __version__

__all__ = ["__version__"]
