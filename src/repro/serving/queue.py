"""Request admission for the serving engine.

The queue side of :mod:`repro.serving.engine`: clients submit
:class:`ServingRequest` objects and block on :class:`ServingFuture` handles;
the engine's prep thread pulls *batches* out via
:meth:`AdmissionQueue.admit`, which groups pending requests under a
max-batch-size / max-wait-ms admission window so that concurrent small
requests coalesce into one fused evaluation instead of dribbling through one
at a time.

Admission policy: the window opens when the oldest pending request arrived.
``admit`` returns as soon as ``max_batch_size`` same-kind requests are
pending, or when the oldest request has waited ``max_wait_ms`` — whichever
comes first — and takes the longest prefix of pending requests that share a
kind (``"energy"`` one-shots and ``"md"`` bursts batch separately because
they run different compute stages).  Under a single client the window adds at
most ``max_wait_ms`` latency; under concurrency it buys batch width, which is
where the fused kernels earn their throughput.

:class:`ServingStats` accumulates per-request latency splits (queue wait vs.
service) and per-batch widths; percentiles come out of ``np.percentile`` over
the recorded samples.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "ServingRequest",
    "ServingFuture",
    "AdmissionQueue",
    "ServingStats",
    "BurstResult",
]


class ServingFuture:
    """A one-shot result handle fulfilled by the engine's compute stage."""

    def __init__(self) -> None:
        self._event = threading.Event()
        self._result = None
        self._exception: BaseException | None = None

    def done(self) -> bool:
        return self._event.is_set()

    def set_result(self, result) -> None:
        self._result = result
        self._event.set()

    def set_exception(self, exc: BaseException) -> None:
        self._exception = exc
        self._event.set()

    def result(self, timeout: float | None = None):
        if not self._event.wait(timeout):
            raise TimeoutError("serving request did not complete in time")
        if self._exception is not None:
            raise self._exception
        return self._result


@dataclass
class ServingRequest:
    """One client request: an energy/force one-shot or a short MD burst."""

    kind: str  # "energy" | "md"
    atoms: object
    box: object
    n_steps: int = 0
    timestep_fs: float = 0.0
    future: ServingFuture = field(default_factory=ServingFuture)
    t_submit: float = 0.0
    t_admit: float = 0.0


@dataclass
class BurstResult:
    """Final state of one MD burst request.

    ``energies`` holds the potential energy after each step's force
    evaluation, matching the serial reference trace of
    :func:`repro.serving.serial.run_bursts_serial`.
    """

    atoms: object
    energies: np.ndarray
    n_steps: int


class AdmissionQueue:
    """Pending-request buffer with a batch admission window."""

    def __init__(self, max_batch_size: int = 32, max_wait_ms: float = 2.0) -> None:
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        self.max_batch_size = int(max_batch_size)
        self.max_wait_s = float(max_wait_ms) / 1e3
        self._pending: deque[ServingRequest] = deque()
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._closed = False

    def __len__(self) -> int:
        with self._lock:
            return len(self._pending)

    def submit(self, request: ServingRequest) -> ServingFuture:
        request.t_submit = time.perf_counter()
        with self._cond:
            if self._closed:
                raise RuntimeError("admission queue is closed")
            self._pending.append(request)
            self._cond.notify_all()
        return request.future

    def close(self) -> None:
        """Stop accepting submissions; pending requests stay admittable."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    def admit(self, poll_s: float = 0.05) -> list[ServingRequest] | None:
        """The next batch under the admission window.

        Returns ``None`` once the queue is closed *and* drained (the consumer
        should exit), and may return an empty list after ``poll_s`` with no
        arrivals (the consumer loops, giving it a cadence to notice external
        shutdown flags).
        """
        with self._cond:
            while not self._pending:
                if self._closed:
                    return None
                if not self._cond.wait(poll_s):
                    return []
            # window opens at the oldest pending arrival; collect until the
            # batch fills or the window closes
            window_end = self._pending[0].t_submit + self.max_wait_s
            while len(self._pending) < self.max_batch_size and not self._closed:
                remaining = window_end - time.perf_counter()
                if remaining <= 0:
                    break
                self._cond.wait(remaining)
            kind = self._pending[0].kind
            batch: list[ServingRequest] = []
            while (
                self._pending
                and len(batch) < self.max_batch_size
                and self._pending[0].kind == kind
            ):
                batch.append(self._pending.popleft())
            now = time.perf_counter()
            for request in batch:
                request.t_admit = now
            return batch


class ServingStats:
    """Latency and batch-width accounting across a serving run."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._wait_s: list[float] = []
        self._service_s: list[float] = []
        self._total_s: list[float] = []
        self._batch_sizes: list[int] = []
        self.n_requests = 0
        self.n_batches = 0

    def record_batch(self, requests, t_done: float) -> None:
        with self._lock:
            self.n_batches += 1
            self._batch_sizes.append(len(requests))
            for request in requests:
                self.n_requests += 1
                self._wait_s.append(request.t_admit - request.t_submit)
                self._service_s.append(t_done - request.t_admit)
                self._total_s.append(t_done - request.t_submit)

    def latency_ms(self) -> dict:
        """p50/p99/mean total latency (and the wait/service split means)."""
        with self._lock:
            if not self._total_s:
                return {"p50": 0.0, "p99": 0.0, "mean": 0.0, "wait_mean": 0.0, "service_mean": 0.0}
            total = np.asarray(self._total_s)
            return {
                "p50": float(np.percentile(total, 50)) * 1e3,
                "p99": float(np.percentile(total, 99)) * 1e3,
                "mean": float(total.mean()) * 1e3,
                "wait_mean": float(np.mean(self._wait_s)) * 1e3,
                "service_mean": float(np.mean(self._service_s)) * 1e3,
            }

    def mean_batch_size(self) -> float:
        with self._lock:
            if not self._batch_sizes:
                return 0.0
            return float(np.mean(self._batch_sizes))
