"""The serving engine: admission batching plus a two-stage async pipeline.

:class:`ServingEngine` turns a :class:`~repro.deepmd.model.DeepPotential`
into a request server for many small independent systems:

* **Admission batching** — requests coalesce under the
  :class:`~repro.serving.queue.AdmissionQueue` window (max-batch-size /
  max-wait-ms) so concurrent one-shots share one fused evaluation.
* **Per-model caches** — the compressed Hermite tables, their packed
  low-precision copies and the per-``(type, dtype)`` standardization stats
  are built once at engine construction and shared across every request the
  engine ever serves (probed by ``tests/test_serving.py`` via
  ``table_cache_builds`` / ``packed_cache_builds`` / ``lp_cache_builds``).
* **Prep/compute overlap** — a prep thread admits the next batch, builds its
  neighbour lists and packs its environments while the compute thread runs
  the fused kernels on the current batch.  Each in-flight batch packs into
  its own :meth:`~repro.md.workspace.Workspace.scoped` pipeline slot, so the
  pool buffers of batch ``k+1`` never alias the ones batch ``k`` is reading.

Two request kinds are served: ``energy`` one-shots (energies, forces and a
per-system virial for one configuration) and ``md`` bursts (a short
velocity-verlet run; the burst group steps in lockstep with one fused force
evaluation per step).  The synchronous :meth:`ServingEngine.evaluate_batch`
exposes the pack-evaluate-split path without threads for tests, benchmarks
and embedding into existing drivers.
"""

from __future__ import annotations

import queue as _queue
import threading
import time

import numpy as np

from ..deepmd.gemm import GemmBackend
from ..deepmd.precision import DOUBLE, get_policy
from ..md.integrators import VelocityVerlet
from ..md.neighbor import build_neighbor_data
from ..md.workspace import Workspace
from .batch import pack_systems
from .queue import AdmissionQueue, BurstResult, ServingRequest, ServingStats

__all__ = ["ServingEngine"]

#: Pipeline slots cycled by the prep stage.  Three are needed for full
#: overlap: one batch being computed, one waiting in the hand-off queue and
#: one being packed — with two, the prep stage could start repacking the slot
#: the compute stage is still reading.
_N_SLOTS = 3

_STOP = object()


class ServingEngine:
    """Serve energy/force one-shots and MD bursts over one shared model."""

    def __init__(
        self,
        model,
        precision=DOUBLE,
        compressed: bool = True,
        compression_points: int = 2048,
        compression_min_distance: float = 0.5,
        max_batch_size: int = 32,
        max_wait_ms: float = 2.0,
        use_workspace: bool = True,
        backend: GemmBackend | None = None,
    ) -> None:
        self.model = model
        self.policy = get_policy(precision)
        self.compressed = bool(compressed)
        self.backend = backend or GemmBackend()
        self.stats = ServingStats()

        # Per-model caches, built once per engine and shared by every
        # request: the compressed table (keyed on the model's kernel
        # generation), its packed low-precision copy when the policy computes
        # below fp64, and — warmed lazily by the first evaluation — the
        # per-(type, dtype) standardization stats and low-precision layer
        # caches inside the model itself.
        self._table = None
        if self.compressed:
            self._table = model.compressed_embeddings(
                n_points=compression_points, min_distance=compression_min_distance
            )
            if np.dtype(self.policy.compute_dtype) != np.float64:
                self._table.ensure_packed(self.policy.compute_dtype)

        self._workspace = Workspace() if use_workspace else None
        if self._workspace is not None:
            self._slots = [
                self._workspace.scoped(f"serve.slot{i}") for i in range(_N_SLOTS)
            ]
        else:
            self._slots = [None] * _N_SLOTS

        self._queue = AdmissionQueue(max_batch_size=max_batch_size, max_wait_ms=max_wait_ms)
        # depth-1 hand-off: prep may run at most one batch ahead of compute
        self._handoff: _queue.Queue = _queue.Queue(maxsize=1)
        self._prep_thread: threading.Thread | None = None
        self._compute_thread: threading.Thread | None = None
        self._running = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ServingEngine":
        if self._running:
            return self
        self._running = True
        self._prep_thread = threading.Thread(target=self._prep_loop, name="serving-prep", daemon=True)
        self._compute_thread = threading.Thread(target=self._compute_loop, name="serving-compute", daemon=True)
        self._prep_thread.start()
        self._compute_thread.start()
        return self

    def stop(self) -> None:
        if not self._running:
            return
        self._queue.close()
        if self._prep_thread is not None:
            self._prep_thread.join()
        self._handoff.put(_STOP)
        if self._compute_thread is not None:
            self._compute_thread.join()
        self._running = False

    def __enter__(self) -> "ServingEngine":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # client surface
    # ------------------------------------------------------------------
    def submit(self, atoms, box):
        """Queue an energy/force one-shot; returns a ServingFuture of ModelOutput."""
        request = ServingRequest(kind="energy", atoms=atoms.copy(), box=box)
        return self._queue.submit(request)

    def submit_md(self, atoms, box, n_steps: int, timestep_fs: float):
        """Queue a short MD burst; returns a ServingFuture of BurstResult."""
        request = ServingRequest(
            kind="md",
            atoms=atoms.copy(),
            box=box,
            n_steps=int(n_steps),
            timestep_fs=float(timestep_fs),
        )
        return self._queue.submit(request)

    def evaluate_batch(self, systems, workspace=None):
        """Synchronous pack → fused evaluate for prepared ``(atoms, box, neighbors)`` triples."""
        if workspace is None:
            workspace = self._slots[0]
        batch = pack_systems(self.model, systems, workspace=workspace)
        return self.model.evaluate_many(
            batch.env,
            batch.system_of_atom,
            batch.offsets,
            precision=self.policy,
            backend=self.backend,
            compressed=self.compressed,
            compression_table=self._table,
            workspace=workspace,
        )

    def cache_probe(self) -> dict:
        """Cache-build counters for the cross-request reuse tests."""
        lp_builds = sum(net.lp_cache_builds for net in self.model.fast_embeddings().values())
        lp_builds += sum(net.lp_cache_builds for net in self.model.fast_fittings().values())
        return {
            "table_cache_builds": self.model.table_cache_builds,
            "packed_cache_builds": 0 if self._table is None else self._table.packed_cache_builds,
            "lp_cache_builds": lp_builds,
            "standardization_entries": len(self.model._lp_standardization),
            "table_id": id(self._table),
        }

    # ------------------------------------------------------------------
    # pipeline stages
    # ------------------------------------------------------------------
    def _prepare(self, atoms, box):
        neighbors = build_neighbor_data(atoms.positions, box, self.model.config.cutoff)
        return atoms, box, neighbors

    def _prep_loop(self) -> None:
        slot_index = 0
        while True:
            admitted = self._queue.admit()
            if admitted is None:
                return
            if not admitted:
                continue
            slot = self._slots[slot_index % _N_SLOTS]
            slot_index += 1
            kind = admitted[0].kind
            try:
                if kind == "energy":
                    systems = [self._prepare(r.atoms, r.box) for r in admitted]
                    batch = pack_systems(self.model, systems, workspace=slot)
                else:
                    batch = None  # MD bursts pack per step inside the compute stage
                self._handoff.put(("ok", kind, admitted, batch, slot))
            except BaseException as exc:  # noqa: BLE001 - forwarded to futures
                self._handoff.put(("error", kind, admitted, exc, slot))

    def _compute_loop(self) -> None:
        while True:
            item = self._handoff.get()
            if item is _STOP:
                return
            status, kind, admitted, payload, slot = item
            if status == "error":
                for request in admitted:
                    request.future.set_exception(payload)
                continue
            try:
                if kind == "energy":
                    self._compute_energy(admitted, payload, slot)
                else:
                    self._compute_bursts(admitted, slot)
            except BaseException as exc:  # noqa: BLE001 - forwarded to futures
                for request in admitted:
                    if not request.future.done():
                        request.future.set_exception(exc)

    def _compute_energy(self, admitted, batch, slot) -> None:
        out = self.model.evaluate_many(
            batch.env,
            batch.system_of_atom,
            batch.offsets,
            precision=self.policy,
            backend=self.backend,
            compressed=self.compressed,
            compression_table=self._table,
            workspace=slot,
        )
        # split() copies out of the pool buffers, so fulfilled results stay
        # valid after the slot is repacked
        outputs = out.split()
        t_done = time.perf_counter()
        self.stats.record_batch(admitted, t_done)
        for request, output in zip(admitted, outputs):
            request.future.set_result(output)

    def _compute_bursts(self, admitted, slot) -> None:
        """Advance the burst group in lockstep, one fused evaluation per step.

        Mirrors :func:`repro.serving.serial.run_bursts_serial` step for step:
        velocity-verlet first half, neighbour rebuild, fused force
        evaluation, second half.  Systems whose ``n_steps`` are done drop out
        of the group; the remaining ones keep batching.
        """
        states = [request.atoms for request in admitted]
        integrators = [VelocityVerlet(request.timestep_fs) for request in admitted]
        targets = [request.n_steps for request in admitted]
        energies: list[list[float]] = [[] for _ in admitted]

        def fused_forces(live):
            systems = [self._prepare(states[i], admitted[i].box) for i in live]
            batch = pack_systems(self.model, systems, workspace=slot)
            out = self.model.evaluate_many(
                batch.env,
                batch.system_of_atom,
                batch.offsets,
                precision=self.policy,
                backend=self.backend,
                compressed=self.compressed,
                compression_table=self._table,
                workspace=slot,
            )
            for k, i in enumerate(live):
                rows = batch.system_slice(k)
                states[i].forces = out.forces[rows].copy()
            return out

        everyone = list(range(len(admitted)))
        if everyone:
            # initial forces for every burst (n_steps == 0 included), matching
            # the serial reference which always evaluates once before stepping
            fused_forces(everyone)
        live = [i for i in everyone if targets[i] > 0]
        done = 0
        while live:
            for i in live:
                integrators[i].first_half(states[i], admitted[i].box)
            out = fused_forces(live)
            for k, i in enumerate(live):
                energies[i].append(float(out.energies[k]))
            for i in live:
                integrators[i].second_half(states[i], admitted[i].box)
            done += 1
            live = [i for i in live if done < targets[i]]

        t_done = time.perf_counter()
        self.stats.record_batch(admitted, t_done)
        for i, request in enumerate(admitted):
            request.future.set_result(
                BurstResult(
                    atoms=states[i],
                    energies=np.asarray(energies[i]),
                    n_steps=targets[i],
                )
            )
