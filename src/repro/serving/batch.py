"""Cross-system batching: pack many small systems into one fused evaluation.

Throughput serving traffic is dominated by *small* independent systems — a
few dozen atoms each — where one-at-a-time evaluation pays full per-call
Python dispatch, its own neighbour build and a tiny under-filled GEMM per
request.  :func:`pack_systems` removes the per-system axis instead of looping
over it: the per-system environment matrices are concatenated along the atom
axis (the same indexed-compaction idiom ``DeepPotential._per_type_fast`` uses
for the per-type axis), neighbour indices are rebased to the concatenated
numbering, and a ``system_of_atom`` / ``offsets`` pair keeps the provenance
of every row.  :meth:`DeepPotential.evaluate_many
<repro.deepmd.model.DeepPotential.evaluate_many>` then runs the existing
stacked kernels once over the whole batch — one embedding/fitting GEMM and
one packed Hermite table evaluation per centre type, whatever mixture of
systems the rows came from — and segment-reduces per-system energies and
virials in fixed ``bincount`` order (always float64).

The un-batched loop lives in :mod:`repro.serving.serial` as the golden
reference this path is pinned to at 1e-10 (fp64) by ``tests/test_serving.py``
and ``benchmarks/bench_serving_throughput.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..deepmd.envmat import LocalEnvironment
from ..md.neighbor import build_neighbor_data

__all__ = ["SystemBatch", "pack_systems", "prepare_system"]


@dataclass
class SystemBatch:
    """Many independent systems packed for one fused model evaluation.

    ``env`` is a concatenated :class:`LocalEnvironment` whose neighbour
    indices are rebased to the concatenated atom numbering (padding stays
    ``-1``); ``system_of_atom`` maps each packed atom row to its system and
    ``offsets`` is the ``(S + 1,)`` cumulative atom-count array.  When packed
    with a workspace the arrays alias pool buffers and are valid only until
    the next pack from the same scope.
    """

    env: LocalEnvironment
    system_of_atom: np.ndarray  # (n_total,) int64
    offsets: np.ndarray  # (S + 1,) int64
    n_systems: int

    @property
    def n_atoms(self) -> int:
        return self.env.n_atoms

    def system_slice(self, s: int) -> slice:
        """The packed-row slice of system ``s``."""
        return slice(int(self.offsets[s]), int(self.offsets[s + 1]))


def prepare_system(model, atoms, box):
    """``(atoms, box, neighbors)`` with the neighbour list built at the model cutoff.

    The serving prep stage runs this per request (and per MD-burst step) —
    it is the work the async pipeline overlaps with inference on the
    previous batch.
    """
    neighbors = build_neighbor_data(atoms.positions, box, model.config.cutoff)
    return atoms, box, neighbors


# reprolint: hot-path
def pack_systems(model, systems, workspace=None) -> SystemBatch:
    """Concatenate the environments of ``systems`` into one :class:`SystemBatch`.

    ``systems`` is a sequence of ``(atoms, box, neighbors)`` triples sharing
    the model's type space.  Every system is padded to the model's
    ``max_neighbors``, so the per-system environments concatenate along the
    atom axis without reshaping; neighbour indices are rebased by each
    system's atom offset (padding entries stay ``-1``) so the global force
    scatter of the fused evaluation lands each contribution in its own
    system's rows.

    With a ``workspace`` the concatenated arrays live in grow-only
    :meth:`~repro.md.workspace.Workspace.capacity` buffers: batch sizes
    jitter between admissions, and the backing stores absorb the jitter so a
    steady-state serving pack performs no allocator calls after warm-up.
    """
    systems = list(systems)
    n_systems = len(systems)
    envs = [model.build_environment(atoms, box, neighbors) for atoms, box, neighbors in systems]
    n_pad = max(int(model.config.max_neighbors), 1)

    if workspace is not None:
        offsets = workspace.capacity("pack.offsets", n_systems + 1, dtype=np.int64)
    else:
        offsets = np.empty(n_systems + 1, dtype=np.int64)  # reprolint: allow[alloc] workspace-less reference branch allocates per call by design
    offsets[0] = 0
    if n_systems:
        np.cumsum([env.n_atoms for env in envs], out=offsets[1:])
    n_total = int(offsets[-1])

    if workspace is not None:
        R = workspace.capacity("pack.R", n_total, trailing=(n_pad, 4))
        displacements = workspace.capacity("pack.displacements", n_total, trailing=(n_pad, 3))
        distances = workspace.capacity("pack.distances", n_total, trailing=(n_pad,))
        s_values = workspace.capacity("pack.s", n_total, trailing=(n_pad,))
        ds_values = workspace.capacity("pack.ds_dr", n_total, trailing=(n_pad,))
        mask = workspace.capacity("pack.mask", n_total, trailing=(n_pad,))
        neighbor_indices = workspace.capacity("pack.neighbor_indices", n_total, trailing=(n_pad,), dtype=np.int64)
        neighbor_types = workspace.capacity("pack.neighbor_types", n_total, trailing=(n_pad,), dtype=np.int64)
        types = workspace.capacity("pack.types", n_total, dtype=np.int64)
        system_of_atom = workspace.capacity("pack.system_of_atom", n_total, dtype=np.int64)
    else:
        R = np.empty((n_total, n_pad, 4))  # reprolint: allow[alloc] workspace-less reference branch allocates per call by design
        displacements = np.empty((n_total, n_pad, 3))  # reprolint: allow[alloc] workspace-less reference branch allocates per call by design
        distances = np.empty((n_total, n_pad))  # reprolint: allow[alloc] workspace-less reference branch allocates per call by design
        s_values = np.empty((n_total, n_pad))  # reprolint: allow[alloc] workspace-less reference branch allocates per call by design
        ds_values = np.empty((n_total, n_pad))  # reprolint: allow[alloc] workspace-less reference branch allocates per call by design
        mask = np.empty((n_total, n_pad))  # reprolint: allow[alloc] workspace-less reference branch allocates per call by design
        neighbor_indices = np.empty((n_total, n_pad), dtype=np.int64)  # reprolint: allow[alloc] workspace-less reference branch allocates per call by design
        neighbor_types = np.empty((n_total, n_pad), dtype=np.int64)  # reprolint: allow[alloc] workspace-less reference branch allocates per call by design
        types = np.empty(n_total, dtype=np.int64)  # reprolint: allow[alloc] workspace-less reference branch allocates per call by design
        system_of_atom = np.empty(n_total, dtype=np.int64)  # reprolint: allow[alloc] workspace-less reference branch allocates per call by design

    n_types = model.n_types
    for s, env in enumerate(envs):
        if env.n_atoms and (env.types.min() < 0 or env.types.max() >= n_types):
            # the per-type compaction would silently skip unknown types,
            # serving back zero energies for garbage input — reject instead
            raise ValueError(
                f"system {s} has atom types outside the model's {n_types}-type space"
            )
        lo, hi = int(offsets[s]), int(offsets[s + 1])
        R[lo:hi] = env.R
        displacements[lo:hi] = env.displacements
        distances[lo:hi] = env.distances
        s_values[lo:hi] = env.s
        ds_values[lo:hi] = env.ds_dr
        mask[lo:hi] = env.mask
        # rebase real neighbour slots into the concatenated numbering; the
        # -1 padding must stay -1 (a blanket += would alias it into the
        # previous system's last atom)
        np.add(env.neighbor_indices, lo, out=neighbor_indices[lo:hi])
        np.copyto(neighbor_indices[lo:hi], -1, where=env.neighbor_indices < 0)
        neighbor_types[lo:hi] = env.neighbor_types
        types[lo:hi] = env.types
        system_of_atom[lo:hi] = s

    packed_env = LocalEnvironment(
        R=R,
        displacements=displacements,
        distances=distances,
        s=s_values,
        ds_dr=ds_values,
        mask=mask,
        neighbor_indices=neighbor_indices,
        neighbor_types=neighbor_types,
        types=types,
        cutoff=model.config.cutoff,
        cutoff_smooth=model.config.cutoff_smooth,
    )
    return SystemBatch(
        env=packed_env,
        system_of_atom=system_of_atom,
        offsets=offsets,
        n_systems=n_systems,
    )
