"""Throughput serving for many small independent systems (PR 9).

The paper's headline is time-to-solution for one huge system; this package
covers the complementary regime — screening/active-learning style workloads
made of thousands of *small* systems — by batching independent requests
through the same stacked kernels.  See :mod:`repro.serving.batch` for the
cross-system packing, :mod:`repro.serving.engine` for the request pipeline
and :mod:`repro.serving.serial` for the frozen one-at-a-time references.
"""

from .batch import SystemBatch, pack_systems, prepare_system
from .engine import ServingEngine
from .queue import AdmissionQueue, BurstResult, ServingFuture, ServingRequest, ServingStats
from .serial import evaluate_serial, run_bursts_serial

__all__ = [
    "SystemBatch",
    "pack_systems",
    "prepare_system",
    "ServingEngine",
    "AdmissionQueue",
    "BurstResult",
    "ServingFuture",
    "ServingRequest",
    "ServingStats",
    "evaluate_serial",
    "run_bursts_serial",
]
