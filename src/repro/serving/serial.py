"""One-system-at-a-time serving references (golden; do not optimize).

This module is the serving counterpart of :mod:`repro.deepmd.scalar`: the
plainest possible request loop, frozen by reprolint RL001 (see
``analysis/contracts.py``).  :func:`evaluate_serial` answers a batch of
energy/force requests by calling :meth:`DeepPotential.evaluate` once per
system; :func:`run_bursts_serial` advances each MD burst independently with
the same first-half / forces / second-half step sequence the batched engine
uses.  The fused :mod:`repro.serving.batch` path is pinned to these loops at
1e-10 (fp64 one-shots) by ``tests/test_serving.py`` and
``benchmarks/bench_serving_throughput.py`` — which is only meaningful while
this side stays genuinely un-batched: no cross-system packing, no pooled
buffers, no segment reductions.
"""

from __future__ import annotations

from ..md.integrators import VelocityVerlet
from ..md.neighbor import build_neighbor_data

__all__ = ["evaluate_serial", "run_bursts_serial"]


def evaluate_serial(
    model,
    systems,
    precision="double",
    compressed=False,
    compression_table=None,
):
    """Evaluate ``systems`` one at a time; returns a list of ModelOutput.

    ``systems`` is a sequence of ``(atoms, box, neighbors)`` triples, exactly
    the shape :func:`repro.serving.batch.pack_systems` accepts, so both paths
    can be fed the same prepared inputs when measuring or parity-pinning.
    """
    outputs = []
    for atoms, box, neighbors in systems:
        outputs.append(
            model.evaluate(
                atoms,
                box,
                neighbors,
                precision=precision,
                compressed=compressed,
                compression_table=compression_table,
            )
        )
    return outputs


def run_bursts_serial(
    model,
    bursts,
    precision="double",
    compressed=False,
    compression_table=None,
):
    """Advance each MD burst to completion, one system at a time.

    ``bursts`` is a sequence of ``(atoms, box, n_steps, timestep_fs)``
    tuples.  Per burst: compute initial forces, then for every step run
    velocity-verlet first half, rebuild the neighbour list, recompute
    forces, run the second half — the identical sequence the batched engine
    applies in lockstep across its burst group.  Returns a list of
    ``(final_atoms, step_energies)`` pairs where ``step_energies`` holds the
    potential energy after each step's force evaluation.
    """
    results = []
    for atoms, box, n_steps, timestep_fs in bursts:
        state = atoms.copy()
        integrator = VelocityVerlet(timestep_fs)
        neighbors = build_neighbor_data(state.positions, box, model.config.cutoff)
        out = model.evaluate(
            state,
            box,
            neighbors,
            precision=precision,
            compressed=compressed,
            compression_table=compression_table,
        )
        state.forces = out.forces.copy()
        energies = []
        for _ in range(int(n_steps)):
            integrator.first_half(state, box)
            neighbors = build_neighbor_data(state.positions, box, model.config.cutoff)
            out = model.evaluate(
                state,
                box,
                neighbors,
                precision=precision,
                compressed=compressed,
                compression_table=compression_table,
            )
            state.forces = out.forces.copy()
            energies.append(out.energy)
            integrator.second_half(state, box)
        results.append((state, energies))
    return results
