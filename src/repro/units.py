"""Physical constants and unit conventions used throughout the package.

The package uses a LAMMPS ``metal``-flavoured unit system, except that the
native time unit is the femtosecond (the paper quotes all time-steps in fs):

===========  =======================
quantity     unit
===========  =======================
length       angstrom (A)
energy       electron-volt (eV)
mass         atomic mass unit (amu, g/mol)
time         femtosecond (fs)
temperature  kelvin (K)
force        eV / A
velocity     A / fs
pressure     eV / A^3 (rarely used)
===========  =======================

With these units Newton's second law picks up a conversion factor:

    acceleration [A/fs^2] = ACC_CONV * force [eV/A] / mass [amu]

and the kinetic energy of a particle is

    E_kin [eV] = 0.5 * mass [amu] * v^2 [A^2/fs^2] / ACC_CONV
"""

from __future__ import annotations

import math

# --- fundamental constants (CODATA 2018) -----------------------------------
ELECTRON_VOLT = 1.602176634e-19  # J
ATOMIC_MASS = 1.66053906660e-27  # kg
BOLTZMANN_J = 1.380649e-23  # J/K
AVOGADRO = 6.02214076e23  # 1/mol

#: Boltzmann constant in eV/K.
KB = BOLTZMANN_J / ELECTRON_VOLT  # 8.617333262e-5 eV/K

#: Conversion factor: a [A/fs^2] = ACC_CONV * F [eV/A] / m [amu].
#:
#: Derivation: F/m in SI is (eV/A)/amu = ELECTRON_VOLT/(1e-10 * ATOMIC_MASS)
#: m/s^2; one A/fs^2 equals 1e20 m/s^2.
ACC_CONV = ELECTRON_VOLT / (1.0e-10 * ATOMIC_MASS) / 1.0e20  # ~9.6485e-3

#: Kinetic-energy conversion: E [eV] = KE_CONV * m [amu] * v^2 [A^2/fs^2].
KE_CONV = 0.5 / ACC_CONV

#: femtoseconds per nanosecond / per day, used for ns/day conversions.
FS_PER_NS = 1.0e6
SECONDS_PER_DAY = 86400.0

# --- element data ------------------------------------------------------------
#: Atomic masses (amu) for the species used in the paper's benchmarks.
MASSES = {
    "H": 1.00794,
    "O": 15.9994,
    "Cu": 63.546,
}

#: Conventional FCC lattice constant of copper in A.
CU_LATTICE_CONSTANT = 3.615

#: Experimental density of liquid water (g/cm^3) used to size water boxes.
WATER_DENSITY = 0.997


def kinetic_energy(masses, velocities) -> float:
    """Total kinetic energy in eV.

    Parameters
    ----------
    masses:
        per-atom masses, shape ``(n,)`` in amu.
    velocities:
        per-atom velocities, shape ``(n, 3)`` in A/fs.
    """
    import numpy as np

    v2 = np.einsum("ij,ij->i", velocities, velocities)
    return float(KE_CONV * np.dot(masses, v2))


def temperature(masses, velocities, n_dof: int | None = None) -> float:
    """Instantaneous temperature (K) from the equipartition theorem."""
    n = len(masses)
    if n == 0:
        return 0.0
    if n_dof is None:
        n_dof = max(3 * n - 3, 1)
    return 2.0 * kinetic_energy(masses, velocities) / (n_dof * KB)


def ns_per_day(step_time_seconds: float, timestep_fs: float) -> float:
    """Simulated nanoseconds per wall-clock day.

    ``step_time_seconds`` is the wall-clock (or modelled) time of one MD step;
    ``timestep_fs`` is the integration time-step in femtoseconds.
    """
    if step_time_seconds <= 0:
        raise ValueError("step time must be positive")
    steps_per_day = SECONDS_PER_DAY / step_time_seconds
    return steps_per_day * timestep_fs / FS_PER_NS


def step_time_for_ns_per_day(nsday: float, timestep_fs: float) -> float:
    """Inverse of :func:`ns_per_day`: the per-step time (s) implied by a rate."""
    if nsday <= 0:
        raise ValueError("ns/day must be positive")
    return SECONDS_PER_DAY * timestep_fs / (nsday * FS_PER_NS)


def maxwell_boltzmann_sigma(mass_amu: float, temperature_k: float) -> float:
    """Standard deviation (A/fs) of each velocity component at a temperature."""
    if mass_amu <= 0:
        raise ValueError("mass must be positive")
    if temperature_k < 0:
        raise ValueError("temperature must be non-negative")
    return math.sqrt(KB * temperature_k * ACC_CONV / mass_amu)


def maxwell_boltzmann_sigmas(masses_amu, temperature_k: float):
    """Vectorized :func:`maxwell_boltzmann_sigma` over a mass array.

    Element-for-element identical to the scalar version (``sqrt`` is
    correctly rounded either way); used by the thermostats and velocity
    initialization so per-atom sigma arrays are one expression instead of a
    Python loop.
    """
    import numpy as np

    masses_amu = np.asarray(masses_amu, dtype=np.float64)
    if np.any(masses_amu <= 0):
        raise ValueError("mass must be positive")
    if temperature_k < 0:
        raise ValueError("temperature must be non-negative")
    return np.sqrt(KB * temperature_k * ACC_CONV / masses_amu)
