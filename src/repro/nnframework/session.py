"""A framework "session" wrapper with explicit per-run overhead accounting.

§III-B.1 of the paper measures a fixed overhead of ~4 ms per TensorFlow
session run (kernel scheduling, memory management, graph bookkeeping), which
dominates the per-step time once each thread only evaluates one or two atoms.
:class:`Session` reproduces that structure: it executes a model callable and
*accounts* a configurable fixed overhead per call, so that the performance
model (:mod:`repro.perfmodel`) and the end-to-end engine can attribute
framework cost to the baseline code path and remove it in the optimized one.

The overhead is accounted, not slept, so the test-suite stays fast; callers
read :attr:`SessionStats.modeled_overhead_seconds` when they need the modelled
wall-clock contribution.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable

#: Fixed per-session-run overhead measured by the paper on Fugaku (seconds).
DEFAULT_SESSION_OVERHEAD_S = 4.0e-3


@dataclass
class SessionStats:
    """Book-keeping of session activity."""

    runs: int = 0
    wall_seconds: float = 0.0
    modeled_overhead_seconds: float = 0.0
    kernel_calls: int = 0

    def reset(self) -> None:
        self.runs = 0
        self.wall_seconds = 0.0
        self.modeled_overhead_seconds = 0.0
        self.kernel_calls = 0


@dataclass
class Session:
    """Executes model callables, attributing a fixed overhead per run.

    Parameters
    ----------
    overhead_seconds:
        modelled fixed cost of one ``run`` call (default: the 4 ms measured in
        the paper).
    track_kernels:
        if true, the session counts the number of kernel invocations reported
        by the callable (callables may return ``(result, n_kernels)``).
    """

    overhead_seconds: float = DEFAULT_SESSION_OVERHEAD_S
    track_kernels: bool = False
    stats: SessionStats = field(default_factory=SessionStats)

    def run(self, fn: Callable[..., Any], *args, **kwargs) -> Any:
        """Run ``fn(*args, **kwargs)`` inside the "framework"."""
        start = time.perf_counter()
        result = fn(*args, **kwargs)
        elapsed = time.perf_counter() - start
        self.stats.runs += 1
        self.stats.wall_seconds += elapsed
        self.stats.modeled_overhead_seconds += self.overhead_seconds
        if self.track_kernels and isinstance(result, tuple) and len(result) == 2:
            result, n_kernels = result
            self.stats.kernel_calls += int(n_kernels)
        return result

    def modeled_total_seconds(self) -> float:
        """Measured kernel time plus the modelled framework overhead."""
        return self.stats.wall_seconds + self.stats.modeled_overhead_seconds

    def overhead_fraction(self) -> float:
        """Fraction of the modelled total spent in framework overhead.

        In the strong-scaling limit the paper reports this exceeding 60 %.
        """
        total = self.modeled_total_seconds()
        if total == 0.0:
            return 0.0
        return self.stats.modeled_overhead_seconds / total

    def reset(self) -> None:
        self.stats.reset()
