"""Differentiable operations for the mini framework.

Each op computes its result eagerly with NumPy and, if gradients are enabled
and any input requires them, attaches a backward closure that accumulates
gradients into the inputs.  The set of ops matches what the Deep Potential
model (embedding net, descriptor contraction, fitting net, loss) needs.
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor, as_tensor, grad_enabled


def _make(data, parents, backward) -> Tensor:
    requires = grad_enabled() and any(p.requires_grad for p in parents)
    if not requires:
        return Tensor(data)
    out = Tensor(data, requires_grad=True, _parents=tuple(parents), _backward=None)

    def _backward(grad):
        backward(grad)

    out._backward = _backward
    return out


# --------------------------------------------------------------------------
# elementwise arithmetic
# --------------------------------------------------------------------------

def add(a, b) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    data = a.data + b.data

    def backward(grad):
        if a.requires_grad:
            a.accumulate_grad(grad)
        if b.requires_grad:
            b.accumulate_grad(grad)

    return _make(data, (a, b), backward)


def sub(a, b) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    data = a.data - b.data

    def backward(grad):
        if a.requires_grad:
            a.accumulate_grad(grad)
        if b.requires_grad:
            b.accumulate_grad(-grad)

    return _make(data, (a, b), backward)


def mul(a, b) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    data = a.data * b.data

    def backward(grad):
        if a.requires_grad:
            a.accumulate_grad(grad * b.data)
        if b.requires_grad:
            b.accumulate_grad(grad * a.data)

    return _make(data, (a, b), backward)


def div(a, b) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    data = a.data / b.data

    def backward(grad):
        if a.requires_grad:
            a.accumulate_grad(grad / b.data)
        if b.requires_grad:
            b.accumulate_grad(-grad * a.data / (b.data * b.data))

    return _make(data, (a, b), backward)


def power(a, exponent: float) -> Tensor:
    a = as_tensor(a)
    data = a.data ** exponent

    def backward(grad):
        if a.requires_grad:
            a.accumulate_grad(grad * exponent * a.data ** (exponent - 1))

    return _make(data, (a,), backward)


def square(a) -> Tensor:
    return power(a, 2.0)


def exp(a) -> Tensor:
    a = as_tensor(a)
    data = np.exp(a.data)

    def backward(grad):
        if a.requires_grad:
            a.accumulate_grad(grad * data)

    return _make(data, (a,), backward)


def log(a) -> Tensor:
    a = as_tensor(a)
    data = np.log(a.data)

    def backward(grad):
        if a.requires_grad:
            a.accumulate_grad(grad / a.data)

    return _make(data, (a,), backward)


def sqrt(a) -> Tensor:
    return power(a, 0.5)


# --------------------------------------------------------------------------
# activations
# --------------------------------------------------------------------------

def tanh(a) -> Tensor:
    a = as_tensor(a)
    data = np.tanh(a.data)

    def backward(grad):
        if a.requires_grad:
            a.accumulate_grad(grad * (1.0 - data * data))

    return _make(data, (a,), backward)


def sigmoid(a) -> Tensor:
    a = as_tensor(a)
    data = 1.0 / (1.0 + np.exp(-a.data))

    def backward(grad):
        if a.requires_grad:
            a.accumulate_grad(grad * data * (1.0 - data))

    return _make(data, (a,), backward)


def relu(a) -> Tensor:
    a = as_tensor(a)
    data = np.maximum(a.data, 0.0)

    def backward(grad):
        if a.requires_grad:
            a.accumulate_grad(grad * (a.data > 0.0))

    return _make(data, (a,), backward)


def softplus(a) -> Tensor:
    a = as_tensor(a)
    data = np.log1p(np.exp(-np.abs(a.data))) + np.maximum(a.data, 0.0)

    def backward(grad):
        if a.requires_grad:
            a.accumulate_grad(grad / (1.0 + np.exp(-a.data)))

    return _make(data, (a,), backward)


# --------------------------------------------------------------------------
# linear algebra and shape manipulation
# --------------------------------------------------------------------------

def matmul(a, b) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    data = a.data @ b.data

    def backward(grad):
        if a.requires_grad:
            if b.data.ndim == 1:
                a.accumulate_grad(np.outer(grad, b.data) if a.data.ndim == 2 else grad * b.data)
            else:
                a.accumulate_grad(grad @ np.swapaxes(b.data, -1, -2))
        if b.requires_grad:
            if a.data.ndim == 1:
                b.accumulate_grad(np.outer(a.data, grad) if b.data.ndim == 2 else grad * a.data)
            else:
                b.accumulate_grad(np.swapaxes(a.data, -1, -2) @ grad)

    return _make(data, (a, b), backward)


def transpose(a, axes=None) -> Tensor:
    a = as_tensor(a)
    data = np.transpose(a.data, axes)

    def backward(grad):
        if a.requires_grad:
            if axes is None:
                a.accumulate_grad(np.transpose(grad))
            else:
                inverse = np.argsort(axes)
                a.accumulate_grad(np.transpose(grad, inverse))

    return _make(data, (a,), backward)


def reshape(a, shape) -> Tensor:
    a = as_tensor(a)
    original = a.data.shape
    data = a.data.reshape(shape)

    def backward(grad):
        if a.requires_grad:
            a.accumulate_grad(grad.reshape(original))

    return _make(data, (a,), backward)


def concat(tensors, axis: int = 0) -> Tensor:
    tensors = [as_tensor(t) for t in tensors]
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad):
        for t, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if t.requires_grad:
                index = [slice(None)] * grad.ndim
                index[axis] = slice(start, stop)
                t.accumulate_grad(grad[tuple(index)])

    return _make(data, tuple(tensors), backward)


def getitem(a, index) -> Tensor:
    a = as_tensor(a)
    data = a.data[index]

    def backward(grad):
        if a.requires_grad:
            full = np.zeros_like(a.data)
            np.add.at(full, index, grad)
            a.accumulate_grad(full)

    return _make(data, (a,), backward)


# --------------------------------------------------------------------------
# reductions and losses
# --------------------------------------------------------------------------

def sum(a, axis=None, keepdims: bool = False) -> Tensor:  # noqa: A001 - mirrors np.sum
    a = as_tensor(a)
    data = a.data.sum(axis=axis, keepdims=keepdims)

    def backward(grad):
        if a.requires_grad:
            g = np.asarray(grad)
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
            a.accumulate_grad(np.broadcast_to(g, a.data.shape))

    return _make(data, (a,), backward)


def mean(a, axis=None, keepdims: bool = False) -> Tensor:
    a = as_tensor(a)
    data = a.data.mean(axis=axis, keepdims=keepdims)
    if axis is None:
        count = a.data.size
    else:
        axes = axis if isinstance(axis, tuple) else (axis,)
        count = 1
        for ax in axes:
            count *= a.data.shape[ax]

    def backward(grad):
        if a.requires_grad:
            g = np.asarray(grad) / count
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
            a.accumulate_grad(np.broadcast_to(g, a.data.shape))

    return _make(data, (a,), backward)


def mse_loss(prediction, target) -> Tensor:
    """Mean squared error, the loss used by the Deep Potential trainer."""
    prediction = as_tensor(prediction)
    target = as_tensor(target)
    return mean(square(sub(prediction, target)))
