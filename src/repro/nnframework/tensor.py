"""Eager tensors with reverse-mode automatic differentiation.

The implementation is a classic tape: every operation creates a new
:class:`Tensor` holding references to its parents and a closure that
accumulates gradients into them.  ``Tensor.backward()`` topologically sorts the
graph reachable from the output and applies the closures in reverse order.

Only the features required by the Deep Potential model and its trainer are
implemented; the point is to have a *real* framework with the same structural
costs (graph bookkeeping, per-op Python dispatch, full-precision temporaries)
that the paper eliminates in its optimized code path.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable

import numpy as np

_GRAD_ENABLED = [True]


@contextlib.contextmanager
def no_grad():
    """Context manager disabling graph construction (inference mode)."""
    _GRAD_ENABLED.append(False)
    try:
        yield
    finally:
        _GRAD_ENABLED.pop()


def grad_enabled() -> bool:
    return _GRAD_ENABLED[-1]


class Tensor:
    """A NumPy-backed tensor participating in reverse-mode autodiff."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(
        self,
        data,
        requires_grad: bool = False,
        _parents: tuple["Tensor", ...] = (),
        _backward: Callable[[np.ndarray], None] | None = None,
        name: str | None = None,
    ) -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad)
        self._parents = _parents
        self._backward = _backward
        self.name = name

    # -- constructors -------------------------------------------------------
    @staticmethod
    def parameter(data, name: str | None = None) -> "Tensor":
        """A trainable leaf tensor."""
        return Tensor(data, requires_grad=True, name=name)

    @staticmethod
    def constant(data, name: str | None = None) -> "Tensor":
        return Tensor(data, requires_grad=False, name=name)

    # -- shape helpers -------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def numpy(self) -> np.ndarray:
        return self.data

    def item(self) -> float:
        return float(self.data)

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        grad = ", grad" if self.requires_grad else ""
        name = f", name={self.name!r}" if self.name else ""
        return f"Tensor(shape={self.shape}{grad}{name})"

    # -- autodiff ------------------------------------------------------------
    def accumulate_grad(self, grad: np.ndarray) -> None:
        grad = np.asarray(grad, dtype=np.float64)
        if grad.shape != self.data.shape:
            grad = _unbroadcast(grad, self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad = self.grad + grad

    def zero_grad(self) -> None:
        self.grad = None

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor.

        ``grad`` defaults to ones (appropriate for scalar losses).
        """
        if grad is None:
            grad = np.ones_like(self.data)
        topo: list[Tensor] = []
        visited: set[int] = set()

        def visit(t: Tensor) -> None:
            stack = [(t, iter(t._parents))]
            if id(t) in visited:
                return
            visited.add(id(t))
            while stack:
                node, it = stack[-1]
                advanced = False
                for parent in it:
                    if id(parent) not in visited:
                        visited.add(id(parent))
                        stack.append((parent, iter(parent._parents)))
                        advanced = True
                        break
                if not advanced:
                    topo.append(node)
                    stack.pop()

        visit(self)
        self.accumulate_grad(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # -- operator sugar (delegates to ops to avoid circular import) ----------
    def _ops(self):
        from . import ops

        return ops

    def __add__(self, other):
        return self._ops().add(self, other)

    def __radd__(self, other):
        return self._ops().add(other, self)

    def __sub__(self, other):
        return self._ops().sub(self, other)

    def __rsub__(self, other):
        return self._ops().sub(other, self)

    def __mul__(self, other):
        return self._ops().mul(self, other)

    def __rmul__(self, other):
        return self._ops().mul(other, self)

    def __truediv__(self, other):
        return self._ops().div(self, other)

    def __rtruediv__(self, other):
        return self._ops().div(other, self)

    def __neg__(self):
        return self._ops().mul(self, -1.0)

    def __matmul__(self, other):
        return self._ops().matmul(self, other)

    def __pow__(self, exponent):
        return self._ops().power(self, exponent)

    def __getitem__(self, index):
        return self._ops().getitem(self, index)

    def reshape(self, *shape):
        return self._ops().reshape(self, shape if len(shape) > 1 else shape[0])

    def transpose(self, *axes):
        return self._ops().transpose(self, axes if axes else None)

    @property
    def T(self):
        return self._ops().transpose(self, None)

    def sum(self, axis=None, keepdims=False):
        return self._ops().sum(self, axis=axis, keepdims=keepdims)

    def mean(self, axis=None, keepdims=False):
        return self._ops().mean(self, axis=axis, keepdims=keepdims)


def as_tensor(value) -> Tensor:
    """Coerce ``value`` (Tensor, array, scalar) into a Tensor leaf."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value)


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` (inverse of NumPy broadcasting)."""
    if grad.shape == shape:
        return grad
    # Sum out prepended dimensions.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum along broadcast (size-1) dimensions.
    for axis, dim in enumerate(shape):
        if dim == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


def collect_parameters(objects: Iterable) -> list[Tensor]:
    """Gather unique trainable tensors from a collection of layers/tensors."""
    seen: dict[int, Tensor] = {}
    for obj in objects:
        params: Iterable[Tensor]
        if isinstance(obj, Tensor):
            params = [obj]
        elif hasattr(obj, "parameters"):
            params = obj.parameters()
        else:
            raise TypeError(f"cannot collect parameters from {type(obj)!r}")
        for p in params:
            if p.requires_grad:
                seen.setdefault(id(p), p)
    return list(seen.values())
