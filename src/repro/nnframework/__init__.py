"""A miniature computation-graph / autodiff framework.

The original DeePMD-kit executes its model inside TensorFlow; the paper's
first computational optimization is *removing* that framework because its
fixed per-session overhead (~4 ms) dominates the per-step time in the strong
scaling limit.  To reproduce that structure faithfully this package provides
a small but real NN framework:

* :class:`Tensor` — an eager tensor with reverse-mode (tape) autodiff,
* :mod:`ops <repro.nnframework.ops>` — the differentiable operations needed by
  the Deep Potential model (matmul, tanh, reductions, slicing, ...),
* :class:`Dense` / :class:`MLP` — fully connected layers,
* :class:`SGD` / :class:`Adam` — optimizers used by the trainer,
* :class:`Session` — a "framework runtime" wrapper that executes a model
  function and *accounts* a configurable fixed overhead per run, mirroring the
  TensorFlow session-run overhead measured in the paper.

The baseline (un-optimized) Deep Potential evaluation path runs through this
framework; the optimized path (:mod:`repro.deepmd`) uses hand-written NumPy
kernels, which is exactly the "TensorFlow removement" described in §III-B.1.
"""

from .tensor import Tensor, no_grad
from . import ops
from .layers import Dense, MLP
from .initializers import glorot_uniform, he_normal, zeros, constant
from .optimizers import SGD, Adam
from .session import Session, SessionStats

__all__ = [
    "Tensor",
    "no_grad",
    "ops",
    "Dense",
    "MLP",
    "glorot_uniform",
    "he_normal",
    "zeros",
    "constant",
    "SGD",
    "Adam",
    "Session",
    "SessionStats",
]
