"""Fully connected layers built on the mini framework tensors.

The Deep Potential model uses two three-layer MLPs (the *embedding net* and
the *fitting net*); DeePMD-kit additionally uses residual ("timestep") skip
connections when consecutive layers have the same width, which :class:`MLP`
reproduces via ``resnet=True``.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from . import ops
from .initializers import glorot_uniform, zeros
from .tensor import Tensor
from ..utils.rng import default_rng

Activation = Callable[[Tensor], Tensor]

ACTIVATIONS: dict[str, Activation] = {
    "tanh": ops.tanh,
    "sigmoid": ops.sigmoid,
    "relu": ops.relu,
    "softplus": ops.softplus,
    "linear": lambda t: t,
}


class Dense:
    """A single affine layer ``y = act(x W + b)``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        activation: str = "tanh",
        rng=None,
        name: str = "dense",
    ) -> None:
        if in_features <= 0 or out_features <= 0:
            raise ValueError("layer sizes must be positive")
        if activation not in ACTIVATIONS:
            raise ValueError(f"unknown activation {activation!r}")
        rng = default_rng(rng)
        self.in_features = in_features
        self.out_features = out_features
        self.activation_name = activation
        self.activation = ACTIVATIONS[activation]
        self.weight = Tensor.parameter(
            glorot_uniform((in_features, out_features), rng), name=f"{name}.weight"
        )
        self.bias = Tensor.parameter(zeros((out_features,)), name=f"{name}.bias")

    def __call__(self, x: Tensor) -> Tensor:
        return self.activation(ops.add(ops.matmul(x, self.weight), self.bias))

    def parameters(self) -> list[Tensor]:
        return [self.weight, self.bias]

    def set_weights(self, weight: np.ndarray, bias: np.ndarray) -> None:
        """Overwrite weights in place (used when exporting to the fast kernels)."""
        weight = np.asarray(weight, dtype=np.float64)
        bias = np.asarray(bias, dtype=np.float64)
        if weight.shape != (self.in_features, self.out_features):
            raise ValueError("weight shape mismatch")
        if bias.shape != (self.out_features,):
            raise ValueError("bias shape mismatch")
        self.weight.data = weight
        self.bias.data = bias


class MLP:
    """A multi-layer perceptron with optional DeePMD-style residual links."""

    def __init__(
        self,
        in_features: int,
        hidden: Sequence[int],
        out_features: int | None = None,
        activation: str = "tanh",
        output_activation: str = "linear",
        resnet: bool = True,
        rng=None,
        name: str = "mlp",
    ) -> None:
        rng = default_rng(rng)
        self.resnet = resnet
        sizes = [in_features, *hidden]
        self.layers: list[Dense] = []
        for i in range(len(hidden)):
            self.layers.append(
                Dense(sizes[i], sizes[i + 1], activation, rng, name=f"{name}.h{i}")
            )
        self.output_layer: Dense | None = None
        if out_features is not None:
            self.output_layer = Dense(
                sizes[-1], out_features, output_activation, rng, name=f"{name}.out"
            )

    def __call__(self, x: Tensor) -> Tensor:
        h = x
        for layer in self.layers:
            out = layer(h)
            if self.resnet and layer.in_features == layer.out_features:
                out = ops.add(out, h)
            elif self.resnet and layer.out_features == 2 * layer.in_features:
                # DeePMD doubles the width by concatenating the input with itself.
                out = ops.add(out, ops.concat([h, h], axis=-1))
            h = out
        if self.output_layer is not None:
            h = self.output_layer(h)
        return h

    def parameters(self) -> list[Tensor]:
        params: list[Tensor] = []
        for layer in self.layers:
            params.extend(layer.parameters())
        if self.output_layer is not None:
            params.extend(self.output_layer.parameters())
        return params

    @property
    def all_layers(self) -> list[Dense]:
        layers = list(self.layers)
        if self.output_layer is not None:
            layers.append(self.output_layer)
        return layers

    def export_weights(self) -> list[dict[str, np.ndarray]]:
        """Export layer weights as plain arrays for the framework-free kernels.

        This is the code path the paper keeps when "removing TensorFlow": the
        framework is retained solely for loading model parameters.
        """
        exported = []
        for layer in self.all_layers:
            exported.append(
                {
                    "weight": layer.weight.data.copy(),
                    "bias": layer.bias.data.copy(),
                    "activation": layer.activation_name,
                    "resnet": bool(
                        self.resnet
                        and layer is not self.output_layer
                        and (
                            layer.in_features == layer.out_features
                            or layer.out_features == 2 * layer.in_features
                        )
                    ),
                }
            )
        return exported
