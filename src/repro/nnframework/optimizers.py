"""Gradient-descent optimizers for training the Deep Potential model."""

from __future__ import annotations

import numpy as np

from .tensor import Tensor


class Optimizer:
    """Base class holding the parameter list and zero-grad logic."""

    def __init__(self, parameters: list[Tensor]) -> None:
        self.parameters = [p for p in parameters if p.requires_grad]
        if not self.parameters:
            raise ValueError("optimizer needs at least one trainable parameter")

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, parameters: list[Tensor], lr: float = 1e-3, momentum: float = 0.0) -> None:
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for p, v in zip(self.parameters, self._velocity):
            if p.grad is None:
                continue
            v *= self.momentum
            v -= self.lr * p.grad
            p.data = p.data + v


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba), the default for the DP trainer."""

    def __init__(
        self,
        parameters: list[Tensor],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
    ) -> None:
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        b1, b2 = self.beta1, self.beta2
        bias1 = 1.0 - b1 ** self._t
        bias2 = 1.0 - b2 ** self._t
        for p, m, v in zip(self.parameters, self._m, self._v):
            if p.grad is None:
                continue
            g = p.grad
            m *= b1
            m += (1.0 - b1) * g
            v *= b2
            v += (1.0 - b2) * g * g
            m_hat = m / bias1
            v_hat = v / bias2
            p.data = p.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def set_lr(self, lr: float) -> None:
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr
