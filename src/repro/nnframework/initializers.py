"""Weight initializers for the mini framework layers."""

from __future__ import annotations

import numpy as np

from ..utils.rng import default_rng


def glorot_uniform(shape: tuple[int, ...], rng=None) -> np.ndarray:
    """Glorot/Xavier uniform initialization (tanh-friendly, used by DeePMD)."""
    rng = default_rng(rng)
    fan_in = shape[0] if len(shape) > 1 else shape[0]
    fan_out = shape[1] if len(shape) > 1 else shape[0]
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def he_normal(shape: tuple[int, ...], rng=None) -> np.ndarray:
    """He normal initialization (ReLU-friendly)."""
    rng = default_rng(rng)
    fan_in = shape[0]
    return rng.normal(0.0, np.sqrt(2.0 / fan_in), size=shape)


def zeros(shape: tuple[int, ...], rng=None) -> np.ndarray:
    return np.zeros(shape)


def constant(value: float):
    """Return an initializer producing a constant-filled array."""

    def _init(shape: tuple[int, ...], rng=None) -> np.ndarray:
        return np.full(shape, float(value))

    return _init
