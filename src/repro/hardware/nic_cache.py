"""NIC registration-cache model (Fig. 8 of the paper).

RDMA requires registering memory regions and connections with the NIC; the
TofuD controller caches this metadata on chip.  When the number of registered
regions exceeds the cache capacity, entries spill to main memory and every
message that misses pays an extra fetch.  The paper works around this with a
memory pool: one large registered region shared by all neighbours.

The model charges a per-message penalty equal to the miss probability (an
LRU-style occupancy argument: with R registered regions and a cache of C
entries, a uniformly chosen region misses with probability max(0, 1 - C/R))
times the miss cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .specs import NICCacheSpec


@dataclass
class NICRegistrationCache:
    spec: NICCacheSpec = field(default_factory=NICCacheSpec)

    def miss_probability(self, registered_regions: int) -> float:
        if registered_regions <= 0:
            return 0.0
        if registered_regions <= self.spec.cache_entries:
            return 0.0
        return 1.0 - self.spec.cache_entries / registered_regions

    def per_message_penalty(self, registered_regions: int) -> float:
        """Expected extra time per message due to cache misses (seconds)."""
        return self.miss_probability(registered_regions) * self.spec.miss_penalty

    def regions_for(self, n_neighbors: int, pooled: bool) -> int:
        """Registered regions needed for ``n_neighbors`` connections.

        Without the pool, every neighbour needs a send and a receive buffer
        registration; with the pool a single large region serves everyone.
        """
        if n_neighbors < 0:
            raise ValueError("neighbour count must be non-negative")
        return 1 if pooled else 2 * n_neighbors
