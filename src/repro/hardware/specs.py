"""Hardware constants of the modelled Fugaku system.

Sources of the numbers:

* the paper itself (0.49 us point-to-point latency, 6 RDMA engines per node,
  48 compute cores in 4 CMGs at 2.2 GHz, 3.38 TFLOPS per node, ~4 ms
  TensorFlow session overhead, 15-27 % RDMA savings over MPI),
* public A64FX / Tofu Interconnect D documentation (HBM2 bandwidth 256 GB/s
  per CMG, 6.8 GB/s injection bandwidth per TNI, 10 network ports per node).

Where a value is not published (e.g. the NIC registration-cache capacity) it
is chosen so the paper's observed behaviour is reproduced (Fig. 8 starts to
degrade around 44 neighbours, i.e. ~88 registered regions) and documented as
such.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class A64FXSpec:
    """One A64FX processor (one Fugaku node)."""

    n_cmgs: int = 4
    compute_cores_per_cmg: int = 12
    clock_hz: float = 2.2e9
    #: double-precision FLOPs per core per cycle with SVE-512 (2 pipes x 8 lanes x FMA).
    flops_per_core_per_cycle_fp64: float = 32.0
    #: HBM2 bandwidth per CMG in bytes/s.
    hbm_bandwidth_per_cmg: float = 256.0e9
    #: sustainable ring-bus (NoC) bandwidth for cross-CMG copies, bytes/s.
    #: (well below the link peak: the copies are strided gather/scatter of
    #: per-atom structures, not streaming memcpy)
    noc_bandwidth: float = 15.0e9
    #: latency of a cross-CMG (cross-NUMA) transfer setup, seconds.
    noc_latency: float = 3.0e-7
    #: latency of an intra-node synchronization (flag in shared memory), seconds.
    intra_node_sync_latency: float = 1.5e-6

    @property
    def compute_cores(self) -> int:
        return self.n_cmgs * self.compute_cores_per_cmg

    @property
    def peak_flops_per_core_fp64(self) -> float:
        return self.clock_hz * self.flops_per_core_per_cycle_fp64

    @property
    def peak_flops_fp64(self) -> float:
        """Per-node peak (~3.38 TFLOPS at 2.2 GHz)."""
        return self.compute_cores * self.peak_flops_per_core_fp64


@dataclass(frozen=True)
class TofuDSpec:
    """Tofu Interconnect D."""

    #: one-way latency of a nearest-neighbour put, seconds (paper: 0.49 us).
    hop_latency: float = 0.49e-6
    #: additional latency per extra hop in the torus, seconds.
    per_hop_latency: float = 0.10e-6
    #: injection bandwidth per TNI (RDMA engine), bytes/s.
    link_bandwidth: float = 6.8e9
    #: RDMA engines per node, usable concurrently.
    n_tnis: int = 6
    #: network ports per node (10 in the 6D torus).
    n_ports: int = 10
    #: CPU-side cost of posting one RDMA descriptor, seconds.
    rdma_post_overhead: float = 0.15e-6
    #: multiplicative overhead of the MPI API on the wire time (matching,
    #: rendezvous protocol) relative to uTofu RDMA.
    mpi_overhead_factor: float = 1.25
    #: per-message software overhead of the MPI path (two-sided matching,
    #: request management), seconds.
    mpi_post_overhead: float = 1.5e-6
    #: per-communication-round software overhead (pack/unpack + wait-all) for
    #: the MPI path and for the uTofu path, seconds.
    mpi_round_overhead: float = 2.5e-6
    rdma_round_overhead: float = 1.2e-6


@dataclass(frozen=True)
class NICCacheSpec:
    """Registration/connection cache of the TofuD controller.

    The capacity is not published; it is set so that per-neighbour
    registration starts thrashing around 44 neighbours (88 send+recv regions),
    matching Fig. 8.
    """

    cache_entries: int = 80
    #: extra cost of fetching an evicted entry from main memory, seconds.
    miss_penalty: float = 0.9e-6


#: CPU time for a leader thread to unpack one received packet into the
#: shared-memory atom structures, seconds.
UNPACK_PER_MESSAGE = 1.2e-6


@dataclass(frozen=True)
class FugakuSpec:
    """The full machine model."""

    node: A64FXSpec = field(default_factory=A64FXSpec)
    network: TofuDSpec = field(default_factory=TofuDSpec)
    nic_cache: NICCacheSpec = field(default_factory=NICCacheSpec)
    total_nodes: int = 158_976

    #: bytes communicated per ghost atom (position 3x8 + type 8 + id 8 + padding).
    bytes_per_ghost_atom: float = 48.0
    #: bytes per force send-back (3 x 8).
    bytes_per_force: float = 24.0

    #: fixed framework (TensorFlow) overhead per session run, seconds (paper: ~4 ms).
    framework_overhead: float = 4.0e-3
    #: multiplier on kernel work due to redundant framework kernels
    #: (gradient graphs, slicing/concatenation, dynamic allocation).
    framework_kernel_factor: float = 1.8
    #: OpenMP parallel-region fork/join overhead, seconds.
    openmp_region_overhead: float = 12.0e-6
    #: persistent thread-pool dispatch overhead, seconds.
    threadpool_region_overhead: float = 1.5e-6
    #: number of parallel regions per MD step in the DeePMD pair computation.
    parallel_regions_per_step: int = 6


#: The default machine used across the benchmarks.
FUGAKU = FugakuSpec()
