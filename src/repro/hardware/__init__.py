"""Analytic model of the Fugaku supercomputer.

None of the paper's hardware (A64FX nodes, the TofuD 6D torus, uTofu RDMA,
the NIC registration cache) is available in this environment, so the machine
is modelled: the classes here turn *counts* produced by the real algorithms
(message counts and sizes from the actual domain decomposition, FLOP counts
from the actual model configuration, memory-copy volumes from the actual atom
layout) into *time*, using constants taken from the paper and from public
A64FX/TofuD documentation.

The model is deliberately simple — latency/bandwidth (alpha-beta) costs with
explicit concurrency limits (6 TNIs per node, 12 threads per CMG) — because
that is the level of fidelity the paper's own analysis uses (hop latency,
per-message counts, NoC bandwidth, NIC cache capacity).
"""

from .specs import A64FXSpec, TofuDSpec, NICCacheSpec, FugakuSpec, FUGAKU
from .a64fx import A64FXNode
from .noc import NocModel
from .tofu import TofuDNetwork, TorusCoordinates
from .tni import TNIScheduler
from .nic_cache import NICRegistrationCache

__all__ = [
    "A64FXSpec",
    "TofuDSpec",
    "NICCacheSpec",
    "FugakuSpec",
    "FUGAKU",
    "A64FXNode",
    "NocModel",
    "TofuDNetwork",
    "TorusCoordinates",
    "TNIScheduler",
    "NICRegistrationCache",
]
