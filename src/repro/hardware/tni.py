"""Scheduling messages over the six TofuD Network Interfaces (TNIs).

Each Fugaku node has six RDMA engines that can inject/receive packets
concurrently; the paper binds six threads of each leader rank to individual
TNIs so gather, reduction and communication overlap.  The scheduler below
distributes a list of per-message times over a number of concurrent engines
(optionally further limited by the number of communication threads) and
returns the makespan — a list-scheduling approximation that is exact for the
uniform message sizes produced by the ghost exchange.
"""

from __future__ import annotations

from dataclasses import dataclass, field
import heapq

from .specs import TofuDSpec


@dataclass
class TNIScheduler:
    spec: TofuDSpec = field(default_factory=TofuDSpec)

    def makespan(self, message_times: list[float], engines: int | None = None, threads: int | None = None) -> float:
        """Completion time of ``message_times`` over the available engines.

        ``engines`` defaults to the 6 TNIs; ``threads`` caps concurrency
        further when fewer communication threads than engines are used (the
        sg-lb-4l single-thread configuration of Fig. 7).
        """
        if not message_times:
            return 0.0
        n_engines = self.spec.n_tnis if engines is None else int(engines)
        if threads is not None:
            n_engines = min(n_engines, int(threads))
        n_engines = max(1, n_engines)
        if n_engines == 1:
            return float(sum(message_times))
        # Longest-processing-time list scheduling.
        heap = [0.0] * n_engines
        heapq.heapify(heap)
        for t in sorted(message_times, reverse=True):
            earliest = heapq.heappop(heap)
            heapq.heappush(heap, earliest + t)
        return float(max(heap))
