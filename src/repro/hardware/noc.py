"""Network-on-chip (ring bus) model for intra-node gather/scatter.

The node-based parallelization scheme relies on the A64FX ring bus: workers
copy their atoms into shared memory owned by the leader(s), and received ghost
atoms are scattered back.  The model charges a latency per transfer plus a
bandwidth term, and caps concurrency at the number of copying threads (the
paper shows that using all 24/48 threads of the leaders matters).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .specs import A64FXSpec


@dataclass
class NocModel:
    spec: A64FXSpec = field(default_factory=A64FXSpec)

    def gather_time(self, bytes_per_rank: list[float], copy_threads: int = 12) -> float:
        """Time for every worker rank to copy its block into shared memory.

        ``bytes_per_rank`` holds the payload contributed by each rank on the
        node; copies from different ranks proceed concurrently but share the
        ring-bus bandwidth, and each needs at least one latency.
        """
        if not bytes_per_rank:
            return 0.0
        copy_threads = max(1, copy_threads)
        total_bytes = float(sum(bytes_per_rank))
        # Bandwidth term: a single CMG's threads cannot saturate the ring bus;
        # concurrency across the node (up to the 48 threads the 4-leader
        # configuration uses) raises the achieved copy bandwidth.
        effective_bw = self.spec.noc_bandwidth * min(1.0, 0.3 + copy_threads / 64.0)
        bandwidth_term = total_bytes / effective_bw
        latency_term = self.spec.noc_latency * max(1.0, len(bytes_per_rank) / copy_threads)
        return latency_term + bandwidth_term

    def scatter_time(self, bytes_per_rank: list[float], copy_threads: int = 12) -> float:
        """Scatter has the same cost structure as gather."""
        return self.gather_time(bytes_per_rank, copy_threads)

    def synchronization_time(self, n_syncs: int = 1) -> float:
        """Intra-node synchronizations (shared-memory flags)."""
        return max(0, n_syncs) * self.spec.intra_node_sync_latency
