"""Compute-time model of one A64FX node.

Converts FLOP counts into seconds using sustained-efficiency factors for the
GEMM shapes that occur in Deep Potential inference.  The efficiencies encode
the paper's measured ratios rather than vendor peaks:

* tall-and-skinny (M <= 3) GEMMs run at a few percent of peak with the BLAS
  library; the hand-written sve-gemm is 1.4x faster;
* MIX-fp32 gives 1.6x over fp64 and MIX-fp16 a further 1.5x (paper §IV-C) —
  below the theoretical 2x per halving because the surrounding non-GEMM work
  does not speed up as much.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .specs import A64FXSpec


#: sustained fraction of per-core peak for tall-and-skinny GEMMs.
TALL_SKINNY_EFFICIENCY = {"blas": 0.045, "sve": 0.063}
#: sustained fraction of per-core peak for regular (large-M) GEMMs.
REGULAR_EFFICIENCY = {"blas": 0.55, "sve": 0.55}
#: throughput multiplier relative to fp64 for each compute precision.
PRECISION_SPEEDUP = {"fp64": 1.0, "fp32": 1.6, "fp16": 2.4}
#: penalty factor for NT (transposed-B) GEMMs on small matrices (paper: halved).
NT_PENALTY = 2.0
#: M dimension up to which the hand-written sve kernel engages.
SVE_M_THRESHOLD = 3


@dataclass
class A64FXNode:
    """Kernel-time model for one node (or a fraction of it)."""

    spec: A64FXSpec = field(default_factory=A64FXSpec)

    # -- GEMM ------------------------------------------------------------------
    def gemm_time(
        self,
        m: int,
        n: int,
        k: int,
        dtype: str = "fp64",
        backend: str = "blas",
        transposed_b: bool = False,
        cores: int = 1,
    ) -> float:
        """Time (s) of one ``m x k @ k x n`` product on ``cores`` cores."""
        if min(m, n, k) <= 0:
            return 0.0
        flops = 2.0 * m * n * k
        tall_skinny = m <= 3
        eff = (TALL_SKINNY_EFFICIENCY if tall_skinny else REGULAR_EFFICIENCY)[backend]
        if backend == "blas" and tall_skinny:
            # The sve kernel only exists for the tall-skinny case; elsewhere both
            # backends call the library.
            pass
        speed = PRECISION_SPEEDUP.get(dtype, 1.0)
        rate = cores * self.spec.peak_flops_per_core_fp64 * eff * speed
        time = flops / rate
        if transposed_b and tall_skinny:
            time *= NT_PENALTY
        return time

    def fitting_gemm_time(
        self,
        m: int,
        n: int,
        k: int,
        dtype: str = "fp64",
        backend: str = "blas",
        transposed_b: bool = False,
    ) -> float:
        """Time of one fitting-net GEMM with ``m`` atoms batched per thread.

        Unlike :meth:`gemm_time` (general-purpose shapes), the fitting-net
        model uses a *smooth, weak* dependence of the sustained efficiency on
        M: measurements behind the paper show the per-atom cost changes little
        between the 1-2 atoms/core strong-scaling limit and the bulk case,
        with the hand-written sve kernel recovering a further 1.4x for M <= 3.
        """
        if min(m, n, k) <= 0:
            return 0.0
        flops = 2.0 * m * n * k
        if m <= SVE_M_THRESHOLD and backend == "sve":
            base = TALL_SKINNY_EFFICIENCY["sve"]
        else:
            base = TALL_SKINNY_EFFICIENCY["blas"]
        eff = min(REGULAR_EFFICIENCY["blas"], base * (1.0 + 0.02 * (min(m, 16) - 1)))
        speed = PRECISION_SPEEDUP.get(dtype, 1.0)
        time = flops / (self.spec.peak_flops_per_core_fp64 * eff * speed)
        if transposed_b and m <= SVE_M_THRESHOLD:
            time *= NT_PENALTY
        return time

    def flops_time(self, flops: float, dtype: str = "fp64", efficiency: float = 0.25, cores: int = 1) -> float:
        """Time of generic (non-GEMM) vector work at the given efficiency."""
        if flops <= 0:
            return 0.0
        speed = PRECISION_SPEEDUP.get(dtype, 1.0)
        rate = cores * self.spec.peak_flops_per_core_fp64 * efficiency * speed
        return flops / rate

    # -- memory ---------------------------------------------------------------
    def memcpy_time(self, n_bytes: float, cross_numa: bool = False) -> float:
        """Time of a memory copy within the node."""
        if n_bytes <= 0:
            return 0.0
        if cross_numa:
            return self.spec.noc_latency + n_bytes / self.spec.noc_bandwidth
        # Same-CMG copies stream through HBM at roughly half duplex bandwidth.
        return n_bytes / (0.5 * self.spec.hbm_bandwidth_per_cmg)

    def memory_bandwidth_time(self, n_bytes: float, cmgs: int = 1) -> float:
        """Streaming time of ``n_bytes`` through HBM on ``cmgs`` CMGs."""
        if n_bytes <= 0:
            return 0.0
        return n_bytes / (cmgs * self.spec.hbm_bandwidth_per_cmg)

    # -- convenience -----------------------------------------------------------
    def cores_per_rank(self, ranks_per_node: int = 4) -> int:
        return self.spec.compute_cores // ranks_per_node
