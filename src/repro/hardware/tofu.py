"""Tofu Interconnect D network model.

Fugaku's interconnect is a 6D torus/mesh (X, Y, Z, a, b, c) in which 12 nodes
form a cell; applications see a folded *logical 3D torus*, which is how
LAMMPS-style domain decompositions map onto the machine.  The model here works
on the logical 3D torus: messages are charged an injection overhead, a base
latency plus a per-hop latency (hops measured on the torus), and a bandwidth
term on the injection link; concurrent messages of one node are spread over
the 6 TNIs by :class:`~repro.hardware.tni.TNIScheduler`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .specs import TofuDSpec


@dataclass(frozen=True)
class TorusCoordinates:
    """Coordinates of a node in the logical 3D torus."""

    dims: tuple[int, int, int]

    def __post_init__(self) -> None:
        if any(d < 1 for d in self.dims):
            raise ValueError("torus dimensions must be >= 1")

    @property
    def n_nodes(self) -> int:
        return int(np.prod(self.dims))

    def wrap(self, coord) -> tuple[int, int, int]:
        return tuple(int(c) % d for c, d in zip(coord, self.dims))

    def index(self, coord) -> int:
        x, y, z = self.wrap(coord)
        _, ny, nz = self.dims
        return (x * ny + y) * nz + z

    def coordinate(self, index: int) -> tuple[int, int, int]:
        _, ny, nz = self.dims
        x, rem = divmod(int(index), ny * nz)
        y, z = divmod(rem, nz)
        return (x, y, z)

    def hops(self, a, b) -> int:
        """Minimum torus (Manhattan-with-wraparound) hop distance."""
        total = 0
        for ca, cb, d in zip(a, b, self.dims):
            delta = abs(int(ca) - int(cb)) % d
            total += min(delta, d - delta)
        return total


@dataclass
class TofuDNetwork:
    """Point-to-point message cost on the logical 3D torus."""

    torus: TorusCoordinates
    spec: TofuDSpec = field(default_factory=TofuDSpec)

    def occupancy(
        self,
        n_bytes: float,
        use_rdma: bool = True,
        registration_penalty: float = 0.0,
    ) -> float:
        """Engine/CPU occupancy of one message (excludes wire latency).

        Occupancy is what serializes on a TNI: descriptor posting, the
        bandwidth term, and any NIC registration-cache penalty.  The wire
        latency is pipelined across messages and is charged once per round
        (see :meth:`latency`).
        """
        if n_bytes < 0:
            raise ValueError("message size must be non-negative")
        post = self.spec.rdma_post_overhead if use_rdma else self.spec.mpi_post_overhead
        time = post + n_bytes / self.spec.link_bandwidth + registration_penalty
        if not use_rdma:
            time *= self.spec.mpi_overhead_factor
        return time

    def latency(self, hops: int = 1, use_rdma: bool = True) -> float:
        """End-to-end wire latency of one message over ``hops`` torus hops."""
        if hops < 0:
            raise ValueError("hop count must be non-negative")
        latency = self.spec.hop_latency + max(0, hops - 1) * self.spec.per_hop_latency
        if not use_rdma:
            latency *= self.spec.mpi_overhead_factor
        return latency

    def message_time(
        self,
        n_bytes: float,
        hops: int = 1,
        use_rdma: bool = True,
        registration_penalty: float = 0.0,
    ) -> float:
        """Stand-alone time of one point-to-point message (occupancy + latency)."""
        return self.occupancy(n_bytes, use_rdma, registration_penalty) + self.latency(hops, use_rdma)

    def hops_between(self, node_a, node_b) -> int:
        return self.torus.hops(node_a, node_b)

    def neighbors_within(self, coord, layers: tuple[int, int, int]) -> list[tuple[int, int, int]]:
        """All distinct nodes within ``layers`` shells in each torus direction."""
        lx, ly, lz = (int(l) for l in layers)
        out: list[tuple[int, int, int]] = []
        seen = set()
        for dx in range(-lx, lx + 1):
            for dy in range(-ly, ly + 1):
                for dz in range(-lz, lz + 1):
                    if dx == 0 and dy == 0 and dz == 0:
                        continue
                    wrapped = self.torus.wrap((coord[0] + dx, coord[1] + dy, coord[2] + dz))
                    if wrapped == tuple(self.torus.wrap(coord)):
                        continue
                    if wrapped not in seen:
                        seen.add(wrapped)
                        out.append(wrapped)
        return out
