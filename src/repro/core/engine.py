"""The engine combining system, decomposition, schemes and the cost model.

:class:`DeepMDEngine` answers the question the paper's evaluation asks over
and over: *given this system, this many nodes, and this set of optimizations,
how long is one MD step and how many nanoseconds per day does that buy?*

The inputs that matter are computed, not assumed:

* per-rank atom counts come from binning real coordinates into the real
  rank/node grid (so load imbalance is the measured imbalance),
* communication plans come from the real ghost-shell geometry on the real
  torus,
* kernel times come from the Deep Potential hyper-parameters.

Only the conversion of those counts into seconds uses the Fugaku machine
model (see DESIGN.md for the substitution rationale).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..hardware.specs import FUGAKU, FugakuSpec
from ..parallel.decomposition import DecompositionStats, SpatialDecomposition
from ..parallel.loadbalance import IntraNodeLoadBalancer
from ..parallel.schemes import ExchangeContext, build_scheme
from ..parallel.threadpool import ThreadingModel
from ..parallel.topology import RankTopology
from ..perfmodel.comm_cost import CommCostModel
from ..perfmodel.kernels import KernelCostModel
from ..perfmodel.timeline import StepTimeline
from .config import OptimizationConfig
from .systems import SystemSpec


@dataclass
class StepReport:
    """The outcome of modelling one configuration at one scale."""

    config_name: str
    system: str
    n_nodes: int
    n_atoms: int
    atoms_per_core: float
    timeline: StepTimeline
    rank_count_stats: dict[str, float]

    @property
    def ns_day(self) -> float:
        return self.timeline.ns_day

    @property
    def step_time_ms(self) -> float:
        return self.timeline.step_time * 1.0e3


@dataclass
class DeepMDEngine:
    """Performance engine for one benchmark system."""

    system: SystemSpec
    machine: FugakuSpec = field(default_factory=lambda: FUGAKU)
    rng_seed: int = 2024

    def __post_init__(self) -> None:
        self.kernel_model = KernelCostModel(
            embedding_sizes=self.system.embedding_sizes,
            axis_neurons=self.system.axis_neurons,
            fitting_sizes=self.system.fitting_sizes,
            neighbors_per_atom=self.system.neighbors_per_atom,
            machine=self.machine,
        )
        self.comm_model = CommCostModel(self.machine)
        self._position_cache: dict[int, tuple[np.ndarray, object]] = {}

    # -- helpers --------------------------------------------------------------
    def topology_for(self, n_nodes: int, config: OptimizationConfig) -> RankTopology:
        shapes = RankTopology.paper_topologies()
        if n_nodes in shapes:
            node_dims = shapes[n_nodes]
        else:
            edge = round(n_nodes ** (1.0 / 3.0))
            edge = max(edge, 1)
            node_dims = (edge, max(n_nodes // (edge * edge), 1), edge)
        return RankTopology(node_dims=node_dims, threads_per_rank=config.threads_per_rank)

    def _positions(self, n_atoms: int):
        if n_atoms not in self._position_cache:
            positions, box = self.system.build_positions(n_atoms, rng=self.rng_seed)
            self._position_cache[n_atoms] = (positions, box)
        return self._position_cache[n_atoms]

    # -- the central question ---------------------------------------------------
    def step_report(
        self,
        config: OptimizationConfig,
        n_nodes: int,
        n_atoms: int | None = None,
        atoms_per_core: float | None = None,
    ) -> StepReport:
        """Model one MD step for ``config`` on ``n_nodes`` nodes."""
        topology = self.topology_for(n_nodes, config)
        if n_atoms is None:
            if atoms_per_core is None:
                raise ValueError("give either n_atoms or atoms_per_core")
            n_atoms = self.system.atoms_for_cores(topology.n_cores, atoms_per_core)
        positions, box = self._positions(n_atoms)
        n_atoms = len(positions)

        decomposition = SpatialDecomposition(box, topology)
        balancer = IntraNodeLoadBalancer(decomposition)
        if config.load_balance:
            counts = balancer.rank_counts_with_balance(positions)
        else:
            counts = balancer.rank_counts_without_balance(positions)
        stats = DecompositionStats(counts)
        max_atoms_on_rank = stats.maximum

        # -- compute (pair) phase of the most loaded rank
        threading = ThreadingModel(config.threading, self.machine)
        compute_time = self.kernel_model.rank_compute_time(
            atoms_on_rank=max_atoms_on_rank,
            threads_per_rank=config.threads_per_rank,
            backend=config.gemm_backend,
            precision=config.precision,
            compressed=config.compressed_embedding,
            pretranspose=config.pretranspose,
            framework=config.use_framework,
            batched=config.batched_inference,
            threading_overhead=threading.per_step_overhead(),
        )

        # -- communication phase
        context = ExchangeContext(
            topology=topology,
            box=box,
            cutoff=self.system.cutoff,
            atom_density=self.system.atom_density,
            bytes_per_atom=self.machine.bytes_per_ghost_atom,
            bytes_per_force=self.machine.bytes_per_force,
        )
        scheme = build_scheme(config.comm_scheme)
        plan = scheme.plan(context)
        if not config.memory_pool and plan.registered_regions is None:
            plan.registered_regions = 2 * plan.n_messages
        comm_time = self.comm_model.exchange_time(plan)

        timeline = StepTimeline(timestep_fs=self.system.timestep_fs)
        timeline.add("pair", compute_time)
        timeline.add("comm", comm_time)
        timeline.notes = {
            "scheme": plan.scheme,
            "messages_per_step": plan.n_messages,
            "max_atoms_on_rank": max_atoms_on_rank,
            "load_balance": config.load_balance,
        }

        return StepReport(
            config_name=config.name,
            system=self.system.name,
            n_nodes=n_nodes,
            n_atoms=n_atoms,
            atoms_per_core=n_atoms / topology.n_cores,
            timeline=timeline,
            rank_count_stats=stats.summary(),
        )

    # -- sweeps -----------------------------------------------------------------
    def optimization_ladder(
        self,
        configs: list[OptimizationConfig],
        n_nodes: int,
        atoms_per_core: float,
    ) -> list[StepReport]:
        """Fig. 9: the same workload under a ladder of configurations."""
        reports = []
        n_atoms = None
        for config in configs:
            report = self.step_report(config, n_nodes, n_atoms=n_atoms, atoms_per_core=atoms_per_core)
            n_atoms = report.n_atoms  # keep the workload identical across bars
            reports.append(report)
        return reports

    def strong_scaling(
        self,
        config: OptimizationConfig,
        node_counts: list[int],
        n_atoms: int,
    ) -> list[StepReport]:
        """Fig. 11: a fixed system over increasing node counts."""
        return [self.step_report(config, n, n_atoms=n_atoms) for n in node_counts]
