"""Top-level engine: optimization configurations + the experiment harness.

:class:`OptimizationConfig` captures every toggle the paper evaluates
(communication scheme, framework removal, precision, GEMM backend, NT->NN
pre-transposition, intra-node load balance, threading runtime, RDMA memory
pool); :class:`DeepMDEngine` combines the benchmark system definitions, the
real domain decomposition and the performance model into per-step timelines
and ns/day figures; :mod:`experiments` exposes one function per table/figure
of the paper, which the ``benchmarks/`` directory drives.
"""

from .config import OptimizationConfig, FIG9_STAGES, baseline_config, optimized_config
from .systems import SystemSpec, copper_spec, water_spec
from .engine import DeepMDEngine, StepReport
from . import experiments

__all__ = [
    "OptimizationConfig",
    "FIG9_STAGES",
    "baseline_config",
    "optimized_config",
    "SystemSpec",
    "copper_spec",
    "water_spec",
    "DeepMDEngine",
    "StepReport",
    "experiments",
]
