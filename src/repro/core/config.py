"""Optimization configurations (the bars of Fig. 9, and the two endpoints).

Each configuration is a combination of the individual optimizations the paper
introduces; ``FIG9_STAGES`` lists them in the cumulative order of the
step-by-step computation study.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class OptimizationConfig:
    """One point in the optimization space.

    Attributes
    ----------
    name:
        label used in reports (matches the paper's bar labels where relevant).
    use_framework:
        run the Deep Potential through the NN framework (the TensorFlow
        stand-in) with its fixed per-session overhead and redundant kernels.
    precision:
        ``"double"``, ``"mix-fp32"`` or ``"mix-fp16"``.
    gemm_backend:
        ``"blas"`` or ``"sve"`` (hand-written tall-and-skinny kernel).
    pretranspose:
        convert the backward GEMM-NT products into GEMM-NN by pre-transposing
        parameter matrices.
    compressed_embedding:
        use the tabulated (compressed) embedding nets (both the baseline of
        Guo et al. and the optimized code enable this).
    batched_inference:
        evaluate all atoms of a thread as one batched call (the vectorized
        hot path); ``False`` models atom-at-a-time inference, where every
        fitting-net GEMM degenerates to M=1.
    comm_scheme:
        one of :data:`repro.parallel.schemes.SCHEME_NAMES`.
    load_balance:
        intra-node load balance (node-box atom split).
    threading:
        ``"openmp"`` or ``"threadpool"``.
    memory_pool:
        pool RDMA buffer registrations (avoids NIC-cache thrashing).
    ranks_per_node / threads_per_rank:
        process geometry (the paper uses 4 x 12 for the optimized code).
    """

    name: str
    use_framework: bool = False
    precision: str = "mix-fp16"
    gemm_backend: str = "sve"
    pretranspose: bool = True
    compressed_embedding: bool = True
    batched_inference: bool = True
    comm_scheme: str = "lb-4l"
    load_balance: bool = True
    threading: str = "threadpool"
    memory_pool: bool = True
    ranks_per_node: int = 4
    threads_per_rank: int = 12

    def __post_init__(self) -> None:
        if self.precision not in ("double", "mix-fp32", "mix-fp16"):
            raise ValueError(f"unknown precision {self.precision!r}")
        if self.gemm_backend not in ("blas", "sve"):
            raise ValueError(f"unknown GEMM backend {self.gemm_backend!r}")
        if self.threading not in ("openmp", "threadpool"):
            raise ValueError(f"unknown threading runtime {self.threading!r}")

    def derive(self, name: str, **changes) -> "OptimizationConfig":
        """A copy with some fields changed (used to build the stage ladder)."""
        return replace(self, name=name, **changes)


def baseline_config() -> OptimizationConfig:
    """The original DeePMD-kit configuration (Guo et al. 2022 on Fugaku)."""
    return OptimizationConfig(
        name="baseline",
        use_framework=True,
        precision="double",
        gemm_backend="blas",
        pretranspose=False,
        compressed_embedding=True,
        comm_scheme="baseline",
        load_balance=False,
        threading="openmp",
        memory_pool=False,
    )


def optimized_config() -> OptimizationConfig:
    """The fully optimized configuration (this paper)."""
    return OptimizationConfig(name="comm_lb")


def fig9_stage_configs() -> list[OptimizationConfig]:
    """The cumulative optimization ladder of Fig. 9."""
    base = baseline_config()
    rmtf = base.derive("rmtf-fp64", use_framework=False, pretranspose=True)
    blas32 = rmtf.derive("blas-fp32", precision="mix-fp32")
    sve32 = blas32.derive("sve-fp32", gemm_backend="sve")
    sve16 = sve32.derive("sve-fp16", precision="mix-fp16")
    comm_nolb = sve16.derive(
        "comm_nolb",
        comm_scheme="lb-4l",
        threading="threadpool",
        memory_pool=True,
        load_balance=False,
    )
    comm_lb = comm_nolb.derive("comm_lb", load_balance=True)
    return [base, rmtf, blas32, sve32, sve16, comm_nolb, comm_lb]


#: Stage names in the order of the Fig. 9 bars.
FIG9_STAGES = [cfg.name for cfg in fig9_stage_configs()]
