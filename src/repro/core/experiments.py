"""One entry point per table/figure of the paper's evaluation.

Every function returns plain data (:class:`~repro.utils.tables.Table` or
dictionaries) so it can be driven both by the ``benchmarks/`` harness (which
prints the rows the paper reports) and by the test-suite (which asserts the
qualitative claims: orderings, reductions, overlaps).

Physics experiments (Table II, Fig. 6) train a small Deep Potential on the
pseudo-AIMD water reference; performance experiments (Figs. 7-11, Tables I
and III) run the decomposition + machine model through
:class:`~repro.core.engine.DeepMDEngine`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis.errors import energy_error_per_atom, force_rmse, precision_error_table
from ..deepmd import (
    DeepPotential,
    DeepPotentialConfig,
    DeepPotentialForceField,
    GemmBackend,
    Trainer,
    generate_water_dataset,
)
from ..md import LangevinThermostat, Simulation, radial_distribution_function, water_system
from ..md.neighbor import build_neighbor_data
from ..md.rdf import RDFResult, rdf_overlap_error
from ..parallel.decomposition import SpatialDecomposition
from ..parallel.loadbalance import IntraNodeLoadBalancer
from ..parallel.memory_pool import RdmaBufferManager
from ..parallel.schemes import ExchangeContext, SCHEME_NAMES, build_scheme
from ..parallel.topology import RankTopology
from ..perfmodel.comm_cost import CommCostModel
from ..perfmodel.strongscaling import parallel_efficiency
from ..perfmodel.kernels import KernelCostModel
from ..utils.tables import Table
from .config import baseline_config, fig9_stage_configs, optimized_config
from .engine import DeepMDEngine
from .systems import copper_spec, get_system, water_spec

# ---------------------------------------------------------------------------
# Table I — survey of NNMD package performance
# ---------------------------------------------------------------------------

#: Literature rows of Table I (work, year, potential, system, atoms, resources, ns/day).
TABLE1_LITERATURE = [
    ("Simple-NN", 2019, "BP", "SiO2", 14_000, "80 CPU cores", None),
    ("Singraber et al.", 2019, "BP", "H2O", 8_400, "512 CPU cores (VSC)", 1.25),
    ("SNAP ML-IAP", 2021, "SNAP", "C", 1_000_000_000, "204.6K cores + 27.3K GPUs (Summit)", 1.03),
    ("Allegro", 2023, "Allegro", "Li3PO4", 420_000, "64 A100", 15.5),
    ("Allegro", 2023, "Allegro", "Ag", 1_000_000, "128 A100", 49.4),
    ("DeePMD-kit (baseline)", 2022, "DP", "Cu", 13_500_000, "204.6K cores + 27.3K GPUs (Summit)", 11.2),
    ("DeePMD-kit (baseline)", 2022, "DP", "Cu", 2_100_000, "218.8K cores (Fugaku)", 4.7),
]


def table1_packages(n_nodes: int = 12_000) -> Table:
    """Table I: literature values plus this work's modelled rows."""
    table = Table(
        headers=["Work", "Year", "Pot", "System", "#atoms", "Resources", "ns/day"],
        title="Table I — performance of typical NNMD packages",
    )
    for row in TABLE1_LITERATURE:
        work, year, pot, system, atoms, resources, nsday = row
        table.add_row(work, year, pot, system, atoms, resources, nsday if nsday is not None else "unknown")

    config = optimized_config()
    for system_name, n_atoms in (("copper", 540_000), ("water", 558_000)):
        spec = get_system(system_name)
        engine = DeepMDEngine(spec)
        report = engine.step_report(config, n_nodes=n_nodes, n_atoms=n_atoms)
        table.add_row(
            "This work (model)",
            2024,
            "DP",
            "Cu" if system_name == "copper" else "H2O",
            report.n_atoms,
            f"{n_nodes * 48 / 1000:.0f}K cores (Fugaku, modelled)",
            round(report.ns_day, 1),
        )
    return table


# ---------------------------------------------------------------------------
# Table II + Fig. 6 — accuracy under mixed precision
# ---------------------------------------------------------------------------

@dataclass
class TrainedWaterModel:
    """A small Deep Potential trained on the pseudo-AIMD water reference."""

    model: DeepPotential
    dataset: object
    training_result: object


def train_water_model(
    n_molecules: int = 32,
    n_frames: int = 12,
    n_epochs: int = 60,
    embedding_sizes: tuple[int, ...] = (8, 16),
    axis_neurons: int = 4,
    fitting_sizes: tuple[int, ...] = (32, 32),
    cutoff: float = 4.5,
    seed: int = 7,
) -> TrainedWaterModel:
    """Train a small water Deep Potential (shared by Table II and Fig. 6).

    The network is far smaller than the paper's (240-wide fitting net) so the
    pure-Python training finishes in seconds; the precision comparison only
    needs *a* trained model, not a converged production model.
    """
    dataset = generate_water_dataset(n_frames=n_frames, n_molecules=n_molecules, cutoff=cutoff, rng=seed)
    config = DeepPotentialConfig(
        type_names=("O", "H"),
        cutoff=cutoff,
        cutoff_smooth=cutoff - 1.0,
        embedding_sizes=embedding_sizes,
        axis_neurons=axis_neurons,
        fitting_sizes=fitting_sizes,
        max_neighbors=64,
        seed=seed,
    )
    model = DeepPotential(config)
    trainer = Trainer(model, dataset, learning_rate=4.0e-3, rng=seed)
    result = trainer.train(n_epochs=n_epochs)
    return TrainedWaterModel(model=model, dataset=dataset, training_result=result)


def table2_precision(trained: TrainedWaterModel | None = None) -> Table:
    """Table II: single-step energy/force error vs the reference per precision."""
    trained = trained or train_water_model()
    model = trained.model
    frame = trained.dataset.frames[0]
    neighbors = build_neighbor_data(frame.atoms.positions, frame.box, model.config.cutoff)

    results: dict[str, dict[str, float]] = {}
    for label, precision in (("Double", "double"), ("MIX-fp32", "mix-fp32"), ("MIX-fp16", "mix-fp16")):
        backend = GemmBackend(kind="sve" if precision != "double" else "blas")
        output = model.evaluate(frame.atoms, frame.box, neighbors, precision=precision, backend=backend)
        results[label] = {
            "energy": energy_error_per_atom(output.energy, frame.energy, len(frame.atoms)),
            "force": force_rmse(output.forces, frame.forces),
        }
    return precision_error_table(results)


def fig6_rdf(
    trained: TrainedWaterModel | None = None,
    n_molecules: int = 32,
    n_steps: int = 120,
    temperature: float = 330.0,
    seed: int = 11,
) -> dict[str, dict[str, RDFResult]]:
    """Fig. 6: water RDFs under double / MIX-fp32 / MIX-fp16.

    Returns ``{precision: {"OO"/"OH"/"HH": RDFResult}}``.  The claim being
    reproduced is that the three precision curves overlap; see
    :func:`fig6_overlap_errors`.
    """
    trained = trained or train_water_model(n_molecules=n_molecules)
    model = trained.model
    curves: dict[str, dict[str, RDFResult]] = {}
    for precision in ("double", "mix-fp32", "mix-fp16"):
        atoms, box, _topology = water_system(n_molecules, rng=seed)
        atoms.initialize_velocities(temperature, rng=seed)
        force_field = DeepPotentialForceField(model, precision=precision)
        # The skin must keep cutoff+skin below the minimum-image limit of the
        # (small) example box.
        skin = max(0.1, min(1.0, box.max_cutoff() - model.config.cutoff - 0.05))
        simulation = Simulation(
            atoms,
            box,
            force_field,
            timestep_fs=0.5,
            neighbor_skin=skin,
            thermostat=LangevinThermostat(temperature, damping_fs=25.0, rng=seed),
        )
        simulation.run(n_steps, trajectory_every=max(n_steps // 20, 1))
        frames = simulation.trajectory
        pairs = {"OO": (0, 0), "OH": (0, 1), "HH": (1, 1)}
        r_max = min(6.0, box.max_cutoff())
        curves[precision] = {
            label: radial_distribution_function(frames, box, atoms.types, a, b, r_max=r_max, n_bins=60)
            for label, (a, b) in pairs.items()
        }
    return curves


def fig6_overlap_errors(curves: dict[str, dict[str, RDFResult]]) -> dict[str, float]:
    """Mean |g_double - g_reduced| for each reduced precision and pair."""
    errors: dict[str, float] = {}
    for precision in ("mix-fp32", "mix-fp16"):
        for pair in ("OO", "OH", "HH"):
            errors[f"{precision}:{pair}"] = rdf_overlap_error(
                curves["double"][pair], curves[precision][pair]
            )
    return errors


# ---------------------------------------------------------------------------
# Fig. 7 — step-by-step communication optimization
# ---------------------------------------------------------------------------

def fig7_comm_schemes(
    node_dims: tuple[int, int, int] = (4, 6, 4),
    cutoffs: tuple[float, ...] = (8.0, 10.0),
    subbox_factors: tuple[tuple[float, float, float], ...] = ((1, 1, 1), (0.5, 0.5, 1), (0.5, 0.5, 0.5)),
    atom_density: float | None = None,
) -> Table:
    """Fig. 7: modelled ghost-exchange time per scheme and configuration."""
    density = atom_density if atom_density is not None else copper_spec().atom_density
    topology = RankTopology(node_dims)
    cost = CommCostModel()
    table = Table(
        headers=["cutoff", "sub-box (r_cut units)", "scheme", "time [us]", "relative to baseline"],
        title="Fig. 7 — step-by-step communication optimization (96 nodes)",
    )
    for cutoff in cutoffs:
        for factors in subbox_factors:
            context = ExchangeContext.from_subbox_factors(topology, cutoff, factors, density)
            times = {
                name: cost.exchange_time(build_scheme(name).plan(context)) for name in SCHEME_NAMES
            }
            base = times["baseline"]
            for name in SCHEME_NAMES:
                table.add_row(cutoff, str(tuple(factors)), name, times[name] * 1.0e6, times[name] / base)
    return table


def communication_reduction(node_dims=(4, 6, 4), cutoff: float = 8.0, factors=(0.5, 0.5, 0.5)) -> float:
    """The headline claim: fraction of communication time removed by lb-4l."""
    topology = RankTopology(node_dims)
    context = ExchangeContext.from_subbox_factors(topology, cutoff, factors, copper_spec().atom_density)
    cost = CommCostModel()
    base = cost.exchange_time(build_scheme("baseline").plan(context))
    optimized = cost.exchange_time(build_scheme("lb-4l").plan(context))
    return 1.0 - optimized / base


# ---------------------------------------------------------------------------
# Fig. 8 — RDMA memory pool vs per-neighbour registration
# ---------------------------------------------------------------------------

def fig8_memory_pool(
    neighbor_counts: tuple[int, ...] = (26, 44, 60, 80, 100, 124),
    iterations: int = 10_000,
    payload_bytes: int = 8,
) -> Table:
    """Fig. 8: communication time over ``iterations`` tiny messages per neighbour."""
    cost = CommCostModel()
    table = Table(
        headers=["neighbors", "buffers", "registered regions", "time [s]", "time per message [us]"],
        title="Fig. 8 — RDMA memory pool vs per-neighbour registration",
    )
    for pooled in (True, False):
        label = "buf_pool" if pooled else "no_buf_pool"
        for n_neighbors in neighbor_counts:
            manager = RdmaBufferManager(pooled=pooled)
            manager.allocate_for_neighbors(n_neighbors, payload_bytes)
            penalty = manager.per_message_penalty(cost.nic_cache)
            per_message = cost.network.occupancy(payload_bytes, use_rdma=True, registration_penalty=penalty)
            # Messages to the neighbours are issued in turn on the 6 TNIs.
            per_iteration = cost.tni.makespan([per_message] * n_neighbors) + cost.network.latency(1)
            total = per_iteration * iterations
            table.add_row(n_neighbors, label, manager.registered_regions, total, per_message * 1.0e6)
    return table


# ---------------------------------------------------------------------------
# Fig. 9 — step-by-step computation optimization
# ---------------------------------------------------------------------------

def fig9_computation(
    systems: tuple[str, ...] = ("copper", "water"),
    atoms_per_core: tuple[int, ...] = (1, 2, 8),
    n_nodes: int = 96,
) -> Table:
    """Fig. 9: ns/day per optimization stage, system and atoms-per-core."""
    table = Table(
        headers=["system", "atoms/core", "stage", "ns/day", "speedup vs baseline", "step time [ms]"],
        title="Fig. 9 — step-by-step computation optimization (96 nodes)",
    )
    configs = fig9_stage_configs()
    for system_name in systems:
        engine = DeepMDEngine(get_system(system_name))
        for apc in atoms_per_core:
            reports = engine.optimization_ladder(configs, n_nodes=n_nodes, atoms_per_core=apc)
            base = reports[0].ns_day
            for report in reports:
                table.add_row(
                    system_name,
                    apc,
                    report.config_name,
                    report.ns_day,
                    report.ns_day / base,
                    report.step_time_ms,
                )
    return table


def computation_speedup(system_name: str = "copper", atoms_per_core: int = 1, n_nodes: int = 96) -> float:
    """The 14.11x-style compute claim: sve-fp16 stage over baseline (same comm)."""
    engine = DeepMDEngine(get_system(system_name))
    configs = fig9_stage_configs()
    reports = engine.optimization_ladder(configs, n_nodes=n_nodes, atoms_per_core=atoms_per_core)
    by_name = {r.config_name: r for r in reports}
    return by_name["sve-fp16"].ns_day / by_name["baseline"].ns_day


# ---------------------------------------------------------------------------
# Fig. 10 + Table III — intra-node load balance
# ---------------------------------------------------------------------------

def table3_loadbalance(
    system_name: str = "water",
    atoms_per_core: tuple[int, ...] = (1, 2, 8),
    n_nodes: int = 96,
    seed: int = 5,
) -> Table:
    """Table III: pair time and atom numbers across MPI ranks, lb vs nolb."""
    spec = get_system(system_name)
    engine = DeepMDEngine(spec)
    kernel = KernelCostModel(
        embedding_sizes=spec.embedding_sizes,
        axis_neurons=spec.axis_neurons,
        fitting_sizes=spec.fitting_sizes,
        neighbors_per_atom=spec.neighbors_per_atom,
    )
    per_atom_time = kernel.per_atom_time(atoms_per_thread=1, backend="sve", precision="mix-fp16")
    config = optimized_config()
    table = Table(
        headers=["case", "lb", "metric", "min", "avg", "max", "SDMR%"],
        title=f"Table III — pair time and atom numbers across MPI ranks ({system_name})",
    )
    for apc in atoms_per_core:
        topology = engine.topology_for(n_nodes, config)
        n_atoms = spec.atoms_for_cores(topology.n_cores, apc)
        positions, box = spec.build_positions(n_atoms, rng=seed)
        decomposition = SpatialDecomposition(box, topology)
        balancer = IntraNodeLoadBalancer(decomposition)
        comparison = balancer.compare(positions, per_atom_time, rng=seed)
        for lb_label in ("no", "yes"):
            stats = comparison[lb_label]
            atom_stats = stats.atom_stats().summary()
            pair_stats = stats.pair_time_stats()
            # Pair times reported in the paper's unit of 0.01 s.
            scale = 100.0
            table.add_row(
                f"{apc} atom/core",
                lb_label,
                "pair",
                pair_stats["min"] * scale,
                pair_stats["avg"] * scale,
                pair_stats["max"] * scale,
                pair_stats["sdmr%"],
            )
            table.add_row(
                f"{apc} atom/core",
                lb_label,
                "natom",
                atom_stats["min"],
                atom_stats["avg"],
                atom_stats["max"],
                atom_stats["sdmr%"],
            )
    return table


def fig10_pair_time_distribution(
    system_name: str = "copper",
    atoms_per_core: tuple[int, ...] = (1, 2, 8),
    n_nodes: int = 96,
    seed: int = 5,
) -> dict[str, np.ndarray]:
    """Fig. 10: the per-rank pair-time distributions with and without balance."""
    spec = get_system(system_name)
    engine = DeepMDEngine(spec)
    kernel = KernelCostModel(
        embedding_sizes=spec.embedding_sizes,
        axis_neurons=spec.axis_neurons,
        fitting_sizes=spec.fitting_sizes,
        neighbors_per_atom=spec.neighbors_per_atom,
    )
    per_atom_time = kernel.per_atom_time(atoms_per_thread=1, backend="sve", precision="mix-fp16")
    config = optimized_config()
    distributions: dict[str, np.ndarray] = {}
    for apc in atoms_per_core:
        topology = engine.topology_for(n_nodes, config)
        n_atoms = spec.atoms_for_cores(topology.n_cores, apc)
        positions, _box = spec.build_positions(n_atoms, rng=seed)
        decomposition = SpatialDecomposition(engine._positions(n_atoms)[1], topology)
        balancer = IntraNodeLoadBalancer(decomposition)
        comparison = balancer.compare(positions, per_atom_time, rng=seed)
        distributions[f"{apc}-nolb"] = comparison["no"].pair_times
        distributions[f"{apc}-lb"] = comparison["yes"].pair_times
    return distributions


def dispersion_reduction(system_name: str = "copper", atoms_per_core: int = 1, n_nodes: int = 96, seed: int = 5) -> float:
    """The 79.7 % claim: reduction of the atom-count SDMR by the load balance."""
    spec = get_system(system_name)
    engine = DeepMDEngine(spec)
    config = optimized_config()
    topology = engine.topology_for(n_nodes, config)
    n_atoms = spec.atoms_for_cores(topology.n_cores, atoms_per_core)
    positions, box = spec.build_positions(n_atoms, rng=seed)
    decomposition = SpatialDecomposition(box, topology)
    return IntraNodeLoadBalancer(decomposition).dispersion_reduction(positions)


# ---------------------------------------------------------------------------
# Fig. 11 — strong scaling
# ---------------------------------------------------------------------------

#: Node counts of the paper's strong-scaling study.
FIG11_NODE_COUNTS = [768, 2160, 4608, 6144, 12000]


def fig11_strong_scaling(
    systems: tuple[str, ...] = ("copper", "water"),
    node_counts: list[int] | None = None,
) -> Table:
    """Fig. 11: ns/day and parallel efficiency from 768 to 12,000 nodes."""
    node_counts = node_counts or FIG11_NODE_COUNTS
    config = optimized_config()
    table = Table(
        headers=["system", "nodes", "n_atoms", "atoms/core", "ns/day", "parallel efficiency %"],
        title="Fig. 11 — strong scaling of the optimized code",
    )
    for system_name in systems:
        spec = get_system(system_name)
        engine = DeepMDEngine(spec)
        n_atoms = 540_000 if system_name == "copper" else 558_000
        reports = engine.strong_scaling(config, node_counts, n_atoms=n_atoms)
        efficiencies = parallel_efficiency([r.ns_day for r in reports], node_counts)
        for report, eff in zip(reports, efficiencies):
            table.add_row(
                system_name,
                report.n_nodes,
                report.n_atoms,
                round(report.atoms_per_core, 3),
                report.ns_day,
                100.0 * eff,
            )
    return table


def end_to_end_speedup(system_name: str = "copper", n_nodes: int = 12_000, n_atoms: int = 540_000) -> float:
    """The 31.7x claim: optimized vs baseline configuration at full scale."""
    engine = DeepMDEngine(get_system(system_name))
    optimized = engine.step_report(optimized_config(), n_nodes, n_atoms=n_atoms)
    baseline = engine.step_report(baseline_config(), n_nodes, n_atoms=n_atoms)
    return optimized.ns_day / baseline.ns_day


# ---------------------------------------------------------------------------
# Claims summary (abstract-level numbers)
# ---------------------------------------------------------------------------

def claims_summary() -> dict[str, float]:
    """The abstract's headline claims, re-derived from the model."""
    copper_engine = DeepMDEngine(copper_spec())
    water_engine = DeepMDEngine(water_spec())
    optimized = optimized_config()
    copper_12k = copper_engine.step_report(optimized, 12_000, n_atoms=540_000)
    water_12k = water_engine.step_report(optimized, 12_000, n_atoms=558_000)
    return {
        "communication_reduction_fraction": communication_reduction(),
        "computation_speedup": computation_speedup(),
        "load_balance_dispersion_reduction": dispersion_reduction(),
        "end_to_end_speedup": end_to_end_speedup(),
        "copper_ns_day_12000_nodes": copper_12k.ns_day,
        "water_ns_day_12000_nodes": water_12k.ns_day,
    }
