"""Benchmark system definitions (the copper and water systems of the paper).

A :class:`SystemSpec` carries the physical parameters the performance model
needs (density, cutoff, neighbour count, time-step, Deep Potential sizes) and
can synthesize real atomic coordinates at any size for the decomposition /
load-balance studies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..md.box import Box
from ..md.lattice import cells_for_atom_count, fcc_lattice
from ..units import CU_LATTICE_CONSTANT, WATER_DENSITY, AVOGADRO, MASSES
from ..utils.rng import default_rng


@dataclass(frozen=True)
class SystemSpec:
    """Physical and model parameters of one benchmark system."""

    name: str
    timestep_fs: float
    cutoff: float
    cutoff_smooth: float
    atom_density: float  # atoms per cubic angstrom
    neighbors_per_atom: int
    embedding_sizes: tuple[int, ...] = (25, 50, 100)
    axis_neurons: int = 16
    fitting_sizes: tuple[int, ...] = (240, 240, 240)
    type_names: tuple[str, ...] = ("X",)

    def box_for_atoms(self, n_atoms: int) -> Box:
        """A cubic box holding ``n_atoms`` at the system's density."""
        if n_atoms <= 0:
            raise ValueError("atom count must be positive")
        edge = (n_atoms / self.atom_density) ** (1.0 / 3.0)
        return Box.cubic(edge)

    # -- coordinate synthesis --------------------------------------------------
    def build_positions(self, n_atoms: int, rng=None) -> tuple[np.ndarray, Box]:
        """Synthesize realistic coordinates with about ``n_atoms`` atoms.

        Copper: an exact FCC supercell (the actual benchmark structure).
        Water: molecules on a jittered grid at the experimental density with
        the three atoms of each molecule placed around the oxygen — enough
        realism for binning/load-balance statistics at half-million-atom
        scale without the cost of building full random orientations.
        """
        rng = default_rng(rng)
        if self.name == "copper":
            cells = cells_for_atom_count(n_atoms)
            atoms, box = fcc_lattice(cells, CU_LATTICE_CONSTANT, "Cu", perturbation=0.03, rng=rng)
            return atoms.positions, box
        if self.name == "water":
            n_molecules = max(1, int(round(n_atoms / 3)))
            mass_g = n_molecules * (MASSES["O"] + 2 * MASSES["H"]) / AVOGADRO
            edge = (mass_g / WATER_DENSITY * 1.0e24) ** (1.0 / 3.0)
            box = Box.cubic(edge)
            grid = int(np.ceil(n_molecules ** (1.0 / 3.0)))
            spacing = edge / grid
            idx = np.arange(grid ** 3)[:n_molecules]
            cells = np.stack([idx // (grid * grid), (idx // grid) % grid, idx % grid], axis=1)
            centers = (cells + 0.5) * spacing + rng.normal(scale=0.15, size=(n_molecules, 3))
            offsets = rng.normal(scale=0.6, size=(n_molecules, 2, 3))
            positions = np.concatenate(
                [centers[:, None, :], centers[:, None, :] + offsets], axis=1
            ).reshape(-1, 3)
            return box.wrap(positions), box
        raise KeyError(f"unknown system {self.name!r}")

    def atoms_for_cores(self, n_cores: int, atoms_per_core: float) -> int:
        return int(round(n_cores * atoms_per_core))


def copper_spec() -> SystemSpec:
    """The 8 A-cutoff copper benchmark (512 neighbours, 1 fs time-step)."""
    return SystemSpec(
        name="copper",
        timestep_fs=1.0,
        cutoff=8.0,
        cutoff_smooth=0.5,
        atom_density=4.0 / CU_LATTICE_CONSTANT ** 3,
        neighbors_per_atom=512,
        type_names=("Cu",),
    )


def water_spec() -> SystemSpec:
    """The 6 A-cutoff water benchmark (46/92 neighbours, 0.5 fs time-step)."""
    molecules_per_a3 = WATER_DENSITY / (MASSES["O"] + 2 * MASSES["H"]) * AVOGADRO * 1.0e-24
    return SystemSpec(
        name="water",
        timestep_fs=0.5,
        cutoff=6.0,
        cutoff_smooth=0.5,
        atom_density=3.0 * molecules_per_a3,
        # average padded neighbour count over 2 H (46) + 1 O (92) per molecule
        neighbors_per_atom=61,
        type_names=("O", "H"),
    )


SYSTEMS: dict[str, SystemSpec] = {}


def get_system(name: str) -> SystemSpec:
    """Resolve a benchmark system by name ("copper" or "water")."""
    if name == "copper":
        return copper_spec()
    if name == "water":
        return water_spec()
    raise KeyError(f"unknown system {name!r}; available: copper, water")
