"""Orthorhombic periodic simulation cell."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Box:
    """An orthorhombic box with optional periodicity per axis.

    Lengths are in angstrom.  The box origin is at zero: fractional
    coordinates are ``positions / lengths``.
    """

    lengths: np.ndarray
    periodic: tuple[bool, bool, bool] = (True, True, True)

    def __post_init__(self) -> None:
        lengths = np.asarray(self.lengths, dtype=np.float64).reshape(3)
        if np.any(lengths <= 0.0):
            raise ValueError("box lengths must be positive")
        object.__setattr__(self, "lengths", lengths)
        object.__setattr__(self, "periodic", tuple(bool(p) for p in self.periodic))

    @staticmethod
    def cubic(length: float, periodic: bool = True) -> "Box":
        return Box(np.full(3, float(length)), (periodic,) * 3)

    @staticmethod
    def orthorhombic(lx: float, ly: float, lz: float) -> "Box":
        return Box(np.array([lx, ly, lz], dtype=np.float64))

    @property
    def volume(self) -> float:
        return float(np.prod(self.lengths))

    def wrap(self, positions: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Wrap positions back into the primary cell (periodic axes only).

        With ``out`` (which may alias ``positions``) the result is written in
        place instead of into a fresh copy; the arithmetic is identical.
        """
        positions = np.asarray(positions, dtype=np.float64)
        if out is None:
            wrapped = positions.copy()
        else:
            wrapped = out
            if wrapped is not positions:
                np.copyto(wrapped, positions)
        for axis in range(3):
            if self.periodic[axis]:
                length = self.lengths[axis]
                values = np.mod(wrapped[..., axis], length)
                # np.mod can return exactly `length` for tiny negative inputs;
                # fold that edge case back to 0 so results stay in [0, length).
                values = np.where(values >= length, values - length, values)
                wrapped[..., axis] = values
        return wrapped

    def minimum_image(self, displacements: np.ndarray) -> np.ndarray:
        """Apply the minimum-image convention to displacement vectors."""
        displacements = np.asarray(displacements, dtype=np.float64)
        result = displacements.copy()
        for axis in range(3):
            if self.periodic[axis]:
                length = self.lengths[axis]
                result[..., axis] -= length * np.round(result[..., axis] / length)
        return result

    def distance(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Minimum-image distances between position arrays ``a`` and ``b``."""
        delta = self.minimum_image(np.asarray(a) - np.asarray(b))
        return np.linalg.norm(delta, axis=-1)

    def fractional(self, positions: np.ndarray) -> np.ndarray:
        return np.asarray(positions, dtype=np.float64) / self.lengths

    def cartesian(self, fractional: np.ndarray) -> np.ndarray:
        return np.asarray(fractional, dtype=np.float64) * self.lengths

    def replicate(self, nx: int, ny: int, nz: int) -> "Box":
        """Return the box of an ``nx x ny x nz`` supercell."""
        if min(nx, ny, nz) < 1:
            raise ValueError("replication factors must be >= 1")
        return Box(self.lengths * np.array([nx, ny, nz]), self.periodic)

    def max_cutoff(self) -> float:
        """Largest cutoff compatible with the minimum-image convention."""
        periodic_lengths = [
            self.lengths[i] for i in range(3) if self.periodic[i]
        ]
        if not periodic_lengths:
            return np.inf
        return 0.5 * float(min(periodic_lengths))
