"""Radial distribution functions (Fig. 6 of the paper).

The paper characterizes the water structure with the O-O, O-H and H-H radial
distribution functions and shows that the three precision modes produce
overlapping curves.  ``partial_rdf`` computes g_ab(r) between two species for
one configuration; ``radial_distribution_function`` averages over a trajectory
of configurations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .atoms import Atoms
from .box import Box
from .neighbor import BRUTE_FORCE_THRESHOLD, _brute_force_pairs, _cell_list_pairs


@dataclass
class RDFResult:
    """Binned g(r): bin centres (A) and the normalized distribution."""

    r: np.ndarray
    g: np.ndarray
    pair: tuple[int, int]

    def first_peak(self) -> tuple[float, float]:
        """Location and height of the first maximum (a common sanity check)."""
        if len(self.g) == 0:
            return 0.0, 0.0
        idx = int(np.argmax(self.g))
        return float(self.r[idx]), float(self.g[idx])


def _pair_distances_dense(
    positions_a: np.ndarray, positions_b: np.ndarray, box: Box, same: bool
) -> np.ndarray:
    """Golden O(N^2)-memory reference: the dense displacement tensor.

    Materializes the full ``(N_a, N_b, 3)`` tensor, which falls over at
    production sizes — kept un-optimized purely as the reference the binned
    :func:`_pair_distances` is parity-pinned against
    (``tests/test_md_dynamics.py``).  Do not use on large systems.
    """
    delta = positions_a[:, None, :] - positions_b[None, :, :]
    delta = box.minimum_image(delta)
    dist = np.sqrt(np.einsum("ijk,ijk->ij", delta, delta))
    if same:
        iu, ju = np.triu_indices(len(positions_a), k=1)
        return dist[iu, ju]
    return dist.ravel()


def _pairs_within(positions: np.ndarray, box: Box, r_max: float) -> tuple[np.ndarray, np.ndarray]:
    """All i<j pairs within ``r_max``, via the vectorized binned search."""
    if len(positions) <= BRUTE_FORCE_THRESHOLD:
        return _brute_force_pairs(positions, box, r_max)
    return _cell_list_pairs(positions, box, r_max)


def _pair_distances(
    positions_a: np.ndarray,
    positions_b: np.ndarray,
    box: Box,
    same: bool,
    r_max: float,
) -> np.ndarray:
    """Distances of every unordered A-B pair within ``r_max``.

    Memory scales with the pair count inside ``r_max``, not N^2: pair finding
    runs through the binned neighbour search (``md.neighbor._cell_list_pairs``)
    — cross-species pairs are filtered from a search over the stacked
    positions.  Each surviving distance is computed with exactly the
    arithmetic of the dense reference, so histograms agree bin-for-bin.
    """
    if same:
        pi, pj = _pairs_within(positions_a, box, r_max)
        delta = positions_a[pi] - positions_a[pj]
    else:
        stacked = np.concatenate([positions_a, positions_b], axis=0)
        pi, pj = _pairs_within(stacked, box, r_max)
        n_a = len(positions_a)
        cross = (pi < n_a) != (pj < n_a)
        pi, pj = pi[cross], pj[cross]
        # i<j ordering puts the A member first, matching a[i] - b[j]
        delta = stacked[pi] - stacked[pj]
    delta = box.minimum_image(delta)
    return np.sqrt(np.einsum("ij,ij->i", delta, delta))


def partial_rdf(
    atoms: Atoms,
    box: Box,
    type_a: int,
    type_b: int,
    r_max: float = 6.0,
    n_bins: int = 120,
) -> RDFResult:
    """g_ab(r) of a single configuration."""
    if r_max <= 0:
        raise ValueError("r_max must be positive")
    if r_max > box.max_cutoff():
        r_max = box.max_cutoff()
    pos_a = atoms.positions[atoms.types == type_a]
    pos_b = atoms.positions[atoms.types == type_b]
    n_a, n_b = len(pos_a), len(pos_b)
    edges = np.linspace(0.0, r_max, n_bins + 1)
    centers = 0.5 * (edges[:-1] + edges[1:])
    if n_a == 0 or n_b == 0 or (type_a == type_b and n_a < 2):
        return RDFResult(centers, np.zeros(n_bins), (type_a, type_b))

    same = type_a == type_b
    distances = _pair_distances(pos_a, pos_b, box, same, r_max)
    distances = distances[distances > 1.0e-9]
    hist, _ = np.histogram(distances, bins=edges)
    hist = hist.astype(np.float64)
    if same:
        hist *= 2.0  # each unordered pair counted once above
        n_pairs_density = n_a * (n_b - 1)
    else:
        n_pairs_density = n_a * n_b

    shell_volumes = 4.0 / 3.0 * np.pi * (edges[1:] ** 3 - edges[:-1] ** 3)
    ideal_counts = n_pairs_density * shell_volumes / box.volume
    g = np.divide(hist, ideal_counts, out=np.zeros_like(hist), where=ideal_counts > 0)
    return RDFResult(centers, g, (type_a, type_b))


def radial_distribution_function(
    frames: list[Atoms] | list[np.ndarray],
    box: Box,
    types: np.ndarray | None,
    type_a: int,
    type_b: int,
    r_max: float = 6.0,
    n_bins: int = 120,
) -> RDFResult:
    """Trajectory-averaged g_ab(r).

    ``frames`` may be a list of :class:`Atoms` or of position arrays (in which
    case ``types`` must give the shared type assignment).
    """
    if not frames:
        raise ValueError("need at least one frame")
    accumulated = None
    centers = None
    for frame in frames:
        if isinstance(frame, Atoms):
            snapshot = frame
        else:
            if types is None:
                raise ValueError("types must be provided with raw position frames")
            snapshot = Atoms(
                positions=np.asarray(frame),
                types=np.asarray(types),
                masses=np.ones(len(frame)),
            )
        result = partial_rdf(snapshot, box, type_a, type_b, r_max, n_bins)
        if accumulated is None:
            accumulated = result.g
            centers = result.r
        else:
            accumulated = accumulated + result.g
    assert accumulated is not None and centers is not None
    return RDFResult(centers, accumulated / len(frames), (type_a, type_b))


def rdf_overlap_error(a: RDFResult, b: RDFResult) -> float:
    """Mean absolute difference between two RDFs (0 = identical curves).

    Used to quantify the "three curves overlap" statement of Fig. 6.
    """
    if len(a.g) != len(b.g):
        raise ValueError("RDFs must share binning")
    return float(np.mean(np.abs(a.g - b.g)))
