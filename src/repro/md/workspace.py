"""Preallocated per-step scratch buffers for the MD run loop.

This is the *real* counterpart to the modelled registered-buffer pool of
:mod:`repro.parallel.memory_pool`: where that module prices what pooled RDMA
buffers save on the NIC, this one actually removes the per-step allocation
churn from the hot loop.  A :class:`Workspace` hands out named, shape-stable
NumPy buffers that survive across steps, so a steady-state MD step (no
neighbour rebuild, no migration) performs near-zero fresh ``np.zeros`` /
``np.empty`` allocations.

Two kinds of buffers are provided:

* :meth:`Workspace.buffer` / :meth:`Workspace.zeros` — exact-shape buffers
  for per-atom quantities (forces, per-atom energies, densities).  The shape
  is stable between neighbour rebuilds/migrations; a shape change simply
  reallocates (a *miss*).
* :meth:`Workspace.capacity` — grow-only buffers for per-pair quantities,
  whose length varies slightly between rebuilds; the buffer keeps its largest
  capacity and returns a leading view.

Consumers opt in by passing ``workspace=`` to :meth:`ForceField.compute`
(see :mod:`repro.md.forcefields.base`); with ``workspace=None`` every force
field runs its original allocating code path unchanged, which doubles as the
reference the workspace paths are parity-pinned against
(``tests/test_stepping_core.py``) and the baseline
``benchmarks/bench_run_loop.py`` measures the steps/sec win over.

Scatter-accumulation helpers live here too: :func:`scatter_add_vectors` and
:func:`scatter_add_scalars` replace ``np.ufunc.at`` (a per-element scalar
loop, ~4x slower at MD pair counts) with per-component ``np.bincount`` sums.
The summation *order* differs from ``np.add.at`` only in that subtracted
contributions are reduced separately before one vector subtraction, so
results agree with the reference paths to a few ULPs (~1e-14 at force scale),
well inside the 1e-10 cross-rank parity budget.
"""

from __future__ import annotations

import numpy as np

from .box import Box

__all__ = [
    "Workspace",
    "ScopedWorkspace",
    "scatter_add_vectors",
    "scatter_add_scalars",
    "minimum_image_into",
]


class Workspace:
    """A pool of named, reusable scratch arrays.

    Buffers are keyed by name; a request whose shape/dtype matches the cached
    buffer is a *hit* (no allocation), anything else is a *miss* (the buffer
    is reallocated).  The hit/miss counters let tests assert that steady-state
    steps run entirely out of the pool.
    """

    def __init__(self) -> None:
        self._arrays: dict[str, np.ndarray] = {}
        self._capacities: dict[str, np.ndarray] = {}
        self.hits = 0
        self.misses = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        n_bytes = sum(a.nbytes for a in self._arrays.values())
        n_bytes += sum(a.nbytes for a in self._capacities.values())
        return (
            f"Workspace({len(self._arrays) + len(self._capacities)} buffers, "
            f"{n_bytes / 1024.0:.1f} KiB, hits={self.hits}, misses={self.misses})"
        )

    # -- exact-shape buffers ---------------------------------------------------
    def buffer(self, name: str, shape, dtype=np.float64) -> np.ndarray:
        """An uninitialized buffer of exactly ``shape`` (contents arbitrary)."""
        shape = (int(shape),) if np.isscalar(shape) else tuple(int(s) for s in shape)
        array = self._arrays.get(name)
        if array is None or array.shape != shape or array.dtype != np.dtype(dtype):
            array = np.empty(shape, dtype=dtype)
            self._arrays[name] = array
            self.misses += 1
        else:
            self.hits += 1
        return array

    def zeros(self, name: str, shape, dtype=np.float64) -> np.ndarray:
        """Like :meth:`buffer` but zero-filled on every request."""
        array = self.buffer(name, shape, dtype)
        array.fill(0)
        return array

    def adopt(self, name: str, array: np.ndarray) -> np.ndarray:
        """Register an externally allocated array as the buffer behind ``name``.

        Subsequent :meth:`buffer`/:meth:`zeros` requests with a matching shape
        and dtype return the adopted array itself, so code written against the
        workspace API can be pointed at external storage — the multiprocess
        executor adopts shared-memory slab views here, turning what would be
        per-step copies into direct writes visible to the worker processes.
        """
        array = np.asarray(array)
        self._arrays[name] = array
        return array

    # -- grow-only capacity buffers --------------------------------------------
    def capacity(self, name: str, length: int, trailing: tuple[int, ...] = (), dtype=np.float64) -> np.ndarray:
        """A view of ``length`` rows over a grow-only backing buffer.

        For per-pair arrays whose length jitters between neighbour rebuilds:
        the backing store only reallocates when the requested length exceeds
        its capacity (with 25% headroom to amortize slow growth).
        """
        length = int(length)
        backing = self._capacities.get(name)
        if (
            backing is None
            or backing.shape[0] < length
            or backing.shape[1:] != tuple(trailing)
            or backing.dtype != np.dtype(dtype)
        ):
            cap = max(length + length // 4, 1)
            backing = np.empty((cap, *trailing), dtype=dtype)
            self._capacities[name] = backing
            self.misses += 1
        else:
            self.hits += 1
        return backing[:length]

    def capacity_zeros(self, name: str, length: int, trailing: tuple[int, ...] = (), dtype=np.float64) -> np.ndarray:
        """Like :meth:`capacity` but the returned view is zero-filled.

        The serving batch packer keys its concatenated per-batch arrays
        through here: batch sizes jitter between admissions, so exact-shape
        :meth:`zeros` buffers would miss on every batch while the grow-only
        backing absorbs the jitter after warm-up.
        """
        view = self.capacity(name, length, trailing=trailing, dtype=dtype)
        view.fill(0)
        return view

    def scoped(self, prefix: str) -> "ScopedWorkspace":
        """A view of this pool with every buffer name prefixed by ``prefix``.

        Pipelined consumers (the serving engine prepares batch ``k+1`` while
        batch ``k`` is still being evaluated) need disjoint buffers for each
        in-flight batch; a scope per pipeline slot keys them apart without a
        second pool object or copied bookkeeping counters.
        """
        return ScopedWorkspace(self, prefix)

    def reset(self) -> None:
        """Drop every buffer (forces reallocation on next use)."""
        self._arrays.clear()
        self._capacities.clear()


class ScopedWorkspace:
    """A name-prefixing proxy over a :class:`Workspace`.

    Implements the same buffer-vending surface (``buffer``/``zeros``/
    ``capacity``/``capacity_zeros``/``adopt``/``scoped``) with every name
    rewritten to ``<prefix>.<name>``, so two scopes over one pool can never
    collide; hit/miss accounting stays on the shared parent pool.
    """

    def __init__(self, parent, prefix: str) -> None:
        self._parent = parent
        self.prefix = str(prefix)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ScopedWorkspace({self.prefix!r} over {self._parent!r})"

    @property
    def hits(self) -> int:
        return self._parent.hits

    @property
    def misses(self) -> int:
        return self._parent.misses

    def _key(self, name: str) -> str:
        return f"{self.prefix}.{name}"

    def buffer(self, name: str, shape, dtype=np.float64) -> np.ndarray:
        return self._parent.buffer(self._key(name), shape, dtype)

    def zeros(self, name: str, shape, dtype=np.float64) -> np.ndarray:
        return self._parent.zeros(self._key(name), shape, dtype)

    def adopt(self, name: str, array: np.ndarray) -> np.ndarray:
        return self._parent.adopt(self._key(name), array)

    def capacity(self, name: str, length: int, trailing: tuple[int, ...] = (), dtype=np.float64) -> np.ndarray:
        return self._parent.capacity(self._key(name), length, trailing=trailing, dtype=dtype)

    def capacity_zeros(self, name: str, length: int, trailing: tuple[int, ...] = (), dtype=np.float64) -> np.ndarray:
        return self._parent.capacity_zeros(self._key(name), length, trailing=trailing, dtype=dtype)

    def scoped(self, prefix: str) -> "ScopedWorkspace":
        return ScopedWorkspace(self._parent, self._key(prefix))


# reprolint: hot-path
def scatter_add_vectors(
    out: np.ndarray,
    index_add: np.ndarray,
    index_sub: np.ndarray,
    values: np.ndarray,
) -> np.ndarray:
    """``out[index_add] += values`` and ``out[index_sub] -= values`` per row.

    The Newton's-third-law pair-force scatter, written as six ``np.bincount``
    reductions instead of two ``np.add.at`` scalar loops.  ``out`` must be
    ``(n, 3)`` and is accumulated into (callers zero it first when needed).
    """
    n = out.shape[0]
    for axis in range(3):
        component = np.ascontiguousarray(values[:, axis])
        out[:, axis] += np.bincount(index_add, weights=component, minlength=n)
        out[:, axis] -= np.bincount(index_sub, weights=component, minlength=n)
    return out


# reprolint: hot-path
def scatter_add_scalars(out: np.ndarray, index: np.ndarray, values: np.ndarray) -> np.ndarray:
    """``out[index] += values`` via one ``np.bincount`` reduction."""
    out += np.bincount(index, weights=values, minlength=out.shape[0])
    return out


def minimum_image_into(box: Box, delta: np.ndarray, scratch: np.ndarray) -> np.ndarray:
    """In-place minimum-image convention on ``(n, 3)`` displacement rows.

    Performs exactly the arithmetic of :meth:`Box.minimum_image`
    (``d -= L * round(d / L)`` per periodic axis) without allocating the
    result array; ``scratch`` must be an ``(n,)`` float64 buffer.
    """
    for axis in range(3):
        if box.periodic[axis]:
            length = box.lengths[axis]
            column = delta[:, axis]
            np.divide(column, length, out=scratch)
            np.round(scratch, out=scratch)
            scratch *= length
            column -= scratch
    return delta
