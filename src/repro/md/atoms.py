"""Structure-of-arrays atom container.

``Atoms`` mirrors the layout LAMMPS uses internally: contiguous per-atom
arrays for positions, velocities, forces, integer types, masses and ids.  The
parallel package slices these arrays when distributing atoms over simulated
MPI ranks, and the load-balance study (Fig. 5 of the paper) reorganizes the
same arrays into local/ghost groups.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..units import MASSES, maxwell_boltzmann_sigmas
from ..utils.rng import default_rng


@dataclass
class Atoms:
    """Per-atom state for a simulation.

    Attributes
    ----------
    positions:
        ``(n, 3)`` cartesian coordinates in angstrom.
    velocities:
        ``(n, 3)`` velocities in A/fs.
    forces:
        ``(n, 3)`` forces in eV/A.
    types:
        ``(n,)`` integer species indices (0-based).
    masses:
        ``(n,)`` per-atom masses in amu.
    ids:
        ``(n,)`` global atom ids (useful after decomposition/reordering).
    type_names:
        mapping from type index to element symbol.
    """

    positions: np.ndarray
    types: np.ndarray
    masses: np.ndarray
    velocities: np.ndarray = None  # type: ignore[assignment]
    forces: np.ndarray = None  # type: ignore[assignment]
    ids: np.ndarray = None  # type: ignore[assignment]
    type_names: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        self.positions = np.ascontiguousarray(self.positions, dtype=np.float64)
        if self.positions.ndim != 2 or self.positions.shape[1] != 3:
            raise ValueError("positions must have shape (n, 3)")
        n = len(self.positions)
        self.types = np.ascontiguousarray(self.types, dtype=np.int64)
        if self.types.shape != (n,):
            raise ValueError("types must have shape (n,)")
        self.masses = np.ascontiguousarray(self.masses, dtype=np.float64)
        if self.masses.shape != (n,):
            raise ValueError("masses must have shape (n,)")
        if self.velocities is None:
            self.velocities = np.zeros((n, 3))
        self.velocities = np.ascontiguousarray(self.velocities, dtype=np.float64)
        if self.forces is None:
            self.forces = np.zeros((n, 3))
        self.forces = np.ascontiguousarray(self.forces, dtype=np.float64)
        if self.ids is None:
            self.ids = np.arange(n, dtype=np.int64)
        self.ids = np.ascontiguousarray(self.ids, dtype=np.int64)
        self.type_names = tuple(self.type_names)

    # -- basic protocol ------------------------------------------------------
    def __len__(self) -> int:
        return len(self.positions)

    @property
    def n_atoms(self) -> int:
        return len(self.positions)

    @property
    def n_types(self) -> int:
        if self.type_names:
            return len(self.type_names)
        return int(self.types.max()) + 1 if len(self.types) else 0

    def copy(self) -> "Atoms":
        return Atoms(
            positions=self.positions.copy(),
            types=self.types.copy(),
            masses=self.masses.copy(),
            velocities=self.velocities.copy(),
            forces=self.forces.copy(),
            ids=self.ids.copy(),
            type_names=self.type_names,
        )

    def select(self, index) -> "Atoms":
        """Return a new ``Atoms`` holding the selected subset."""
        return Atoms(
            positions=self.positions[index],
            types=self.types[index],
            masses=self.masses[index],
            velocities=self.velocities[index],
            forces=self.forces[index],
            ids=self.ids[index],
            type_names=self.type_names,
        )

    def counts_by_type(self) -> np.ndarray:
        return np.bincount(self.types, minlength=self.n_types)

    # -- initialization helpers ----------------------------------------------
    def initialize_velocities(self, temperature_k: float, rng=None, zero_momentum: bool = True) -> None:
        """Draw Maxwell-Boltzmann velocities at ``temperature_k``."""
        rng = default_rng(rng)
        n = self.n_atoms
        if n == 0:
            return
        sigmas = maxwell_boltzmann_sigmas(self.masses, temperature_k)
        self.velocities = rng.normal(size=(n, 3)) * sigmas[:, None]
        if zero_momentum and n > 1:
            total_mass = self.masses.sum()
            com_velocity = (self.masses[:, None] * self.velocities).sum(axis=0) / total_mass
            self.velocities -= com_velocity

    @staticmethod
    def from_symbols(positions, symbols, **kwargs) -> "Atoms":
        """Build from element symbols, looking masses up in :data:`MASSES`."""
        symbols = list(symbols)
        unique = sorted(set(symbols), key=symbols.index)
        type_map = {sym: i for i, sym in enumerate(unique)}
        types = np.array([type_map[s] for s in symbols], dtype=np.int64)
        masses = np.array([MASSES[s] for s in symbols], dtype=np.float64)
        return Atoms(
            positions=np.asarray(positions, dtype=np.float64),
            types=types,
            masses=masses,
            type_names=tuple(unique),
            **kwargs,
        )

    def concatenate(self, other: "Atoms") -> "Atoms":
        """Concatenate two atom sets sharing the same type map."""
        if self.type_names and other.type_names and self.type_names != other.type_names:
            raise ValueError("cannot concatenate atoms with different type maps")
        return Atoms(
            positions=np.vstack([self.positions, other.positions]),
            types=np.concatenate([self.types, other.types]),
            masses=np.concatenate([self.masses, other.masses]),
            velocities=np.vstack([self.velocities, other.velocities]),
            forces=np.vstack([self.forces, other.forces]),
            ids=np.concatenate([self.ids, other.ids]),
            type_names=self.type_names or other.type_names,
        )
