"""Thermostats for NVT sampling."""

from __future__ import annotations

import numpy as np

from ..units import maxwell_boltzmann_sigmas, temperature as instantaneous_temperature
from ..utils.rng import default_rng
from .atoms import Atoms


class Thermostat:
    """Interface: mutate velocities in place once per step."""

    def apply(self, atoms: Atoms, timestep_fs: float) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class LangevinThermostat(Thermostat):
    """Langevin dynamics via the BAOAB-like velocity update.

    Velocities are relaxed towards the target temperature with a friction time
    ``damping_fs`` and re-injected with the matching random kicks; this is the
    robust choice for equilibrating a freshly built water box.
    """

    def __init__(self, temperature_k: float, damping_fs: float = 100.0, rng=None) -> None:
        if temperature_k < 0:
            raise ValueError("temperature must be non-negative")
        if damping_fs <= 0:
            raise ValueError("damping time must be positive")
        self.temperature = float(temperature_k)
        self.damping = float(damping_fs)
        self.rng = default_rng(rng)

    def apply(self, atoms: Atoms, timestep_fs: float) -> None:
        gamma = 1.0 / self.damping
        c1 = np.exp(-gamma * timestep_fs)
        sigma = maxwell_boltzmann_sigmas(atoms.masses, self.temperature)
        noise = self.rng.normal(size=atoms.velocities.shape)
        atoms.velocities *= c1
        atoms.velocities += np.sqrt(1.0 - c1 * c1) * sigma[:, None] * noise


class BerendsenThermostat(Thermostat):
    """Berendsen weak-coupling rescaling thermostat.

    The raw weak-coupling rescale factor is
    ``sqrt(1 + (dt/tau) * (T0/T - 1))``; when the current temperature far
    exceeds the target under aggressive coupling (``dt/tau`` large) the
    argument of the square root goes negative, which used to fill the
    velocities with NaN silently.  The factor is therefore clamped into the
    documented ``[min_factor, max_factor]`` window (the standard practice —
    LAMMPS' ``fix temp/berendsen`` does the same): a single step never
    rescales by more than ``max_factor`` nor below ``min_factor``, and the
    sqrt argument is floored at ``min_factor**2`` so it can never go
    negative.  Gentle-coupling trajectories (factor already inside the
    window) are bit-for-bit unchanged.
    """

    def __init__(
        self,
        temperature_k: float,
        coupling_fs: float = 100.0,
        min_factor: float = 0.5,
        max_factor: float = 2.0,
    ) -> None:
        if temperature_k < 0:
            raise ValueError("temperature must be non-negative")
        if coupling_fs <= 0:
            raise ValueError("coupling time must be positive")
        if not 0.0 < min_factor <= 1.0 <= max_factor:
            raise ValueError("require 0 < min_factor <= 1 <= max_factor")
        self.temperature = float(temperature_k)
        self.coupling = float(coupling_fs)
        self.min_factor = float(min_factor)
        self.max_factor = float(max_factor)

    def apply(self, atoms: Atoms, timestep_fs: float) -> None:
        current = instantaneous_temperature(atoms.masses, atoms.velocities)
        if current <= 0.0:
            return
        arg = 1.0 + (timestep_fs / self.coupling) * (self.temperature / current - 1.0)
        factor = np.sqrt(max(arg, self.min_factor * self.min_factor))
        atoms.velocities *= min(factor, self.max_factor)


class VelocityRescale(Thermostat):
    """Hard velocity rescaling to the exact target temperature every N steps."""

    def __init__(self, temperature_k: float, every: int = 1) -> None:
        if temperature_k < 0:
            raise ValueError("temperature must be non-negative")
        if every < 1:
            raise ValueError("rescale interval must be >= 1")
        self.temperature = float(temperature_k)
        self.every = int(every)
        self._counter = 0

    def apply(self, atoms: Atoms, timestep_fs: float) -> None:
        self._counter += 1
        if self._counter % self.every:
            return
        current = instantaneous_temperature(atoms.masses, atoms.velocities)
        if current <= 0.0:
            return
        atoms.velocities *= np.sqrt(self.temperature / current)
