"""Thermostats for NVT sampling."""

from __future__ import annotations

import numpy as np

from ..units import maxwell_boltzmann_sigmas, temperature as instantaneous_temperature
from ..utils.rng import default_rng
from .atoms import Atoms


class Thermostat:
    """Interface: mutate velocities in place once per step."""

    def apply(self, atoms: Atoms, timestep_fs: float) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class LangevinThermostat(Thermostat):
    """Langevin dynamics via the BAOAB-like velocity update.

    Velocities are relaxed towards the target temperature with a friction time
    ``damping_fs`` and re-injected with the matching random kicks; this is the
    robust choice for equilibrating a freshly built water box.
    """

    def __init__(self, temperature_k: float, damping_fs: float = 100.0, rng=None) -> None:
        if temperature_k < 0:
            raise ValueError("temperature must be non-negative")
        if damping_fs <= 0:
            raise ValueError("damping time must be positive")
        self.temperature = float(temperature_k)
        self.damping = float(damping_fs)
        self.rng = default_rng(rng)

    def apply(self, atoms: Atoms, timestep_fs: float) -> None:
        gamma = 1.0 / self.damping
        c1 = np.exp(-gamma * timestep_fs)
        sigma = maxwell_boltzmann_sigmas(atoms.masses, self.temperature)
        noise = self.rng.normal(size=atoms.velocities.shape)
        atoms.velocities *= c1
        atoms.velocities += np.sqrt(1.0 - c1 * c1) * sigma[:, None] * noise


class BerendsenThermostat(Thermostat):
    """Berendsen weak-coupling rescaling thermostat."""

    def __init__(self, temperature_k: float, coupling_fs: float = 100.0) -> None:
        if temperature_k < 0:
            raise ValueError("temperature must be non-negative")
        if coupling_fs <= 0:
            raise ValueError("coupling time must be positive")
        self.temperature = float(temperature_k)
        self.coupling = float(coupling_fs)

    def apply(self, atoms: Atoms, timestep_fs: float) -> None:
        current = instantaneous_temperature(atoms.masses, atoms.velocities)
        if current <= 0.0:
            return
        factor = np.sqrt(
            1.0 + (timestep_fs / self.coupling) * (self.temperature / current - 1.0)
        )
        atoms.velocities *= factor


class VelocityRescale(Thermostat):
    """Hard velocity rescaling to the exact target temperature every N steps."""

    def __init__(self, temperature_k: float, every: int = 1) -> None:
        if temperature_k < 0:
            raise ValueError("temperature must be non-negative")
        if every < 1:
            raise ValueError("rescale interval must be >= 1")
        self.temperature = float(temperature_k)
        self.every = int(every)
        self._counter = 0

    def apply(self, atoms: Atoms, timestep_fs: float) -> None:
        self._counter += 1
        if self._counter % self.every:
            return
        current = instantaneous_temperature(atoms.masses, atoms.velocities)
        if current <= 0.0:
            return
        atoms.velocities *= np.sqrt(self.temperature / current)
