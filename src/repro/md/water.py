"""Water-box builder and molecular topology.

The water benchmark in the paper contains 0.56 million atoms (~186,667
molecules) with a 6 A cutoff and a 0.5 fs time-step.  This module builds
water boxes of any size by placing rigid SPC-geometry molecules on a cubic
lattice at the experimental density and giving each a random orientation.
The resulting configuration is suitable both as an MD starting point and as
the seed for pseudo-AIMD training data.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..units import MASSES, WATER_DENSITY, AVOGADRO
from ..utils.rng import default_rng
from .atoms import Atoms
from .box import Box

#: SPC/flexible-SPC geometry.
OH_BOND_LENGTH = 1.0  # A
HOH_ANGLE_DEG = 109.47

#: Mass of one water molecule in grams.
_WATER_MOLAR_MASS = MASSES["O"] + 2.0 * MASSES["H"]


@dataclass(frozen=True)
class WaterTopology:
    """Connectivity of a water box.

    Attributes
    ----------
    bonds:
        ``(n_bonds, 2)`` atom-index pairs (every O-H bond).
    angles:
        ``(n_angles, 3)`` atom-index triplets ``(H, O, H)``.
    molecules:
        ``(n_atoms,)`` molecule index of each atom.
    """

    bonds: np.ndarray
    angles: np.ndarray
    molecules: np.ndarray

    @property
    def n_molecules(self) -> int:
        return int(self.molecules.max()) + 1 if len(self.molecules) else 0


def _water_template() -> np.ndarray:
    """Coordinates of one water molecule (O at origin), shape (3, 3)."""
    half_angle = np.deg2rad(HOH_ANGLE_DEG) / 2.0
    h1 = OH_BOND_LENGTH * np.array([np.sin(half_angle), np.cos(half_angle), 0.0])
    h2 = OH_BOND_LENGTH * np.array([-np.sin(half_angle), np.cos(half_angle), 0.0])
    return np.array([[0.0, 0.0, 0.0], h1, h2])


def _random_rotation(rng: np.random.Generator) -> np.ndarray:
    """Uniformly random rotation matrix (via QR of a Gaussian matrix)."""
    m = rng.normal(size=(3, 3))
    q, r = np.linalg.qr(m)
    q *= np.sign(np.diag(r))
    if np.linalg.det(q) < 0:
        q[:, 0] = -q[:, 0]
    return q


def water_box_length(n_molecules: int, density: float = WATER_DENSITY) -> float:
    """Edge length (A) of a cubic box holding ``n_molecules`` at ``density``."""
    if n_molecules <= 0:
        raise ValueError("need at least one molecule")
    mass_g = n_molecules * _WATER_MOLAR_MASS / AVOGADRO
    volume_cm3 = mass_g / density
    volume_a3 = volume_cm3 * 1.0e24
    return float(volume_a3 ** (1.0 / 3.0))


def water_system(
    n_molecules: int,
    density: float = WATER_DENSITY,
    rng=None,
    jitter: float = 0.05,
) -> tuple[Atoms, Box, WaterTopology]:
    """Build a cubic water box.

    Molecules are placed on an ``m x m x m`` grid (``m**3 >= n_molecules``)
    with random orientations and a small positional jitter, which gives a
    reasonable liquid-like starting structure once equilibrated.
    Atom ordering is O, H, H per molecule; types are O=0, H=1.
    """
    rng = default_rng(rng)
    length = water_box_length(n_molecules, density)
    box = Box.cubic(length)

    grid = int(np.ceil(n_molecules ** (1.0 / 3.0)))
    spacing = length / grid
    template = _water_template()

    positions = np.empty((3 * n_molecules, 3))
    molecule_ids = np.repeat(np.arange(n_molecules), 3)
    count = 0
    for ix in range(grid):
        for iy in range(grid):
            for iz in range(grid):
                if count >= n_molecules:
                    break
                center = (np.array([ix, iy, iz]) + 0.5) * spacing
                center = center + rng.normal(scale=jitter, size=3)
                rotation = _random_rotation(rng)
                mol = template @ rotation.T + center
                positions[3 * count : 3 * count + 3] = mol
                count += 1
            if count >= n_molecules:
                break
        if count >= n_molecules:
            break

    positions = box.wrap(positions)
    types = np.tile(np.array([0, 1, 1], dtype=np.int64), n_molecules)
    masses = np.tile(np.array([MASSES["O"], MASSES["H"], MASSES["H"]]), n_molecules)
    atoms = Atoms(
        positions=positions,
        types=types,
        masses=masses,
        type_names=("O", "H"),
    )

    oxygens = 3 * np.arange(n_molecules)
    bonds = np.empty((2 * n_molecules, 2), dtype=np.int64)
    bonds[0::2, 0] = oxygens
    bonds[0::2, 1] = oxygens + 1
    bonds[1::2, 0] = oxygens
    bonds[1::2, 1] = oxygens + 2
    angles = np.stack([oxygens + 1, oxygens, oxygens + 2], axis=1)
    topology = WaterTopology(bonds=bonds, angles=angles, molecules=molecule_ids)
    return atoms, box, topology


def water_benchmark_counts() -> dict[str, int]:
    """Atom counts of the water systems quoted in the paper."""
    return {
        "strong_scaling": 558_000,
        "vsc_baseline": 8_400,
    }
