"""The serial MD backend over the shared stepping core.

``Simulation`` is the single-process execution strategy: all atoms live in
one :class:`Atoms` container over the full periodic box, forces come from one
:class:`NeighborList`-driven evaluation, and the integrator touches the
arrays directly.  The run loop itself — velocity-Verlet sequencing,
thermostat application, sampling, trajectory capture, per-phase accounting
and :class:`SimulationReport` assembly — lives in
:class:`repro.md.stepping.SteppingLoop`; this module only implements the
:class:`~repro.md.stepping.EngineBackend` hooks.

The serial backend is also the parity reference for the domain-decomposed
engine (:class:`repro.parallel.engine.DomainDecomposedSimulation`), the other
backend of the same loop, which adds a ``comm`` timer phase for the ghost
exchange; the two are pinned together by
``tests/test_parallel_engine_parity.py``.

Per-step scratch (forces, per-atom energies, pair temporaries, integrator
accelerations) comes from a preallocated :class:`~repro.md.workspace.Workspace`
by default; construct with ``use_workspace=False`` to run the original
allocating reference paths (the baseline ``benchmarks/bench_run_loop.py``
measures against).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..units import kinetic_energy, temperature as instantaneous_temperature
from ..utils.timer import PhaseTimer
from .atoms import Atoms
from .box import Box
from .forcefields.base import ForceField
from .integrators import VelocityVerlet
from .neighbor import NeighborList
from .stepping import EngineBackend, SimulationReport, SteppingLoop, validate_cutoff
from .thermostats import Thermostat
from .workspace import Workspace

__all__ = ["Simulation", "SimulationReport"]


@dataclass
class Simulation(EngineBackend):
    """A serial MD simulation over the full periodic box."""

    atoms: Atoms
    box: Box
    force_field: ForceField
    timestep_fs: float
    neighbor_skin: float = 2.0
    neighbor_every: int = 50
    thermostat: Thermostat | None = None
    timers: PhaseTimer = field(default_factory=PhaseTimer)
    #: route per-step scratch through a preallocated :class:`Workspace`
    #: (False = the original allocating reference paths, bit-for-bit pre-PR).
    use_workspace: bool = True

    def __post_init__(self) -> None:
        cutoff = validate_cutoff(self.force_field)
        self.integrator = VelocityVerlet(self.timestep_fs)
        self.neighbor_list = NeighborList(
            cutoff=cutoff, skin=self.neighbor_skin, rebuild_every=self.neighbor_every
        )
        self.workspace: Workspace | None = Workspace() if self.use_workspace else None
        self._last_energy: float | None = None
        self.last_virial: np.ndarray | None = None
        self.trajectory: list[np.ndarray] = []

    # -- single force evaluation ------------------------------------------------
    def compute_forces(self) -> float:
        with self.timers.phase("neigh"):
            data, _ = self.neighbor_list.maybe_rebuild(self.atoms, self.box)
        with self.timers.phase("pair"):
            result = self.force_field.compute(self.atoms, self.box, data, workspace=self.workspace)
        if self.workspace is not None:
            # result arrays live in the workspace pool (valid only until the
            # next evaluation) — keep the public surfaces (atoms.forces,
            # last_virial) on persistent storage outside the pool
            if self.atoms.forces.shape == result.forces.shape:
                np.copyto(self.atoms.forces, result.forces)
            else:
                self.atoms.forces = result.forces.copy()
            self.last_virial = None if result.virial is None else result.virial.copy()
        else:
            self.atoms.forces = result.forces
            self.last_virial = result.virial
        self._last_energy = result.energy
        return result.energy

    # -- EngineBackend hooks ------------------------------------------------------
    def integrate_first_half(self) -> None:
        self.integrator.first_half(self.atoms, self.box, workspace=self.workspace)

    def integrate_second_half(self) -> None:
        self.integrator.second_half(self.atoms, self.box, workspace=self.workspace)

    def apply_thermostat(self) -> None:
        self.thermostat.apply(self.atoms, self.timestep_fs)

    def sample_temperature(self) -> float:
        return instantaneous_temperature(self.atoms.masses, self.atoms.velocities)

    def capture_positions(self) -> np.ndarray:
        return self.atoms.positions.copy()

    def neighbor_build_count(self) -> int:
        return self.neighbor_list.n_builds

    def neighbor_build_seconds(self) -> float:
        return self.neighbor_list.build_seconds

    # -- the run loop -------------------------------------------------------------
    def run(
        self,
        n_steps: int,
        sample_every: int = 1,
        trajectory_every: int = 0,
    ) -> SimulationReport:
        """Integrate ``n_steps`` steps through the shared stepping core.

        ``sample_every`` controls how often energy/temperature are recorded;
        ``trajectory_every`` (if nonzero) stores position snapshots on
        ``self.trajectory`` for RDF analysis (0 leaves previous snapshots
        untouched).
        """
        return SteppingLoop(self).run(
            n_steps, sample_every=sample_every, trajectory_every=trajectory_every
        )

    # -- convenience -----------------------------------------------------------
    def total_energy(self) -> float:
        potential = self._last_energy if self._last_energy is not None else self.compute_forces()
        return potential + kinetic_energy(self.atoms.masses, self.atoms.velocities)
