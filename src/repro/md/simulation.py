"""The MD run loop with LAMMPS-style per-phase accounting.

``Simulation`` drives velocity-Verlet dynamics for any :class:`ForceField`
(including the Deep Potential pair style), rebuilding the neighbour list on
the skin/steps criterion and recording wall-clock time per phase (pair,
neighbour, integrate, thermostat, other).  The per-phase breakdown mirrors the
structure the paper optimizes; the large-scale timing *model* lives in
:mod:`repro.perfmodel`, while this loop provides the real numerical dynamics
used by the accuracy experiments (Table II, Fig. 6).

The serial loop is also the parity reference for the domain-decomposed engine
(:class:`repro.parallel.engine.DomainDecomposedSimulation`), which emits the
same :class:`SimulationReport` with an additional ``comm`` timer phase for the
ghost exchange; the two are pinned together by
``tests/test_parallel_engine_parity.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..units import temperature as instantaneous_temperature
from ..utils.timer import PhaseTimer
from .atoms import Atoms
from .box import Box
from .forcefields.base import ForceField
from .integrators import VelocityVerlet
from .neighbor import NeighborList
from .thermostats import Thermostat


@dataclass
class SimulationReport:
    """Summary of one ``run`` call."""

    n_steps: int
    potential_energies: np.ndarray
    temperatures: np.ndarray
    timers: PhaseTimer
    neighbor_builds: int
    #: wall-clock seconds accounted to *this* ``run`` call (the timers object
    #: accumulates across successive runs of the same simulation).
    elapsed_seconds: float = 0.0
    #: ``describe()`` of the force field, if it provides one — records which
    #: inference path (e.g. vectorized vs scalar-reference Deep Potential)
    #: produced this trajectory.
    force_field_info: dict = field(default_factory=dict)
    #: cumulative wall-clock seconds spent inside neighbour-list *builds*
    #: (summed over ranks for the domain-decomposed engine; excludes the
    #: per-step staleness checks the ``neigh`` timer phase also covers).
    neighbor_build_seconds: float = 0.0

    @property
    def final_potential_energy(self) -> float:
        return float(self.potential_energies[-1]) if len(self.potential_energies) else 0.0

    @property
    def mean_temperature(self) -> float:
        return float(self.temperatures.mean()) if len(self.temperatures) else 0.0

    @property
    def steps_per_second(self) -> float:
        """MD throughput over this run's accounted wall-clock time."""
        return self.n_steps / self.elapsed_seconds if self.elapsed_seconds > 0.0 else 0.0

    def energy_drift_per_atom(self, n_atoms: int) -> float:
        """|E_last - E_first| / n_atoms, a cheap NVE-quality metric (eV/atom)."""
        if len(self.potential_energies) < 2 or n_atoms == 0:
            return 0.0
        return abs(float(self.potential_energies[-1] - self.potential_energies[0])) / n_atoms


@dataclass
class Simulation:
    """A serial MD simulation over the full periodic box."""

    atoms: Atoms
    box: Box
    force_field: ForceField
    timestep_fs: float
    neighbor_skin: float = 2.0
    neighbor_every: int = 50
    thermostat: Thermostat | None = None
    timers: PhaseTimer = field(default_factory=PhaseTimer)

    def __post_init__(self) -> None:
        cutoff = getattr(self.force_field, "cutoff", 0.0)
        if cutoff <= 0:
            raise ValueError("force field must define a positive cutoff")
        self.integrator = VelocityVerlet(self.timestep_fs)
        self.neighbor_list = NeighborList(
            cutoff=cutoff, skin=self.neighbor_skin, rebuild_every=self.neighbor_every
        )
        self._last_energy: float | None = None
        self.last_virial: np.ndarray | None = None

    # -- single force evaluation ------------------------------------------------
    def compute_forces(self) -> float:
        with self.timers.phase("neigh"):
            data, _ = self.neighbor_list.maybe_rebuild(self.atoms, self.box)
        with self.timers.phase("pair"):
            result = self.force_field.compute(self.atoms, self.box, data)
        self.atoms.forces = result.forces
        self._last_energy = result.energy
        self.last_virial = result.virial
        return result.energy

    # -- the run loop -------------------------------------------------------------
    def run(
        self,
        n_steps: int,
        sample_every: int = 1,
        trajectory_every: int = 0,
    ) -> SimulationReport:
        """Integrate ``n_steps`` steps.

        ``sample_every`` controls how often energy/temperature are recorded;
        ``trajectory_every`` (if nonzero) stores position snapshots on
        ``self.trajectory`` for RDF analysis.
        """
        if n_steps < 0:
            raise ValueError("number of steps must be non-negative")
        if self._last_energy is None:
            self.compute_forces()
        timer_start = self.timers.total()
        energies: list[float] = []
        temperatures: list[float] = []
        self.trajectory: list[np.ndarray] = []

        for step in range(n_steps):
            with self.timers.phase("integrate"):
                self.integrator.first_half(self.atoms, self.box)
            energy = self.compute_forces()
            with self.timers.phase("integrate"):
                self.integrator.second_half(self.atoms, self.box)
            if self.thermostat is not None:
                with self.timers.phase("thermostat"):
                    self.thermostat.apply(self.atoms, self.timestep_fs)
            if sample_every and (step % sample_every == 0):
                energies.append(energy)
                temperatures.append(
                    instantaneous_temperature(self.atoms.masses, self.atoms.velocities)
                )
            if trajectory_every and (step % trajectory_every == 0):
                self.trajectory.append(self.atoms.positions.copy())

        describe = getattr(self.force_field, "describe", None)
        return SimulationReport(
            n_steps=n_steps,
            potential_energies=np.array(energies),
            temperatures=np.array(temperatures),
            timers=self.timers,
            neighbor_builds=self.neighbor_list.n_builds,
            elapsed_seconds=self.timers.total() - timer_start,
            force_field_info=dict(describe()) if callable(describe) else {},
            neighbor_build_seconds=self.neighbor_list.build_seconds,
        )

    # -- convenience -----------------------------------------------------------
    def total_energy(self) -> float:
        from ..units import kinetic_energy

        potential = self._last_energy if self._last_energy is not None else self.compute_forces()
        return potential + kinetic_energy(self.atoms.masses, self.atoms.velocities)
