"""Crystal lattice builders (copper FCC benchmark system).

The paper's headline benchmark is a 0.54-million-atom copper system.  The
builders here create FCC supercells of arbitrary size, plus helpers to choose
a supercell that approximates a requested total atom count (used by the
strong-scaling experiment to reproduce the 540,000-atom configuration).
"""

from __future__ import annotations

import numpy as np

from ..units import CU_LATTICE_CONSTANT, MASSES
from ..utils.rng import default_rng
from .atoms import Atoms
from .box import Box

#: Fractional coordinates of the 4-atom FCC basis.
FCC_BASIS = np.array(
    [
        [0.0, 0.0, 0.0],
        [0.5, 0.5, 0.0],
        [0.5, 0.0, 0.5],
        [0.0, 0.5, 0.5],
    ]
)


def fcc_lattice(
    n_cells: tuple[int, int, int],
    lattice_constant: float,
    symbol: str = "Cu",
    perturbation: float = 0.0,
    rng=None,
) -> tuple[Atoms, Box]:
    """Build an FCC supercell.

    Parameters
    ----------
    n_cells:
        number of conventional cells along x, y, z.
    lattice_constant:
        conventional cell edge in angstrom.
    symbol:
        element symbol (must exist in :data:`repro.units.MASSES`).
    perturbation:
        optional random displacement amplitude (A) added to every atom, used
        to generate training configurations away from the perfect lattice.
    """
    nx, ny, nz = (int(v) for v in n_cells)
    if min(nx, ny, nz) < 1:
        raise ValueError("cell counts must be >= 1")
    if lattice_constant <= 0:
        raise ValueError("lattice constant must be positive")

    cells = np.stack(
        np.meshgrid(np.arange(nx), np.arange(ny), np.arange(nz), indexing="ij"),
        axis=-1,
    ).reshape(-1, 3)
    # positions = (cell + basis) * a, built by broadcasting.
    frac = cells[:, None, :] + FCC_BASIS[None, :, :]
    positions = (frac.reshape(-1, 3)) * lattice_constant

    if perturbation > 0.0:
        rng = default_rng(rng)
        positions = positions + rng.normal(scale=perturbation, size=positions.shape)

    box = Box(np.array([nx, ny, nz], dtype=np.float64) * lattice_constant)
    positions = box.wrap(positions)
    n = len(positions)
    atoms = Atoms(
        positions=positions,
        types=np.zeros(n, dtype=np.int64),
        masses=np.full(n, MASSES[symbol]),
        type_names=(symbol,),
    )
    return atoms, box


def copper_system(
    n_cells: tuple[int, int, int] = (4, 4, 4),
    lattice_constant: float = CU_LATTICE_CONSTANT,
    perturbation: float = 0.0,
    rng=None,
) -> tuple[Atoms, Box]:
    """The copper benchmark system (FCC, a0 = 3.615 A)."""
    return fcc_lattice(n_cells, lattice_constant, "Cu", perturbation, rng)


def cells_for_atom_count(target_atoms: int, atoms_per_cell: int = 4) -> tuple[int, int, int]:
    """Choose a roughly cubic supercell with about ``target_atoms`` atoms.

    The paper's strong-scaling benchmark uses 540,000 copper atoms; with a
    4-atom FCC basis this corresponds to a 51x51x52-ish supercell.  The
    returned cell counts satisfy ``nx*ny*nz*atoms_per_cell >= target_atoms``
    while staying as close to the target as possible.
    """
    if target_atoms <= 0:
        raise ValueError("target atom count must be positive")
    n_cells_total = target_atoms / atoms_per_cell
    edge = int(np.floor(n_cells_total ** (1.0 / 3.0)))
    edge = max(edge, 1)
    best = None
    for nx in range(max(1, edge - 1), edge + 3):
        for ny in range(max(1, edge - 1), edge + 3):
            nz = int(np.ceil(n_cells_total / (nx * ny)))
            nz = max(nz, 1)
            total = nx * ny * nz * atoms_per_cell
            score = (abs(total - target_atoms), abs(nx - ny) + abs(ny - nz))
            if total >= target_atoms and (best is None or score < best[0]):
                best = (score, (nx, ny, nz))
    assert best is not None
    return best[1]


def copper_benchmark_counts() -> dict[str, int]:
    """Atom counts of the copper systems quoted in the paper."""
    return {
        "strong_scaling": 540_000,
        "summit_baseline": 13_500_000,
        "fugaku_baseline": 2_100_000,
    }
