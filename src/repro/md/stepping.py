"""The shared MD run-loop core driving both execution strategies.

There is exactly **one** implementation of the MD timestep pipeline in this
repository and it lives here: :class:`SteppingLoop` owns the velocity-Verlet
sequence, the thermostat application point, energy/temperature sampling,
trajectory capture, per-run wall-clock accounting and
:class:`SimulationReport` assembly.  The serial :class:`repro.md.Simulation`
and the domain-decomposed
:class:`repro.parallel.engine.DomainDecomposedSimulation` are thin
:class:`EngineBackend` implementations: they provide the force evaluation
(with whatever neighbour/ghost/migration machinery their execution strategy
needs), the two integrator half-steps, and the gather/reduce primitives the
loop samples through.  New run-loop capabilities (sampling modes, trajectory
formats, ensembles, timing surfaces) must land *here*, once — never in a
backend — so the 1e-10 cross-rank parity suite keeps pinning a single loop.

The step sequence (identical for every backend, the structure LAMMPS uses):

1. ``integrate`` phase — first velocity-Verlet half-step,
2. force evaluation via :meth:`EngineBackend.compute_forces` (which accounts
   its own ``neigh``/``pair``/``comm`` phases),
3. ``integrate`` phase — second half-step,
4. ``thermostat`` phase — thermostat, if configured,
5. sampling (energy + temperature reduction) and trajectory capture.

Wall-clock conventions: ``elapsed_seconds`` covers the steps of *this* run
call (the lazily triggered initial force evaluation is excluded, matching the
historical behaviour); ``neighbor_build_seconds`` and ``neighbor_builds`` are
likewise per-run — the backend's cumulative counters are snapshotted when
``run`` starts and the report carries the deltas, which *include* the initial
build when this run triggered it.  (``neighbor_builds`` used to report the
cumulative counter, so a second ``run()`` re-claimed the first run's builds.)
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..utils.timer import PhaseTimer


def validate_cutoff(force_field) -> float:
    """The force field's interaction cutoff, validated once for every backend."""
    cutoff = getattr(force_field, "cutoff", 0.0)
    if cutoff is None or cutoff <= 0:
        raise ValueError("force field must define a positive cutoff")
    return float(cutoff)


def harvest_force_field_info(force_field) -> dict:
    """``describe()`` of the force field, if it provides one."""
    describe = getattr(force_field, "describe", None)
    return dict(describe()) if callable(describe) else {}


@dataclass
class SimulationReport:
    """Summary of one ``run`` call (emitted identically by every backend)."""

    n_steps: int
    potential_energies: np.ndarray
    temperatures: np.ndarray
    timers: PhaseTimer
    #: neighbour-list builds triggered during *this* ``run`` call (a per-run
    #: delta of the backend's cumulative counter, like ``elapsed_seconds``).
    neighbor_builds: int
    #: wall-clock seconds accounted to *this* ``run`` call (the timers object
    #: accumulates across successive runs of the same simulation).
    elapsed_seconds: float = 0.0
    #: ``describe()`` of the force field, if it provides one — records which
    #: inference path (e.g. vectorized vs scalar-reference Deep Potential)
    #: produced this trajectory.
    force_field_info: dict = field(default_factory=dict)
    #: wall-clock seconds spent inside neighbour-list *builds* during this
    #: ``run`` call (summed over ranks for the domain-decomposed engine;
    #: excludes the per-step staleness checks the ``neigh`` timer phase also
    #: covers).  Unlike the cumulative ``NeighborList.build_seconds`` counter
    #: this is a per-run delta, the same convention as ``elapsed_seconds``.
    neighbor_build_seconds: float = 0.0
    #: this run's wall-clock seconds per timer phase (a per-run delta of the
    #: cumulative ``timers`` breakdown).
    phase_seconds: dict = field(default_factory=dict)

    @property
    def final_potential_energy(self) -> float:
        return float(self.potential_energies[-1]) if len(self.potential_energies) else 0.0

    @property
    def mean_temperature(self) -> float:
        return float(self.temperatures.mean()) if len(self.temperatures) else 0.0

    @property
    def steps_per_second(self) -> float:
        """MD throughput over this run's accounted wall-clock time."""
        return self.n_steps / self.elapsed_seconds if self.elapsed_seconds > 0.0 else 0.0

    def energy_drift_per_atom(self, n_atoms: int) -> float:
        """|E_last - E_first| / n_atoms, a cheap NVE-quality metric (eV/atom)."""
        if len(self.potential_energies) < 2 or n_atoms == 0:
            return 0.0
        return abs(float(self.potential_energies[-1] - self.potential_energies[0])) / n_atoms


class EngineBackend:
    """What the shared :class:`SteppingLoop` needs from an execution strategy.

    A backend encapsulates *where the atoms live* (one array, or partitioned
    over simulated ranks) and therefore how forces are computed, how the
    integrator reaches the arrays, and how global scalars/arrays are reduced
    or gathered.  Everything about the *step sequence* — ordering, phase
    accounting, sampling cadence, report assembly — belongs to the loop.

    Required attributes: ``timers`` (:class:`PhaseTimer`), ``thermostat``,
    ``timestep_fs``, ``force_field``, ``trajectory`` (a list the loop appends
    snapshots to) and ``_last_energy`` (``None`` until the first force
    evaluation; maintained by :meth:`compute_forces`).
    """

    timers: PhaseTimer
    thermostat = None
    trajectory: list
    _last_energy: float | None = None

    # -- forces (accounts its own neigh/pair/comm phases) ----------------------
    def compute_forces(self) -> float:
        """One full force evaluation; returns the global potential energy.

        Owns the per-strategy pre-step work: neighbour staleness checks and
        rebuilds for the serial backend; ghost refresh, migration, halo
        exchanges and the reverse force scatter for the distributed one.
        """
        raise NotImplementedError

    # -- integration (the loop wraps both in the ``integrate`` phase) ----------
    def integrate_first_half(self) -> None:
        raise NotImplementedError

    def integrate_second_half(self) -> None:
        raise NotImplementedError

    # -- thermostat (wrapped in the ``thermostat`` phase) ----------------------
    def apply_thermostat(self) -> None:
        raise NotImplementedError

    # -- reductions / gathers ---------------------------------------------------
    def sample_temperature(self) -> float:
        """Instantaneous temperature (a global reduction over ranks)."""
        raise NotImplementedError

    def capture_positions(self) -> np.ndarray:
        """A freshly owned global-order position snapshot for the trajectory."""
        raise NotImplementedError

    # -- neighbour-build accounting --------------------------------------------
    def neighbor_build_count(self) -> int:
        """Cumulative number of neighbour-list builds (lockstep across ranks)."""
        raise NotImplementedError

    def neighbor_build_seconds(self) -> float:
        """Cumulative wall-clock seconds spent inside neighbour-list builds."""
        raise NotImplementedError


@dataclass
class SteppingLoop:
    """Drives velocity-Verlet dynamics over any :class:`EngineBackend`."""

    backend: EngineBackend

    # reprolint: hot-path
    def run(
        self,
        n_steps: int,
        sample_every: int = 1,
        trajectory_every: int = 0,
    ) -> SimulationReport:
        """Integrate ``n_steps`` steps.

        ``sample_every`` controls how often energy/temperature are recorded
        (0 disables sampling entirely); ``trajectory_every`` (if nonzero)
        resets ``backend.trajectory`` and stores position snapshots on it.
        With ``trajectory_every=0`` a previous run's snapshots are left
        untouched, so capture runs can be followed by plain runs without
        losing frames.
        """
        backend = self.backend
        if n_steps < 0:
            raise ValueError("number of steps must be non-negative")
        timers = backend.timers
        build_seconds_start = backend.neighbor_build_seconds()
        builds_start = backend.neighbor_build_count()
        if backend._last_energy is None:
            backend.compute_forces()
        timer_start = timers.total()
        phase_start = timers.snapshot()
        energies: list[float] = []
        temperatures: list[float] = []
        if trajectory_every:
            # rebind rather than clear in place: a trajectory list handed out
            # by a previous capture run stays intact for its holder
            backend.trajectory = []

        for step in range(n_steps):
            with timers.phase("integrate"):
                backend.integrate_first_half()
            energy = backend.compute_forces()
            with timers.phase("integrate"):
                backend.integrate_second_half()
            if backend.thermostat is not None:
                with timers.phase("thermostat"):
                    backend.apply_thermostat()
            if sample_every and (step % sample_every == 0):
                energies.append(energy)
                temperatures.append(backend.sample_temperature())
            if trajectory_every and (step % trajectory_every == 0):
                backend.trajectory.append(backend.capture_positions())

        return SimulationReport(
            n_steps=n_steps,
            potential_energies=np.array(energies),
            temperatures=np.array(temperatures),
            timers=timers,
            neighbor_builds=backend.neighbor_build_count() - builds_start,
            elapsed_seconds=timers.total() - timer_start,
            force_field_info=harvest_force_field_info(backend.force_field),
            neighbor_build_seconds=backend.neighbor_build_seconds() - build_seconds_start,
            phase_seconds=timers.totals_since(phase_start),
        )
