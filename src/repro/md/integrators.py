"""Time integration (velocity Verlet)."""

from __future__ import annotations

import numpy as np

from ..units import ACC_CONV
from .atoms import Atoms
from .box import Box


class VelocityVerlet:
    """Velocity-Verlet integrator in A / fs / eV / amu units.

    The two half-steps are exposed separately (``first_half`` /
    ``second_half``) because the MD loop interleaves force evaluation and, in
    the parallel engine, ghost-force reduction between them — the same
    structure LAMMPS uses.
    """

    def __init__(self, timestep_fs: float) -> None:
        if timestep_fs <= 0:
            raise ValueError("timestep must be positive")
        self.dt = float(timestep_fs)

    def _half_kick(self, atoms: Atoms, workspace) -> None:
        """``v += 0.5 dt a`` with identical arithmetic on both paths.

        The workspace path stages ``((ACC_CONV * F) / m) * (0.5 dt)`` through
        one reusable buffer; every element sees the same operations in the
        same order as the allocating expression, so the two are bit-equal.
        """
        if workspace is None:
            atoms.velocities += 0.5 * self.dt * (ACC_CONV * atoms.forces / atoms.masses[:, None])
            return
        acc = workspace.buffer("vv.acc", atoms.forces.shape)
        np.multiply(atoms.forces, ACC_CONV, out=acc)
        acc /= atoms.masses[:, None]
        acc *= 0.5 * self.dt
        atoms.velocities += acc

    def first_half(self, atoms: Atoms, box: Box, workspace=None) -> None:
        """Advance velocities half a step, positions a full step."""
        self._half_kick(atoms, workspace)
        if workspace is None:
            atoms.positions += self.dt * atoms.velocities
            atoms.positions = box.wrap(atoms.positions)
        else:
            drift = workspace.buffer("vv.drift", atoms.velocities.shape)
            np.multiply(atoms.velocities, self.dt, out=drift)
            atoms.positions += drift
            atoms.positions = box.wrap(atoms.positions, out=atoms.positions)

    def second_half(self, atoms: Atoms, box: Box, workspace=None) -> None:
        """Advance velocities the remaining half step with the new forces."""
        self._half_kick(atoms, workspace)

    def step(self, atoms: Atoms, box: Box, force_callback) -> float:
        """One full step; ``force_callback(atoms)`` must refresh ``atoms.forces``
        and return the potential energy."""
        self.first_half(atoms, box)
        energy = force_callback(atoms)
        self.second_half(atoms, box)
        return energy
