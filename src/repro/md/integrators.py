"""Time integration (velocity Verlet)."""

from __future__ import annotations

import numpy as np

from ..units import ACC_CONV
from .atoms import Atoms
from .box import Box


class VelocityVerlet:
    """Velocity-Verlet integrator in A / fs / eV / amu units.

    The two half-steps are exposed separately (``first_half`` /
    ``second_half``) because the MD loop interleaves force evaluation and, in
    the parallel engine, ghost-force reduction between them — the same
    structure LAMMPS uses.
    """

    def __init__(self, timestep_fs: float) -> None:
        if timestep_fs <= 0:
            raise ValueError("timestep must be positive")
        self.dt = float(timestep_fs)

    def first_half(self, atoms: Atoms, box: Box) -> None:
        """Advance velocities half a step, positions a full step."""
        acc = ACC_CONV * atoms.forces / atoms.masses[:, None]
        atoms.velocities += 0.5 * self.dt * acc
        atoms.positions += self.dt * atoms.velocities
        atoms.positions = box.wrap(atoms.positions)

    def second_half(self, atoms: Atoms, box: Box) -> None:
        """Advance velocities the remaining half step with the new forces."""
        acc = ACC_CONV * atoms.forces / atoms.masses[:, None]
        atoms.velocities += 0.5 * self.dt * acc

    def step(self, atoms: Atoms, box: Box, force_callback) -> float:
        """One full step; ``force_callback(atoms)`` must refresh ``atoms.forces``
        and return the potential energy."""
        self.first_half(atoms, box)
        energy = force_callback(atoms)
        self.second_half(atoms, box)
        return energy
