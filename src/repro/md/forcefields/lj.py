"""Lennard-Jones 12-6 potential (the classical-force-field baseline).

The paper contrasts NNMD with classical force fields "like Lennard-Jones";
this implementation provides that baseline, with the standard energy shift at
the cutoff so the potential is continuous.
"""

from __future__ import annotations

import numpy as np

from ..atoms import Atoms
from ..box import Box
from ..neighbor import NeighborData
from ..workspace import minimum_image_into, scatter_add_scalars, scatter_add_vectors
from .base import ForceField, ForceResult, accumulate_pair_forces


class LennardJones(ForceField):
    """Single-species LJ potential: ``4 eps [(sigma/r)^12 - (sigma/r)^6]``."""

    def __init__(self, epsilon: float, sigma: float, cutoff: float, shift: bool = True) -> None:
        if epsilon <= 0 or sigma <= 0 or cutoff <= 0:
            raise ValueError("epsilon, sigma and cutoff must be positive")
        self.epsilon = float(epsilon)
        self.sigma = float(sigma)
        self.cutoff = float(cutoff)
        self.shift = bool(shift)
        sr6 = (self.sigma / self.cutoff) ** 6
        self._e_cut = 4.0 * self.epsilon * (sr6 * sr6 - sr6) if shift else 0.0

    def compute(
        self, atoms: Atoms, box: Box, neighbors: NeighborData, workspace=None
    ) -> ForceResult:
        if workspace is not None:
            return self._compute_workspace(atoms, box, neighbors, workspace)
        n = len(atoms)
        pairs = neighbors.pairs
        forces = np.zeros((n, 3))
        per_atom = np.zeros(n)
        if len(pairs) == 0:
            return ForceResult(0.0, forces, per_atom)

        delta = atoms.positions[pairs[:, 0]] - atoms.positions[pairs[:, 1]]
        delta = box.minimum_image(delta)
        r2 = np.einsum("ij,ij->i", delta, delta)
        mask = r2 <= self.cutoff * self.cutoff
        pairs = pairs[mask]
        delta = delta[mask]
        r2 = r2[mask]
        if len(pairs) == 0:
            return ForceResult(0.0, forces, per_atom)

        inv_r2 = 1.0 / r2
        sr2 = self.sigma * self.sigma * inv_r2
        sr6 = sr2 * sr2 * sr2
        sr12 = sr6 * sr6
        pair_energy = 4.0 * self.epsilon * (sr12 - sr6) - self._e_cut
        # dE/dr * (1/r) so the force vector is coeff * delta
        coeff = 24.0 * self.epsilon * (2.0 * sr12 - sr6) * inv_r2
        pair_forces = coeff[:, None] * delta

        forces = accumulate_pair_forces(n, pairs, pair_forces)
        np.add.at(per_atom, pairs[:, 0], 0.5 * pair_energy)
        np.add.at(per_atom, pairs[:, 1], 0.5 * pair_energy)
        return ForceResult(float(pair_energy.sum()), forces, per_atom)

    # reprolint: hot-path
    def _compute_workspace(self, atoms: Atoms, box: Box, neighbors: NeighborData, w) -> ForceResult:
        """The preallocated hot path: same per-pair arithmetic as the
        reference ``compute`` above, staged through workspace buffers.

        Out-of-cutoff pairs (the neighbour list carries the skin) are handled
        by *masked* arithmetic — their energy/force terms are multiplied to
        exact zero instead of being compressed out — so no boolean-index
        re-gathers are needed and every array keeps the stable between-rebuild
        pair count.  The Newton scatter runs through ``np.bincount``.
        """
        n = len(atoms)
        pairs = neighbors.pairs
        forces = w.zeros("lj.forces", (n, 3))
        per_atom = w.zeros("lj.per_atom", n)
        n_pairs = len(pairs)
        if n_pairs == 0:
            return ForceResult(0.0, forces, per_atom)
        # contiguous index copies: consumed by one take and six bincounts
        i = w.capacity("lj.i", n_pairs, dtype=np.int64)
        j = w.capacity("lj.j", n_pairs, dtype=np.int64)
        np.copyto(i, pairs[:, 0])
        np.copyto(j, pairs[:, 1])

        delta = w.capacity("lj.delta", n_pairs, (3,))
        gather = w.capacity("lj.gather", n_pairs, (3,))
        np.take(atoms.positions, i, axis=0, out=delta)
        np.take(atoms.positions, j, axis=0, out=gather)
        delta -= gather
        scratch = w.capacity("lj.scratch", n_pairs)
        minimum_image_into(box, delta, scratch)

        r2 = w.capacity("lj.r2", n_pairs)
        np.einsum("ij,ij->i", delta, delta, out=r2)
        mask = w.capacity("lj.mask", n_pairs, dtype=np.bool_)
        np.less_equal(r2, self.cutoff * self.cutoff, out=mask)

        inv_r2 = w.capacity("lj.inv_r2", n_pairs)
        np.divide(1.0, r2, out=inv_r2)
        sr2 = w.capacity("lj.sr2", n_pairs)
        np.multiply(inv_r2, self.sigma * self.sigma, out=sr2)
        sr6 = w.capacity("lj.sr6", n_pairs)
        np.multiply(sr2, sr2, out=sr6)
        sr6 *= sr2
        sr12 = w.capacity("lj.sr12", n_pairs)
        np.multiply(sr6, sr6, out=sr12)

        pair_energy = w.capacity("lj.energy", n_pairs)
        np.subtract(sr12, sr6, out=pair_energy)
        pair_energy *= 4.0 * self.epsilon
        pair_energy -= self._e_cut
        pair_energy *= mask

        coeff = w.capacity("lj.coeff", n_pairs)
        np.multiply(sr12, 2.0, out=coeff)
        coeff -= sr6
        coeff *= 24.0 * self.epsilon
        coeff *= inv_r2
        coeff *= mask

        delta *= coeff[:, None]
        scatter_add_vectors(forces, i, j, delta)
        energy = float(pair_energy.sum())
        pair_energy *= 0.5
        scatter_add_scalars(per_atom, i, pair_energy)
        scatter_add_scalars(per_atom, j, pair_energy)
        return ForceResult(energy, forces, per_atom)
