"""Lennard-Jones 12-6 potential (the classical-force-field baseline).

The paper contrasts NNMD with classical force fields "like Lennard-Jones";
this implementation provides that baseline, with the standard energy shift at
the cutoff so the potential is continuous.
"""

from __future__ import annotations

import numpy as np

from ..atoms import Atoms
from ..box import Box
from ..neighbor import NeighborData
from .base import ForceField, ForceResult, accumulate_pair_forces


class LennardJones(ForceField):
    """Single-species LJ potential: ``4 eps [(sigma/r)^12 - (sigma/r)^6]``."""

    def __init__(self, epsilon: float, sigma: float, cutoff: float, shift: bool = True) -> None:
        if epsilon <= 0 or sigma <= 0 or cutoff <= 0:
            raise ValueError("epsilon, sigma and cutoff must be positive")
        self.epsilon = float(epsilon)
        self.sigma = float(sigma)
        self.cutoff = float(cutoff)
        self.shift = bool(shift)
        sr6 = (self.sigma / self.cutoff) ** 6
        self._e_cut = 4.0 * self.epsilon * (sr6 * sr6 - sr6) if shift else 0.0

    def compute(self, atoms: Atoms, box: Box, neighbors: NeighborData) -> ForceResult:
        n = len(atoms)
        pairs = neighbors.pairs
        forces = np.zeros((n, 3))
        per_atom = np.zeros(n)
        if len(pairs) == 0:
            return ForceResult(0.0, forces, per_atom)

        delta = atoms.positions[pairs[:, 0]] - atoms.positions[pairs[:, 1]]
        delta = box.minimum_image(delta)
        r2 = np.einsum("ij,ij->i", delta, delta)
        mask = r2 <= self.cutoff * self.cutoff
        pairs = pairs[mask]
        delta = delta[mask]
        r2 = r2[mask]
        if len(pairs) == 0:
            return ForceResult(0.0, forces, per_atom)

        inv_r2 = 1.0 / r2
        sr2 = self.sigma * self.sigma * inv_r2
        sr6 = sr2 * sr2 * sr2
        sr12 = sr6 * sr6
        pair_energy = 4.0 * self.epsilon * (sr12 - sr6) - self._e_cut
        # dE/dr * (1/r) so the force vector is coeff * delta
        coeff = 24.0 * self.epsilon * (2.0 * sr12 - sr6) * inv_r2
        pair_forces = coeff[:, None] * delta

        forces = accumulate_pair_forces(n, pairs, pair_forces)
        np.add.at(per_atom, pairs[:, 0], 0.5 * pair_energy)
        np.add.at(per_atom, pairs[:, 1], 0.5 * pair_energy)
        return ForceResult(float(pair_energy.sum()), forces, per_atom)
