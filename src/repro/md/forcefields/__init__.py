"""Force fields for the MD engine.

The analytic potentials below serve two roles:

* as the *pseudo-AIMD reference* generating training/validation data for the
  Deep Potential model (the paper trains on DFT data we cannot run here), and
* as classical baselines against which the NNMD cost structure is contrasted.

All force fields implement :class:`ForceField` and return a
:class:`ForceResult` holding total energy, per-atom energies, and forces.
"""

from .base import ForceField, ForceResult
from .lj import LennardJones
from .morse import MorsePotential
from .gupta import GuptaPotential
from .water import WaterReference

__all__ = [
    "ForceField",
    "ForceResult",
    "LennardJones",
    "MorsePotential",
    "GuptaPotential",
    "WaterReference",
]
