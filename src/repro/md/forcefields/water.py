"""Flexible SPC-like water reference potential.

The paper's water benchmark runs a Deep Potential trained on ab initio data;
here the "ab initio" reference is a classical flexible water model:

* harmonic O-H bonds and H-O-H angles (intramolecular),
* O-O Lennard-Jones,
* shifted-force Coulomb between atoms of different molecules (SPC/E charges),

all short-ranged so the whole interaction fits inside the 6 A cutoff used by
the paper's water system.  The model produces liquid-water-like radial
distribution functions, which is all Fig. 6 needs.
"""

from __future__ import annotations

import numpy as np

from ..atoms import Atoms
from ..box import Box
from ..neighbor import NeighborData
from ..water import WaterTopology
from ..workspace import scatter_add_scalars, scatter_add_vectors
from .base import ForceField, ForceResult

#: Coulomb constant e^2 / (4 pi eps0) in eV*A.
COULOMB_CONSTANT = 14.399645

#: SPC/E partial charges.
Q_OXYGEN = -0.8476
Q_HYDROGEN = 0.4238


class WaterReference(ForceField):
    """Flexible SPC-like water model (types: O=0, H=1)."""

    #: Pair + bonded terms; the engine remaps bonds/angles to rank-local
    #: indices via :meth:`with_topology`.
    parallel_strategy = "molecular"

    def __init__(
        self,
        topology: WaterTopology,
        cutoff: float = 6.0,
        k_bond: float = 45.93,
        r0_bond: float = 1.0,
        k_angle: float = 3.29,
        theta0_deg: float = 109.47,
        lj_epsilon: float = 6.737e-3,
        lj_sigma: float = 3.166,
    ) -> None:
        if cutoff <= 0:
            raise ValueError("cutoff must be positive")
        self.topology = topology
        self.cutoff = float(cutoff)
        self.k_bond = float(k_bond)
        self.r0_bond = float(r0_bond)
        self.k_angle = float(k_angle)
        self.theta0 = float(np.deg2rad(theta0_deg))
        self.lj_epsilon = float(lj_epsilon)
        self.lj_sigma = float(lj_sigma)
        sr6 = (self.lj_sigma / self.cutoff) ** 6
        self._lj_shift = 4.0 * self.lj_epsilon * (sr6 * sr6 - sr6)

    def with_topology(self, topology: WaterTopology) -> "WaterReference":
        """A clone sharing every parameter but bound to another topology.

        The domain-decomposed engine uses this to evaluate each rank's local
        system: bonds/angles are filtered to the terms the rank owns and
        remapped to local (owned+ghost) indices, while the physics stays
        bit-identical to the serial force field.
        """
        clone = WaterReference(
            topology=topology,
            cutoff=self.cutoff,
            k_bond=self.k_bond,
            r0_bond=self.r0_bond,
            k_angle=self.k_angle,
            theta0_deg=float(np.rad2deg(self.theta0)),
            lj_epsilon=self.lj_epsilon,
            lj_sigma=self.lj_sigma,
        )
        # deg→rad→deg can be off by one ulp; keep the angle bit-identical.
        clone.theta0 = self.theta0
        return clone

    # -- intramolecular terms --------------------------------------------------
    def _bond_terms(self, atoms: Atoms, box: Box, forces: np.ndarray, per_atom: np.ndarray) -> float:
        bonds = self.topology.bonds
        if len(bonds) == 0:
            return 0.0
        delta = atoms.positions[bonds[:, 0]] - atoms.positions[bonds[:, 1]]
        delta = box.minimum_image(delta)
        r = np.linalg.norm(delta, axis=1)
        dr = r - self.r0_bond
        energy = 0.5 * self.k_bond * dr * dr
        f_mag = -self.k_bond * dr  # force on atom 0 along +delta
        pair_forces = (f_mag / r)[:, None] * delta
        np.add.at(forces, bonds[:, 0], pair_forces)  # reprolint: allow[alloc] O(bonds) intramolecular scatter the parity tests pin
        np.add.at(forces, bonds[:, 1], -pair_forces)  # reprolint: allow[alloc] O(bonds) intramolecular scatter the parity tests pin
        np.add.at(per_atom, bonds[:, 0], 0.5 * energy)  # reprolint: allow[alloc] O(bonds) intramolecular scatter the parity tests pin
        np.add.at(per_atom, bonds[:, 1], 0.5 * energy)  # reprolint: allow[alloc] O(bonds) intramolecular scatter the parity tests pin
        return float(energy.sum())

    def _angle_terms(self, atoms: Atoms, box: Box, forces: np.ndarray, per_atom: np.ndarray) -> float:
        angles = self.topology.angles
        if len(angles) == 0:
            return 0.0
        # Convention: angles rows are (H1, O, H2); theta is at the middle atom.
        i, j, k = angles[:, 0], angles[:, 1], angles[:, 2]
        a = box.minimum_image(atoms.positions[i] - atoms.positions[j])
        b = box.minimum_image(atoms.positions[k] - atoms.positions[j])
        ra = np.linalg.norm(a, axis=1)
        rb = np.linalg.norm(b, axis=1)
        cos_theta = np.einsum("ij,ij->i", a, b) / (ra * rb)
        cos_theta = np.clip(cos_theta, -1.0 + 1.0e-12, 1.0 - 1.0e-12)
        theta = np.arccos(cos_theta)
        sin_theta = np.sqrt(1.0 - cos_theta * cos_theta)
        d_theta = theta - self.theta0
        energy = 0.5 * self.k_angle * d_theta * d_theta
        de_dtheta = self.k_angle * d_theta

        # F_i = (dE/dtheta / sin) * (b/(ra rb) - cos * a/ra^2), analogous for F_k.
        coeff = (de_dtheta / sin_theta)[:, None]
        f_i = coeff * (b / (ra * rb)[:, None] - cos_theta[:, None] * a / (ra * ra)[:, None])
        f_k = coeff * (a / (ra * rb)[:, None] - cos_theta[:, None] * b / (rb * rb)[:, None])
        f_j = -(f_i + f_k)
        np.add.at(forces, i, f_i)  # reprolint: allow[alloc] O(angles) intramolecular scatter the parity tests pin
        np.add.at(forces, j, f_j)  # reprolint: allow[alloc] O(angles) intramolecular scatter the parity tests pin
        np.add.at(forces, k, f_k)  # reprolint: allow[alloc] O(angles) intramolecular scatter the parity tests pin
        np.add.at(per_atom, j, energy)  # reprolint: allow[alloc] O(angles) intramolecular scatter the parity tests pin
        return float(energy.sum())

    # -- intermolecular terms ---------------------------------------------------
    # reprolint: hot-path
    def _nonbonded_terms(
        self,
        atoms: Atoms,
        box: Box,
        neighbors: NeighborData,
        forces: np.ndarray,
        per_atom: np.ndarray,
        workspace=None,
    ) -> float:
        pairs = neighbors.pairs
        if len(pairs) == 0:
            return 0.0
        mol = self.topology.molecules
        mask_inter = mol[pairs[:, 0]] != mol[pairs[:, 1]]
        pairs = pairs[mask_inter]
        if len(pairs) == 0:
            return 0.0
        delta = atoms.positions[pairs[:, 0]] - atoms.positions[pairs[:, 1]]
        delta = box.minimum_image(delta)
        r2 = np.einsum("ij,ij->i", delta, delta)
        within = r2 <= self.cutoff * self.cutoff
        pairs, delta, r2 = pairs[within], delta[within], r2[within]
        if len(pairs) == 0:
            return 0.0
        r = np.sqrt(r2)
        inv_r = 1.0 / r

        charges = np.where(atoms.types == 0, Q_OXYGEN, Q_HYDROGEN)
        qq = COULOMB_CONSTANT * charges[pairs[:, 0]] * charges[pairs[:, 1]]
        rc = self.cutoff
        # Shifted-force Coulomb: E = qq (1/r - 1/rc + (r - rc)/rc^2); E(rc)=E'(rc)=0.
        e_coul = qq * (inv_r - 1.0 / rc + (r - rc) / (rc * rc))
        f_coul = qq * (inv_r * inv_r - 1.0 / (rc * rc))  # -dE/dr

        # O-O Lennard-Jones.
        oo_mask = (atoms.types[pairs[:, 0]] == 0) & (atoms.types[pairs[:, 1]] == 0)
        if workspace is not None:
            e_lj = workspace.capacity("water.e_lj", len(e_coul))
            f_lj = workspace.capacity("water.f_lj", len(f_coul))
            e_lj.fill(0.0)
            f_lj.fill(0.0)
        else:
            e_lj = np.zeros_like(e_coul)
            f_lj = np.zeros_like(f_coul)
        if np.any(oo_mask):
            inv_r2 = 1.0 / r2[oo_mask]
            sr2 = self.lj_sigma * self.lj_sigma * inv_r2
            sr6 = sr2 * sr2 * sr2
            sr12 = sr6 * sr6
            e_lj[oo_mask] = 4.0 * self.lj_epsilon * (sr12 - sr6) - self._lj_shift
            f_lj[oo_mask] = 24.0 * self.lj_epsilon * (2.0 * sr12 - sr6) * inv_r2 * r[oo_mask]

        energy = e_coul + e_lj
        f_mag = f_coul + f_lj
        pair_forces = (f_mag * inv_r)[:, None] * delta
        if workspace is not None:
            # the nonbonded pair list dominates the term count — scatter it
            # through bincount instead of the np.add.at scalar loop
            scatter_add_vectors(forces, pairs[:, 0], pairs[:, 1], pair_forces)
            half = 0.5 * energy
            scatter_add_scalars(per_atom, pairs[:, 0], half)
            scatter_add_scalars(per_atom, pairs[:, 1], half)
        else:
            np.add.at(forces, pairs[:, 0], pair_forces)  # reprolint: allow[alloc] golden reference scatter the bincount path is pinned against
            np.add.at(forces, pairs[:, 1], -pair_forces)  # reprolint: allow[alloc] golden reference scatter the bincount path is pinned against
            np.add.at(per_atom, pairs[:, 0], 0.5 * energy)  # reprolint: allow[alloc] golden reference scatter the bincount path is pinned against
            np.add.at(per_atom, pairs[:, 1], 0.5 * energy)  # reprolint: allow[alloc] golden reference scatter the bincount path is pinned against
        return float(energy.sum())

    # reprolint: hot-path
    def compute(
        self, atoms: Atoms, box: Box, neighbors: NeighborData, workspace=None
    ) -> ForceResult:
        n = len(atoms)
        if workspace is not None:
            forces = workspace.zeros("water.forces", (n, 3))
            per_atom = workspace.zeros("water.per_atom", n)
        else:
            forces = np.zeros((n, 3))  # reprolint: allow[alloc] workspace-less reference branch allocates per call by design
            per_atom = np.zeros(n)  # reprolint: allow[alloc] workspace-less reference branch allocates per call by design
        energy = 0.0
        energy += self._bond_terms(atoms, box, forces, per_atom)
        energy += self._angle_terms(atoms, box, forces, per_atom)
        energy += self._nonbonded_terms(atoms, box, neighbors, forces, per_atom, workspace)
        return ForceResult(energy, forces, per_atom)
