"""Force-field interface shared by reference potentials and the DP model."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..atoms import Atoms
from ..box import Box
from ..neighbor import NeighborData


@dataclass
class ForceResult:
    """The output of one force evaluation.

    Attributes
    ----------
    energy:
        total potential energy in eV.
    forces:
        ``(n, 3)`` forces in eV/A.
    per_atom_energy:
        ``(n,)`` atomic energy decomposition (sums to ``energy``).
    virial:
        optional 3x3 virial tensor (eV).
    """

    energy: float
    forces: np.ndarray
    per_atom_energy: np.ndarray | None = None
    virial: np.ndarray | None = None

    def __post_init__(self) -> None:
        self.forces = np.asarray(self.forces, dtype=np.float64)
        if self.per_atom_energy is not None:
            self.per_atom_energy = np.asarray(self.per_atom_energy, dtype=np.float64)


class ForceField:
    """Base class: a force field maps (atoms, box, neighbours) to forces."""

    #: interaction cutoff in angstrom; ``None`` means the force field decides.
    cutoff: float = 0.0

    #: How the domain-decomposed engine splits this force field over ranks
    #: (see :mod:`repro.parallel.engine`):
    #:
    #: * ``"pair"`` — energy/forces decompose into pair terms; each pair is
    #:   computed once globally, by the rank owning the member with the lower
    #:   global id, and ghost forces are reverse-scattered (LJ, Morse).
    #: * ``"molecular"`` — pair terms plus bonded terms (bonds/angles); each
    #:   bonded term is computed by the owner of its lowest-id member and the
    #:   force field must provide ``with_topology`` for rank-local index maps
    #:   (flexible water).
    #: * ``"density"`` — EAM-like: a per-atom density is accumulated first,
    #:   its embedding derivative is forward-communicated to ghost copies,
    #:   then pair forces are evaluated once per pair (Gupta).
    #: * ``"peratom"`` — the energy is a sum of per-atom terms over each
    #:   atom's full neighbour list; ranks evaluate owned atoms only and
    #:   reverse-scatter the neighbour forces (Deep Potential).
    parallel_strategy: str = "pair"

    def compute(
        self, atoms: Atoms, box: Box, neighbors: NeighborData, workspace=None
    ) -> ForceResult:
        """Evaluate energy/forces; see :class:`ForceResult`.

        ``workspace`` (a :class:`repro.md.workspace.Workspace`) opts into the
        ``out=``-style low-allocation path: the returned force/per-atom
        arrays are preallocated workspace buffers, valid until the *next*
        ``compute`` call with the same workspace.  With ``workspace=None``
        (the default) every array is freshly allocated — the original
        reference behaviour the workspace paths are parity-pinned against.
        """
        raise NotImplementedError

    def energy(self, atoms: Atoms, box: Box, neighbors: NeighborData) -> float:
        return self.compute(atoms, box, neighbors).energy

    # -- finite-difference helper (used by the test-suite) -------------------
    def numerical_forces(
        self,
        atoms: Atoms,
        box: Box,
        neighbors_builder,
        delta: float = 1.0e-5,
    ) -> np.ndarray:
        """Central-difference forces; ``neighbors_builder(atoms)`` must return
        a fresh :class:`NeighborData` for perturbed coordinates.

        The stencil and the force table are assembled with array operations;
        the only remaining loop issues the 6n independent black-box energy
        evaluations, reusing one O(n) position buffer per trial instead of a
        full per-element ``Atoms`` copy.
        """
        base = atoms.copy()
        n = len(base)
        if n == 0:
            return np.zeros((0, 3))

        # bump[axis] is the +delta displacement vector along that axis; the
        # unperturbed rows are wrapped once up front (wrapping is idempotent,
        # so this matches wrapping each whole perturbed configuration).
        bump = delta * np.eye(3)
        signs = (+1.0, -1.0)
        wrapped = box.wrap(base.positions)

        trial = base.copy()
        buffer = np.empty_like(wrapped)
        energies = np.empty((n, 3, 2))
        for i in range(n):
            for axis in range(3):
                for slot, sign in enumerate(signs):
                    np.copyto(buffer, wrapped)
                    buffer[i] = box.wrap(base.positions[i] + sign * bump[axis])
                    trial.positions = buffer
                    nd = neighbors_builder(trial)
                    energies[i, axis, slot] = self.compute(trial, box, nd).energy

        return -(energies[..., 0] - energies[..., 1]) / (2.0 * delta)


def accumulate_pair_forces(
    n_atoms: int,
    pairs: np.ndarray,
    pair_forces: np.ndarray,
) -> np.ndarray:
    """Scatter per-pair forces (acting on atom i of each i<j pair) onto atoms.

    ``pair_forces[k]`` is the force on ``pairs[k, 0]`` due to ``pairs[k, 1]``;
    Newton's third law applies the opposite force to the partner.  This is
    the allocating *reference* scatter; the workspace hot paths use
    :func:`repro.md.workspace.scatter_add_vectors` (per-component
    ``np.bincount``, ~4x faster at MD pair counts) instead.
    """
    forces = np.zeros((n_atoms, 3))
    if len(pairs) == 0:
        return forces
    np.add.at(forces, pairs[:, 0], pair_forces)
    np.add.at(forces, pairs[:, 1], -pair_forces)
    return forces
