"""Morse pair potential parameterized for copper.

Used as a smooth pseudo-AIMD reference for the copper benchmark (the paper's
copper model is a Deep Potential trained on DFT; any smooth metallic-like
reference exercises the same training/inference code paths).
"""

from __future__ import annotations

import numpy as np

from ..atoms import Atoms
from ..box import Box
from ..neighbor import NeighborData
from ..workspace import minimum_image_into, scatter_add_scalars, scatter_add_vectors
from .base import ForceField, ForceResult, accumulate_pair_forces

#: Literature Morse parameters for copper (Girifalco & Weizer, 1959).
CU_MORSE = {"d": 0.3429, "alpha": 1.3588, "r0": 2.866}


class MorsePotential(ForceField):
    """``E(r) = d [exp(-2 a (r - r0)) - 2 exp(-a (r - r0))]`` with a shift."""

    def __init__(
        self,
        d: float = CU_MORSE["d"],
        alpha: float = CU_MORSE["alpha"],
        r0: float = CU_MORSE["r0"],
        cutoff: float = 8.0,
        shift: bool = True,
    ) -> None:
        if d <= 0 or alpha <= 0 or r0 <= 0 or cutoff <= 0:
            raise ValueError("Morse parameters must be positive")
        self.d = float(d)
        self.alpha = float(alpha)
        self.r0 = float(r0)
        self.cutoff = float(cutoff)
        self._e_cut = self._pair_energy(np.array([cutoff]))[0] if shift else 0.0

    def _pair_energy(self, r: np.ndarray) -> np.ndarray:
        x = np.exp(-self.alpha * (r - self.r0))
        return self.d * (x * x - 2.0 * x)

    def _pair_energy_force(self, r: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Returns (energy, -dE/dr)."""
        x = np.exp(-self.alpha * (r - self.r0))
        energy = self.d * (x * x - 2.0 * x) - self._e_cut
        dedr = self.d * (-2.0 * self.alpha * x * x + 2.0 * self.alpha * x)
        return energy, -dedr

    def compute(
        self, atoms: Atoms, box: Box, neighbors: NeighborData, workspace=None
    ) -> ForceResult:
        if workspace is not None:
            return self._compute_workspace(atoms, box, neighbors, workspace)
        n = len(atoms)
        pairs = neighbors.pairs
        forces = np.zeros((n, 3))
        per_atom = np.zeros(n)
        if len(pairs) == 0:
            return ForceResult(0.0, forces, per_atom)
        delta = atoms.positions[pairs[:, 0]] - atoms.positions[pairs[:, 1]]
        delta = box.minimum_image(delta)
        r = np.linalg.norm(delta, axis=1)
        mask = r <= self.cutoff
        pairs, delta, r = pairs[mask], delta[mask], r[mask]
        if len(pairs) == 0:
            return ForceResult(0.0, forces, per_atom)
        energy, f_mag = self._pair_energy_force(r)
        pair_forces = (f_mag / r)[:, None] * delta
        forces = accumulate_pair_forces(n, pairs, pair_forces)
        np.add.at(per_atom, pairs[:, 0], 0.5 * energy)
        np.add.at(per_atom, pairs[:, 1], 0.5 * energy)
        return ForceResult(float(energy.sum()), forces, per_atom)

    # reprolint: hot-path
    def _compute_workspace(self, atoms: Atoms, box: Box, neighbors: NeighborData, w) -> ForceResult:
        """Preallocated hot path: masked per-pair arithmetic (skin pairs
        multiply to exact zero) over workspace buffers, bincount scatter."""
        n = len(atoms)
        pairs = neighbors.pairs
        forces = w.zeros("morse.forces", (n, 3))
        per_atom = w.zeros("morse.per_atom", n)
        n_pairs = len(pairs)
        if n_pairs == 0:
            return ForceResult(0.0, forces, per_atom)
        i = w.capacity("morse.i", n_pairs, dtype=np.int64)
        j = w.capacity("morse.j", n_pairs, dtype=np.int64)
        np.copyto(i, pairs[:, 0])
        np.copyto(j, pairs[:, 1])

        delta = w.capacity("morse.delta", n_pairs, (3,))
        gather = w.capacity("morse.gather", n_pairs, (3,))
        np.take(atoms.positions, i, axis=0, out=delta)
        np.take(atoms.positions, j, axis=0, out=gather)
        delta -= gather
        scratch = w.capacity("morse.scratch", n_pairs)
        minimum_image_into(box, delta, scratch)

        r = w.capacity("morse.r", n_pairs)
        np.einsum("ij,ij->i", delta, delta, out=r)
        np.sqrt(r, out=r)
        mask = w.capacity("morse.mask", n_pairs, dtype=np.bool_)
        np.less_equal(r, self.cutoff, out=mask)

        # x = exp(-alpha (r - r0)); energy = d (x^2 - 2x) - e_cut
        x = w.capacity("morse.x", n_pairs)
        np.subtract(r, self.r0, out=x)
        x *= -self.alpha
        np.exp(x, out=x)
        energy = w.capacity("morse.energy", n_pairs)
        np.multiply(x, x, out=energy)
        two_x = w.capacity("morse.two_x", n_pairs)
        np.multiply(x, 2.0, out=two_x)
        energy -= two_x
        energy *= self.d
        energy -= self._e_cut
        energy *= mask

        # f_mag = -dE/dr = -d (-2 a x^2 + 2 a x)
        f_mag = w.capacity("morse.f_mag", n_pairs)
        np.multiply(x, x, out=f_mag)
        f_mag *= -2.0 * self.alpha
        two_x *= self.alpha  # (2 x) * alpha == 2 alpha x
        f_mag += two_x
        f_mag *= -self.d
        f_mag *= mask
        f_mag /= r

        delta *= f_mag[:, None]
        scatter_add_vectors(forces, i, j, delta)
        total = float(energy.sum())
        energy *= 0.5
        scatter_add_scalars(per_atom, i, energy)
        scatter_add_scalars(per_atom, j, energy)
        return ForceResult(total, forces, per_atom)
