"""Morse pair potential parameterized for copper.

Used as a smooth pseudo-AIMD reference for the copper benchmark (the paper's
copper model is a Deep Potential trained on DFT; any smooth metallic-like
reference exercises the same training/inference code paths).
"""

from __future__ import annotations

import numpy as np

from ..atoms import Atoms
from ..box import Box
from ..neighbor import NeighborData
from .base import ForceField, ForceResult, accumulate_pair_forces

#: Literature Morse parameters for copper (Girifalco & Weizer, 1959).
CU_MORSE = {"d": 0.3429, "alpha": 1.3588, "r0": 2.866}


class MorsePotential(ForceField):
    """``E(r) = d [exp(-2 a (r - r0)) - 2 exp(-a (r - r0))]`` with a shift."""

    def __init__(
        self,
        d: float = CU_MORSE["d"],
        alpha: float = CU_MORSE["alpha"],
        r0: float = CU_MORSE["r0"],
        cutoff: float = 8.0,
        shift: bool = True,
    ) -> None:
        if d <= 0 or alpha <= 0 or r0 <= 0 or cutoff <= 0:
            raise ValueError("Morse parameters must be positive")
        self.d = float(d)
        self.alpha = float(alpha)
        self.r0 = float(r0)
        self.cutoff = float(cutoff)
        self._e_cut = self._pair_energy(np.array([cutoff]))[0] if shift else 0.0

    def _pair_energy(self, r: np.ndarray) -> np.ndarray:
        x = np.exp(-self.alpha * (r - self.r0))
        return self.d * (x * x - 2.0 * x)

    def _pair_energy_force(self, r: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Returns (energy, -dE/dr)."""
        x = np.exp(-self.alpha * (r - self.r0))
        energy = self.d * (x * x - 2.0 * x) - self._e_cut
        dedr = self.d * (-2.0 * self.alpha * x * x + 2.0 * self.alpha * x)
        return energy, -dedr

    def compute(self, atoms: Atoms, box: Box, neighbors: NeighborData) -> ForceResult:
        n = len(atoms)
        pairs = neighbors.pairs
        forces = np.zeros((n, 3))
        per_atom = np.zeros(n)
        if len(pairs) == 0:
            return ForceResult(0.0, forces, per_atom)
        delta = atoms.positions[pairs[:, 0]] - atoms.positions[pairs[:, 1]]
        delta = box.minimum_image(delta)
        r = np.linalg.norm(delta, axis=1)
        mask = r <= self.cutoff
        pairs, delta, r = pairs[mask], delta[mask], r[mask]
        if len(pairs) == 0:
            return ForceResult(0.0, forces, per_atom)
        energy, f_mag = self._pair_energy_force(r)
        pair_forces = (f_mag / r)[:, None] * delta
        forces = accumulate_pair_forces(n, pairs, pair_forces)
        np.add.at(per_atom, pairs[:, 0], 0.5 * energy)
        np.add.at(per_atom, pairs[:, 1], 0.5 * energy)
        return ForceResult(float(energy.sum()), forces, per_atom)
