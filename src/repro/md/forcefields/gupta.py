"""Gupta / second-moment tight-binding potential for copper.

This is a genuinely many-body (EAM-like) potential, so the "pseudo-AIMD"
copper reference has the same qualitative character as the DFT data the paper
trains on: the atomic energy depends on the whole local environment, not only
on pair distances.

    E_i = sum_j A exp(-p (r_ij/r0 - 1)) - sqrt( sum_j xi^2 exp(-2 q (r_ij/r0 - 1)) )

Parameters default to the Cleri & Rosato (1993) copper fit.
"""

from __future__ import annotations

import numpy as np

from ..atoms import Atoms
from ..box import Box
from ..neighbor import NeighborData
from ..workspace import minimum_image_into, scatter_add_scalars, scatter_add_vectors
from .base import ForceField, ForceResult

#: Cleri & Rosato (PRB 48, 22) parameters for Cu.
CU_GUPTA = {"a": 0.0855, "xi": 1.224, "p": 10.960, "q": 2.278, "r0": 2.556}


class GuptaPotential(ForceField):
    """Second-moment approximation (SMA) many-body potential."""

    #: EAM-like: the engine forward-communicates the embedding derivative
    #: (1/sqrt(rho)) to ghost copies before evaluating pair forces.
    parallel_strategy = "density"

    def __init__(
        self,
        a: float = CU_GUPTA["a"],
        xi: float = CU_GUPTA["xi"],
        p: float = CU_GUPTA["p"],
        q: float = CU_GUPTA["q"],
        r0: float = CU_GUPTA["r0"],
        cutoff: float = 6.5,
    ) -> None:
        if min(a, xi, p, q, r0, cutoff) <= 0:
            raise ValueError("Gupta parameters must be positive")
        self.a = float(a)
        self.xi = float(xi)
        self.p = float(p)
        self.q = float(q)
        self.r0 = float(r0)
        self.cutoff = float(cutoff)

    # -- staged pair terms (shared by the serial path and the parallel engine) --
    def pair_terms(self, r: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Per-pair ``(repulsion, density, d(rep)/dr, d(rho)/dr)`` at distances ``r``.

        The repulsive term is counted once per member atom (it appears in both
        E_i and E_j), hence the factors of two in the radial derivatives:

        *   d(rep)/dr   = -2 A p / r0 * exp(-p x)
        *   d(rho_i)/dr = -2 q xi^2 / r0 * exp(-2 q x)
        """
        x = r / self.r0 - 1.0
        repulsion = self.a * np.exp(-self.p * x)
        density_pair = self.xi * self.xi * np.exp(-2.0 * self.q * x)
        drep_dr = -2.0 * self.a * self.p / self.r0 * np.exp(-self.p * x)
        drho_dr = -2.0 * self.q * self.xi * self.xi / self.r0 * np.exp(-2.0 * self.q * x)
        return repulsion, density_pair, drep_dr, drho_dr

    @staticmethod
    def embedding_terms(rho: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """``(sqrt(rho), 1/sqrt(rho))`` with rho floored away from zero.

        The floor keeps zero-density atoms finite; their (meaningless)
        derivative is never consumed because such atoms have no in-cutoff
        pairs, and their energy is fixed up separately in ``compute``.
        """
        sqrt_rho = np.sqrt(np.maximum(rho, 1.0e-300))
        return sqrt_rho, 1.0 / sqrt_rho

    @staticmethod
    def pair_dE_dr(
        drep_dr: np.ndarray,
        drho_dr: np.ndarray,
        inv_sqrt_i: np.ndarray,
        inv_sqrt_j: np.ndarray,
    ) -> np.ndarray:
        """Radial derivative of the total energy for one pair:

        ``dE/dr = d(rep)/dr - 0.5 (1/sqrt(rho_i) + 1/sqrt(rho_j)) d(rho)/dr``

        Shared by the serial ``compute`` and the parallel density evaluator so
        the force expression has a single source of truth.
        """
        return drep_dr - 0.5 * (inv_sqrt_i + inv_sqrt_j) * drho_dr

    # The no-workspace branch below is the golden reference the workspace
    # path is parity-pinned against: it deliberately keeps the allocating
    # ``np.zeros`` + ``np.add.at`` formulation, exemption-documented line by
    # line rather than rewritten.
    # reprolint: hot-path
    def compute(
        self, atoms: Atoms, box: Box, neighbors: NeighborData, workspace=None
    ) -> ForceResult:
        if workspace is not None:
            return self._compute_workspace(atoms, box, neighbors, workspace)
        n = len(atoms)
        pairs = neighbors.pairs
        forces = np.zeros((n, 3))  # reprolint: allow[alloc] golden no-workspace reference branch, kept allocating for the parity pin
        per_atom = np.zeros(n)  # reprolint: allow[alloc] golden no-workspace reference branch, kept allocating for the parity pin
        if len(pairs) == 0:
            return ForceResult(0.0, forces, per_atom)

        delta = atoms.positions[pairs[:, 0]] - atoms.positions[pairs[:, 1]]
        delta = box.minimum_image(delta)
        r = np.linalg.norm(delta, axis=1)
        mask = r <= self.cutoff
        pairs, delta, r = pairs[mask], delta[mask], r[mask]
        if len(pairs) == 0:
            return ForceResult(0.0, forces, per_atom)

        i_idx, j_idx = pairs[:, 0], pairs[:, 1]
        repulsion, density_pair, drep_dr, drho_dr = self.pair_terms(r)

        # per-atom repulsive energy and embedding density
        rep_atom = np.zeros(n)  # reprolint: allow[alloc] golden no-workspace reference branch, kept allocating for the parity pin
        np.add.at(rep_atom, i_idx, repulsion)  # reprolint: allow[alloc] golden reference scatter the bincount path is pinned against
        np.add.at(rep_atom, j_idx, repulsion)  # reprolint: allow[alloc] golden reference scatter the bincount path is pinned against
        rho = np.zeros(n)  # reprolint: allow[alloc] golden no-workspace reference branch, kept allocating for the parity pin
        np.add.at(rho, i_idx, density_pair)  # reprolint: allow[alloc] golden reference scatter the bincount path is pinned against
        np.add.at(rho, j_idx, density_pair)  # reprolint: allow[alloc] golden reference scatter the bincount path is pinned against

        sqrt_rho, inv_sqrt = self.embedding_terms(rho)
        per_atom = rep_atom - sqrt_rho
        # Atoms with no neighbours contribute nothing.
        per_atom[rho == 0.0] = rep_atom[rho == 0.0]
        energy = float(per_atom.sum())

        # Pair force magnitude (positive = repulsive), acting on atom i along +delta.
        dE_dr = self.pair_dE_dr(drep_dr, drho_dr, inv_sqrt[i_idx], inv_sqrt[j_idx])
        f_mag = -dE_dr  # force on i along +delta direction
        pair_forces = (f_mag / r)[:, None] * delta
        np.add.at(forces, i_idx, pair_forces)  # reprolint: allow[alloc] golden reference scatter the bincount path is pinned against
        np.add.at(forces, j_idx, -pair_forces)  # reprolint: allow[alloc] golden reference scatter the bincount path is pinned against
        return ForceResult(energy, forces, per_atom)

    # reprolint: hot-path
    def _compute_workspace(self, atoms: Atoms, box: Box, neighbors: NeighborData, w) -> ForceResult:
        """Preallocated hot path: in-cutoff pairs are *compressed* (the
        exp-heavy staged terms only run on surviving pairs), per-atom
        densities and the Newton scatter accumulate through ``np.bincount``
        into workspace buffers; the staged ``pair_terms`` /
        ``embedding_terms`` / ``pair_dE_dr`` formulas stay the single source
        of truth shared with the parallel density evaluator."""
        n = len(atoms)
        pairs = neighbors.pairs
        forces = w.zeros("gupta.forces", (n, 3))
        per_atom = w.zeros("gupta.per_atom", n)
        n_pairs = len(pairs)
        if n_pairs == 0:
            return ForceResult(0.0, forces, per_atom)
        delta_all = w.capacity("gupta.delta_all", n_pairs, (3,))
        gather = w.capacity("gupta.gather", n_pairs, (3,))
        np.take(atoms.positions, pairs[:, 0], axis=0, out=delta_all)
        np.take(atoms.positions, pairs[:, 1], axis=0, out=gather)
        delta_all -= gather
        scratch = w.capacity("gupta.scratch", n_pairs)
        minimum_image_into(box, delta_all, scratch)
        r_all = w.capacity("gupta.r_all", n_pairs)
        np.einsum("ij,ij->i", delta_all, delta_all, out=r_all)
        np.sqrt(r_all, out=r_all)

        keep = np.nonzero(r_all <= self.cutoff)[0]
        m = len(keep)
        if m == 0:
            return ForceResult(0.0, forces, per_atom)
        i_idx = w.capacity("gupta.i", m, dtype=np.int64)
        j_idx = w.capacity("gupta.j", m, dtype=np.int64)
        np.take(pairs[:, 0], keep, out=i_idx)
        np.take(pairs[:, 1], keep, out=j_idx)
        delta = w.capacity("gupta.delta", m, (3,))
        np.take(delta_all, keep, axis=0, out=delta)
        r = w.capacity("gupta.r", m)
        np.take(r_all, keep, out=r)

        repulsion, density_pair, drep_dr, drho_dr = self.pair_terms(r)

        rep_atom = w.zeros("gupta.rep_atom", n)
        scatter_add_scalars(rep_atom, i_idx, repulsion)
        scatter_add_scalars(rep_atom, j_idx, repulsion)
        rho = w.zeros("gupta.rho", n)
        scatter_add_scalars(rho, i_idx, density_pair)
        scatter_add_scalars(rho, j_idx, density_pair)

        sqrt_rho, inv_sqrt = self.embedding_terms(rho)
        np.subtract(rep_atom, sqrt_rho, out=per_atom)
        isolated = rho == 0.0
        per_atom[isolated] = rep_atom[isolated]
        energy = float(per_atom.sum())

        dE_dr = self.pair_dE_dr(drep_dr, drho_dr, inv_sqrt[i_idx], inv_sqrt[j_idx])
        coeff = w.capacity("gupta.coeff", m)
        np.negative(dE_dr, out=coeff)
        coeff /= r
        delta *= coeff[:, None]
        scatter_add_vectors(forces, i_idx, j_idx, delta)
        return ForceResult(energy, forces, per_atom)

    def cohesive_energy_estimate(self, atoms: Atoms, box: Box, neighbors: NeighborData) -> float:
        """Energy per atom (eV/atom), a convenient sanity metric for copper."""
        if len(atoms) == 0:
            return 0.0
        return self.compute(atoms, box, neighbors).energy / len(atoms)
