"""Gupta / second-moment tight-binding potential for copper.

This is a genuinely many-body (EAM-like) potential, so the "pseudo-AIMD"
copper reference has the same qualitative character as the DFT data the paper
trains on: the atomic energy depends on the whole local environment, not only
on pair distances.

    E_i = sum_j A exp(-p (r_ij/r0 - 1)) - sqrt( sum_j xi^2 exp(-2 q (r_ij/r0 - 1)) )

Parameters default to the Cleri & Rosato (1993) copper fit.
"""

from __future__ import annotations

import numpy as np

from ..atoms import Atoms
from ..box import Box
from ..neighbor import NeighborData
from .base import ForceField, ForceResult

#: Cleri & Rosato (PRB 48, 22) parameters for Cu.
CU_GUPTA = {"a": 0.0855, "xi": 1.224, "p": 10.960, "q": 2.278, "r0": 2.556}


class GuptaPotential(ForceField):
    """Second-moment approximation (SMA) many-body potential."""

    def __init__(
        self,
        a: float = CU_GUPTA["a"],
        xi: float = CU_GUPTA["xi"],
        p: float = CU_GUPTA["p"],
        q: float = CU_GUPTA["q"],
        r0: float = CU_GUPTA["r0"],
        cutoff: float = 6.5,
    ) -> None:
        if min(a, xi, p, q, r0, cutoff) <= 0:
            raise ValueError("Gupta parameters must be positive")
        self.a = float(a)
        self.xi = float(xi)
        self.p = float(p)
        self.q = float(q)
        self.r0 = float(r0)
        self.cutoff = float(cutoff)

    def compute(self, atoms: Atoms, box: Box, neighbors: NeighborData) -> ForceResult:
        n = len(atoms)
        pairs = neighbors.pairs
        forces = np.zeros((n, 3))
        per_atom = np.zeros(n)
        if len(pairs) == 0:
            return ForceResult(0.0, forces, per_atom)

        delta = atoms.positions[pairs[:, 0]] - atoms.positions[pairs[:, 1]]
        delta = box.minimum_image(delta)
        r = np.linalg.norm(delta, axis=1)
        mask = r <= self.cutoff
        pairs, delta, r = pairs[mask], delta[mask], r[mask]
        if len(pairs) == 0:
            return ForceResult(0.0, forces, per_atom)

        i_idx, j_idx = pairs[:, 0], pairs[:, 1]
        x = r / self.r0 - 1.0
        repulsion = self.a * np.exp(-self.p * x)  # per pair, counted once per atom
        density_pair = self.xi * self.xi * np.exp(-2.0 * self.q * x)

        # per-atom repulsive energy and embedding density
        rep_atom = np.zeros(n)
        np.add.at(rep_atom, i_idx, repulsion)
        np.add.at(rep_atom, j_idx, repulsion)
        rho = np.zeros(n)
        np.add.at(rho, i_idx, density_pair)
        np.add.at(rho, j_idx, density_pair)

        sqrt_rho = np.sqrt(np.maximum(rho, 1.0e-300))
        per_atom = rep_atom - sqrt_rho
        # Atoms with no neighbours contribute nothing.
        per_atom[rho == 0.0] = rep_atom[rho == 0.0]
        energy = float(per_atom.sum())

        # Pair force magnitude (positive = repulsive), acting on atom i along +delta.
        #   d(rep)/dr   = -2 A p / r0 * exp(-p x)        (pair appears in E_i and E_j)
        #   d(rho_i)/dr = -2 q xi^2 / r0 * exp(-2 q x)
        #   dE/dr       = d(rep)/dr - 0.5 (1/sqrt(rho_i) + 1/sqrt(rho_j)) d(rho)/dr
        inv_sqrt = np.zeros(n)
        nonzero = sqrt_rho > 0.0
        inv_sqrt[nonzero] = 1.0 / sqrt_rho[nonzero]
        drep_dr = -2.0 * self.a * self.p / self.r0 * np.exp(-self.p * x)
        drho_dr = -2.0 * self.q * self.xi * self.xi / self.r0 * np.exp(-2.0 * self.q * x)
        dE_dr = drep_dr - 0.5 * (inv_sqrt[i_idx] + inv_sqrt[j_idx]) * drho_dr
        f_mag = -dE_dr  # force on i along +delta direction
        pair_forces = (f_mag / r)[:, None] * delta
        np.add.at(forces, i_idx, pair_forces)
        np.add.at(forces, j_idx, -pair_forces)
        return ForceResult(energy, forces, per_atom)

    def cohesive_energy_estimate(self, atoms: Atoms, box: Box, neighbors: NeighborData) -> float:
        """Energy per atom (eV/atom), a convenient sanity metric for copper."""
        if len(atoms) == 0:
            return 0.0
        return self.compute(atoms, box, neighbors).energy / len(atoms)
