"""A self-contained molecular-dynamics engine (the "LAMMPS" substrate).

The paper's optimizations act on the structure of a LAMMPS MD step: neighbour
list construction, ghost-region communication, the pair (force) phase, and
integration.  This package implements that structure in NumPy:

* :class:`Box` — orthorhombic periodic simulation cell,
* :class:`Atoms` — structure-of-arrays atom container,
* :mod:`lattice <repro.md.lattice>` / :mod:`water <repro.md.water>` — builders
  for the copper and water benchmark systems,
* :class:`NeighborList` — cell-list neighbour search with skin and re-build
  cadence (the paper rebuilds every 50 steps with a 2 A skin),
* :mod:`forcefields <repro.md.forcefields>` — Lennard-Jones, Morse and
  Gupta/EAM-like copper references and a flexible SPC-like water reference
  (the "pseudo-AIMD" data generators),
* :class:`VelocityVerlet` + thermostats — time integration,
* :class:`SteppingLoop` / :class:`EngineBackend` — the *single* run-loop
  implementation with LAMMPS-style per-phase timing, driving both the serial
  :class:`Simulation` backend and the domain-decomposed engine,
* :class:`Workspace` — preallocated per-step scratch buffers (near-zero
  steady-state allocations),
* :func:`radial_distribution_function` — the analysis used by Fig. 6.
"""

from .box import Box
from .atoms import Atoms
from .lattice import fcc_lattice, copper_system
from .water import water_system, WaterTopology
from .neighbor import NeighborList, NeighborData
from .integrators import VelocityVerlet
from .thermostats import LangevinThermostat, BerendsenThermostat, VelocityRescale
from .simulation import Simulation
from .stepping import EngineBackend, SimulationReport, SteppingLoop
from .workspace import Workspace
from .rdf import radial_distribution_function, partial_rdf
from .forcefields import (
    ForceField,
    ForceResult,
    LennardJones,
    MorsePotential,
    GuptaPotential,
    WaterReference,
)

__all__ = [
    "Box",
    "Atoms",
    "fcc_lattice",
    "copper_system",
    "water_system",
    "WaterTopology",
    "NeighborList",
    "NeighborData",
    "VelocityVerlet",
    "LangevinThermostat",
    "BerendsenThermostat",
    "VelocityRescale",
    "Simulation",
    "SimulationReport",
    "SteppingLoop",
    "EngineBackend",
    "Workspace",
    "radial_distribution_function",
    "partial_rdf",
    "ForceField",
    "ForceResult",
    "LennardJones",
    "MorsePotential",
    "GuptaPotential",
    "WaterReference",
]
