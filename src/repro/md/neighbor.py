"""Neighbour-list construction (vectorized binned build with skin, LAMMPS-style).

The paper's configuration uses a 2 A skin and rebuilds the neighbour list
every 50 steps; between rebuilds the list is only considered stale when an
atom has moved more than half the skin.  Both behaviours are reproduced here.

Two representations are produced in one pass:

* a *padded full list* (``neighbors[i, k]`` = index of the k-th neighbour of
  atom i, -1 padded) — this is the layout consumed by the Deep Potential
  environment matrix, which needs all neighbours of every atom;
* a *half pair list* (each i<j pair once) — the layout used by the pairwise
  reference potentials with Newton's third law enabled.

The production pair search (:func:`_cell_list_pairs`) is a fully vectorized
binned build: atoms are binned with one stable sort, the half stencil of cell
pairs is enumerated as flat arrays (with per-axis shift sets that degrade
gracefully for thin/slab boxes instead of falling back to O(N^2)), and
candidate pairs are emitted with one ``repeat``/``cumsum`` batch expansion —
no Python loop over cells, so cost scales with atoms and *occupied* cells,
never with total cells.  The O(N^2) :func:`_brute_force_pairs` search is kept
un-optimized as the golden reference (mirroring ``deepmd/scalar.py``) and is
only routed to below :data:`BRUTE_FORCE_THRESHOLD`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from .atoms import Atoms
from .box import Box

#: Below this atom count the O(N^2) brute-force search is still competitive.
#: Measured crossover of the vectorized binned build vs brute force (this
#: container, numpy 2.x, densities 0.03-0.09 atoms/A^3, search radius ~5 A):
#: brute wins below ~80 atoms (N=64: 0.16 ms vs 0.29 ms), the binned build
#: wins from ~100 (N=128: 0.75 ms vs 0.45 ms) and the gap explodes with N
#: (N=1400: 157 ms vs 9 ms; N=4000: 1542 ms vs 16 ms).  The previous value of
#: 1500 sat >2x past the old crossover — a 1400-atom build paid ~160 ms for
#: brute force when the cell list cost ~20 ms.  96 keeps brute force for
#: genuinely tiny systems only; above it no O(N^2) path is reachable.
#: ``benchmarks/bench_neighbor_build.py`` re-measures and asserts the choice.
BRUTE_FORCE_THRESHOLD = 96


@dataclass
class NeighborData:
    """The product of one neighbour-list build."""

    neighbors: np.ndarray  # (n, max_nei), int64, padded with -1
    counts: np.ndarray  # (n,), int64
    pairs: np.ndarray  # (n_pairs, 2), int64, i < j
    cutoff: float
    skin: float

    @property
    def n_atoms(self) -> int:
        return len(self.counts)

    @property
    def max_neighbors(self) -> int:
        return self.neighbors.shape[1]

    def neighbors_of(self, i: int) -> np.ndarray:
        """The neighbour indices of atom ``i`` (without padding)."""
        return self.neighbors[i, : self.counts[i]]


def _pairs_to_padded(n: int, pairs_i: np.ndarray, pairs_j: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Convert directed pair arrays into a padded per-atom neighbour table."""
    counts = np.bincount(pairs_i, minlength=n).astype(np.int64)
    max_nei = int(counts.max()) if len(counts) and counts.max() > 0 else 0
    neighbors = np.full((n, max(max_nei, 1)), -1, dtype=np.int64)
    if len(pairs_i):
        order = np.argsort(pairs_i, kind="stable")
        sorted_i = pairs_i[order]
        sorted_j = pairs_j[order]
        # position of each entry within its atom's slot
        offsets = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        slot = np.arange(len(sorted_i)) - offsets[sorted_i]
        neighbors[sorted_i, slot] = sorted_j
    return neighbors, counts


def _brute_force_pairs(positions: np.ndarray, box: Box, cutoff: float) -> tuple[np.ndarray, np.ndarray]:
    """All i<j pairs within ``cutoff`` using an O(N^2) minimum-image search."""
    n = len(positions)
    if n < 2:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    delta = positions[:, None, :] - positions[None, :, :]
    delta = box.minimum_image(delta)
    dist2 = np.einsum("ijk,ijk->ij", delta, delta)  # reprolint: allow[golden] the O(N^2) reference keeps its original distance arithmetic
    iu, ju = np.triu_indices(n, k=1)
    mask = dist2[iu, ju] <= cutoff * cutoff
    return iu[mask].astype(np.int64), ju[mask].astype(np.int64)


def _axis_shifts(n_cells_axis: int, periodic_axis: bool) -> np.ndarray:
    """Stencil shift values along one axis of an ``n_cells_axis``-cell grid.

    Cell sizes are >= the search radius by construction, so +-1 cells always
    suffice.  Thin axes shrink the set instead of forcing an O(N^2) fallback:
    with 1 cell every atom shares the cell and only the 0 shift remains, and
    on a *periodic* axis with 2 cells a +1 and a -1 shift wrap to the *same*
    neighbour cell, so one forward shift reaches it from either side and the
    half-stencil filter still sees every unordered cell pair exactly once.
    A non-periodic 2-cell axis has no wrap aliasing and must keep the full
    +-1 set — dropping the -1 shift there loses the diagonal cell pairs that
    the half-stencil filter only accepts from their lower-flat side.
    """
    if n_cells_axis == 1:
        return np.array([0], dtype=np.int64)
    if n_cells_axis == 2 and periodic_axis:
        return np.array([0, 1], dtype=np.int64)
    return np.array([-1, 0, 1], dtype=np.int64)


def _bin_atoms(positions: np.ndarray, box: Box, cutoff: float) -> tuple[np.ndarray, np.ndarray]:
    """Assign every atom to a cell of an ``n_cells`` grid spanning the box.

    Returns ``(n_cells, flat_index)``.  Periodic axes wrap the fractional
    coordinate; non-periodic axes *clamp* it into [0, 1] — wrapping there
    would teleport an atom that drifted more than one box length outside
    into an interior cell and silently drop its pairs.  Clamping is a
    contraction, so two atoms within the search radius still land at most one
    cell apart and the +-1 stencil stays sufficient.
    """
    lengths = box.lengths
    n_cells = np.maximum((lengths // cutoff).astype(np.int64), 1)
    frac = positions / lengths
    periodic = np.asarray(box.periodic, dtype=bool)
    frac = np.where(periodic, frac - np.floor(frac), np.clip(frac, 0.0, 1.0))
    cell = np.clip((frac * n_cells).astype(np.int64), 0, n_cells - 1)
    flat = (cell[:, 0] * n_cells[1] + cell[:, 1]) * n_cells[2] + cell[:, 2]
    return n_cells, flat


def _cell_list_pairs(positions: np.ndarray, box: Box, cutoff: float) -> tuple[np.ndarray, np.ndarray]:
    """All i<j pairs within ``cutoff`` using a vectorized binned search.

    One stable sort bins the atoms; occupied cells and the half stencil of
    cell pairs are enumerated as flat arrays; candidate pairs are emitted in
    one ``repeat``/``cumsum`` batch expansion and distance-filtered in bulk.
    Cost scales with atoms and occupied cells — there is no Python loop over
    cells and no brute-force fallback for thin or slab-shaped boxes.
    """
    n = len(positions)
    empty = np.empty(0, dtype=np.int64)
    if n < 2:
        return empty, empty
    positions = np.asarray(positions, dtype=np.float64)
    n_cells, flat = _bin_atoms(positions, box, cutoff)
    ny, nz = int(n_cells[1]), int(n_cells[2])
    periodic = box.periodic

    # one stable sort groups atoms by cell; occupied cells + extents follow
    # from the boundaries of the sorted flat indices (never the total grid)
    order = np.argsort(flat, kind="stable")
    sorted_flat = flat[order]
    boundary = np.empty(n, dtype=bool)
    boundary[0] = True
    np.not_equal(sorted_flat[1:], sorted_flat[:-1], out=boundary[1:])
    occ_start = np.nonzero(boundary)[0]
    occ_flat = sorted_flat[occ_start]
    occ_count = np.diff(np.append(occ_start, n))
    n_occ = len(occ_flat)

    occ_cell = np.empty((n_occ, 3), dtype=np.int64)
    occ_cell[:, 2] = occ_flat % nz
    rest = occ_flat // nz
    occ_cell[:, 1] = rest % ny
    occ_cell[:, 0] = rest // ny

    # half stencil over occupied cells: (n_occ, n_shifts) neighbour cells
    sx, sy, sz = (_axis_shifts(int(v), periodic[axis]) for axis, v in enumerate(n_cells))
    shifts = np.stack(np.meshgrid(sx, sy, sz, indexing="ij"), axis=-1).reshape(-1, 3)
    neighbor_cell = occ_cell[:, None, :] + shifts[None, :, :]
    valid = np.ones(neighbor_cell.shape[:2], dtype=bool)
    for axis in range(3):
        if periodic[axis]:
            neighbor_cell[..., axis] %= n_cells[axis]
        else:
            coords = neighbor_cell[..., axis]
            valid &= (coords >= 0) & (coords < n_cells[axis])
    neighbor_flat = (
        neighbor_cell[..., 0] * ny + neighbor_cell[..., 1]
    ) * nz + neighbor_cell[..., 2]
    # each unordered cell pair is emitted once, from its lower-flat side
    valid &= neighbor_flat >= occ_flat[:, None]
    # keep only neighbour cells that are occupied
    slot = np.searchsorted(occ_flat, neighbor_flat)
    slot = np.minimum(slot, n_occ - 1)
    valid &= occ_flat[slot] == neighbor_flat

    src, _ = np.nonzero(valid)
    dst = slot[valid]
    # defensive: wrap aliasing on degenerate grids could repeat a cell pair
    _, unique_idx = np.unique(src * np.int64(n_occ) + dst, return_index=True)
    src, dst = src[unique_idx], dst[unique_idx]

    # batch-expand every cell pair into candidate atom pairs, division-free:
    # one *entry* per (cell pair, left atom); a cross-cell entry expands to the
    # whole right cell, a same-cell entry only to the atoms after it in the
    # sorted order (the strict triangle), so no candidate is ever generated
    # twice.  The candidate count is known at the cell-pair level, which also
    # picks the narrowest safe index dtype for the big expansion arrays.
    same_cell = src == dst
    count_a, count_b = occ_count[src], occ_count[dst]
    per_pair = np.where(same_cell, count_a * (count_a - 1) // 2, count_a * count_b)
    total = int(per_pair.sum())
    if total == 0:
        return empty, empty
    idx_dtype = np.int32 if max(total, n) < np.iinfo(np.int32).max else np.int64
    count_a = count_a.astype(idx_dtype)
    count_b = count_b.astype(idx_dtype)
    n_entries = int(count_a.sum(dtype=np.int64))

    entry_pair = np.repeat(np.arange(len(src), dtype=idx_dtype), count_a)
    entry_off = np.arange(n_entries, dtype=idx_dtype) - np.repeat(
        np.cumsum(count_a, dtype=np.int64).astype(idx_dtype) - count_a, count_a
    )
    entry_slot_i = occ_start.astype(idx_dtype)[src][entry_pair] + entry_off
    same_entry = same_cell[entry_pair]
    reps = np.where(same_entry, count_a[entry_pair] - 1 - entry_off, count_b[entry_pair])
    entry_base_j = np.where(
        same_entry, entry_slot_i + 1, occ_start.astype(idx_dtype)[dst][entry_pair]
    )
    # every candidate's j-slot is its entry's base plus a within-run offset;
    # both sides expand with sequential repeats — no integer division
    slot_i = np.repeat(entry_slot_i, reps)
    in_j = np.arange(total, dtype=idx_dtype) - np.repeat(
        (np.cumsum(reps, dtype=np.int64) - reps).astype(idx_dtype), reps
    )
    slot_j = np.repeat(entry_base_j, reps) + in_j

    # distance filter in sorted-row space: a reduced-precision prefilter with
    # a rigorous slack bound throws away the ~85% of candidates that are far
    # outside the cutoff at half the memory traffic, then the survivors are
    # confirmed with exactly the arithmetic of ``_brute_force_pairs`` so the
    # two strategies agree pair-for-pair even at the cutoff boundary.
    pos_sorted = np.take(positions, order, axis=0)
    lengths = box.lengths
    frac_sorted = pos_sorted * (1.0 / lengths)
    # conservative error bound for the fractional prefilter: ~4 rounding
    # steps on coordinates of magnitude ``max_abs`` (unwrapped atoms may sit
    # several box lengths outside), converted back to angstrom; the slack
    # guarantees the prefilter never drops a pair the exact pass would keep
    max_abs = max(1.0, float(np.max(np.abs(frac_sorted))))
    f32_error = 8.0 * max_abs * 2.0**-23 * float(lengths.max())
    if f32_error <= 0.05 * cutoff:
        frac = frac_sorted.astype(np.float32)  # reprolint: allow[dtype] fp32 prefilter guarded by the rigorous error bound above
        slack = np.float32((cutoff + f32_error) * (cutoff + f32_error))  # reprolint: allow[dtype] fp32 prefilter guarded by the rigorous error bound above
        lengths_sq = (lengths * lengths).astype(np.float32)  # reprolint: allow[dtype] fp32 prefilter guarded by the rigorous error bound above
    else:
        # degenerate geometry (atoms astronomically far outside the box):
        # prefilter in fp64 with the matching, much smaller error bound
        f64_error = 8.0 * max_abs * 2.0**-52 * float(lengths.max())
        frac = frac_sorted
        slack = (cutoff + f64_error) ** 2
        lengths_sq = lengths * lengths
    delta_frac = np.repeat(np.take(frac, entry_slot_i, axis=0), reps, axis=0)
    delta_frac -= np.take(frac, slot_j, axis=0)
    images = np.rint(delta_frac)
    for axis in range(3):
        if not periodic[axis]:
            images[:, axis] = 0.0
    delta_frac -= images
    candidate_idx = np.nonzero((delta_frac * delta_frac) @ lengths_sq <= slack)[0]

    # exact confirmation, bitwise-identical to the brute-force reference
    slot_i = slot_i[candidate_idx]
    slot_j = slot_j[candidate_idx]
    delta = np.take(pos_sorted, slot_i, axis=0) - np.take(pos_sorted, slot_j, axis=0)
    delta = box.minimum_image(delta)
    mask = np.einsum("ij,ij->i", delta, delta) <= cutoff * cutoff
    gi = np.take(order, slot_i[mask])
    gj = np.take(order, slot_j[mask])
    return np.minimum(gi, gj).astype(np.int64), np.maximum(gi, gj).astype(np.int64)


def max_displacement(positions: np.ndarray, reference: np.ndarray, box: Box) -> float:
    """Largest minimum-image displacement between two position snapshots.

    This is the skin-criterion quantity: a neighbour list built with search
    radius cutoff+skin stays valid while no atom has moved more than half the
    skin.  Both the serial :class:`NeighborList` and the per-rank lists of
    :class:`repro.parallel.engine.DomainDecomposedSimulation` use it — the
    parallel engine max-reduces the per-rank values so every rank rebuilds on
    the same step as the serial reference.
    """
    if len(positions) == 0:
        return 0.0
    delta = box.minimum_image(np.asarray(positions) - np.asarray(reference))
    return float(np.sqrt(np.max(np.einsum("ij,ij->i", delta, delta))))


def build_neighbor_data(positions: np.ndarray, box: Box, cutoff: float, skin: float = 0.0) -> NeighborData:
    """Build neighbour data for ``positions`` with search radius cutoff+skin."""
    if cutoff <= 0:
        raise ValueError("cutoff must be positive")
    if skin < 0:
        raise ValueError("skin must be non-negative")
    positions = np.asarray(positions, dtype=np.float64)
    search = cutoff + skin
    max_allowed = box.max_cutoff()
    if search > max_allowed + 1e-9:
        raise ValueError(
            f"cutoff+skin ({search:.3f} A) exceeds the minimum-image limit "
            f"({max_allowed:.3f} A) of the box"
        )
    n = len(positions)
    if n <= BRUTE_FORCE_THRESHOLD:
        half_i, half_j = _brute_force_pairs(positions, box, search)
    else:
        half_i, half_j = _cell_list_pairs(positions, box, search)
    full_i = np.concatenate([half_i, half_j])
    full_j = np.concatenate([half_j, half_i])
    neighbors, counts = _pairs_to_padded(n, full_i, full_j)
    pairs = np.stack([half_i, half_j], axis=1) if len(half_i) else np.empty((0, 2), dtype=np.int64)
    return NeighborData(neighbors=neighbors, counts=counts, pairs=pairs, cutoff=cutoff, skin=skin)


@dataclass
class NeighborList:
    """A neighbour list with skin-based staleness tracking.

    Parameters
    ----------
    cutoff:
        interaction cutoff in angstrom.
    skin:
        extra search radius; the list remains valid while no atom has moved
        more than half the skin since the last build.
    rebuild_every:
        force a rebuild after this many ``maybe_rebuild`` calls (the paper
        rebuilds every 50 steps).
    """

    cutoff: float
    skin: float = 2.0
    rebuild_every: int = 50
    data: NeighborData | None = None
    n_builds: int = 0
    #: cumulative wall-clock seconds spent inside actual builds (excludes the
    #: per-step staleness checks) — the quantity the neighbour-build
    #: benchmarks and the perf-model ``neigh`` pricing talk about.
    build_seconds: float = 0.0
    _reference_positions: np.ndarray | None = None
    _steps_since_build: int = field(default=0)

    def build(self, atoms: Atoms, box: Box) -> NeighborData:
        start = time.perf_counter()
        self.data = build_neighbor_data(atoms.positions, box, self.cutoff, self.skin)
        self.build_seconds += time.perf_counter() - start
        self._reference_positions = atoms.positions.copy()
        self._steps_since_build = 0
        self.n_builds += 1
        return self.data

    def needs_rebuild(self, atoms: Atoms, box: Box) -> bool:
        if self.data is None or self._reference_positions is None:
            return True
        if len(atoms) != len(self._reference_positions):
            return True
        if self.rebuild_every and self._steps_since_build >= self.rebuild_every:
            return True
        if self.skin <= 0.0:
            return True
        return max_displacement(atoms.positions, self._reference_positions, box) > 0.5 * self.skin

    def maybe_rebuild(self, atoms: Atoms, box: Box) -> tuple[NeighborData, bool]:
        """Rebuild if stale; returns ``(data, rebuilt)``."""
        self._steps_since_build += 1
        if self.needs_rebuild(atoms, box):
            return self.build(atoms, box), True
        assert self.data is not None
        return self.data, False
