"""Neighbour-list construction (cell list with skin, LAMMPS-style).

The paper's configuration uses a 2 A skin and rebuilds the neighbour list
every 50 steps; between rebuilds the list is only considered stale when an
atom has moved more than half the skin.  Both behaviours are reproduced here.

Two representations are produced in one pass:

* a *padded full list* (``neighbors[i, k]`` = index of the k-th neighbour of
  atom i, -1 padded) — this is the layout consumed by the Deep Potential
  environment matrix, which needs all neighbours of every atom;
* a *half pair list* (each i<j pair once) — the layout used by the pairwise
  reference potentials with Newton's third law enabled.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .atoms import Atoms
from .box import Box

#: Below this atom count a brute-force O(N^2) search is faster and simpler.
BRUTE_FORCE_THRESHOLD = 1500


@dataclass
class NeighborData:
    """The product of one neighbour-list build."""

    neighbors: np.ndarray  # (n, max_nei), int64, padded with -1
    counts: np.ndarray  # (n,), int64
    pairs: np.ndarray  # (n_pairs, 2), int64, i < j
    cutoff: float
    skin: float

    @property
    def n_atoms(self) -> int:
        return len(self.counts)

    @property
    def max_neighbors(self) -> int:
        return self.neighbors.shape[1]

    def neighbors_of(self, i: int) -> np.ndarray:
        """The neighbour indices of atom ``i`` (without padding)."""
        return self.neighbors[i, : self.counts[i]]


def _pairs_to_padded(n: int, pairs_i: np.ndarray, pairs_j: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Convert directed pair arrays into a padded per-atom neighbour table."""
    counts = np.bincount(pairs_i, minlength=n).astype(np.int64)
    max_nei = int(counts.max()) if len(counts) and counts.max() > 0 else 0
    neighbors = np.full((n, max(max_nei, 1)), -1, dtype=np.int64)
    if len(pairs_i):
        order = np.argsort(pairs_i, kind="stable")
        sorted_i = pairs_i[order]
        sorted_j = pairs_j[order]
        # position of each entry within its atom's slot
        offsets = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        slot = np.arange(len(sorted_i)) - offsets[sorted_i]
        neighbors[sorted_i, slot] = sorted_j
    return neighbors, counts


def _brute_force_pairs(positions: np.ndarray, box: Box, cutoff: float) -> tuple[np.ndarray, np.ndarray]:
    """All i<j pairs within ``cutoff`` using an O(N^2) minimum-image search."""
    n = len(positions)
    if n < 2:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    delta = positions[:, None, :] - positions[None, :, :]
    delta = box.minimum_image(delta)
    dist2 = np.einsum("ijk,ijk->ij", delta, delta)
    iu, ju = np.triu_indices(n, k=1)
    mask = dist2[iu, ju] <= cutoff * cutoff
    return iu[mask].astype(np.int64), ju[mask].astype(np.int64)


def _cell_list_pairs(positions: np.ndarray, box: Box, cutoff: float) -> tuple[np.ndarray, np.ndarray]:
    """All i<j pairs within ``cutoff`` using a linked-cell search."""
    lengths = box.lengths
    n_cells = np.maximum((lengths // cutoff).astype(int), 1)
    if np.any(n_cells < 3):
        # Too few cells for a safe 27-stencil; fall back to brute force.
        return _brute_force_pairs(positions, box, cutoff)
    cell_size = lengths / n_cells
    frac = positions / lengths
    frac = frac - np.floor(frac)
    cell_idx = np.minimum((frac * n_cells).astype(int), n_cells - 1)
    flat_idx = (
        cell_idx[:, 0] * n_cells[1] * n_cells[2]
        + cell_idx[:, 1] * n_cells[2]
        + cell_idx[:, 2]
    )
    order = np.argsort(flat_idx, kind="stable")
    sorted_flat = flat_idx[order]
    total_cells = int(np.prod(n_cells))
    cell_starts = np.searchsorted(sorted_flat, np.arange(total_cells))
    cell_ends = np.searchsorted(sorted_flat, np.arange(total_cells), side="right")

    offsets = np.array(
        [(dx, dy, dz) for dx in (-1, 0, 1) for dy in (-1, 0, 1) for dz in (-1, 0, 1)]
    )
    cutoff2 = cutoff * cutoff
    pair_i: list[np.ndarray] = []
    pair_j: list[np.ndarray] = []

    nx, ny, nz = (int(v) for v in n_cells)
    for cx in range(nx):
        for cy in range(ny):
            for cz in range(nz):
                c_flat = cx * ny * nz + cy * nz + cz
                a_start, a_end = cell_starts[c_flat], cell_ends[c_flat]
                if a_start == a_end:
                    continue
                atoms_a = order[a_start:a_end]
                for dx, dy, dz in offsets:
                    ncx, ncy, ncz = (cx + dx) % nx, (cy + dy) % ny, (cz + dz) % nz
                    n_flat = ncx * ny * nz + ncy * nz + ncz
                    if n_flat < c_flat:
                        continue  # each cell pair handled once
                    b_start, b_end = cell_starts[n_flat], cell_ends[n_flat]
                    if b_start == b_end:
                        continue
                    atoms_b = order[b_start:b_end]
                    delta = positions[atoms_a][:, None, :] - positions[atoms_b][None, :, :]
                    delta = box.minimum_image(delta)
                    dist2 = np.einsum("abk,abk->ab", delta, delta)
                    if n_flat == c_flat:
                        ia, jb = np.triu_indices(len(atoms_a), k=1)
                        mask = dist2[ia, jb] <= cutoff2
                        pi, pj = atoms_a[ia[mask]], atoms_b[jb[mask]]
                    else:
                        mask = dist2 <= cutoff2
                        ia, jb = np.nonzero(mask)
                        pi, pj = atoms_a[ia], atoms_b[jb]
                    if len(pi):
                        lo = np.minimum(pi, pj)
                        hi = np.maximum(pi, pj)
                        pair_i.append(lo)
                        pair_j.append(hi)
    if not pair_i:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    all_i = np.concatenate(pair_i).astype(np.int64)
    all_j = np.concatenate(pair_j).astype(np.int64)
    # A pair can be found from both cells only if the stencil wraps onto itself
    # (tiny boxes); deduplicate defensively.
    keys = all_i * len(positions) + all_j
    _, unique_idx = np.unique(keys, return_index=True)
    return all_i[unique_idx], all_j[unique_idx]


def max_displacement(positions: np.ndarray, reference: np.ndarray, box: Box) -> float:
    """Largest minimum-image displacement between two position snapshots.

    This is the skin-criterion quantity: a neighbour list built with search
    radius cutoff+skin stays valid while no atom has moved more than half the
    skin.  Both the serial :class:`NeighborList` and the per-rank lists of
    :class:`repro.parallel.engine.DomainDecomposedSimulation` use it — the
    parallel engine max-reduces the per-rank values so every rank rebuilds on
    the same step as the serial reference.
    """
    if len(positions) == 0:
        return 0.0
    delta = box.minimum_image(np.asarray(positions) - np.asarray(reference))
    return float(np.sqrt(np.max(np.einsum("ij,ij->i", delta, delta))))


def build_neighbor_data(positions: np.ndarray, box: Box, cutoff: float, skin: float = 0.0) -> NeighborData:
    """Build neighbour data for ``positions`` with search radius cutoff+skin."""
    if cutoff <= 0:
        raise ValueError("cutoff must be positive")
    if skin < 0:
        raise ValueError("skin must be non-negative")
    positions = np.asarray(positions, dtype=np.float64)
    search = cutoff + skin
    max_allowed = box.max_cutoff()
    if search > max_allowed + 1e-9:
        raise ValueError(
            f"cutoff+skin ({search:.3f} A) exceeds the minimum-image limit "
            f"({max_allowed:.3f} A) of the box"
        )
    n = len(positions)
    if n <= BRUTE_FORCE_THRESHOLD:
        half_i, half_j = _brute_force_pairs(positions, box, search)
    else:
        half_i, half_j = _cell_list_pairs(positions, box, search)
    full_i = np.concatenate([half_i, half_j])
    full_j = np.concatenate([half_j, half_i])
    neighbors, counts = _pairs_to_padded(n, full_i, full_j)
    pairs = np.stack([half_i, half_j], axis=1) if len(half_i) else np.empty((0, 2), dtype=np.int64)
    return NeighborData(neighbors=neighbors, counts=counts, pairs=pairs, cutoff=cutoff, skin=skin)


@dataclass
class NeighborList:
    """A neighbour list with skin-based staleness tracking.

    Parameters
    ----------
    cutoff:
        interaction cutoff in angstrom.
    skin:
        extra search radius; the list remains valid while no atom has moved
        more than half the skin since the last build.
    rebuild_every:
        force a rebuild after this many ``maybe_rebuild`` calls (the paper
        rebuilds every 50 steps).
    """

    cutoff: float
    skin: float = 2.0
    rebuild_every: int = 50
    data: NeighborData | None = None
    n_builds: int = 0
    _reference_positions: np.ndarray | None = None
    _steps_since_build: int = field(default=0)

    def build(self, atoms: Atoms, box: Box) -> NeighborData:
        self.data = build_neighbor_data(atoms.positions, box, self.cutoff, self.skin)
        self._reference_positions = atoms.positions.copy()
        self._steps_since_build = 0
        self.n_builds += 1
        return self.data

    def needs_rebuild(self, atoms: Atoms, box: Box) -> bool:
        if self.data is None or self._reference_positions is None:
            return True
        if len(atoms) != len(self._reference_positions):
            return True
        if self.rebuild_every and self._steps_since_build >= self.rebuild_every:
            return True
        if self.skin <= 0.0:
            return True
        return max_displacement(atoms.positions, self._reference_positions, box) > 0.5 * self.skin

    def maybe_rebuild(self, atoms: Atoms, box: Box) -> tuple[NeighborData, bool]:
        """Rebuild if stale; returns ``(data, rebuilt)``."""
        self._steps_since_build += 1
        if self.needs_rebuild(atoms, box):
            return self.build(atoms, box), True
        assert self.data is not None
        return self.data, False
