"""Mapping between MPI ranks, nodes, NUMA domains and the torus.

The paper launches 4 MPI ranks per node (one per CMG/NUMA domain) with 12
threads each.  A global LAMMPS-style domain decomposition therefore has a
*rank grid* that refines the *node grid*: each node owns a small block of the
rank grid (2 x 2 x 1 by default), and each rank in the block is pinned to the
NUMA domain with the same index.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class RankTopology:
    """Geometry of the rank/node grids.

    Parameters
    ----------
    node_dims:
        nodes along x, y, z of the logical 3D torus (e.g. ``(4, 6, 4)`` for
        the 96-node experiments, ``(20, 30, 20)`` for 12,000 nodes).
    rank_block:
        how the ranks of one node tile the rank grid (default ``(2, 2, 1)``,
        giving 4 ranks per node).
    threads_per_rank:
        compute threads per rank (12 on Fugaku: one CMG).
    """

    node_dims: tuple[int, int, int]
    rank_block: tuple[int, int, int] = (2, 2, 1)
    threads_per_rank: int = 12

    def __post_init__(self) -> None:
        if any(d < 1 for d in self.node_dims):
            raise ValueError("node dimensions must be >= 1")
        if any(b < 1 for b in self.rank_block):
            raise ValueError("rank block entries must be >= 1")
        if self.threads_per_rank < 1:
            raise ValueError("threads per rank must be >= 1")

    # -- sizes -------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        return int(np.prod(self.node_dims))

    @property
    def ranks_per_node(self) -> int:
        return int(np.prod(self.rank_block))

    @property
    def rank_dims(self) -> tuple[int, int, int]:
        return tuple(int(n * b) for n, b in zip(self.node_dims, self.rank_block))

    @property
    def n_ranks(self) -> int:
        return int(np.prod(self.rank_dims))

    @property
    def cores_per_node(self) -> int:
        return self.ranks_per_node * self.threads_per_rank

    @property
    def n_cores(self) -> int:
        return self.n_nodes * self.cores_per_node

    # -- coordinate conversions -----------------------------------------------------
    def rank_coord(self, rank: int) -> tuple[int, int, int]:
        rx, ry, rz = self.rank_dims
        x, rem = divmod(int(rank), ry * rz)
        y, z = divmod(rem, rz)
        if not 0 <= x < rx:
            raise IndexError(f"rank {rank} out of range")
        return (x, y, z)

    def rank_index(self, coord) -> int:
        rx, ry, rz = self.rank_dims
        x, y, z = (int(c) % d for c, d in zip(coord, self.rank_dims))
        return (x * ry + y) * rz + z

    def node_of_rank_coord(self, coord) -> tuple[int, int, int]:
        return tuple(int(c) // b for c, b in zip(coord, self.rank_block))

    def node_of_rank(self, rank: int) -> tuple[int, int, int]:
        return self.node_of_rank_coord(self.rank_coord(rank))

    def numa_of_rank(self, rank: int) -> int:
        """NUMA/CMG index (0..ranks_per_node-1) of a rank within its node."""
        coord = self.rank_coord(rank)
        bx, by, bz = self.rank_block
        ox, oy, oz = (int(c) % b for c, b in zip(coord, self.rank_block))
        return (ox * by + oy) * bz + oz

    def ranks_on_node(self, node_coord) -> list[int]:
        """All rank indices belonging to one node, ordered by NUMA id."""
        bx, by, bz = self.rank_block
        base = tuple(int(n) * b for n, b in zip(node_coord, self.rank_block))
        ranks = []
        for ox in range(bx):
            for oy in range(by):
                for oz in range(bz):
                    ranks.append(self.rank_index((base[0] + ox, base[1] + oy, base[2] + oz)))
        return ranks

    def node_index(self, node_coord) -> int:
        nx, ny, nz = self.node_dims
        x, y, z = (int(c) % d for c, d in zip(node_coord, self.node_dims))
        return (x * ny + y) * nz + z

    def node_coord(self, index: int) -> tuple[int, int, int]:
        """Inverse of :meth:`node_index` (same row-major convention)."""
        nx, ny, nz = self.node_dims
        x, rem = divmod(int(index), ny * nz)
        y, z = divmod(rem, nz)
        if not 0 <= x < nx:
            raise IndexError(f"node {index} out of range")
        return (x, y, z)

    def same_node(self, rank_a: int, rank_b: int) -> bool:
        return self.node_of_rank(rank_a) == self.node_of_rank(rank_b)

    # -- factory helpers ------------------------------------------------------------
    @staticmethod
    def paper_topologies() -> dict[int, tuple[int, int, int]]:
        """Node-grid shapes used in the paper's experiments."""
        return {
            96: (4, 6, 4),
            768: (8, 12, 8),
            2160: (12, 15, 12),
            4608: (16, 18, 16),
            6144: (16, 24, 16),
            12000: (20, 30, 20),
        }

    @classmethod
    def for_nodes(cls, n_nodes: int, **kwargs) -> "RankTopology":
        """Topology for one of the node counts used in the paper."""
        shapes = cls.paper_topologies()
        if n_nodes not in shapes:
            raise KeyError(
                f"no predefined topology for {n_nodes} nodes; available: {sorted(shapes)}"
            )
        return cls(node_dims=shapes[n_nodes], **kwargs)

    @classmethod
    def for_rank_grid(cls, rank_dims, rank_block=None, **kwargs) -> "RankTopology":
        """Topology whose *rank grid* is exactly ``rank_dims``.

        Small engine runs are specified by their rank grid (``2x2x1``,
        ``2x2x2``, ...) rather than by node counts; the default node block
        keeps the paper's 2x2x1 arrangement along every axis it divides and
        degenerates to one rank per node direction otherwise.
        """
        dims = tuple(int(d) for d in rank_dims)
        if len(dims) != 3 or any(d < 1 for d in dims):
            raise ValueError("rank grid must be three positive integers")
        if rank_block is None:
            rank_block = tuple(b if d % b == 0 else 1 for d, b in zip(dims, (2, 2, 1)))
        rank_block = tuple(int(b) for b in rank_block)
        if any(d % b != 0 for d, b in zip(dims, rank_block)):
            raise ValueError(f"rank block {rank_block} does not tile rank grid {dims}")
        node_dims = tuple(d // b for d, b in zip(dims, rank_block))
        return cls(node_dims=node_dims, rank_block=rank_block, **kwargs)
