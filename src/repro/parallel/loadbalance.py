"""Intra-node load balance (§III-C, Table III, Fig. 10).

In the strong-scaling limit each rank's sub-box holds only a dozen atoms, so
counting noise alone makes some ranks twice as loaded as others; because the
Deep Potential evaluates atoms one by one, the slowest rank paces the step.
The paper's remedy: treat the four sub-boxes of a node as one *node-box*,
give every rank of the node an identical copy of the node-box atoms (local +
ghost), and split the evaluation evenly.

:class:`IntraNodeLoadBalancer` implements both organizations on real atom
coordinates and reports the statistics the paper tabulates (min/avg/max atom
counts, SDMR, modelled pair times).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..utils.rng import default_rng
from .decomposition import DecompositionStats, SpatialDecomposition


@dataclass
class LoadBalanceStats:
    """Per-rank atom counts and modelled pair times for one organization."""

    label: str
    atom_counts: np.ndarray
    pair_times: np.ndarray

    def atom_stats(self) -> DecompositionStats:
        return DecompositionStats(self.atom_counts)

    def pair_time_stats(self) -> dict[str, float]:
        t = self.pair_times
        mean = float(t.mean()) if len(t) else 0.0
        return {
            "min": float(t.min()) if len(t) else 0.0,
            "avg": mean,
            "max": float(t.max()) if len(t) else 0.0,
            "sdmr%": float(t.std() / mean * 100.0) if mean > 0 else 0.0,
        }

    def summary(self) -> dict[str, dict[str, float]]:
        return {"natom": self.atom_stats().summary(), "pair": self.pair_time_stats()}


#: Lower clamp on the multiplicative pair-time jitter.  The Gaussian noise of
#: :func:`pair_time_model` is unbounded, so a large ``jitter_fraction`` could
#: draw a negative multiplier and emit a *negative* per-rank pair time, which
#: corrupts the SDMR statistics (std/mean with a near-zero mean).  A rank can
#: be arbitrarily lucky but never takes negative wall-clock time.
PAIR_TIME_NOISE_FLOOR = 0.01


def pair_time_model(
    atom_counts: np.ndarray,
    per_atom_time: float,
    jitter_fraction: float = 0.03,
    rng=None,
) -> np.ndarray:
    """Per-rank pair-phase time: atoms x per-atom cost plus small system noise.

    The atom-by-atom evaluation of DeePMD makes the pair time essentially
    linear in the local atom count; ``jitter_fraction`` adds the cache/ghost
    noise the paper mentions as secondary factors.  The noise multiplier is
    clamped at :data:`PAIR_TIME_NOISE_FLOOR` so modelled times stay positive
    for any jitter level.
    """
    if per_atom_time <= 0:
        raise ValueError("per-atom time must be positive")
    rng = default_rng(rng)
    counts = np.asarray(atom_counts, dtype=np.float64)
    if jitter_fraction > 0:
        noise = rng.normal(1.0, jitter_fraction, size=counts.shape)
        np.maximum(noise, PAIR_TIME_NOISE_FLOOR, out=noise)
    else:
        noise = 1.0
    return counts * per_atom_time * noise


@dataclass
class IntraNodeLoadBalancer:
    """Computes per-rank workloads with and without intra-node balancing."""

    decomposition: SpatialDecomposition

    def rank_counts_without_balance(self, positions: np.ndarray) -> np.ndarray:
        """Atoms per rank as assigned by the original sub-box decomposition."""
        ranks = self.decomposition.assign_to_ranks(positions)
        return np.bincount(ranks, minlength=self.decomposition.topology.n_ranks).astype(np.int64)

    def rank_counts_with_balance(self, positions: np.ndarray) -> np.ndarray:
        """Atoms per rank after evenly splitting each node-box among its ranks.

        The split assigns ``floor(n/k)`` atoms to every rank and distributes the
        remainder one-by-one, which is exactly what dividing an atom index
        range does in the implementation.
        """
        topology = self.decomposition.topology
        nodes = self.decomposition.assign_to_nodes(positions)
        node_counts = np.bincount(nodes, minlength=topology.n_nodes)
        ranks_per_node = topology.ranks_per_node
        counts = np.zeros(topology.n_ranks, dtype=np.int64)
        for node_index, total in enumerate(node_counts):
            base, remainder = divmod(int(total), ranks_per_node)
            for slot, rank in enumerate(topology.ranks_on_node(topology.node_coord(node_index))):
                counts[rank] = base + (1 if slot < remainder else 0)
        return counts

    def compare(
        self,
        positions: np.ndarray,
        per_atom_time: float,
        jitter_fraction: float = 0.03,
        rng=None,
    ) -> dict[str, LoadBalanceStats]:
        """Both organizations side by side (the Table III layout)."""
        rng = default_rng(rng)
        no_lb_counts = self.rank_counts_without_balance(positions)
        lb_counts = self.rank_counts_with_balance(positions)
        return {
            "no": LoadBalanceStats(
                label="no",
                atom_counts=no_lb_counts,
                pair_times=pair_time_model(no_lb_counts, per_atom_time, jitter_fraction, rng),
            ),
            "yes": LoadBalanceStats(
                label="yes",
                atom_counts=lb_counts,
                pair_times=pair_time_model(lb_counts, per_atom_time, jitter_fraction, rng),
            ),
        }

    def dispersion_reduction(self, positions: np.ndarray) -> float:
        """Fractional reduction of the atom-count SDMR (paper: 79.7 %)."""
        before = DecompositionStats(self.rank_counts_without_balance(positions)).sdmr_percent
        after = DecompositionStats(self.rank_counts_with_balance(positions)).sdmr_percent
        if before == 0:
            return 0.0
        return (before - after) / before
