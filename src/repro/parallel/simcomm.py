"""In-process ghost-exchange simulation for correctness checking.

The communication schemes in :mod:`repro.parallel.schemes` are priced by the
machine model; this module checks that they are *correct* — i.e. that the set
of atoms a scheme delivers to a rank covers exactly the ghost atoms that rank
needs (every atom of another rank within the cutoff of its sub-box).

The simulator performs the exchanges with real atom coordinates:

* the *reference* ghost set comes from a direct geometric query
  (periodic point-to-box distance <= cutoff),
* :meth:`deliver_p2p` reproduces what the p2p pattern ships (each neighbour
  rank sends the slice of its atoms falling in the receiver's ghost shell),
* :meth:`deliver_node_based` reproduces the node-based scheme (neighbour
  nodes send node-box slices; every rank of the receiving node gets all of
  them, plus its node peers' local atoms).

The property verified in the test-suite: reference set is a subset of the
delivered set for both schemes, and the p2p delivery equals the reference set
exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..md.box import Box
from .decomposition import SpatialDecomposition
from .ghost import ghost_shell_ranks, layers_for_cutoff
from .topology import RankTopology


def _periodic_point_to_box_distance(
    positions: np.ndarray, lower: np.ndarray, upper: np.ndarray, lengths: np.ndarray
) -> np.ndarray:
    """Minimum-image distance from each point to an axis-aligned box."""
    per_axis = np.zeros_like(positions)
    for axis in range(3):
        best = None
        for shift in (-lengths[axis], 0.0, lengths[axis]):
            c = positions[:, axis] + shift
            d = np.maximum(np.maximum(lower[axis] - c, c - upper[axis]), 0.0)
            best = d if best is None else np.minimum(best, d)
        per_axis[:, axis] = best
    return np.sqrt(np.einsum("ij,ij->i", per_axis, per_axis))


@dataclass
class GhostExchangeSimulator:
    """Executes ghost exchanges on real coordinates for verification."""

    decomposition: SpatialDecomposition
    cutoff: float

    def __post_init__(self) -> None:
        if self.cutoff <= 0:
            raise ValueError("cutoff must be positive")
        self.topology: RankTopology = self.decomposition.topology
        self.box: Box = self.decomposition.box

    # -- ownership ------------------------------------------------------------------
    def owners(self, positions: np.ndarray) -> np.ndarray:
        return self.decomposition.assign_to_ranks(positions)

    def _rank_bounds(self, rank: int) -> tuple[np.ndarray, np.ndarray]:
        return self.decomposition.rank_bounds(rank)

    def _node_bounds(self, node_coord) -> tuple[np.ndarray, np.ndarray]:
        lengths = self.decomposition.node_box_lengths
        lower = np.array(node_coord, dtype=np.float64) * lengths
        return lower, lower + lengths

    # -- reference ghost set -----------------------------------------------------------
    def reference_ghosts(self, rank: int, positions: np.ndarray) -> set[int]:
        """Atom ids (owned elsewhere) within ``cutoff`` of the rank's sub-box."""
        owners = self.owners(positions)
        lower, upper = self._rank_bounds(rank)
        wrapped = self.box.wrap(positions)
        distance = _periodic_point_to_box_distance(wrapped, lower, upper, self.box.lengths)
        needed = (distance <= self.cutoff) & (owners != rank)
        return set(np.nonzero(needed)[0].tolist())

    # -- p2p delivery ------------------------------------------------------------------
    def deliver_p2p(self, rank: int, positions: np.ndarray) -> set[int]:
        """Atoms delivered to ``rank`` by the p2p pattern."""
        owners = self.owners(positions)
        wrapped = self.box.wrap(positions)
        lower, upper = self._rank_bounds(rank)
        layers = layers_for_cutoff(self.decomposition.sub_box_lengths, self.cutoff)
        coord = self.topology.rank_coord(rank)
        neighbor_coords = ghost_shell_ranks(coord, self.topology.rank_dims, layers)
        delivered: set[int] = set()
        for neighbor_coord in neighbor_coords:
            neighbor = self.topology.rank_index(neighbor_coord)
            sender_atoms = np.nonzero(owners == neighbor)[0]
            if len(sender_atoms) == 0:
                continue
            distance = _periodic_point_to_box_distance(
                wrapped[sender_atoms], lower, upper, self.box.lengths
            )
            delivered.update(sender_atoms[distance <= self.cutoff].tolist())
        return delivered

    # -- node-based delivery --------------------------------------------------------------
    def deliver_node_based(self, rank: int, positions: np.ndarray) -> set[int]:
        """Atoms available to ``rank`` after the node-based exchange.

        The rank sees (a) the local atoms of its node peers via shared memory
        and (b) every atom that neighbouring nodes shipped because it falls in
        the *node-box* ghost shell.
        """
        owners = self.owners(positions)
        node_owners = self.decomposition.assign_to_nodes(positions)
        wrapped = self.box.wrap(positions)

        node_coord = self.topology.node_of_rank(rank)
        node_index = self.topology.node_index(node_coord)
        lower, upper = self._node_bounds(node_coord)

        delivered: set[int] = set()
        # (a) node peers' local atoms via the NoC.
        peers = [r for r in self.topology.ranks_on_node(node_coord) if r != rank]
        for peer in peers:
            delivered.update(np.nonzero(owners == peer)[0].tolist())

        # (b) ghost atoms from neighbouring nodes.
        node_layers = layers_for_cutoff(self.decomposition.node_box_lengths, self.cutoff)
        neighbor_nodes = ghost_shell_ranks(node_coord, self.topology.node_dims, node_layers)
        for neighbor_coord in neighbor_nodes:
            neighbor_index = self.topology.node_index(neighbor_coord)
            sender_atoms = np.nonzero(node_owners == neighbor_index)[0]
            if len(sender_atoms) == 0:
                continue
            distance = _periodic_point_to_box_distance(
                wrapped[sender_atoms], lower, upper, self.box.lengths
            )
            delivered.update(sender_atoms[distance <= self.cutoff].tolist())
        return delivered

    # -- aggregate checks --------------------------------------------------------------------
    def verify_rank(self, rank: int, positions: np.ndarray) -> dict[str, bool]:
        """Coverage checks for one rank (used by tests and the claims bench)."""
        reference = self.reference_ghosts(rank, positions)
        p2p = self.deliver_p2p(rank, positions)
        node = self.deliver_node_based(rank, positions)
        return {
            "p2p_exact": p2p == reference,
            "node_covers": reference.issubset(node),
            "reference_size": len(reference),
            "node_size": len(node),
        }
