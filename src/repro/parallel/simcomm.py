"""In-process ghost-exchange verification on top of :mod:`repro.parallel.exchange`.

The communication schemes in :mod:`repro.parallel.schemes` are priced by the
machine model; this module checks that they are *correct* — i.e. that the set
of atoms a scheme delivers to a rank covers exactly the ghost atoms that rank
needs (every atom of another rank within the cutoff of its sub-box).

The delivery logic itself lives in :class:`~repro.parallel.exchange.GhostExchange`
(it also powers the domain-decomposed engine); this simulator retains the
set-based checking API used by the test-suite and the claims bench:

* the *reference* ghost set comes from a direct geometric query
  (periodic point-to-box distance <= cutoff),
* :meth:`deliver_p2p` reproduces what the p2p pattern ships (each neighbour
  rank sends the slice of its atoms falling in the receiver's ghost shell),
* :meth:`deliver_node_based` reproduces the node-based scheme (neighbour
  nodes send node-box slices; every rank of the receiving node gets all of
  them, plus its node peers' local atoms).

The property verified in the test-suite: reference set is a subset of the
delivered set for both schemes, and the p2p delivery equals the reference set
exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..md.box import Box
from .decomposition import SpatialDecomposition
from .exchange import GhostExchange
from .topology import RankTopology


@dataclass
class GhostExchangeSimulator:
    """Executes ghost exchanges on real coordinates for verification."""

    decomposition: SpatialDecomposition
    cutoff: float

    def __post_init__(self) -> None:
        self.exchange = GhostExchange(self.decomposition, self.cutoff)
        self.topology: RankTopology = self.decomposition.topology
        self.box: Box = self.decomposition.box

    # -- ownership ------------------------------------------------------------------
    def owners(self, positions: np.ndarray) -> np.ndarray:
        return self.exchange.owners(positions)

    # -- reference ghost set -----------------------------------------------------------
    def reference_ghosts(self, rank: int, positions: np.ndarray) -> set[int]:
        """Atom ids (owned elsewhere) within ``cutoff`` of the rank's sub-box."""
        return set(self.exchange.reference_ghosts(rank, positions).tolist())

    # -- p2p delivery ------------------------------------------------------------------
    def deliver_p2p(self, rank: int, positions: np.ndarray) -> set[int]:
        """Atoms delivered to ``rank`` by the p2p pattern."""
        return set(self.exchange.deliver_p2p(rank, positions).tolist())

    # -- node-based delivery --------------------------------------------------------------
    def deliver_node_based(self, rank: int, positions: np.ndarray) -> set[int]:
        """Atoms available to ``rank`` after the node-based exchange.

        The rank sees (a) the local atoms of its node peers via shared memory
        and (b) every atom that neighbouring nodes shipped because it falls in
        the *node-box* ghost shell.
        """
        return set(self.exchange.deliver_node_based(rank, positions).tolist())

    # -- aggregate checks --------------------------------------------------------------------
    def verify_rank(self, rank: int, positions: np.ndarray) -> dict[str, bool]:
        """Coverage checks for one rank (used by tests and the claims bench)."""
        reference = self.reference_ghosts(rank, positions)
        p2p = self.deliver_p2p(rank, positions)
        node = self.deliver_node_based(rank, positions)
        return {
            "p2p_exact": p2p == reference,
            "node_covers": reference.issubset(node),
            "reference_size": len(reference),
            "node_size": len(node),
        }
