"""Parallelization layer: topology, decomposition, ghost regions, schemes.

This package reproduces the *structure* of the paper's parallel runtime:

* :mod:`topology` — how MPI ranks map onto nodes, NUMA domains and the
  logical 3D torus,
* :mod:`decomposition` — LAMMPS-style spatial domain decomposition and atom
  assignment (used both for communication plans and load-balance statistics),
* :mod:`ghost` — ghost-region geometry (which ranks/nodes need which slabs,
  multi-layer communication when the sub-box is smaller than the cutoff) and
  the ghost-count formulas of §III-C,
* :mod:`schemes` — the communication schemes compared in Fig. 7: the LAMMPS
  3-stage pattern, the p2p pattern, and the node-based parallelization scheme
  with 1/2/4 leaders, single-thread communication and the original-layout
  (ref) variant,
* :mod:`exchange` — the executable ghost-delivery rules (p2p and node-based)
  shared by the correctness checker and the engine,
* :mod:`simcomm` — an in-process execution of the ghost exchange used to
  verify that every scheme delivers exactly the atoms the receiving rank
  needs,
* :mod:`engine` — the domain-decomposed MD engine: real velocity-Verlet
  dynamics over simulated ranks with ghost exchange, reverse force scatter
  and atom migration, pinned to the serial loop by the cross-rank parity
  suite,
* :mod:`executor` — who runs the per-rank force stages: the sequential
  golden reference, or concurrent forked worker processes over
  shared-memory slabs (bit-identical by the fixed-order gather),
* :mod:`loadbalance` — the intra-node load balancer and its SDMR statistics
  (Table III, Fig. 10), executable in the engine via ``node_balance=True``,
* :mod:`memory_pool` — RDMA registered-memory pooling (Fig. 8),
* :mod:`threadpool` — the persistent worker pool the process executor
  dispatches through, plus the OpenMP-vs-pool overhead model.
"""

from .topology import RankTopology
from .decomposition import SpatialDecomposition, DecompositionStats
from .ghost import (
    layers_for_cutoff,
    ghost_count_original,
    ghost_count_load_balanced,
    ghost_shell_ranks,
)
from .messages import Message, CommRound, CommunicationPlan
from .schemes import (
    CommScheme,
    ThreeStageScheme,
    P2PScheme,
    NodeBasedScheme,
    build_scheme,
    SCHEME_NAMES,
)
from .loadbalance import IntraNodeLoadBalancer, LoadBalanceStats, pair_time_model
from .memory_pool import RdmaBufferManager
from .threadpool import PersistentWorkerPool, ThreadingModel, WorkerError
from .exchange import GhostExchange, resolve_delivery_scheme, scheme_supports_node_box
from .simcomm import GhostExchangeSimulator
from .engine import DomainDecomposedSimulation, RankDomain
from .executor import (
    EXECUTOR_NAMES,
    MultiprocessRankExecutor,
    RankExecutor,
    SequentialRankExecutor,
    SharedRankArrays,
    make_executor,
)

__all__ = [
    "RankTopology",
    "SpatialDecomposition",
    "DecompositionStats",
    "layers_for_cutoff",
    "ghost_count_original",
    "ghost_count_load_balanced",
    "ghost_shell_ranks",
    "Message",
    "CommRound",
    "CommunicationPlan",
    "CommScheme",
    "ThreeStageScheme",
    "P2PScheme",
    "NodeBasedScheme",
    "build_scheme",
    "SCHEME_NAMES",
    "IntraNodeLoadBalancer",
    "LoadBalanceStats",
    "pair_time_model",
    "RdmaBufferManager",
    "ThreadingModel",
    "PersistentWorkerPool",
    "WorkerError",
    "GhostExchange",
    "resolve_delivery_scheme",
    "scheme_supports_node_box",
    "GhostExchangeSimulator",
    "DomainDecomposedSimulation",
    "RankDomain",
    "RankExecutor",
    "SequentialRankExecutor",
    "MultiprocessRankExecutor",
    "SharedRankArrays",
    "make_executor",
    "EXECUTOR_NAMES",
]
