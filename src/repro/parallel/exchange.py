"""Ghost-exchange delivery logic shared by the checker and the engine.

:class:`GhostExchange` is the executable core of the communication schemes:
given a :class:`~repro.parallel.decomposition.SpatialDecomposition` and an
exchange cutoff it answers, with real coordinates, *which atoms each rank
receives as ghosts* under

* the **p2p pattern** — every ghost-shell neighbour rank sends the slice of
  its atoms within the cutoff of the receiver's sub-box, and
* the **node-based pattern** — the ranks of a node see their node peers'
  atoms through shared memory plus every atom that neighbouring nodes ship
  because it falls in the *node-box* ghost shell.

Historically this logic lived inside
:class:`~repro.parallel.simcomm.GhostExchangeSimulator`, which only *checked*
coverage; it was promoted into this reusable component so that
:class:`repro.parallel.engine.DomainDecomposedSimulation` can drive real
dynamics through the very same delivery rules the correctness properties pin
down (p2p delivers exactly the reference set; node-based a superset of it).

The selection methods are *per-sender*: ``p2p_selection(sender_positions,
receiver_rank)`` is literally the mask a sending rank applies to its own atom
slab, which is how the engine assembles one message per (sender, receiver)
pair instead of peeking at global state.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..md.box import Box
from .decomposition import SpatialDecomposition
from .ghost import ghost_shell_ranks, layers_for_cutoff
from .topology import RankTopology

#: Scheme aliases accepted by :meth:`GhostExchange.deliver` and the engine;
#: keys include the Fig. 7 bar labels of the priced schemes they execute.
DELIVERY_SCHEMES = {
    "p2p": "p2p",
    "p2p-utofu": "p2p",
    "p2p-mpi": "p2p",
    "node-based": "node-based",
    "node": "node-based",
    "lb-1l": "node-based",
    "lb-2l": "node-based",
    "lb-4l": "node-based",
    "sg-lb-4l": "node-based",
    "ref-4l": "node-based",
}


def resolve_delivery_scheme(name: str) -> str:
    """Map a scheme label to its delivery pattern ("p2p" or "node-based")."""
    try:
        return DELIVERY_SCHEMES[str(name)]
    except KeyError:
        raise KeyError(
            f"unknown delivery scheme {name!r}; available: {sorted(DELIVERY_SCHEMES)}"
        ) from None


def scheme_supports_node_box(name: str) -> bool:
    """Whether a delivery scheme gives every rank its node-box atom copy.

    Under the node-based pattern both :meth:`GhostExchange.node_selection`
    (which depends only on the *receiver's node*) and the peer delivery of
    :meth:`GhostExchange.node_peer_ranks` hand every rank of a node the same
    owned+ghost superset — the node-box copy.  That shared copy is the
    precondition for the §III-C intra-node load balancing, where evaluation
    of the node's atoms is split evenly regardless of which sub-box owns
    them; the p2p pattern delivers per-sub-box shells only, so a rank cannot
    be assigned a node peer's atom.
    """
    return resolve_delivery_scheme(name) == "node-based"


def periodic_point_to_box_distance(
    positions: np.ndarray, lower: np.ndarray, upper: np.ndarray, lengths: np.ndarray
) -> np.ndarray:
    """Minimum-image distance from each point to an axis-aligned box."""
    positions = np.asarray(positions, dtype=np.float64)
    per_axis = np.zeros_like(positions)
    for axis in range(3):
        best = None
        for shift in (-lengths[axis], 0.0, lengths[axis]):
            c = positions[:, axis] + shift
            d = np.maximum(np.maximum(lower[axis] - c, c - upper[axis]), 0.0)
            best = d if best is None else np.minimum(best, d)
        per_axis[:, axis] = best
    return np.sqrt(np.einsum("ij,ij->i", per_axis, per_axis))


@dataclass
class GhostExchange:
    """Executable ghost-delivery rules for one decomposition and cutoff.

    ``cutoff`` is the *exchange* radius: the engine passes the force cutoff
    plus the neighbour skin so ghost lists stay valid exactly as long as the
    neighbour lists built from them.
    """

    decomposition: SpatialDecomposition
    cutoff: float

    def __post_init__(self) -> None:
        if self.cutoff <= 0:
            raise ValueError("cutoff must be positive")
        self.topology: RankTopology = self.decomposition.topology
        self.box: Box = self.decomposition.box

    # -- geometry ------------------------------------------------------------------
    def rank_layers(self) -> tuple[int, int, int]:
        return layers_for_cutoff(self.decomposition.sub_box_lengths, self.cutoff)

    def node_layers(self) -> tuple[int, int, int]:
        return layers_for_cutoff(self.decomposition.node_box_lengths, self.cutoff)

    def p2p_neighbor_ranks(self, rank: int) -> list[int]:
        """Distinct ranks in ``rank``'s ghost shell (torus-wrapped, deduped)."""
        coord = self.topology.rank_coord(rank)
        coords = ghost_shell_ranks(coord, self.topology.rank_dims, self.rank_layers())
        return [self.topology.rank_index(c) for c in coords]

    def node_neighbor_ranks(self, rank: int) -> list[int]:
        """Ranks living on the nodes in ``rank``'s *node* ghost shell."""
        node_coord = self.topology.node_of_rank(rank)
        coords = ghost_shell_ranks(node_coord, self.topology.node_dims, self.node_layers())
        ranks: list[int] = []
        for coord in coords:
            ranks.extend(self.topology.ranks_on_node(coord))
        return ranks

    def node_peer_ranks(self, rank: int) -> list[int]:
        """The other ranks of ``rank``'s node (shared-memory peers)."""
        node_coord = self.topology.node_of_rank(rank)
        return [r for r in self.topology.ranks_on_node(node_coord) if r != rank]

    # -- per-sender selections -------------------------------------------------------
    def p2p_selection(
        self, sender_positions: np.ndarray, receiver_rank: int, prewrapped: bool = False
    ) -> np.ndarray:
        """Mask over a sender's atoms: within ``cutoff`` of the receiver's sub-box.

        ``prewrapped=True`` declares the positions already wrapped into the
        primary cell — a sender talks to every rank of its ghost shell, so
        the engine wraps each rank's slab once per rebuild instead of once
        per (sender, receiver) pair.
        """
        lower, upper = self.decomposition.rank_bounds(receiver_rank)
        wrapped = sender_positions if prewrapped else self.box.wrap(sender_positions)
        distance = periodic_point_to_box_distance(wrapped, lower, upper, self.box.lengths)
        return distance <= self.cutoff

    def node_selection(
        self, sender_positions: np.ndarray, receiver_rank: int, prewrapped: bool = False
    ) -> np.ndarray:
        """Mask over a sender's atoms: within ``cutoff`` of the receiver's node-box."""
        node_coord = self.topology.node_of_rank(receiver_rank)
        lengths = self.decomposition.node_box_lengths
        lower = np.array(node_coord, dtype=np.float64) * lengths
        upper = lower + lengths
        wrapped = sender_positions if prewrapped else self.box.wrap(sender_positions)
        distance = periodic_point_to_box_distance(wrapped, lower, upper, self.box.lengths)
        return distance <= self.cutoff

    # -- whole-system deliveries (checker / convenience API) ---------------------------
    def owners(self, positions: np.ndarray) -> np.ndarray:
        return self.decomposition.assign_to_ranks(positions)

    def reference_ghosts(self, rank: int, positions: np.ndarray, owners: np.ndarray | None = None) -> np.ndarray:
        """Atom ids (owned elsewhere) within ``cutoff`` of the rank's sub-box."""
        owners = self.owners(positions) if owners is None else owners
        needed = self.p2p_selection(positions, rank) & (owners != rank)
        return np.nonzero(needed)[0]

    def deliver_p2p(self, rank: int, positions: np.ndarray, owners: np.ndarray | None = None) -> np.ndarray:
        """Sorted atom ids delivered to ``rank`` by the p2p pattern."""
        owners = self.owners(positions) if owners is None else owners
        delivered: list[np.ndarray] = []
        for neighbor in self.p2p_neighbor_ranks(rank):
            sender_atoms = np.nonzero(owners == neighbor)[0]
            if len(sender_atoms) == 0:
                continue
            mask = self.p2p_selection(positions[sender_atoms], rank)
            delivered.append(sender_atoms[mask])
        if not delivered:
            return np.empty(0, dtype=np.int64)
        return np.unique(np.concatenate(delivered))

    def deliver_node_based(self, rank: int, positions: np.ndarray, owners: np.ndarray | None = None) -> np.ndarray:
        """Sorted atom ids available to ``rank`` after the node-based exchange."""
        owners = self.owners(positions) if owners is None else owners
        delivered: list[np.ndarray] = []
        # (a) node peers' local atoms via shared memory.
        for peer in self.node_peer_ranks(rank):
            delivered.append(np.nonzero(owners == peer)[0])
        # (b) ghost atoms shipped by neighbouring nodes (node-box slabs).
        for neighbor in self.node_neighbor_ranks(rank):
            sender_atoms = np.nonzero(owners == neighbor)[0]
            if len(sender_atoms) == 0:
                continue
            mask = self.node_selection(positions[sender_atoms], rank)
            delivered.append(sender_atoms[mask])
        if not delivered:
            return np.empty(0, dtype=np.int64)
        return np.unique(np.concatenate(delivered))

    def deliver(self, scheme: str, rank: int, positions: np.ndarray, owners: np.ndarray | None = None) -> np.ndarray:
        """Delivery under a scheme label (see :data:`DELIVERY_SCHEMES`)."""
        pattern = resolve_delivery_scheme(scheme)
        if pattern == "p2p":
            return self.deliver_p2p(rank, positions, owners)
        return self.deliver_node_based(rank, positions, owners)
