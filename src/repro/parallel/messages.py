"""Message and communication-plan containers.

A :class:`CommunicationPlan` describes, for one *representative* rank (the
benchmark systems are uniform, so every rank is statistically equivalent),
everything the ghost exchange of one MD step does: the inter-node messages
(grouped into sequential rounds), the intra-node shared-memory traffic, the
synchronizations, and how many concurrent engines/threads drain the messages.
:mod:`repro.perfmodel.comm_cost` turns a plan into seconds on the machine
model.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Message:
    """One point-to-point transfer."""

    n_bytes: float
    hops: int = 1
    intra_node: bool = False

    def __post_init__(self) -> None:
        if self.n_bytes < 0:
            raise ValueError("message size must be non-negative")
        if self.hops < 0:
            raise ValueError("hop count must be non-negative")


@dataclass
class CommRound:
    """Messages that may proceed concurrently (within engine limits)."""

    messages: list[Message] = field(default_factory=list)
    #: concurrent RDMA engines available for this round (None = all TNIs).
    engines: int | None = None
    #: concurrent communication threads driving the engines (None = no cap).
    threads: int | None = None

    @property
    def total_bytes(self) -> float:
        return float(sum(m.n_bytes for m in self.messages))

    @property
    def n_messages(self) -> int:
        return len(self.messages)


@dataclass
class CommunicationPlan:
    """The per-step ghost-exchange plan of one representative rank."""

    scheme: str
    rounds: list[CommRound] = field(default_factory=list)
    #: bytes copied across NUMA domains into shared send buffers (gather).
    gather_bytes_per_rank: list[float] = field(default_factory=list)
    #: bytes scattered from shared receive buffers back to workers.
    scatter_bytes_per_rank: list[float] = field(default_factory=list)
    #: intra-node synchronizations per exchange (sender + receiver side).
    n_intra_node_syncs: int = 0
    #: threads available for intra-node copies.
    copy_threads: int = 12
    #: whether messages use uTofu RDMA (True) or the MPI API (False).
    use_rdma: bool = True
    #: how many MPI ranks of one node issue this per-rank plan concurrently
    #: (rank-level schemes: 4 ranks share the node's TNIs/links and transmit
    #: their partially overlapping ghost regions redundantly; node-level
    #: schemes: 1).
    ranks_sharing_network: int = 1
    #: registered RDMA regions (for the NIC-cache model); None = pooled.
    registered_regions: int | None = None
    #: received packets that a leader must unpack into shared memory per
    #: exchange (0 for rank-level schemes, which receive into place).
    unpack_messages: int = 0
    #: ratio of force send-back bytes to ghost-position bytes (reverse path).
    reverse_traffic_ratio: float = 0.5
    #: free-form notes (leader count, load-balance variant, ...).
    notes: dict = field(default_factory=dict)

    # -- aggregate queries ---------------------------------------------------------
    @property
    def n_messages(self) -> int:
        return sum(r.n_messages for r in self.rounds)

    @property
    def total_message_bytes(self) -> float:
        return float(sum(r.total_bytes for r in self.rounds))

    @property
    def n_inter_node_messages(self) -> int:
        return sum(1 for r in self.rounds for m in r.messages if not m.intra_node)

    @property
    def total_gather_bytes(self) -> float:
        return float(sum(self.gather_bytes_per_rank))

    @property
    def total_scatter_bytes(self) -> float:
        return float(sum(self.scatter_bytes_per_rank))
