"""Spatial domain decomposition and atom assignment.

The decomposition mirrors LAMMPS: the periodic box is cut into a regular grid
of sub-boxes, one per MPI rank; each rank owns the atoms whose wrapped
coordinates fall inside its sub-box.  The same machinery also bins atoms at
node granularity (the *node-box* of the paper's intra-node load balance).

Assignment is exact — the real atom coordinates of the benchmark systems are
binned — which is what makes the load-balance statistics of Table III and
Fig. 10 measured rather than modelled.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..md.box import Box
from .topology import RankTopology


@dataclass
class DecompositionStats:
    """Per-rank (or per-node) atom-count statistics."""

    counts: np.ndarray

    @property
    def n_domains(self) -> int:
        return len(self.counts)

    @property
    def total(self) -> int:
        return int(self.counts.sum())

    @property
    def minimum(self) -> int:
        return int(self.counts.min()) if len(self.counts) else 0

    @property
    def maximum(self) -> int:
        return int(self.counts.max()) if len(self.counts) else 0

    @property
    def mean(self) -> float:
        return float(self.counts.mean()) if len(self.counts) else 0.0

    @property
    def sdmr_percent(self) -> float:
        """Standard-deviation-to-mean ratio in percent (the paper's metric)."""
        if len(self.counts) == 0 or self.counts.mean() == 0:
            return 0.0
        return float(self.counts.std() / self.counts.mean() * 100.0)

    def summary(self) -> dict[str, float]:
        return {
            "min": self.minimum,
            "avg": self.mean,
            "max": self.maximum,
            "sdmr%": self.sdmr_percent,
        }


@dataclass
class SpatialDecomposition:
    """A rank-grid decomposition of a periodic box."""

    box: Box
    topology: RankTopology

    def __post_init__(self) -> None:
        self.rank_dims = np.array(self.topology.rank_dims, dtype=np.int64)
        self.node_dims = np.array(self.topology.node_dims, dtype=np.int64)
        self.sub_box_lengths = self.box.lengths / self.rank_dims
        self.node_box_lengths = self.box.lengths / self.node_dims

    # -- geometric queries -----------------------------------------------------------
    def rank_cell_of_positions(self, positions: np.ndarray) -> np.ndarray:
        """Rank-grid cell coordinates, shape ``(n, 3)``."""
        wrapped = self.box.wrap(np.asarray(positions, dtype=np.float64))
        frac = wrapped / self.box.lengths
        cells = np.floor(frac * self.rank_dims).astype(np.int64)
        return np.minimum(cells, self.rank_dims - 1)

    def assign_to_ranks(self, positions: np.ndarray) -> np.ndarray:
        """Owning rank index of every atom."""
        cells = self.rank_cell_of_positions(positions)
        ry, rz = int(self.rank_dims[1]), int(self.rank_dims[2])
        return (cells[:, 0] * ry + cells[:, 1]) * rz + cells[:, 2]

    def assign_to_nodes(self, positions: np.ndarray) -> np.ndarray:
        """Owning node index of every atom."""
        cells = self.rank_cell_of_positions(positions)
        block = np.array(self.topology.rank_block, dtype=np.int64)
        node_cells = cells // block
        ny, nz = int(self.node_dims[1]), int(self.node_dims[2])
        return (node_cells[:, 0] * ny + node_cells[:, 1]) * nz + node_cells[:, 2]

    # -- statistics --------------------------------------------------------------------
    def rank_counts(self, positions: np.ndarray) -> DecompositionStats:
        ranks = self.assign_to_ranks(positions)
        counts = np.bincount(ranks, minlength=self.topology.n_ranks)
        return DecompositionStats(counts)

    def node_counts(self, positions: np.ndarray) -> DecompositionStats:
        nodes = self.assign_to_nodes(positions)
        counts = np.bincount(nodes, minlength=self.topology.n_nodes)
        return DecompositionStats(counts)

    def rank_bounds(self, rank: int) -> tuple[np.ndarray, np.ndarray]:
        """(lower, upper) corner of a rank's sub-box."""
        coord = np.array(self.topology.rank_coord(rank), dtype=np.float64)
        lower = coord * self.sub_box_lengths
        return lower, lower + self.sub_box_lengths

    def atoms_per_core(self, n_atoms: int) -> float:
        return n_atoms / self.topology.n_cores

    def sub_box_in_cutoff_units(self, cutoff: float) -> np.ndarray:
        """Sub-box side lengths expressed in units of the cutoff radius."""
        if cutoff <= 0:
            raise ValueError("cutoff must be positive")
        return self.sub_box_lengths / cutoff


def uniform_density_counts(
    decomposition: SpatialDecomposition, n_atoms: int, rng=None, jitter: float = 0.0
) -> np.ndarray:
    """Expected per-rank counts for a uniform-density system (optionally jittered).

    Useful for scales where materializing every atom would be wasteful; the
    strong-scaling benchmarks use real coordinates instead.
    """
    base = n_atoms / decomposition.topology.n_ranks
    counts = np.full(decomposition.topology.n_ranks, base)
    if jitter > 0.0:
        generator = np.random.default_rng(rng)
        counts = generator.poisson(base, size=decomposition.topology.n_ranks).astype(float)
    return counts
