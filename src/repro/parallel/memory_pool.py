"""RDMA registered-buffer management (Fig. 8).

Point-to-point communication with many neighbours either registers a pair of
buffers per neighbour (simple, but the NIC's registration cache thrashes once
the number of regions exceeds its capacity) or registers one large pooled
region and hands out offsets (the paper's memory pool).  This module tracks
buffer allocations both ways and, together with the NIC-cache model, produces
the per-message cost curves of Fig. 8.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..hardware.nic_cache import NICRegistrationCache
from ..hardware.specs import NICCacheSpec


@dataclass
class _Buffer:
    offset: int
    size: int
    neighbor: int
    direction: str  # "send" or "recv"


@dataclass
class RdmaBufferManager:
    """Allocates send/receive buffers for neighbour communication.

    Parameters
    ----------
    pooled:
        True = one registered region, buffers are carved out by offset;
        False = every buffer is its own registered region.
    alignment:
        offsets are rounded up to this many bytes (RDMA descriptor alignment).
    """

    pooled: bool = True
    alignment: int = 256
    buffers: list[_Buffer] = field(default_factory=list)
    _next_offset: int = 0

    def allocate(self, neighbor: int, size: int, direction: str = "send") -> _Buffer:
        if size <= 0:
            raise ValueError("buffer size must be positive")
        if direction not in ("send", "recv"):
            raise ValueError("direction must be 'send' or 'recv'")
        aligned = -(-size // self.alignment) * self.alignment
        buf = _Buffer(offset=self._next_offset, size=aligned, neighbor=neighbor, direction=direction)
        self._next_offset += aligned
        self.buffers.append(buf)
        return buf

    def allocate_for_neighbors(self, n_neighbors: int, size: int) -> None:
        """Send + receive buffers for every neighbour (the Fig. 8 setup)."""
        for neighbor in range(n_neighbors):
            self.allocate(neighbor, size, "send")
            self.allocate(neighbor, size, "recv")

    # -- accounting ------------------------------------------------------------
    @property
    def registered_regions(self) -> int:
        """Regions the NIC must track: 1 when pooled, one per buffer otherwise."""
        if not self.buffers:
            return 0
        return 1 if self.pooled else len(self.buffers)

    @property
    def total_registered_bytes(self) -> int:
        return sum(b.size for b in self.buffers)

    def per_message_penalty(self, cache: NICRegistrationCache | None = None) -> float:
        """Expected NIC-cache penalty per message for the current allocation."""
        cache = cache or NICRegistrationCache(NICCacheSpec())
        return cache.per_message_penalty(self.registered_regions)

    def reset(self) -> None:
        self.buffers.clear()
        self._next_offset = 0
