"""Ghost-region geometry.

Ghost atoms are copies of atoms owned by other ranks that lie within the
cutoff of a rank's sub-box.  When the sub-box side shrinks below the cutoff
(the strong-scaling limit), the ghost shell spans *multiple layers* of
neighbouring ranks — up to 124 neighbours two hops away for a
0.5 r_cut sub-box — which is the communication problem the node-based scheme
attacks.

This module provides

* :func:`layers_for_cutoff` — how many rank/node layers the ghost shell spans,
* :func:`ghost_shell_ranks` — the exact set of neighbouring domains,
* :func:`overlap_volume` — the volume of a neighbour's sub-box that falls in
  the ghost shell (used to size messages for uniform-density systems),
* the closed-form ghost-count expressions of §III-C (eqs. 1 and 2), used to
  quantify the memory overhead of the intra-node load balance.
"""

from __future__ import annotations

import numpy as np


def layers_for_cutoff(sub_box_lengths, cutoff: float) -> tuple[int, int, int]:
    """Number of neighbouring domain layers the ghost shell spans per axis."""
    if cutoff <= 0:
        raise ValueError("cutoff must be positive")
    lengths = np.asarray(sub_box_lengths, dtype=np.float64)
    if np.any(lengths <= 0):
        raise ValueError("sub-box lengths must be positive")
    # A tolerance avoids an extra layer when cutoff is an exact multiple.
    return tuple(int(np.ceil(cutoff / l - 1.0e-9)) for l in lengths)


def ghost_shell_ranks(coord, dims, layers) -> list[tuple[int, int, int]]:
    """Distinct neighbouring domains within ``layers`` shells (torus wrap).

    The centre domain itself is excluded; wrapping can alias small grids, in
    which case the aliased neighbour is counted once (matching what an actual
    periodic decomposition communicates).
    """
    dims = tuple(int(d) for d in dims)
    lx, ly, lz = (int(l) for l in layers)
    seen = set()
    out: list[tuple[int, int, int]] = []
    centre = tuple(int(c) % d for c, d in zip(coord, dims))
    for dx in range(-lx, lx + 1):
        for dy in range(-ly, ly + 1):
            for dz in range(-lz, lz + 1):
                if dx == 0 and dy == 0 and dz == 0:
                    continue
                wrapped = tuple((c + o) % d for c, o, d in zip(centre, (dx, dy, dz), dims))
                if wrapped == centre:
                    continue
                if wrapped not in seen:
                    seen.add(wrapped)
                    out.append(wrapped)
    return out


def neighbor_count(layers) -> int:
    """Neighbour count ignoring torus aliasing: (2Lx+1)(2Ly+1)(2Lz+1) - 1."""
    lx, ly, lz = (int(l) for l in layers)
    return (2 * lx + 1) * (2 * ly + 1) * (2 * lz + 1) - 1


def overlap_volume(offset, sub_box_lengths, cutoff: float) -> float:
    """Volume of the neighbour at ``offset`` that lies inside the ghost shell.

    For a neighbour displaced by ``offset`` (in sub-box units) along each axis,
    the slab of that neighbour's box needed by the centre rank has, per axis,

    * the full side length when offset is 0,
    * ``min(cutoff - (|offset|-1) * side, side)`` otherwise.
    """
    lengths = np.asarray(sub_box_lengths, dtype=np.float64)
    volume = 1.0
    for o, side in zip(offset, lengths):
        o = abs(int(o))
        if o == 0:
            extent = side
        else:
            extent = min(max(cutoff - (o - 1) * side, 0.0), side)
        volume *= extent
    return float(volume)


def ghost_count_original(a: float, r: float, density: float = 1.0) -> float:
    """Equation (1): ghost atoms of one rank with sub-box side ``a`` and cutoff ``r``."""
    if a <= 0 or r <= 0:
        raise ValueError("side and cutoff must be positive")
    return density * ((a + 2.0 * r) ** 3 - a ** 3)


def ghost_count_load_balanced(a: float, r: float, density: float = 1.0) -> float:
    """Equation (2): ghost atoms per rank with the node-box (2a x 2a x a) layout."""
    if a <= 0 or r <= 0:
        raise ValueError("side and cutoff must be positive")
    return density * ((2.0 * a + 2.0 * r) * (2.0 * a + 2.0 * r) * (a + 2.0 * r) - a ** 3)


def ghost_overhead_ratio(a: float, r: float) -> float:
    """Ratio of eq. (2) to eq. (1); the paper quotes ~1.44 at a = 0.5 r."""
    return ghost_count_load_balanced(a, r) / ghost_count_original(a, r)
