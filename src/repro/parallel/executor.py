"""Rank executors: who actually runs the per-rank force work.

:class:`~repro.parallel.engine.DomainDecomposedSimulation` structures every
force evaluation as per-rank stages (neighbour rebuild, optional density
prepare, finish) separated by parent-side communication (migration, ghost
exchange, halo forward, reverse force scatter).  A *rank executor* owns the
per-rank stages:

* :class:`SequentialRankExecutor` runs them in-process, one rank after the
  other, in rank order.  It is the **golden reference**: the original
  engine loop, byte for byte, and the baseline every concurrent executor is
  pinned against.
* :class:`MultiprocessRankExecutor` runs them concurrently on a
  :class:`~repro.parallel.threadpool.PersistentWorkerPool` of forked worker
  processes.  Positions, forces and the density halo travel through
  ``multiprocessing.shared_memory`` slabs (one row per rank) instead of
  per-domain copies: the parent publishes each rank's owned+ghost positions
  into the position slab, workers build neighbour lists and evaluate forces
  directly on zero-copy slab views, and write their local force arrays into
  the force slab the parent reduces from.

**The bitwise rule.**  Workers execute the *same* evaluator code as the
sequential executor on the *same* float64 bytes, and the parent reduces
energies/virials and scatters forces in fixed rank order (the pool's
fixed-order gather), never in completion order.  Identical code + identical
inputs + identical summation order ⇒ the concurrent executor is bit-identical
to the sequential one — ``tests/test_parallel_executor.py`` pins this with
exact array equality, not tolerances.

Structural state (which gids each rank owns, its ghost list, its node-box
share) changes only at neighbour rebuilds and is shipped once per rebuild
over the pool's pipes; the per-step traffic is shared-memory only.
"""

from __future__ import annotations

import os
import time
import weakref
from multiprocessing import shared_memory
from types import SimpleNamespace

import numpy as np

from ..md.atoms import Atoms
from ..md.neighbor import build_neighbor_data
from ..md.workspace import Workspace
from .threadpool import PersistentWorkerPool, worker_reply

__all__ = [
    "RankExecutor",
    "SequentialRankExecutor",
    "MultiprocessRankExecutor",
    "SharedRankArrays",
    "make_executor",
    "EXECUTOR_NAMES",
]

#: Accepted ``executor=`` labels ("multiprocess" is an alias of "process").
EXECUTOR_NAMES = ("sequential", "process", "multiprocess")


class RankExecutor:
    """Runs the per-rank stages of one distributed force evaluation.

    The engine drives exactly this sequence per evaluation: on rebuild steps
    ``publish_positions`` then ``rebuild``; on plain steps just
    ``publish_positions``; then for halo force fields ``prepare`` and (after
    the parent's forward exchange into ``halo_sinks``) ``finish``; forces and
    scalars come back in rank order for the parent's fixed-order reduction.
    """

    name = "base"

    def bind(self, engine) -> None:
        """Attach to an engine (called once, at the end of engine init)."""
        self.engine = engine

    def publish_positions(self) -> None:
        """Make every rank's current owned+ghost positions visible to it."""

    def rebuild(self) -> None:
        """Per-rank neighbour builds + evaluator rebuilds (timed per rank)."""
        raise NotImplementedError

    def prepare(self) -> list:
        """Stage-1 per-owned-atom intermediates, in rank order (EAM density)."""
        raise NotImplementedError

    def halo_sinks(self) -> list | None:
        """Per-rank ``(n_ghost,)`` targets for the forward halo, or ``None``
        to let :meth:`engine._forward_halo` allocate (the reference path)."""
        return None

    def finish(self, halos) -> list:
        """Per-rank ``(energy, local_forces, virial)`` results, in rank order."""
        raise NotImplementedError

    def close(self) -> None:
        """Release any resources; idempotent."""


class SequentialRankExecutor(RankExecutor):
    """The golden reference: every rank stage in-process, in rank order."""

    name = "sequential"

    def rebuild(self) -> None:
        # Per-rank vectorized binned builds over each rank's owned+ghost set.
        # Every rank pays for its *own* local system only, so the build cost
        # per rank shrinks as the decomposition grows — the quantity
        # ``benchmarks/bench_neighbor_build.py`` and the ``neigh`` column of
        # ``bench_parallel_engine.py`` track.
        engine = self.engine
        for domain in engine.domains:
            start = time.perf_counter()
            domain.neighbors = build_neighbor_data(
                domain.local_positions(), engine.box, engine.cutoff, engine.neighbor_skin
            )
            domain.neigh_seconds += time.perf_counter() - start
            engine.evaluator.rebuild(domain)

    def prepare(self) -> list:
        engine = self.engine
        stage = []
        for domain in engine.domains:
            start = time.perf_counter()
            stage.append(engine.evaluator.prepare(domain))
            domain.pair_seconds += time.perf_counter() - start
        return stage

    def halo_sinks(self) -> list | None:
        workspace = self.engine.workspace
        if workspace is None:
            return None
        return [
            workspace.capacity(f"halo.sink{domain.rank}", domain.n_ghost)
            for domain in self.engine.domains
        ]

    def finish(self, halos) -> list:
        engine = self.engine
        results = []
        for i, domain in enumerate(engine.domains):
            start = time.perf_counter()
            results.append(
                engine.evaluator.finish(domain, halos[i] if halos is not None else None)
            )
            domain.pair_seconds += time.perf_counter() - start
        return results


# ---------------------------------------------------------------------------
# Shared-memory slabs
# ---------------------------------------------------------------------------


def _release_blocks(blocks: list) -> None:
    for block in blocks:
        try:
            block.unlink()
        except FileNotFoundError:
            pass
    for block in blocks:
        try:
            block.close()
        except BufferError:
            # a live numpy view (e.g. a domain's ghost-force tail) still
            # exports the buffer; the mapping is freed when it is collected —
            # the unlink above already removed the backing segment.
            pass


class SharedRankArrays:
    """Per-rank position/force/halo slabs in ``multiprocessing.shared_memory``.

    One row per rank, ``n_global`` atoms wide (a rank's owned+ghost set can
    never exceed the global atom count, so row ``r`` holds rank ``r``'s local
    arrays in its leading ``n_local`` entries).  Created by the parent before
    the workers fork, so every process addresses the *same* mapping and the
    per-step position publish / force read-back are plain memory writes — no
    pickling, no pipes.
    """

    def __init__(self, n_ranks: int, n_global: int) -> None:
        self._blocks: list[shared_memory.SharedMemory] = []
        width = max(int(n_global), 1)
        self.positions = self._allocate((n_ranks, width, 3))
        self.forces = self._allocate((n_ranks, width, 3))
        self.halo = self._allocate((n_ranks, width))
        self._finalizer = weakref.finalize(self, _release_blocks, self._blocks)

    def _allocate(self, shape: tuple) -> np.ndarray:
        block = shared_memory.SharedMemory(create=True, size=int(np.prod(shape)) * 8)
        self._blocks.append(block)
        array = np.ndarray(shape, dtype=np.float64, buffer=block.buf)
        array.fill(0.0)
        return array

    def close(self) -> None:
        """Unlink and release the segments; idempotent."""
        self.positions = self.forces = self.halo = None
        self._finalizer()


# ---------------------------------------------------------------------------
# The worker side
# ---------------------------------------------------------------------------


class _WorkerDomain:
    """A worker-process mirror of :class:`~repro.parallel.engine.RankDomain`.

    Presents exactly the surface the rank evaluators consume (``n_owned``,
    ``local_gids``, ``neighbors``, ``scratch``, ``workspace``,
    ``local_positions``/``local_atoms``) but backed by the rank's shared-slab
    row: ``local_positions`` is a zero-copy view of the position slab and the
    evaluated forces land in the force slab for the parent to reduce.
    Structural fields are refreshed from the per-rebuild pipe payload.
    """

    def __init__(self, rank: int, init) -> None:
        self.rank = rank
        self._init = init
        self._pos_row = init.shared.positions[rank]
        self._frc_row = init.shared.forces[rank]
        self._halo_row = init.shared.halo[rank]
        self.workspace: Workspace | None = Workspace() if init.use_workspace else None
        self.scratch: dict = {}
        self.neighbors = None
        self.balance_mask: np.ndarray | None = None
        self.n_owned = 0
        self.n_ghost = 0
        self.n_local = 0

    def configure(self, gids: np.ndarray, ghost_gids: np.ndarray, balance_gids) -> None:
        init = self._init
        self.gids = gids
        self.ghost_gids = ghost_gids
        self.n_owned = len(gids)
        self.n_ghost = len(ghost_gids)
        self.n_local = self.n_owned + self.n_ghost
        self.local_gids = np.concatenate([gids, ghost_gids])
        self._local_types = init.types[self.local_gids]
        self._local_masses = init.masses[self.local_gids]
        if balance_gids is None:
            self.balance_mask = None
        else:
            mask = np.zeros(init.n_global, dtype=bool)
            mask[balance_gids] = True
            self.balance_mask = mask

    def local_positions(self) -> np.ndarray:
        return self._pos_row[: self.n_local]

    def local_atoms(self, type_names: tuple[str, ...]) -> Atoms:
        # the slab view is contiguous float64, so Atoms adopts it zero-copy
        return Atoms(
            positions=self.local_positions(),
            types=self._local_types,
            masses=self._local_masses,
            ids=self.local_gids.copy(),
            type_names=type_names,
        )

    def force_sink(self) -> np.ndarray:
        return self._frc_row[: self.n_local]

    def stage_sink(self) -> np.ndarray:
        return self._halo_row[: self.n_owned]

    def halo_view(self) -> np.ndarray:
        return self._halo_row[self.n_owned : self.n_local]


def _worker_main(conn, ranks, init) -> None:
    """Protocol loop of one forked worker (a contiguous run of ranks).

    Messages: ``("rebuild", payloads, owner_of)`` — refresh structural state
    and build neighbour lists; ``("prepare",)`` — density stage 1 into the
    halo slab; ``("finish",)`` — evaluate forces into the force slab;
    ``("stop",)`` — exit.  Replies carry per-rank wall-clock seconds (and for
    finish the energy/virial scalars) so the parent can keep per-rank
    ``pair_seconds``/``neigh_seconds`` measured, not modelled.
    """
    from .engine import _EVALUATORS  # deferred: engine imports this module

    host = SimpleNamespace(
        force_field=init.force_field,
        box=init.box,
        type_names=init.type_names,
        n_global=init.n_global,
        _owner_of=None,
    )
    evaluator = _EVALUATORS[init.strategy](host)
    domains = [_WorkerDomain(rank, init) for rank in ranks]

    def handle(message):
        kind = message[0]
        if kind == "rebuild":
            payloads, owner_of = message[1], message[2]
            if owner_of is not None:
                host._owner_of = owner_of
            replies = []
            for domain, payload in zip(domains, payloads):
                domain.configure(**payload)
                start = time.perf_counter()
                domain.neighbors = build_neighbor_data(
                    domain.local_positions(), init.box, init.cutoff, init.skin
                )
                elapsed = time.perf_counter() - start
                evaluator.rebuild(domain)
                replies.append(elapsed)
            return replies
        if kind == "prepare":
            replies = []
            for domain in domains:
                start = time.perf_counter()
                stage = evaluator.prepare(domain)
                replies.append(time.perf_counter() - start)
                domain.stage_sink()[:] = stage
            return replies
        if kind == "finish":
            replies = []
            for domain in domains:
                halo = domain.halo_view() if evaluator.needs_halo else None
                start = time.perf_counter()
                energy, local_forces, virial = evaluator.finish(domain, halo)
                elapsed = time.perf_counter() - start
                sink = domain.force_sink()
                if local_forces is not sink:
                    np.copyto(sink, local_forces)
                replies.append((energy, virial, elapsed))
            return replies
        raise ValueError(f"unknown worker request {kind!r}")

    try:
        while True:
            try:
                message = conn.recv()
            except EOFError:
                break
            if not worker_reply(conn, handle, message):
                break
    finally:
        conn.close()


# ---------------------------------------------------------------------------
# The multiprocess executor
# ---------------------------------------------------------------------------


class MultiprocessRankExecutor(RankExecutor):
    """Concurrent rank execution on a persistent pool of forked workers.

    Ranks are split into contiguous runs, one per worker; every stage is a
    single broadcast + fixed-order gather on the pool, so results always come
    back in rank order no matter which worker finishes first.  See the module
    docstring for the bitwise-parity argument.
    """

    name = "process"

    def __init__(self, n_workers: int | None = None) -> None:
        self._requested_workers = n_workers
        self.pool: PersistentWorkerPool | None = None
        self.shared: SharedRankArrays | None = None

    def bind(self, engine) -> None:
        self.engine = engine
        n_ranks = engine.n_ranks
        n_workers = self._requested_workers
        if n_workers is None:
            n_workers = min(n_ranks, os.cpu_count() or 1)
        n_workers = int(n_workers)
        if n_workers < 1:
            raise ValueError("number of workers must be >= 1")
        n_workers = min(n_workers, n_ranks)
        self.n_workers = n_workers

        self.shared = SharedRankArrays(n_ranks, engine.n_global)
        self._partition = [
            [int(r) for r in chunk] for chunk in np.array_split(np.arange(n_ranks), n_workers)
        ]
        init = SimpleNamespace(
            force_field=engine.force_field,
            box=engine.box,
            type_names=engine.type_names,
            n_global=engine.n_global,
            types=engine._types_global,
            masses=engine._masses_global,
            cutoff=engine.cutoff,
            skin=engine.neighbor_skin,
            strategy=engine.strategy,
            shared=self.shared,
            use_workspace=engine.workspace is not None,
        )
        # fork: workers inherit init (force field, globals, slab mappings)
        # without pickling a byte of it.
        self.pool = PersistentWorkerPool(
            _worker_main, [(ranks, init) for ranks in self._partition]
        )

    def publish_positions(self) -> None:
        for domain in self.engine.domains:
            row = self.shared.positions[domain.rank]
            row[: domain.n_owned] = domain.positions
            row[domain.n_owned : domain.n_local] = domain.ghost_positions

    def rebuild(self) -> None:
        engine = self.engine
        owner_of = engine._owner_of.copy() if engine.strategy == "molecular" else None
        messages = []
        for ranks in self._partition:
            payloads = [
                dict(
                    gids=engine.domains[rank].gids,
                    ghost_gids=engine.domains[rank].ghost_gids,
                    balance_gids=engine.domains[rank].balance_gids,
                )
                for rank in ranks
            ]
            messages.append(("rebuild", payloads, owner_of))
        replies = self.pool.broadcast(messages)
        for ranks, elapsed in zip(self._partition, replies):
            for rank, seconds in zip(ranks, elapsed):
                engine.domains[rank].neigh_seconds += seconds
        if engine.evaluator.needs_halo and engine.workspace is not None:
            # re-adopt the halo slab views: the n_owned/n_ghost split moved
            for domain in engine.domains:
                engine.workspace.adopt(
                    f"halo.sink{domain.rank}",
                    self.shared.halo[domain.rank, domain.n_owned : domain.n_local],
                )

    def prepare(self) -> list:
        engine = self.engine
        replies = self.pool.broadcast(("prepare",))
        for ranks, elapsed in zip(self._partition, replies):
            for rank, seconds in zip(ranks, elapsed):
                engine.domains[rank].pair_seconds += seconds
        return [
            self.shared.halo[domain.rank, : domain.n_owned] for domain in engine.domains
        ]

    def halo_sinks(self) -> list:
        workspace = self.engine.workspace
        if workspace is None:
            return [
                self.shared.halo[domain.rank, domain.n_owned : domain.n_local]
                for domain in self.engine.domains
            ]
        # the adopted slab views registered at rebuild time — the parent's
        # forward exchange writes straight into shared memory
        return [
            workspace.buffer(f"halo.sink{domain.rank}", domain.n_ghost)
            for domain in self.engine.domains
        ]

    def finish(self, halos) -> list:
        # halos were already delivered through the shared halo slab
        engine = self.engine
        replies = self.pool.broadcast(("finish",))
        results = []
        for ranks, worker_results in zip(self._partition, replies):
            for rank, (energy, virial, seconds) in zip(ranks, worker_results):
                domain = engine.domains[rank]
                domain.pair_seconds += seconds
                results.append((energy, self.shared.forces[rank, : domain.n_local], virial))
        return results

    def close(self) -> None:
        if self.pool is not None:
            self.pool.close()
            self.pool = None
        if self.shared is not None:
            self.shared.close()
            self.shared = None


def make_executor(spec="sequential", n_workers: int | None = None) -> RankExecutor:
    """Resolve an ``executor=`` engine parameter into a :class:`RankExecutor`.

    ``spec`` may be an executor instance (returned as-is) or one of
    :data:`EXECUTOR_NAMES`; ``n_workers`` only applies to the process
    executor (default: one worker per rank, capped at the CPU count).
    """
    if isinstance(spec, RankExecutor):
        return spec
    name = str(spec).lower()
    if name == "sequential":
        return SequentialRankExecutor()
    if name in ("process", "multiprocess"):
        return MultiprocessRankExecutor(n_workers=n_workers)
    raise KeyError(f"unknown executor {spec!r}; available: {sorted(set(EXECUTOR_NAMES))}")
