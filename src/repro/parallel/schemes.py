"""Communication schemes for the ghost exchange (Fig. 7 of the paper).

Three families of schemes are modelled, all driven by the *actual* geometry of
the domain decomposition (sub-box sizes, ghost-shell layers, neighbour counts
on the torus) and a uniform atom density:

* :class:`ThreeStageScheme` — LAMMPS' staged exchange: for each dimension in
  turn, exchange with the +/- neighbours as many times as there are ghost
  layers.  Few, large, strictly sequential messages.
* :class:`P2PScheme` — every rank sends directly to every rank whose sub-box
  intersects its ghost shell (up to 124 neighbours at 0.5 r_cut sub-boxes).
* :class:`NodeBasedScheme` — the paper's contribution: the ranks of a node
  aggregate their atoms through shared memory (NoC), one/two/four leader
  ranks exchange one message per neighbouring *node* over uTofu RDMA spread
  across the 6 TNIs, and the received ghosts are scattered back to the
  workers.  Variants: number of leaders, single-thread communication
  (sg-lb-4l), and the original atom organization without the load-balance
  broadcast (ref-4l).

Every scheme produces a :class:`~repro.parallel.messages.CommunicationPlan`
for a representative rank/node; the machine model prices the plan.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..md.box import Box
from .ghost import layers_for_cutoff, overlap_volume
from .messages import CommRound, CommunicationPlan, Message
from .topology import RankTopology

#: Canonical scheme names used by the Fig. 7 benchmark (paper bar labels).
SCHEME_NAMES = [
    "baseline",      # MPI-based 3-stage pattern (LAMMPS default)
    "3stage-utofu",  # 3-stage pattern over uTofu RDMA
    "p2p-utofu",     # direct point-to-point over uTofu RDMA
    "lb-1l",         # node-based, 1 leader
    "lb-2l",         # node-based, 2 leaders
    "lb-4l",         # node-based, 4 leaders (the shipped configuration)
    "sg-lb-4l",      # node-based, 4 leaders, single communication thread each
    "ref-4l",        # node-based, 4 leaders, original atom organization
]


@dataclass
class ExchangeContext:
    """Everything a scheme needs to know about the problem instance."""

    topology: RankTopology
    box: Box
    cutoff: float
    atom_density: float
    bytes_per_atom: float = 48.0
    bytes_per_force: float = 24.0

    def __post_init__(self) -> None:
        if self.cutoff <= 0:
            raise ValueError("cutoff must be positive")
        if self.atom_density <= 0:
            raise ValueError("atom density must be positive")
        self.rank_dims = np.array(self.topology.rank_dims, dtype=np.int64)
        self.node_dims = np.array(self.topology.node_dims, dtype=np.int64)
        self.sub_box_lengths = self.box.lengths / self.rank_dims
        self.node_box_lengths = self.box.lengths / self.node_dims

    @property
    def atoms_per_rank(self) -> float:
        return float(self.atom_density * np.prod(self.sub_box_lengths))

    @property
    def atoms_per_node(self) -> float:
        return float(self.atom_density * np.prod(self.node_box_lengths))

    @property
    def reverse_ratio(self) -> float:
        return self.bytes_per_force / self.bytes_per_atom

    def local_bytes_per_rank(self) -> float:
        return self.atoms_per_rank * self.bytes_per_atom

    @classmethod
    def from_subbox_factors(
        cls,
        topology: RankTopology,
        cutoff: float,
        subbox_factors: tuple[float, float, float],
        atom_density: float,
        **kwargs,
    ) -> "ExchangeContext":
        """Build a context whose sub-box sides are ``factors * cutoff``.

        This is how the Fig. 7 configurations ([1,1,1] r_cut, [.5,.5,1] r_cut,
        [.5,.5,.5] r_cut) are expressed.
        """
        factors = np.asarray(subbox_factors, dtype=np.float64)
        if np.any(factors <= 0):
            raise ValueError("sub-box factors must be positive")
        lengths = factors * cutoff * np.array(topology.rank_dims)
        return cls(topology=topology, box=Box(lengths), cutoff=cutoff, atom_density=atom_density, **kwargs)


def _neighbor_offsets(layers: tuple[int, int, int], dims: np.ndarray) -> list[tuple[int, int, int]]:
    """Neighbour offsets within the ghost shell.

    Offsets that wrap onto the same physical domain are *not* merged: under
    periodic boundaries the receiving domain needs the ghost slab of every
    periodic image separately, so each offset is a distinct message (this is
    also what LAMMPS does on small processor grids).  Offsets that wrap onto
    the centre domain itself are its own periodic images and require no
    communication.
    """
    lx, ly, lz = layers
    offsets: list[tuple[int, int, int]] = []
    for dx in range(-lx, lx + 1):
        for dy in range(-ly, ly + 1):
            for dz in range(-lz, lz + 1):
                if dx == dy == dz == 0:
                    continue
                wrapped = (dx % dims[0], dy % dims[1], dz % dims[2])
                if wrapped == (0, 0, 0):
                    continue
                offsets.append((dx, dy, dz))
    return offsets


def _node_hops(rank_offset: tuple[int, int, int], topology: RankTopology) -> int:
    """Torus hop distance between the nodes of two ranks separated by ``rank_offset``.

    The representative rank sits at the origin corner of its node block, which
    is the common case; the resulting hop counts match the average to within
    one hop.
    """
    block = topology.rank_block
    node_dims = topology.node_dims
    hops = 0
    for off, b, d in zip(rank_offset, block, node_dims):
        node_off = int(np.floor(off / b)) if off < 0 else int(off // b)
        node_off = abs(node_off) % d
        hops += min(node_off, d - node_off)
    return hops


class CommScheme:
    """Base class: a scheme turns an :class:`ExchangeContext` into a plan."""

    name: str = "abstract"

    def plan(self, context: ExchangeContext) -> CommunicationPlan:  # pragma: no cover - abstract
        raise NotImplementedError


@dataclass
class ThreeStageScheme(CommScheme):
    """LAMMPS' dimension-by-dimension staged exchange."""

    use_rdma: bool = False
    name: str = field(default="baseline", init=False)

    def __post_init__(self) -> None:
        self.name = "3stage-utofu" if self.use_rdma else "baseline"

    def plan(self, context: ExchangeContext) -> CommunicationPlan:
        layers = layers_for_cutoff(context.sub_box_lengths, context.cutoff)
        plan = CommunicationPlan(scheme=self.name, use_rdma=self.use_rdma)
        extended = context.sub_box_lengths.astype(float).copy()
        block = context.topology.rank_block
        for axis in range(3):
            n_layers = layers[axis]
            if n_layers == 0:
                continue
            cross_section = np.prod(np.delete(extended, axis))
            slab_depth = min(context.cutoff, float(context.sub_box_lengths[axis]) * n_layers)
            volume_per_direction = cross_section * slab_depth
            bytes_per_round = (
                volume_per_direction / n_layers * context.atom_density * context.bytes_per_atom
            )
            for layer in range(1, n_layers + 1):
                messages = []
                for direction in (+1, -1):
                    # A first-layer neighbour along a dimension the node block
                    # spans is on the same node for half the ranks; deeper
                    # layers always leave the node.
                    intra = layer == 1 and block[axis] > 1 and direction == +1
                    messages.append(
                        Message(
                            n_bytes=bytes_per_round,
                            hops=max(1, int(np.ceil(layer / block[axis]))),
                            intra_node=intra,
                        )
                    )
                # The two directions of one stage can overlap, but stages are
                # strictly ordered, hence one round per (axis, layer).
                plan.rounds.append(CommRound(messages=messages, engines=None, threads=None))
            extended[axis] += 2.0 * context.cutoff
        plan.registered_regions = 2 * sum(2 * l for l in layers)
        plan.reverse_traffic_ratio = context.reverse_ratio
        plan.ranks_sharing_network = context.topology.ranks_per_node
        plan.notes = {"layers": layers, "pattern": "3-stage"}
        return plan


@dataclass
class P2PScheme(CommScheme):
    """Direct point-to-point exchange with every ghost-shell rank."""

    use_rdma: bool = True
    name: str = field(default="p2p-utofu", init=False)

    def __post_init__(self) -> None:
        self.name = "p2p-utofu" if self.use_rdma else "p2p-mpi"

    def plan(self, context: ExchangeContext) -> CommunicationPlan:
        layers = layers_for_cutoff(context.sub_box_lengths, context.cutoff)
        offsets = _neighbor_offsets(layers, context.rank_dims)
        messages = []
        for offset in offsets:
            volume = overlap_volume(offset, context.sub_box_lengths, context.cutoff)
            n_bytes = volume * context.atom_density * context.bytes_per_atom
            hops = _node_hops(offset, context.topology)
            intra = hops == 0
            messages.append(Message(n_bytes=n_bytes, hops=max(hops, 1), intra_node=intra))
        plan = CommunicationPlan(scheme=self.name, use_rdma=self.use_rdma)
        plan.rounds.append(
            CommRound(messages=messages, engines=None, threads=None)
        )
        # The p2p implementation (Li et al. 2023) already manages its buffers
        # through a registered pool, so no per-neighbour NIC-cache pressure.
        plan.registered_regions = None
        plan.reverse_traffic_ratio = context.reverse_ratio
        plan.ranks_sharing_network = context.topology.ranks_per_node
        plan.notes = {"layers": layers, "n_neighbors": len(offsets), "pattern": "p2p"}
        return plan


@dataclass
class NodeBasedScheme(CommScheme):
    """The paper's node-based parallelization scheme."""

    leaders: int = 4
    multithread: bool = True
    load_balanced: bool = True
    ref_layout: bool = False
    use_rdma: bool = True
    use_memory_pool: bool = True
    name: str = field(default="lb-4l", init=False)

    def __post_init__(self) -> None:
        if self.leaders not in (1, 2, 4):
            raise ValueError("leader count must be 1, 2 or 4")
        if self.ref_layout:
            self.name = f"ref-{self.leaders}l"
        elif not self.multithread:
            self.name = f"sg-lb-{self.leaders}l"
        else:
            self.name = f"lb-{self.leaders}l"

    def plan(self, context: ExchangeContext) -> CommunicationPlan:
        topology = context.topology
        ranks_per_node = topology.ranks_per_node
        node_layers = layers_for_cutoff(context.node_box_lengths, context.cutoff)
        offsets = _neighbor_offsets(node_layers, context.node_dims)

        messages = []
        total_ghost_bytes = 0.0
        for offset in offsets:
            volume = overlap_volume(offset, context.node_box_lengths, context.cutoff)
            n_bytes = volume * context.atom_density * context.bytes_per_atom
            total_ghost_bytes += n_bytes
            hops = sum(
                min(abs(o) % d, d - abs(o) % d) for o, d in zip(offset, context.node_dims)
            )
            messages.append(Message(n_bytes=n_bytes, hops=max(hops, 1), intra_node=False))

        threads_per_leader = 6 if self.multithread else 1
        comm_threads = self.leaders * threads_per_leader
        plan = CommunicationPlan(scheme=self.name, use_rdma=self.use_rdma)
        plan.rounds.append(CommRound(messages=messages, engines=None, threads=comm_threads))

        # Intra-node gather of local atoms into the shared/RDMA buffers.
        local_bytes = context.local_bytes_per_rank()
        plan.gather_bytes_per_rank = [local_bytes] * ranks_per_node

        # Scatter of received ghosts: the leaders unpack each received packet
        # once into the shared-memory atom structures (positions/types live in
        # shared memory, so workers read them in place — §III-A.2).  The
        # load-balanced organization additionally keeps the slightly larger
        # node-box ghost list per rank (eq. 2 vs eq. 1), a few extra kilobytes.
        scatter_total = total_ghost_bytes
        if self.load_balanced and not self.ref_layout:
            scatter_total *= 1.05
        plan.scatter_bytes_per_rank = [scatter_total / ranks_per_node] * ranks_per_node

        plan.n_intra_node_syncs = 2
        # Copy/unpack concurrency: every thread of the leaders helps with the
        # gather/scatter copies; only the number of threads driving the TNIs
        # differs between the multithreaded and single-thread variants.
        plan.copy_threads = self.leaders * topology.threads_per_rank
        plan.unpack_messages = len(messages)
        plan.registered_regions = None if self.use_memory_pool else 2 * len(messages)
        plan.reverse_traffic_ratio = context.reverse_ratio
        plan.notes = {
            "node_layers": node_layers,
            "n_neighbor_nodes": len(offsets),
            "leaders": self.leaders,
            "multithread": self.multithread,
            "load_balanced": self.load_balanced and not self.ref_layout,
            "messages_per_rank": len(offsets) / max(self.leaders, 1),
            "pattern": "node-based",
        }
        return plan


def build_scheme(name: str) -> CommScheme:
    """Factory resolving the Fig. 7 bar labels to scheme instances."""
    name = str(name)
    if name == "baseline":
        return ThreeStageScheme(use_rdma=False)
    if name == "3stage-utofu":
        return ThreeStageScheme(use_rdma=True)
    if name == "p2p-utofu":
        return P2PScheme(use_rdma=True)
    if name == "lb-1l":
        return NodeBasedScheme(leaders=1)
    if name == "lb-2l":
        return NodeBasedScheme(leaders=2)
    if name == "lb-4l":
        return NodeBasedScheme(leaders=4)
    if name == "sg-lb-4l":
        return NodeBasedScheme(leaders=4, multithread=False)
    if name == "ref-4l":
        return NodeBasedScheme(leaders=4, ref_layout=True)
    raise KeyError(f"unknown communication scheme {name!r}; available: {SCHEME_NAMES}")
