"""Persistent worker dispatch: the real pool and its overhead model.

The original DeePMD-kit parallelizes with OpenMP; every parallel region pays a
fork/join cost that becomes visible when the per-region work shrinks to a few
microseconds (one or two atoms per thread).  The optimized code keeps a
persistent thread pool whose workers spin, reducing the dispatch overhead by
roughly an order of magnitude.  :class:`ThreadingModel` multiplies the
per-region overhead by the number of parallel regions executed per MD step.

:class:`PersistentWorkerPool` is the executable counterpart the concurrent
engine dispatches through: a fixed set of long-lived worker *processes*
(Python threads cannot run NumPy force loops concurrently under the GIL),
created once with the ``fork`` start method so workers inherit the engine
state and shared-memory mappings instead of pickling them, and driven over
duplex pipes.  Replies are always collected in worker-index order — the
fixed-order gather that keeps every cross-rank reduction bit-identical to
the sequential executor regardless of which worker finishes first.
"""

from __future__ import annotations

import multiprocessing as mp
import traceback
from dataclasses import dataclass, field

from ..hardware.specs import FugakuSpec, FUGAKU


class WorkerError(RuntimeError):
    """A worker process raised; carries the remote traceback text."""


class PersistentWorkerPool:
    """A fixed set of daemon worker processes driven over duplex pipes.

    ``target(conn, *args)`` is spawned once per entry of ``per_worker_args``
    and must loop on ``conn.recv()``, replying ``("ok", payload)`` per
    request, ``("error", traceback_text)`` on failure, and exiting when it
    receives ``("stop",)``.  The pool never re-spawns: like the paper's
    spinning thread pool, dispatch cost is one pipe round-trip, not a
    process/region start.
    """

    def __init__(self, target, per_worker_args, context: str = "fork") -> None:
        if context not in mp.get_all_start_methods():
            raise RuntimeError(
                f"start method {context!r} unavailable; the persistent pool "
                "relies on fork inheritance (no pickling of engine state)"
            )
        ctx = mp.get_context(context)
        self._conns = []
        self._procs = []
        self._closed = False
        for args in per_worker_args:
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(target=target, args=(child_conn, *args), daemon=True)
            proc.start()
            child_conn.close()  # the worker holds the only surviving end
            self._conns.append(parent_conn)
            self._procs.append(proc)

    @property
    def n_workers(self) -> int:
        return len(self._procs)

    def broadcast(self, messages) -> list:
        """Send one request per worker, then gather replies in worker order.

        ``messages`` is either a single message sent to every worker or a
        list with one message per worker.  All sends complete before any
        receive, so workers run concurrently; the receive order (and hence
        any reduction the caller performs over the replies) is fixed.
        """
        if not isinstance(messages, list):
            messages = [messages] * self.n_workers
        if len(messages) != self.n_workers:
            raise ValueError(f"expected {self.n_workers} messages, got {len(messages)}")
        for conn, message in zip(self._conns, messages):
            conn.send(message)
        return [self._receive(index) for index in range(self.n_workers)]

    def _receive(self, index: int):
        try:
            status, payload = self._conns[index].recv()
        except (EOFError, OSError) as exc:
            raise WorkerError(f"worker {index} died mid-request: {exc!r}") from None
        if status == "error":
            raise WorkerError(f"worker {index} raised:\n{payload}")
        return payload

    def close(self, timeout: float = 5.0) -> None:
        """Stop every worker; joins politely, terminates stragglers."""
        if self._closed:
            return
        self._closed = True
        for conn in self._conns:
            try:
                conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout)
        for conn in self._conns:
            conn.close()

    def __enter__(self) -> "PersistentWorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def worker_reply(conn, handler, message) -> bool:
    """One step of the worker-side protocol loop; returns False on stop.

    Runs ``handler(message)`` and ships ``("ok", result)`` back, or the
    formatted traceback as ``("error", text)`` so the parent's
    :class:`WorkerError` shows where the remote code failed.
    """
    if message[0] == "stop":
        return False
    try:
        conn.send(("ok", handler(message)))
    except Exception:  # noqa: BLE001 - the traceback crosses the pipe
        conn.send(("error", traceback.format_exc()))
    return True


@dataclass
class ThreadingModel:
    """Per-step threading overhead for a given runtime choice."""

    kind: str = "openmp"
    machine: FugakuSpec = field(default_factory=lambda: FUGAKU)

    def __post_init__(self) -> None:
        if self.kind not in ("openmp", "threadpool"):
            raise ValueError("threading kind must be 'openmp' or 'threadpool'")

    @property
    def per_region_overhead(self) -> float:
        if self.kind == "openmp":
            return self.machine.openmp_region_overhead
        return self.machine.threadpool_region_overhead

    def per_step_overhead(self, parallel_regions: int | None = None) -> float:
        regions = (
            self.machine.parallel_regions_per_step if parallel_regions is None else int(parallel_regions)
        )
        if regions < 0:
            raise ValueError("number of parallel regions must be non-negative")
        return regions * self.per_region_overhead

    def speedup_over(self, other: "ThreadingModel", parallel_regions: int | None = None) -> float:
        """Overhead ratio other/self (>1 when self is cheaper)."""
        mine = self.per_step_overhead(parallel_regions)
        theirs = other.per_step_overhead(parallel_regions)
        if mine == 0:
            return float("inf")
        return theirs / mine
