"""Threading-model overhead accounting (OpenMP vs persistent thread pool).

The original DeePMD-kit parallelizes with OpenMP; every parallel region pays a
fork/join cost that becomes visible when the per-region work shrinks to a few
microseconds (one or two atoms per thread).  The optimized code keeps a
persistent thread pool whose workers spin, reducing the dispatch overhead by
roughly an order of magnitude.  The model simply multiplies the per-region
overhead by the number of parallel regions executed per MD step.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..hardware.specs import FugakuSpec, FUGAKU


@dataclass
class ThreadingModel:
    """Per-step threading overhead for a given runtime choice."""

    kind: str = "openmp"
    machine: FugakuSpec = field(default_factory=lambda: FUGAKU)

    def __post_init__(self) -> None:
        if self.kind not in ("openmp", "threadpool"):
            raise ValueError("threading kind must be 'openmp' or 'threadpool'")

    @property
    def per_region_overhead(self) -> float:
        if self.kind == "openmp":
            return self.machine.openmp_region_overhead
        return self.machine.threadpool_region_overhead

    def per_step_overhead(self, parallel_regions: int | None = None) -> float:
        regions = (
            self.machine.parallel_regions_per_step if parallel_regions is None else int(parallel_regions)
        )
        if regions < 0:
            raise ValueError("number of parallel regions must be non-negative")
        return regions * self.per_region_overhead

    def speedup_over(self, other: "ThreadingModel", parallel_regions: int | None = None) -> float:
        """Overhead ratio other/self (>1 when self is cheaper)."""
        mine = self.per_step_overhead(parallel_regions)
        theirs = other.per_step_overhead(parallel_regions)
        if mine == 0:
            return float("inf")
        return theirs / mine
