"""Domain-decomposed MD engine over simulated MPI ranks.

:class:`DomainDecomposedSimulation` runs the *same* velocity-Verlet dynamics
as the serial :class:`repro.md.Simulation` — literally the same code:
both are :class:`~repro.md.stepping.EngineBackend` implementations driven by
the shared :class:`~repro.md.stepping.SteppingLoop`, which owns the step
sequence, sampling, trajectory capture and report assembly.  This module only
implements the distributed force evaluation: the atom arrays are partitioned
over the ranks of a :class:`~repro.parallel.topology.RankTopology` via
:class:`~repro.parallel.decomposition.SpatialDecomposition`, and every data
movement between ranks goes through an explicit exchange method, so the loop
has the communication structure of a real distributed MD engine while staying
an in-process simulation.

Owned / ghost / migration lifecycle
-----------------------------------

* **Owned atoms.**  Each rank owns the atoms whose wrapped coordinates fall in
  its sub-box at the last neighbour rebuild.  Positions, velocities and forces
  of owned atoms live only on the owner.
* **Ghost atoms.**  At every neighbour rebuild each rank receives read-only
  copies of the remote atoms within ``cutoff + skin`` of its sub-box, through
  the delivery rules of :class:`~repro.parallel.exchange.GhostExchange`
  (either the **p2p** pattern or the paper's **node-based** pattern).  Between
  rebuilds only the ghost *positions* are refreshed each step (the forward
  exchange); the ghost list itself stays fixed, exactly as long as the
  neighbour lists built from it stay valid under the half-skin criterion.
* **Force decomposition.**  Every energy term is computed by exactly one rank
  (the owner of the term's lowest-id member for pair/bonded terms; the owner
  of the centre atom for per-atom terms), accumulating forces on owned atoms
  and on ghost copies.  EAM-like force fields get an extra mid-force forward
  exchange of their per-atom embedding derivative, mirroring how LAMMPS
  communicates EAM densities.  The accumulated ghost forces are then
  **reverse-scattered** to their owner ranks, so Newton's third law holds
  globally without double counting.
* **Migration.**  At each rebuild, atoms whose wrapped coordinates crossed a
  sub-box boundary are packed up (position, velocity, force, type, mass,
  global id) and shipped to their new owner; the global atom set is conserved
  and each atom has exactly one owner at all times.
* **Reductions.**  Potential energy, the virial and the instantaneous
  temperature are global reductions over ranks, emitted through the same
  :class:`~repro.md.simulation.SimulationReport` as the serial loop, with an
  additional ``comm`` timer phase covering every exchange.

Execution: who runs the ranks
----------------------------

The per-rank stages of a force evaluation (neighbour builds, density prepare,
force finish) are delegated to a :class:`~repro.parallel.executor.RankExecutor`:
``executor="sequential"`` (default) runs them in-process in rank order — the
golden reference — while ``executor="process"`` runs them concurrently on a
persistent pool of forked worker processes with shared-memory position/force
slabs.  All parent-side communication (migration, ghost exchange, halo
forward, reverse scatter) and all reductions happen in fixed rank order, so
the concurrent executor is *bit-identical* to the sequential one (pinned by
``tests/test_parallel_executor.py`` with exact equality).

Intra-node load balancing (``node_balance=True``, §III-C) wires the node-box
organization into the dynamics: under node-based delivery every rank of a
node already holds the identical node-box atom copy (its node peers' atoms
arrive as ghosts), so the engine splits each node's atoms evenly over the
node's ranks — contiguous runs of the node's sorted gids, in NUMA slot order,
exactly the ``floor(n/k)+remainder`` split
:meth:`~repro.parallel.loadbalance.IntraNodeLoadBalancer.rank_counts_with_balance`
predicts — and generalizes owner-computes to *assigned*-computes: a pair is
evaluated by the rank assigned its lowest-gid member, a per-atom environment
by the rank assigned its centre atom.  Measured per-rank ``pair_seconds``
then become directly comparable to the :class:`LoadBalanceStats` model.

Relation to :mod:`repro.perfmodel`: the perf package *prices* the ghost
exchange of one representative rank on the Fugaku machine model, while this
engine *executes* it.  The two meet through
:meth:`DomainDecomposedSimulation.measured_comm_volume` /
:meth:`modelled_plan` and
:func:`repro.perfmodel.comm_cost.plan_with_measured_volume`, which rescale a
modelled communication plan to the ghost volumes the engine actually moved,
and through :meth:`load_balance_stats`, which feeds measured per-rank
atom/ghost counts and pair times into the Table III-style
:class:`~repro.parallel.decomposition.DecompositionStats` machinery.

Parity: ``tests/test_parallel_engine_parity.py`` pins every decomposition and
both delivery schemes to the serial trajectories step-for-step at ``1e-10``.
"""

from __future__ import annotations

from types import SimpleNamespace

import numpy as np

from ..md.atoms import Atoms
from ..md.box import Box
from ..md.forcefields.base import ForceField
from ..md.integrators import VelocityVerlet
from ..md.neighbor import NeighborData, max_displacement
from ..md.stepping import EngineBackend, SimulationReport, SteppingLoop, validate_cutoff
from ..md.thermostats import Thermostat
from ..md.workspace import Workspace, scatter_add_scalars, scatter_add_vectors
from ..units import temperature as instantaneous_temperature
from ..utils.timer import PhaseTimer
from .decomposition import DecompositionStats, SpatialDecomposition
from .exchange import GhostExchange, resolve_delivery_scheme, scheme_supports_node_box
from .executor import make_executor
from .loadbalance import IntraNodeLoadBalancer, LoadBalanceStats
from .topology import RankTopology

#: Bytes shipped per atom in the ghost-list exchange (position + id + type +
#: mass) and per refreshed position / returned force (3 doubles).  The same
#: 48/24 convention the scheme models use.
BYTES_PER_GHOST_ATOM = 48.0
BYTES_PER_VECTOR = 24.0


class RankDomain:
    """The per-rank state of the distributed simulation."""

    def __init__(
        self,
        rank: int,
        gids: np.ndarray,
        positions: np.ndarray,
        velocities: np.ndarray,
        forces: np.ndarray,
        masses: np.ndarray,
        types: np.ndarray,
    ) -> None:
        self.rank = rank
        self.gids = np.ascontiguousarray(gids, dtype=np.int64)
        self.positions = np.ascontiguousarray(positions, dtype=np.float64)
        self.velocities = np.ascontiguousarray(velocities, dtype=np.float64)
        self.forces = np.ascontiguousarray(forces, dtype=np.float64)
        self.masses = np.ascontiguousarray(masses, dtype=np.float64)
        self.types = np.ascontiguousarray(types, dtype=np.int64)
        self.ref_positions: np.ndarray | None = None
        # ghost copies (read-only atoms owned by other ranks)
        self.ghost_gids = np.empty(0, dtype=np.int64)
        self.ghost_owners = np.empty(0, dtype=np.int64)
        self.ghost_positions = np.empty((0, 3))
        self.ghost_forces = np.empty((0, 3))
        self.ghost_types = np.empty(0, dtype=np.int64)
        self.ghost_masses = np.empty(0, dtype=np.float64)
        #: per-owner (owner_rank, ghost_row_indices, owner_slots) triples;
        #: invariant between rebuilds, precomputed by the ghost exchange so
        #: the per-step refresh/scatter are straight gathers.
        self.ghost_groups: list[tuple[int, np.ndarray, np.ndarray]] = []
        self.local_gids = self.gids
        self.neighbors: NeighborData | None = None
        #: node-box share under intra-node load balancing: the sorted gids
        #: this rank *evaluates* (None ⇒ classic owner-computes), plus the
        #: same share as a global boolean mask for vectorized pair filtering.
        self.balance_gids: np.ndarray | None = None
        self.balance_mask: np.ndarray | None = None
        self.pair_seconds = 0.0
        self.neigh_seconds = 0.0
        self.scratch: dict = {}
        #: per-rank scratch pool: force-field output buffers, integrator
        #: stages and density accumulators live here, stable between
        #: rebuilds/migrations (each rank of a real engine owns its own).
        self.workspace: Workspace | None = Workspace()

    @property
    def n_owned(self) -> int:
        return len(self.gids)

    @property
    def n_ghost(self) -> int:
        return len(self.ghost_gids)

    @property
    def n_local(self) -> int:
        return self.n_owned + self.n_ghost

    def local_positions(self) -> np.ndarray:
        return np.vstack([self.positions, self.ghost_positions])

    def local_atoms(self, type_names: tuple[str, ...]) -> Atoms:
        """The rank's owned+ghost system as an :class:`Atoms` container."""
        return Atoms(
            positions=self.local_positions(),
            types=np.concatenate([self.types, self.ghost_types]),
            masses=np.concatenate([self.masses, self.ghost_masses]),
            ids=self.local_gids.copy(),
            type_names=type_names,
        )


# ---------------------------------------------------------------------------
# Per-strategy rank evaluators (owner-computes force decomposition)
# ---------------------------------------------------------------------------


def _owner_computed_mask(pairs: np.ndarray, local_gids: np.ndarray, n_owned: int) -> np.ndarray:
    """Mask of local pairs this rank computes (owner-of-lowest-id rule).

    Owned atoms occupy local slots ``[0, n_owned)``, so a pair is computed
    here exactly when its lowest-global-id member is an owned slot.  Every
    pair of the global system is therefore computed by exactly one rank, and
    pairs between two ghosts are never computed locally.
    """
    ga, gb = local_gids[pairs[:, 0]], local_gids[pairs[:, 1]]
    lowest = np.where(ga < gb, pairs[:, 0], pairs[:, 1])
    return lowest < n_owned


def _computed_pairs(domain) -> np.ndarray:
    """The subset of the local pair list this rank computes.

    Classic owner-computes (``balance_mask is None``): the rank owning the
    pair's lowest-gid member computes it.  Under intra-node load balancing
    the same rule runs on the *assignment*: the rank whose node-box share
    contains the lowest-gid member computes the pair — it necessarily holds
    both members, because the node-box copy plus its ghost shell covers the
    cutoff+skin environment of every assigned atom.  Either way each global
    pair is computed by exactly one rank.
    """
    pairs = domain.neighbors.pairs
    if len(pairs) == 0:
        return pairs
    if domain.balance_mask is None:
        return pairs[_owner_computed_mask(pairs, domain.local_gids, domain.n_owned)]
    ga, gb = domain.local_gids[pairs[:, 0]], domain.local_gids[pairs[:, 1]]
    return pairs[domain.balance_mask[np.minimum(ga, gb)]]


class _RankEvaluator:
    """Computes one rank's energy/force contribution from its local system."""

    #: whether :meth:`prepare` produces a per-owned-atom quantity that must be
    #: forward-exchanged to ghost copies before :meth:`finish` (EAM density).
    needs_halo = False

    def __init__(self, engine: "DomainDecomposedSimulation") -> None:
        self.engine = engine

    def rebuild(self, domain: RankDomain) -> None:
        """Refresh rank-local structures after a neighbour/ghost rebuild."""

    def prepare(self, domain: RankDomain) -> np.ndarray | None:
        """Stage 1: per-owned-atom intermediates to forward, or ``None``."""
        return None

    def finish(self, domain: RankDomain, halo: np.ndarray | None):
        """Stage 2: returns ``(energy, local_forces, virial_or_None)``."""
        raise NotImplementedError


class _PairEvaluator(_RankEvaluator):
    """Pair-decomposable force fields (LJ, Morse): filtered half pair list."""

    def rebuild(self, domain: RankDomain) -> None:
        domain.scratch["pairs"] = _computed_pairs(domain)

    def finish(self, domain: RankDomain, halo):
        engine = self.engine
        base = domain.neighbors
        data = NeighborData(
            neighbors=base.neighbors,
            counts=base.counts,
            pairs=domain.scratch["pairs"],
            cutoff=base.cutoff,
            skin=base.skin,
        )
        result = engine.force_field.compute(
            domain.local_atoms(engine.type_names), engine.box, data, workspace=domain.workspace
        )
        return result.energy, result.forces, result.virial


class _MolecularEvaluator(_RankEvaluator):
    """Pair + bonded terms (flexible water): rank-local remapped topology."""

    def rebuild(self, domain: RankDomain) -> None:
        engine = self.engine
        force_field = engine.force_field
        topology = force_field.topology

        lookup = np.full(engine.n_global, -1, dtype=np.int64)
        lookup[domain.local_gids] = np.arange(domain.n_local)

        def remap(terms: np.ndarray) -> np.ndarray:
            if len(terms) == 0:
                return terms.copy()
            computed_here = engine._owner_of[terms.min(axis=1)] == domain.rank
            selected = terms[computed_here]
            local = lookup[selected]
            if np.any(local < 0):
                raise RuntimeError(
                    f"rank {domain.rank}: a bonded partner left the ghost shell; "
                    "increase the neighbour skin or shrink the timestep"
                )
            return local

        local_topology = type(topology)(
            bonds=remap(topology.bonds),
            angles=remap(topology.angles),
            molecules=topology.molecules[domain.local_gids],
        )
        domain.scratch["local_ff"] = force_field.with_topology(local_topology)
        domain.scratch["pairs"] = _computed_pairs(domain)

    def finish(self, domain: RankDomain, halo):
        engine = self.engine
        base = domain.neighbors
        data = NeighborData(
            neighbors=base.neighbors,
            counts=base.counts,
            pairs=domain.scratch["pairs"],
            cutoff=base.cutoff,
            skin=base.skin,
        )
        result = domain.scratch["local_ff"].compute(
            domain.local_atoms(engine.type_names), engine.box, data, workspace=domain.workspace
        )
        return result.energy, result.forces, result.virial


class _PerAtomEvaluator(_RankEvaluator):
    """Per-atom energies over full neighbour lists (Deep Potential).

    Rows this rank does not evaluate are masked out of the padded table, so
    the force field only evaluates the environments of this rank's atoms and
    scatters forces onto owned atoms and ghost copies alike.  Classic
    owner-computes evaluates the owned rows (whose neighbour lists are
    complete by construction of the ghost shell); under intra-node load
    balancing the rank instead evaluates its node-box *share* — the rows
    whose gid it was assigned, owned or node-peer ghost alike, every one of
    them inside the node box whose cutoff+skin environment the node's ghost
    shell covers.
    """

    def rebuild(self, domain: RankDomain) -> None:
        base = domain.neighbors
        neighbors = base.neighbors.copy()
        counts = base.counts.copy()
        if domain.balance_mask is None:
            neighbors[domain.n_owned:, :] = -1
            counts[domain.n_owned:] = 0
            domain.scratch["eval_rows"] = None
        else:
            keep = domain.balance_mask[domain.local_gids]
            neighbors[~keep, :] = -1
            counts[~keep] = 0
            domain.scratch["eval_rows"] = np.nonzero(keep)[0]
        domain.scratch["masked"] = NeighborData(
            neighbors=neighbors,
            counts=counts,
            pairs=np.empty((0, 2), dtype=np.int64),
            cutoff=base.cutoff,
            skin=base.skin,
        )

    def finish(self, domain: RankDomain, halo):
        engine = self.engine
        result = engine.force_field.compute(
            domain.local_atoms(engine.type_names),
            engine.box,
            domain.scratch["masked"],
            workspace=domain.workspace,
        )
        if result.per_atom_energy is None:
            raise RuntimeError(
                "the 'peratom' parallel strategy requires a per-atom energy decomposition"
            )
        rows = domain.scratch["eval_rows"]
        if rows is None:
            energy = float(result.per_atom_energy[: domain.n_owned].sum())
        else:
            energy = float(result.per_atom_energy[rows].sum())
        return energy, result.forces, result.virial


class _DensityEvaluator(_RankEvaluator):
    """EAM-like force fields (Gupta): two-stage with a density halo exchange.

    Stage 1 accumulates each owned atom's embedding density from the full
    local pair list (complete by construction) and returns the embedding
    derivative ``1/sqrt(rho)``; the engine forward-exchanges it to ghost
    copies — the in-process analogue of LAMMPS' mid-force EAM communication.
    Stage 2 evaluates each owner-filtered pair once using the owner-computed
    derivatives of both members.
    """

    needs_halo = True

    def rebuild(self, domain: RankDomain) -> None:
        # Ghost-ghost pairs contribute only to ghost densities, which the halo
        # exchange overwrites with owner-computed values — drop them up front.
        pairs = domain.neighbors.pairs
        if len(pairs):
            touches_owned = (pairs[:, 0] < domain.n_owned) | (pairs[:, 1] < domain.n_owned)
            pairs = pairs[touches_owned]
        domain.scratch["density_pairs"] = pairs

    def prepare(self, domain: RankDomain) -> np.ndarray:  # reprolint: hot-path
        engine = self.engine
        force_field = engine.force_field
        pairs = domain.scratch["density_pairs"]
        n_local = domain.n_local
        positions = domain.local_positions()

        if len(pairs):
            delta = positions[pairs[:, 0]] - positions[pairs[:, 1]]
            delta = engine.box.minimum_image(delta)
            r = np.linalg.norm(delta, axis=1)
            mask = r <= force_field.cutoff
            pairs, delta, r = pairs[mask], delta[mask], r[mask]
        else:
            delta = np.empty((0, 3))  # reprolint: allow[alloc] empty-pair-list early-out, not the steady-state path
            r = np.empty(0)  # reprolint: allow[alloc] empty-pair-list early-out, not the steady-state path

        if len(pairs):
            repulsion, density_pair, drep_dr, drho_dr = force_field.pair_terms(r)
        else:
            repulsion = density_pair = drep_dr = drho_dr = np.empty(0)  # reprolint: allow[alloc] empty-pair-list early-out, not the steady-state path

        workspace = domain.workspace
        if workspace is not None:
            rep_atom = workspace.zeros("density.rep_atom", n_local)
            rho = workspace.zeros("density.rho", n_local)
        else:
            rep_atom = np.zeros(n_local)  # reprolint: allow[alloc] workspace-less fallback allocates per call by design
            rho = np.zeros(n_local)  # reprolint: allow[alloc] workspace-less fallback allocates per call by design
        if len(pairs):
            # Both branches scatter through the bincount reduction: the
            # workspace toggle changes buffer reuse only, never arithmetic.
            scatter_add_scalars(rep_atom, pairs[:, 0], repulsion)
            scatter_add_scalars(rep_atom, pairs[:, 1], repulsion)
            scatter_add_scalars(rho, pairs[:, 0], density_pair)
            scatter_add_scalars(rho, pairs[:, 1], density_pair)

        sqrt_rho, inv_sqrt = force_field.embedding_terms(rho)
        per_atom = rep_atom - sqrt_rho
        per_atom[rho == 0.0] = rep_atom[rho == 0.0]

        domain.scratch.update(
            pairs=pairs, delta=delta, r=r, drep_dr=drep_dr, drho_dr=drho_dr,
            inv_sqrt=inv_sqrt, energy=float(per_atom[: domain.n_owned].sum()),
        )
        # rho/inv_sqrt are only complete for owned atoms; ghost entries are
        # replaced by the owner-computed values the halo exchange delivers.
        return inv_sqrt[: domain.n_owned]

    def finish(self, domain: RankDomain, halo: np.ndarray | None):  # reprolint: hot-path
        scratch = domain.scratch
        inv_sqrt = scratch["inv_sqrt"]
        if domain.n_ghost:
            inv_sqrt[domain.n_owned:] = halo

        pairs = scratch["pairs"]
        workspace = domain.workspace
        if workspace is not None:
            forces = workspace.zeros("density.forces", (domain.n_local, 3))
        else:
            forces = np.zeros((domain.n_local, 3))  # reprolint: allow[alloc] workspace-less fallback allocates per call by design
        if len(pairs):
            keep = _owner_computed_mask(pairs, domain.local_gids, domain.n_owned)
            pairs = pairs[keep]
            delta, r = scratch["delta"][keep], scratch["r"][keep]
            drep_dr, drho_dr = scratch["drep_dr"][keep], scratch["drho_dr"][keep]
            dE_dr = self.engine.force_field.pair_dE_dr(
                drep_dr, drho_dr, inv_sqrt[pairs[:, 0]], inv_sqrt[pairs[:, 1]]
            )
            pair_forces = (-dE_dr / r)[:, None] * delta
            # Bincount scatter in both workspace modes — the toggle changes
            # buffer reuse only, never arithmetic.
            scatter_add_vectors(forces, pairs[:, 0], pairs[:, 1], pair_forces)
        return scratch["energy"], forces, None


_EVALUATORS = {
    "pair": _PairEvaluator,
    "molecular": _MolecularEvaluator,
    "peratom": _PerAtomEvaluator,
    "density": _DensityEvaluator,
}


# ---------------------------------------------------------------------------
# The engine
# ---------------------------------------------------------------------------


class DomainDecomposedSimulation(EngineBackend):
    """An MD simulation distributed over simulated MPI ranks.

    Parameters mirror :class:`repro.md.Simulation`; additionally:

    topology / rank_dims:
        either a full :class:`RankTopology` or just the rank-grid shape (a
        default node block is derived via :meth:`RankTopology.for_rank_grid`).
    scheme:
        ghost-delivery pattern: ``"p2p"`` or ``"node-based"`` (the Fig. 7 bar
        labels such as ``"p2p-utofu"`` / ``"lb-4l"`` are accepted aliases).
    use_workspace:
        route per-rank scratch (force-field outputs, integrator stages,
        gather/halo arrays) through preallocated
        :class:`~repro.md.workspace.Workspace` pools (False = the original
        allocating reference paths).
    executor / n_workers:
        who runs the per-rank force stages: ``"sequential"`` (default, the
        golden reference) or ``"process"`` — a persistent pool of
        ``n_workers`` forked worker processes computing over shared-memory
        slabs, bit-identical to sequential (see
        :mod:`repro.parallel.executor`).  Process engines hold OS resources;
        call :meth:`close` (or use the engine as a context manager).
    node_balance:
        split each node-box's atoms evenly over the node's ranks instead of
        evaluating strictly by sub-box ownership (§III-C).  Requires a
        node-based delivery ``scheme`` (the node-box copy every rank of a
        node then holds is what makes any assignment within the node legal)
        and a ``pair`` or ``peratom`` strategy; the bonded/density
        strategies keep the owner-computes golden path.
    """

    def __init__(
        self,
        atoms: Atoms,
        box: Box,
        force_field: ForceField,
        timestep_fs: float,
        topology: RankTopology | None = None,
        rank_dims: tuple[int, int, int] = (1, 1, 1),
        scheme: str = "p2p",
        neighbor_skin: float = 2.0,
        neighbor_every: int = 50,
        thermostat: Thermostat | None = None,
        timers: PhaseTimer | None = None,
        use_workspace: bool = True,
        executor: str = "sequential",
        n_workers: int | None = None,
        node_balance: bool = False,
    ) -> None:
        cutoff = validate_cutoff(force_field)
        self.box = box
        self.force_field = force_field
        self.timestep_fs = float(timestep_fs)
        self.neighbor_skin = float(neighbor_skin)
        self.neighbor_every = int(neighbor_every)
        self.thermostat = thermostat
        self.timers = timers if timers is not None else PhaseTimer()
        self.cutoff = float(cutoff)

        self.topology = topology if topology is not None else RankTopology.for_rank_grid(rank_dims)
        self.decomposition = SpatialDecomposition(box, self.topology)
        self.scheme_label = str(scheme)
        self.scheme = resolve_delivery_scheme(scheme)
        self.exchange = GhostExchange(self.decomposition, self.cutoff + self.neighbor_skin)
        self.integrator = VelocityVerlet(self.timestep_fs)

        strategy = getattr(force_field, "parallel_strategy", "pair")
        if strategy not in _EVALUATORS:
            raise KeyError(
                f"unknown parallel strategy {strategy!r}; available: {sorted(_EVALUATORS)}"
            )
        self.strategy = strategy
        self.evaluator: _RankEvaluator = _EVALUATORS[strategy](self)

        self.node_balance = bool(node_balance)
        if self.node_balance:
            if not scheme_supports_node_box(scheme):
                raise ValueError(
                    "node-box load balancing requires a node-based delivery scheme "
                    f"(got {scheme!r}): only the node-box atom copy shared by every "
                    "rank of a node makes an intra-node assignment evaluable"
                )
            if strategy not in ("pair", "peratom"):
                raise ValueError(
                    "node-box load balancing supports the 'pair' and 'peratom' "
                    f"strategies; {strategy!r} keeps the owner-computes golden path"
                )

        # global invariants (types/masses never change; ids are preserved)
        self.n_global = len(atoms)
        self.type_names = atoms.type_names
        self._types_global = atoms.types.copy()
        self._masses_global = atoms.masses.copy()
        self._ids_global = atoms.ids.copy()

        # counters and measurements
        self.n_builds = 0
        self._steps_since_build = 0
        self.n_migrated = 0
        self.n_exchanges = 0
        self.n_force_evaluations = 0
        self.comm_bytes_forward = 0.0
        self.comm_bytes_reverse = 0.0
        self.comm_messages = 0
        self._ghost_count_log: list[np.ndarray] = []
        self._last_energy: float | None = None
        self.last_virial: np.ndarray | None = None
        self.trajectory: list[np.ndarray] = []
        #: engine-level scratch pool (global gathers, the density halo)
        self.workspace: Workspace | None = Workspace() if use_workspace else None

        # initial distribution: every atom to the rank owning its wrapped position
        owners = self.decomposition.assign_to_ranks(atoms.positions)
        self.domains: list[RankDomain] = []
        for rank in range(self.topology.n_ranks):
            idx = np.nonzero(owners == rank)[0]
            domain = RankDomain(
                rank=rank,
                gids=idx,
                positions=atoms.positions[idx],
                velocities=atoms.velocities[idx],
                forces=atoms.forces[idx],
                masses=atoms.masses[idx],
                types=atoms.types[idx],
            )
            if not use_workspace:
                domain.workspace = None
            self.domains.append(domain)
        self._owner_of = np.empty(self.n_global, dtype=np.int64)
        self._slot_of = np.empty(self.n_global, dtype=np.int64)
        self._refresh_directory()

        # the executor binds (and a process pool forks) against fully built
        # domains, so this must stay the last step of construction
        self._neighbors_ready = False
        self._executor = make_executor(executor, n_workers=n_workers)
        self._executor.bind(self)
        self.executor_name = self._executor.name

    # -- directory ---------------------------------------------------------------
    @property
    def n_ranks(self) -> int:
        return self.topology.n_ranks

    def _refresh_directory(self) -> None:
        for domain in self.domains:
            self._owner_of[domain.gids] = domain.rank
            self._slot_of[domain.gids] = np.arange(domain.n_owned)

    # -- migration ----------------------------------------------------------------
    def _migrate(self) -> int:
        """Move atoms whose wrapped coordinates crossed a sub-box boundary."""
        incoming: list[list[tuple]] = [[] for _ in range(self.n_ranks)]
        moved = 0
        for domain in self.domains:
            if domain.n_owned == 0:
                continue
            owners = self.decomposition.assign_to_ranks(domain.positions)
            leaving = owners != domain.rank
            if not leaving.any():
                continue
            for dest in np.unique(owners[leaving]):
                mask = owners == dest
                incoming[int(dest)].append(
                    (
                        domain.gids[mask],
                        domain.positions[mask],
                        domain.velocities[mask],
                        domain.forces[mask],
                        domain.masses[mask],
                        domain.types[mask],
                    )
                )
                self.comm_messages += 1
                self.comm_bytes_forward += mask.sum() * (BYTES_PER_GHOST_ATOM + 2 * BYTES_PER_VECTOR)
            keep = ~leaving
            domain.gids = domain.gids[keep]
            domain.positions = domain.positions[keep]
            domain.velocities = domain.velocities[keep]
            domain.forces = domain.forces[keep]
            domain.masses = domain.masses[keep]
            domain.types = domain.types[keep]
            moved += int(leaving.sum())
        for rank, domain in enumerate(self.domains):
            if not incoming[rank]:
                continue
            gids = np.concatenate([domain.gids] + [p[0] for p in incoming[rank]])
            order = np.argsort(gids, kind="stable")
            domain.gids = gids[order]
            domain.positions = np.vstack([domain.positions] + [p[1] for p in incoming[rank]])[order]
            domain.velocities = np.vstack([domain.velocities] + [p[2] for p in incoming[rank]])[order]
            domain.forces = np.vstack([domain.forces] + [p[3] for p in incoming[rank]])[order]
            domain.masses = np.concatenate([domain.masses] + [p[4] for p in incoming[rank]])[order]
            domain.types = np.concatenate([domain.types] + [p[5] for p in incoming[rank]])[order]
        self.n_migrated += moved
        self._refresh_directory()
        return moved

    # -- ghost exchange ---------------------------------------------------------------
    def _exchange_ghosts(self) -> None:
        """Rebuild every rank's ghost list through the delivery rules."""
        self.n_exchanges += 1
        counts = np.zeros(self.n_ranks, dtype=np.int64)
        # each sender's slab is wrapped once per rebuild (it is reused for
        # every receiver in the sender's ghost shell)
        wrapped = [
            self.box.wrap(domain.positions) if domain.n_owned else domain.positions
            for domain in self.domains
        ]
        for domain in self.domains:
            gid_parts: list[np.ndarray] = []
            pos_parts: list[np.ndarray] = []
            owner_parts: list[np.ndarray] = []

            def receive(sender: RankDomain, mask: np.ndarray | None) -> None:
                if sender.n_owned == 0:
                    return
                gids = sender.gids if mask is None else sender.gids[mask]
                if len(gids) == 0:
                    return
                positions = sender.positions if mask is None else sender.positions[mask]
                gid_parts.append(gids.copy())
                pos_parts.append(positions.copy())
                owner_parts.append(np.full(len(gids), sender.rank, dtype=np.int64))
                self.comm_messages += 1
                self.comm_bytes_forward += len(gids) * BYTES_PER_GHOST_ATOM

            if self.scheme == "p2p":
                for rank in self.exchange.p2p_neighbor_ranks(domain.rank):
                    sender = self.domains[rank]
                    if sender.n_owned == 0:
                        continue
                    receive(
                        sender,
                        self.exchange.p2p_selection(wrapped[rank], domain.rank, prewrapped=True),
                    )
            else:
                for rank in self.exchange.node_peer_ranks(domain.rank):
                    receive(self.domains[rank], None)
                for rank in self.exchange.node_neighbor_ranks(domain.rank):
                    sender = self.domains[rank]
                    if sender.n_owned == 0:
                        continue
                    receive(
                        sender,
                        self.exchange.node_selection(wrapped[rank], domain.rank, prewrapped=True),
                    )

            if gid_parts:
                gids = np.concatenate(gid_parts)
                order = np.argsort(gids, kind="stable")
                domain.ghost_gids = gids[order]
                domain.ghost_positions = np.vstack(pos_parts)[order]
                domain.ghost_owners = np.concatenate(owner_parts)[order]
            else:
                domain.ghost_gids = np.empty(0, dtype=np.int64)
                domain.ghost_positions = np.empty((0, 3))
                domain.ghost_owners = np.empty(0, dtype=np.int64)
            domain.ghost_types = self._types_global[domain.ghost_gids]
            domain.ghost_masses = self._masses_global[domain.ghost_gids]
            domain.ghost_forces = np.zeros((domain.n_ghost, 3))
            domain.local_gids = np.concatenate([domain.gids, domain.ghost_gids])
            domain.ghost_groups = []
            for owner in np.unique(domain.ghost_owners):
                rows = np.nonzero(domain.ghost_owners == owner)[0]
                slots = self._slot_of[domain.ghost_gids[rows]]
                domain.ghost_groups.append((int(owner), rows, slots))
            counts[domain.rank] = domain.n_ghost
        self._ghost_count_log.append(counts)

    def _refresh_ghost_positions(self) -> None:
        """Forward exchange: ghost copies track their owners' positions."""
        for domain in self.domains:
            if domain.n_ghost == 0:
                continue
            for owner, rows, slots in domain.ghost_groups:
                domain.ghost_positions[rows] = self.domains[owner].positions[slots]
                self.comm_messages += 1
            self.comm_bytes_forward += domain.n_ghost * BYTES_PER_VECTOR

    def _forward_halo(
        self, values_per_rank: list[np.ndarray], sinks: list[np.ndarray] | None = None
    ) -> list[np.ndarray]:
        """Forward a per-owned-atom scalar to every ghost copy (EAM density).

        ``sinks`` (from :meth:`RankExecutor.halo_sinks`) are optional per-rank
        ``(n_ghost,)`` targets the halo values are gathered into — workspace
        capacity buffers for the sequential executor, shared-memory slab views
        for the process executor (so the forward exchange *is* the delivery
        to the workers); ``None`` keeps the allocating reference path.
        """
        if self.workspace is not None:
            scalar_global = self.workspace.zeros("halo.scalar", self.n_global)
        else:
            scalar_global = np.zeros(self.n_global)
        for domain, values in zip(self.domains, values_per_rank):
            scalar_global[domain.gids] = values
        halos = []
        for i, domain in enumerate(self.domains):
            if sinks is None:
                halos.append(scalar_global[domain.ghost_gids])
            else:
                halos.append(np.take(scalar_global, domain.ghost_gids, out=sinks[i]))
            if domain.n_ghost:
                self.comm_messages += len(domain.ghost_groups)
                self.comm_bytes_forward += domain.n_ghost * 8.0
        return halos

    def _reverse_scatter_forces(self) -> None:
        """Reverse exchange: ghost forces accumulate onto their owner ranks."""
        for domain in self.domains:
            if domain.n_ghost == 0:
                continue
            for owner, rows, slots in domain.ghost_groups:
                np.add.at(self.domains[owner].forces, slots, domain.ghost_forces[rows])
                self.comm_messages += 1
            self.comm_bytes_reverse += domain.n_ghost * BYTES_PER_VECTOR

    # -- node-box load balancing ---------------------------------------------------
    def _assign_node_shares(self) -> None:
        """Split each node-box's atoms evenly over the node's ranks (§III-C).

        Runs at every rebuild, after migration has settled ownership: each
        node's owned gids are sorted and dealt out as contiguous runs, in
        :meth:`RankTopology.ranks_on_node` slot order — exactly the
        ``floor(n/k)`` + remainder split
        :meth:`IntraNodeLoadBalancer.rank_counts_with_balance` predicts, so
        :meth:`assigned_counts` is directly checkable against the model.
        """
        for node_index in range(self.topology.n_nodes):
            ranks = self.topology.ranks_on_node(self.topology.node_coord(node_index))
            gids = np.sort(np.concatenate([self.domains[rank].gids for rank in ranks]))
            base, remainder = divmod(len(gids), len(ranks))
            start = 0
            for slot, rank in enumerate(ranks):
                count = base + (1 if slot < remainder else 0)
                share = gids[start : start + count]
                start += count
                domain = self.domains[rank]
                domain.balance_gids = share
                mask = np.zeros(self.n_global, dtype=bool)
                mask[share] = True
                domain.balance_mask = mask

    # -- neighbour lists ----------------------------------------------------------
    def _needs_rebuild(self) -> bool:
        """The serial :class:`NeighborList` criterion, max-reduced over ranks."""
        if not self._neighbors_ready:
            return True
        if self.neighbor_every and self._steps_since_build >= self.neighbor_every:
            return True
        if self.neighbor_skin <= 0.0:
            return True
        max_disp = max(
            max_displacement(domain.positions, domain.ref_positions, self.box)
            for domain in self.domains
        )
        return max_disp > 0.5 * self.neighbor_skin

    # -- force evaluation --------------------------------------------------------
    def compute_forces(self) -> float:
        """One distributed force evaluation (comm + neigh + pair phases).

        Parent-side communication and the fixed rank-order reductions live
        here; the per-rank stages run on the bound executor (sequentially in
        rank order, or concurrently on the worker pool — bit-identical
        either way, see :mod:`repro.parallel.executor`).
        """
        self._steps_since_build += 1
        executor = self._executor
        if self._needs_rebuild():
            with self.timers.phase("comm"):
                self._migrate()
                self._exchange_ghosts()
                if self.node_balance:
                    self._assign_node_shares()
                for domain in self.domains:
                    domain.ref_positions = domain.positions.copy()
                executor.publish_positions()
            with self.timers.phase("neigh"):
                executor.rebuild()
            self._neighbors_ready = True
            self.n_builds += 1
            self._steps_since_build = 0
        else:
            with self.timers.phase("comm"):
                self._refresh_ghost_positions()
                executor.publish_positions()

        halos: list[np.ndarray] | None = None
        if self.evaluator.needs_halo:
            with self.timers.phase("pair"):
                stage = executor.prepare()
            with self.timers.phase("comm"):
                halos = self._forward_halo(stage, executor.halo_sinks())

        energy = 0.0
        virial: np.ndarray | None = None
        with self.timers.phase("pair"):
            for domain, (rank_energy, local_forces, rank_virial) in zip(
                self.domains, executor.finish(halos)
            ):
                # local_forces may live in the rank workspace or the shared
                # force slab (valid only until the rank's next evaluation) —
                # owned forces must survive into the integrator, so copy them
                # into the persistent per-rank array; the ghost tail is
                # consumed by the reverse scatter below before the buffer is
                # ever reused.
                owned = local_forces[: domain.n_owned]
                if domain.forces.shape == owned.shape:
                    np.copyto(domain.forces, owned)
                else:
                    domain.forces = owned.copy()
                domain.ghost_forces = local_forces[domain.n_owned:]
                energy += rank_energy
                if rank_virial is not None:
                    virial = rank_virial.copy() if virial is None else virial + rank_virial
        with self.timers.phase("comm"):
            self._reverse_scatter_forces()

        self.n_force_evaluations += 1
        self._last_energy = energy
        self.last_virial = virial
        return energy

    # -- integration -------------------------------------------------------------
    def _integrate(self, domain: RankDomain, half: str) -> None:
        if domain.n_owned == 0:
            return
        shim = SimpleNamespace(
            positions=domain.positions,
            velocities=domain.velocities,
            forces=domain.forces,
            masses=domain.masses,
        )
        if half == "first":
            self.integrator.first_half(shim, self.box, workspace=domain.workspace)
            domain.positions = shim.positions  # wrap() rebinds the attribute
        else:
            self.integrator.second_half(shim, self.box, workspace=domain.workspace)

    def _apply_thermostat(self) -> None:
        """Thermostats act on gathered velocities (a collective), so even
        stochastic thermostats draw per-atom noise in global id order and stay
        bit-compatible with the serial loop.  Only masses and velocities are
        gathered — the fields every :class:`Thermostat` reads and mutates."""
        shim = SimpleNamespace(
            velocities=self._gather_array("velocities", out=self._gather_buffer("thermostat")),
            masses=self._masses_global,
        )
        self.thermostat.apply(shim, self.timestep_fs)
        for domain in self.domains:
            domain.velocities = np.ascontiguousarray(shim.velocities[domain.gids])

    # -- EngineBackend hooks (the run loop itself lives in md.stepping) -----------
    def integrate_first_half(self) -> None:
        for domain in self.domains:
            self._integrate(domain, "first")

    def integrate_second_half(self) -> None:
        for domain in self.domains:
            self._integrate(domain, "second")

    def apply_thermostat(self) -> None:
        self._apply_thermostat()

    def sample_temperature(self) -> float:
        velocities = self._gather_array("velocities", out=self._gather_buffer("sample"))
        return instantaneous_temperature(self._masses_global, velocities)

    def capture_positions(self) -> np.ndarray:
        return self._gather_array("positions")

    def neighbor_build_count(self) -> int:
        return self.n_builds

    def neighbor_build_seconds(self) -> float:
        return float(sum(domain.neigh_seconds for domain in self.domains))

    def run(
        self,
        n_steps: int,
        sample_every: int = 1,
        trajectory_every: int = 0,
    ) -> SimulationReport:
        """Integrate ``n_steps`` steps; same contract as ``Simulation.run``
        (both delegate to the shared :class:`SteppingLoop`)."""
        return SteppingLoop(self).run(
            n_steps, sample_every=sample_every, trajectory_every=trajectory_every
        )

    # -- lifecycle ----------------------------------------------------------------
    def close(self) -> None:
        """Release executor resources (worker processes, shared memory).

        Idempotent, and a no-op for the sequential executor.  The engine
        stays inspectable after close (gather, stats), but further force
        evaluations on a process executor will fail.
        """
        self._executor.close()

    def __enter__(self) -> "DomainDecomposedSimulation":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- global views ------------------------------------------------------------
    def _gather_buffer(self, name: str) -> np.ndarray | None:
        """A reusable ``(n_global, 3)`` gather target, or ``None`` without pool."""
        if self.workspace is None:
            return None
        return self.workspace.buffer(f"gather.{name}", (self.n_global, 3))

    def _gather_array(self, name: str, out: np.ndarray | None = None) -> np.ndarray:
        """Assemble a per-atom vector array in global id order.

        With ``out=None`` a fresh array is returned (safe to hold across
        steps — the public :meth:`gather` and trajectory capture use this);
        internal per-step reductions pass a reusable workspace buffer.
        """
        if out is None:
            out = np.empty((self.n_global, 3))
        for domain in self.domains:
            out[domain.gids] = getattr(domain, name)
        return out

    def gather(self) -> Atoms:
        """The full system in global id order (an MPI_Gather analogue)."""
        return Atoms(
            positions=self._gather_array("positions"),
            types=self._types_global.copy(),
            masses=self._masses_global.copy(),
            velocities=self._gather_array("velocities"),
            forces=self._gather_array("forces"),
            ids=self._ids_global.copy(),
            type_names=self.type_names,
        )

    def total_energy(self) -> float:
        from ..units import kinetic_energy

        potential = self._last_energy if self._last_energy is not None else self.compute_forces()
        return potential + kinetic_energy(self._masses_global, self._gather_array("velocities"))

    # -- measured statistics ------------------------------------------------------
    def owned_counts(self) -> np.ndarray:
        return np.array([domain.n_owned for domain in self.domains], dtype=np.int64)

    def ghost_counts(self) -> np.ndarray:
        return np.array([domain.n_ghost for domain in self.domains], dtype=np.int64)

    def assigned_counts(self) -> np.ndarray:
        """Atoms each rank *evaluates*: its node-box share under
        ``node_balance`` (assigned at the last rebuild), else its owned set."""
        if self.node_balance and all(
            domain.balance_gids is not None for domain in self.domains
        ):
            return np.array(
                [len(domain.balance_gids) for domain in self.domains], dtype=np.int64
            )
        return self.owned_counts()

    def decomposition_stats(self) -> DecompositionStats:
        """Measured per-rank owned-atom statistics (Table III columns)."""
        return DecompositionStats(self.owned_counts())

    def ghost_stats(self) -> DecompositionStats:
        """Measured per-rank ghost-count statistics (§III-C memory overhead)."""
        return DecompositionStats(self.ghost_counts())

    def load_balance_stats(self) -> LoadBalanceStats:
        """Measured evaluated-atom counts and pair times (Table III layout).

        With ``node_balance`` the atom counts are the node-box shares, so the
        SDMR of these *measured* stats lands directly next to the
        :meth:`IntraNodeLoadBalancer.compare` predictions.
        """
        suffix = "+lb" if self.node_balance else ""
        return LoadBalanceStats(
            label=f"engine[{self.scheme_label}{suffix}]",
            atom_counts=self.assigned_counts(),
            pair_times=np.array([domain.pair_seconds for domain in self.domains]),
        )

    def neighbor_build_times(self) -> np.ndarray:
        """Cumulative per-rank wall-clock seconds spent building neighbour lists."""
        return np.array([domain.neigh_seconds for domain in self.domains])

    def intra_node_balance(self, per_atom_time: float | None = None, **kwargs):
        """Table III comparison seeded with the engine's measured pair cost."""
        if per_atom_time is None:
            evaluations = max(self.n_force_evaluations, 1)
            total_pair = sum(domain.pair_seconds for domain in self.domains)
            per_atom_time = total_pair / (evaluations * max(self.n_global, 1))
            per_atom_time = max(per_atom_time, 1.0e-12)
        balancer = IntraNodeLoadBalancer(self.decomposition)
        return balancer.compare(self._gather_array("positions"), per_atom_time, **kwargs)

    def measured_comm_volume(self, bytes_per_atom: float = BYTES_PER_GHOST_ATOM) -> dict:
        """Measured ghost-exchange volumes, for the perf-model bridge."""
        if not self._ghost_count_log:
            return {
                "exchanges": 0,
                "mean_ghosts_per_rank": 0.0,
                "max_ghosts_per_rank": 0.0,
                "forward_bytes_per_rank": 0.0,
                "total_forward_bytes": self.comm_bytes_forward,
                "total_reverse_bytes": self.comm_bytes_reverse,
                "messages": self.comm_messages,
            }
        log = np.stack(self._ghost_count_log)
        mean_ghosts = float(log.mean())
        return {
            "exchanges": len(log),
            "mean_ghosts_per_rank": mean_ghosts,
            "max_ghosts_per_rank": float(log.max()),
            "forward_bytes_per_rank": mean_ghosts * bytes_per_atom,
            "total_forward_bytes": self.comm_bytes_forward,
            "total_reverse_bytes": self.comm_bytes_reverse,
            "messages": self.comm_messages,
        }

    def modelled_plan(self, scheme_name: str | None = None):
        """The priced :class:`CommunicationPlan` matching this engine's setup.

        Combine with :func:`repro.perfmodel.comm_cost.plan_with_measured_volume`
        to price the exchange at the ghost volumes the engine actually moved.
        """
        from .schemes import ExchangeContext, build_scheme

        name = scheme_name or ("p2p-utofu" if self.scheme == "p2p" else "lb-4l")
        context = ExchangeContext(
            topology=self.topology,
            box=self.box,
            cutoff=self.exchange.cutoff,
            atom_density=self.n_global / self.box.volume,
        )
        return build_scheme(name).plan(context)
