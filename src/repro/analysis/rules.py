"""RL001–RL008: the house contracts as AST rules.

Each rule encodes one ROADMAP architecture note (see :mod:`.contracts` for
the declared sites); suppression, pragma bookkeeping and formatting live in
:mod:`.reprolint`.  RL001–RL005 are per-file :class:`Rule` detectors yielding
``(line, message)``; RL006–RL008 are whole-program :class:`ProgramRule`
detectors over the :class:`~repro.analysis.reprolint.Project` — its call
graph and golden fingerprints — yielding ``(rel_path, line, message)``.
"""

from __future__ import annotations

import ast

from . import contracts
from .callgraph import own_nodes
from .fingerprint import find_site_region, golden_site_key, region_fingerprint
from .project import module_name_for
from .reprolint import (
    ParsedFile,
    ProgramRule,
    Project,
    Rule,
    call_name,
    dotted_name,
    is_numpy_root,
)

__all__ = [
    "GoldenFreezeRule",
    "HotPathAllocationRule",
    "BackendPurityRule",
    "FixedOrderReductionRule",
    "DtypeDisciplineRule",
    "TransitiveHotPathRule",
    "GoldenDriftRule",
    "WorkerContextRule",
    "ALL_RULES",
    "PROGRAM_RULES",
    "allocation_findings",
]


def _last_component(module: str | None) -> str:
    if not module:
        return ""
    return module.rsplit(".", 1)[-1]


# ---------------------------------------------------------------------------
# RL001 — golden-freeze
# ---------------------------------------------------------------------------


class GoldenFreezeRule(Rule):
    """Declared golden sites must stay free of fast-path idioms.

    The parity pins (scalar DP, brute-force pairs, per-key tables, the
    sequential executor) are only meaningful while the reference side stays
    un-optimized: no ``einsum``/``bincount`` batching, no ``workspace=``
    buffer pooling, no imports from the fast-path modules.
    """

    rule_id = "RL001"
    slug = "golden"
    description = "golden reference sites must not grow fast-path idioms"

    _BANNED_CALL_TAILS = frozenset({"einsum", "bincount"})

    def applies(self, parsed: ParsedFile) -> bool:
        return any(
            parsed.rel_path.endswith(site.path_suffix) for site in contracts.GOLDEN_SITES
        )

    def _regions(self, parsed: ParsedFile):
        for site in contracts.GOLDEN_SITES:
            if not parsed.rel_path.endswith(site.path_suffix):
                continue
            if site.qualname is None:
                yield site, parsed.tree
                continue
            for qualname, node in parsed.functions + parsed.classes:
                if qualname == site.qualname:
                    yield site, node

    def check(self, parsed: ParsedFile):
        for site, region in self._regions(parsed):
            where = site.qualname or "module"
            for node in ast.walk(region):
                yield from self._check_node(node, where)

    def _check_node(self, node: ast.AST, where: str):
        if isinstance(node, ast.Call):
            name = call_name(node)
            if name is not None:
                tail = name.rsplit(".", 1)[-1]
                if tail in self._BANNED_CALL_TAILS or name in contracts.FAST_PATH_NAMES:
                    yield (
                        node.lineno,
                        f"golden site {where} calls fast-path idiom {name}()",
                    )
            for keyword in node.keywords:
                if keyword.arg == "workspace":
                    yield (
                        node.lineno,
                        f"golden site {where} passes a workspace= buffer pool",
                    )
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = node.args
            every = args.posonlyargs + args.args + args.kwonlyargs
            if any(arg.arg == "workspace" for arg in every):
                yield (
                    node.lineno,
                    f"golden site {where} grew a workspace parameter on {node.name}()",
                )
        elif isinstance(node, ast.ImportFrom):
            if _last_component(node.module) in contracts.FAST_PATH_MODULES:
                yield (
                    node.lineno,
                    f"golden site {where} imports fast-path module {node.module or '.'}",
                )
            else:
                for alias in node.names:
                    if alias.name in contracts.FAST_PATH_NAMES:
                        yield (
                            node.lineno,
                            f"golden site {where} imports fast-path name {alias.name}",
                        )
        elif isinstance(node, ast.Import):
            for alias in node.names:
                if _last_component(alias.name) in contracts.FAST_PATH_MODULES:
                    yield (
                        node.lineno,
                        f"golden site {where} imports fast-path module {alias.name}",
                    )


# ---------------------------------------------------------------------------
# RL002 — hot-path allocation
# ---------------------------------------------------------------------------


def allocation_findings(node: ast.Call):
    """``(line, description)`` for each allocator idiom in one call node.

    Shared by RL002 (directly marked hot paths) and RL006 (functions the call
    graph proves reachable from one): ``np.zeros/empty/...`` constructors,
    ``np.ufunc.at`` scalar scatters, and out-less ``.astype`` copies.
    """
    # .astype is matched structurally: the receiver may be any expression
    # (a chained reshape, a subscript), which a dotted-name resolve misses
    if isinstance(node.func, ast.Attribute) and node.func.attr == "astype":
        if not _astype_copy_false(node):
            yield node.lineno, "performs an out-less .astype() copy"
        return
    name = call_name(node)
    if name is None:
        return
    parts = name.split(".")
    tail = parts[-1]
    if (
        is_numpy_root(name)
        and len(parts) == 2
        and tail in contracts.ALLOCATING_CONSTRUCTORS
    ):
        yield node.lineno, f"allocates via {name}() every call"
    elif is_numpy_root(name) and len(parts) == 3 and tail == "at":
        yield (
            node.lineno,
            f"uses the {name} scalar scatter loop "
            "(use the bincount scatter_add_* idiom)",
        )


def _astype_copy_false(node: ast.Call) -> bool:
    for keyword in node.keywords:
        if keyword.arg == "copy" and isinstance(keyword.value, ast.Constant):
            return keyword.value.value is False
    return False


class HotPathAllocationRule(Rule):
    """Registered per-step hot paths must not call allocating constructors.

    The static complement of ``bench_run_loop.py``'s zero-allocation budget:
    ``np.zeros/empty/...``, ``np.ufunc.at`` scalar scatters and out-less
    ``.astype`` casts are flagged inside any function carrying the
    ``# reprolint: hot-path`` marker, unless the line carries an
    ``allow[alloc]`` pragma with a written reason (reference branches,
    empty-pair early-outs).
    """

    rule_id = "RL002"
    slug = "alloc"
    description = "registered hot paths must stay allocation-free"

    def check(self, parsed: ParsedFile):
        for qualname, func in parsed.hot_path_functions():
            for node in ast.walk(func):
                if not isinstance(node, ast.Call):
                    continue
                for line, description in allocation_findings(node):
                    yield line, f"hot path {qualname} {description}"


# ---------------------------------------------------------------------------
# RL003 — backend purity
# ---------------------------------------------------------------------------


class BackendPurityRule(Rule):
    """``EngineBackend`` implementations must stay thin.

    The PR 4 invariant: the step sequence, report assembly, trajectory
    capture and thermostat *scheduling* have exactly one implementation site
    (``md/stepping.py``).  A backend that grows its own stepping loop,
    constructs a ``SimulationReport`` or captures trajectory frames forks the
    run loop and silently un-pins the cross-rank parity suite.
    """

    rule_id = "RL003"
    slug = "backend"
    description = "EngineBackend implementations must not grow run-loop features"

    _LOOP_DRIVERS = frozenset(
        {"integrate_first_half", "integrate_second_half", "compute_forces"}
    )

    def applies(self, parsed: ParsedFile) -> bool:
        return not parsed.rel_path.endswith("repro/md/stepping.py")

    def check(self, parsed: ParsedFile):
        for class_qualname, cls in parsed.classes:
            if not self._is_backend(cls):
                continue
            yield from self._check_backend(cls, class_qualname)

    @staticmethod
    def _is_backend(cls: ast.ClassDef) -> bool:
        for base in cls.bases:
            name = dotted_name(base)
            if name is not None and name.rsplit(".", 1)[-1] == "EngineBackend":
                return True
        return False

    def _check_backend(self, cls: ast.ClassDef, class_qualname: str):
        for node in ast.walk(cls):
            if isinstance(node, (ast.For, ast.While)):
                driver = self._loop_driver_call(node)
                if driver is not None:
                    yield (
                        node.lineno,
                        f"backend {class_qualname} drives {driver}() from its own "
                        "loop; the stepping sequence lives only in md/stepping.py",
                    )
            elif isinstance(node, ast.Call):
                name = call_name(node)
                if name is not None and name.rsplit(".", 1)[-1] == "SimulationReport":
                    yield (
                        node.lineno,
                        f"backend {class_qualname} assembles a SimulationReport; "
                        "report assembly belongs to SteppingLoop",
                    )
                elif name is not None and name.endswith("trajectory.append"):
                    yield (
                        node.lineno,
                        f"backend {class_qualname} captures trajectory frames; "
                        "capture cadence belongs to SteppingLoop",
                    )
        yield from self._check_thermostat_calls(cls, class_qualname)

    def _loop_driver_call(self, loop: ast.AST) -> str | None:
        for node in ast.walk(loop):
            if isinstance(node, ast.Call):
                name = call_name(node)
                if name is not None and name.rsplit(".", 1)[-1] in self._LOOP_DRIVERS:
                    return name.rsplit(".", 1)[-1]
        return None

    @staticmethod
    def _check_thermostat_calls(cls: ast.ClassDef, class_qualname: str):
        """``thermostat.apply`` may only run inside the protocol hook."""
        for method in cls.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if method.name.endswith("apply_thermostat"):
                continue
            for node in ast.walk(method):
                if isinstance(node, ast.Call):
                    name = call_name(node)
                    if name is not None and name.endswith("thermostat.apply"):
                        yield (
                            node.lineno,
                            f"backend {class_qualname}.{method.name} applies the "
                            "thermostat outside the apply_thermostat hook",
                        )


# ---------------------------------------------------------------------------
# RL004 — fixed-order reductions
# ---------------------------------------------------------------------------


class FixedOrderReductionRule(Rule):
    """No iteration over set-typed collections in the parallel or serving packages.

    The PR 7 bitwise invariant: every gather/reduction iterates ranks in
    fixed index order.  A ``for`` loop (or comprehension) over a ``set`` /
    ``frozenset`` has hash order, which varies across processes — wrap the
    collection in ``sorted(...)`` or keep it a list.  PR 9 extends the scope
    to the serving package, whose per-system segment reductions carry the
    same promise: a request's numbers must not depend on the iteration order
    of whatever companions it happened to be batched with.
    """

    rule_id = "RL004"
    slug = "order"
    description = "parallel/serving-package loops must not iterate unordered sets"

    def applies(self, parsed: ParsedFile) -> bool:
        return contracts.in_parallel_package(parsed.rel_path) or contracts.in_serving_package(
            parsed.rel_path
        )

    def check(self, parsed: ParsedFile):
        # module level plus each function scope gets its own set-name table
        scopes: list[ast.AST] = [parsed.tree] + [node for _, node in parsed.functions]
        for scope in scopes:
            set_names = self._set_assigned_names(scope)
            for node in self._own_nodes(scope):
                iterables = []
                if isinstance(node, ast.For):
                    iterables.append(node.iter)
                elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                    iterables.extend(gen.iter for gen in node.generators)
                for iterable in iterables:
                    if self._is_set_expr(iterable, set_names):
                        yield (
                            iterable.lineno,
                            "iteration over an unordered set; reductions must run "
                            "in fixed rank order (wrap in sorted(...))",
                        )

    @staticmethod
    def _own_nodes(scope: ast.AST):
        """Walk ``scope`` without descending into nested function scopes."""
        stack = list(ast.iter_child_nodes(scope))
        while stack:
            node = stack.pop()
            yield node
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                stack.extend(ast.iter_child_nodes(node))

    @classmethod
    def _set_assigned_names(cls, scope: ast.AST) -> set[str]:
        names: set[str] = set()
        for node in cls._own_nodes(scope):
            if isinstance(node, ast.Assign) and cls._is_set_expr(node.value, names):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
        return names

    @staticmethod
    def _is_set_expr(node: ast.AST, set_names: set[str]) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            name = call_name(node)
            return name in ("set", "frozenset")
        if isinstance(node, ast.Name):
            return node.id in set_names
        return False


# ---------------------------------------------------------------------------
# RL005 — dtype discipline
# ---------------------------------------------------------------------------


class DtypeDisciplineRule(Rule):
    """Low-precision dtypes appear only at the sanctioned policy boundary.

    The PR 6 contract: everything between the fp64 environment build and the
    fp64 reductions runs at ``PrecisionPolicy.compute_dtype`` — production
    code outside ``precision.py``/``compression.py``/``gemm.py`` must not
    hard-code ``np.float32``/``np.float16`` (a literal there either forks the
    policy or silently downgrades an accumulation).
    """

    rule_id = "RL005"
    slug = "dtype"
    description = "low-precision dtype literals only at the policy boundary"

    def applies(self, parsed: ParsedFile) -> bool:
        return contracts.in_production_tree(parsed.rel_path) and not (
            contracts.is_dtype_sanctioned(parsed.rel_path)
        )

    def check(self, parsed: ParsedFile):
        for node in ast.walk(parsed.tree):
            if (
                isinstance(node, ast.Attribute)
                and node.attr in contracts.LOW_PRECISION_ATTRS
            ):
                root = dotted_name(node)
                if root is not None and is_numpy_root(root):
                    yield (
                        node.lineno,
                        f"low-precision dtype literal {root} outside the "
                        "sanctioned precision-policy modules",
                    )


# ---------------------------------------------------------------------------
# RL006 — transitive hot-path allocation (call-graph propagation)
# ---------------------------------------------------------------------------


class TransitiveHotPathRule(ProgramRule):
    """Helpers reachable from a hot path are held to the RL002 contract.

    RL002 checks the body of a ``# reprolint: hot-path`` marked function;
    this rule walks the conservative call graph from every marker and applies
    the same no-allocation check to everything it can prove the hot path
    reaches — a helper allocating ``np.zeros`` per call is just as much a
    steady-state allocation as the same line inlined into the marked body.
    Boundaries: a ``# reprolint: cold-path <reason>`` marked function (and its
    callees) is exempt — the rebuild/cache-build cadence — and golden regions
    are excluded (reference code allocates by design).  Per-line exemptions
    use the same ``allow[alloc]`` pragma as RL002.
    """

    rule_id = "RL006"
    slug = "alloc"
    description = "helpers reachable from hot paths must stay allocation-free"

    def check(self, project: Project):
        index = project.index
        hot_roots = self._marked_ids(project, "hot")
        if not hot_roots:
            return
        cold_ids = self._marked_ids(project, "cold")
        golden_ids = self._golden_function_ids(project)
        hot_nested = self._nested_ids(index, hot_roots)
        stop = lambda fid: fid in cold_ids or fid in golden_ids  # noqa: E731
        origin = project.callgraph.reachable_from(sorted(hot_roots), stop=stop)
        for fid in sorted(origin):
            info = index.functions[fid]
            if not contracts.in_production_tree(info.rel_path):
                continue
            if fid in hot_nested:
                continue  # lexically inside a marked body: RL002 already checks it
            root = index.functions[origin[fid]]
            for node in own_nodes(info.node):
                if not isinstance(node, ast.Call):
                    continue
                for line, description in allocation_findings(node):
                    yield (
                        info.rel_path,
                        line,
                        f"{info.qualname} (reachable from hot path "
                        f"{root.qualname}) {description}",
                    )

    @staticmethod
    def _marked_ids(project: Project, which: str) -> set[str]:
        ids: set[str] = set()
        for rel_path, parsed in project.files.items():
            module = module_name_for(rel_path)
            marked = (
                parsed.hot_path_functions()
                if which == "hot"
                else parsed.cold_path_functions()
            )
            for qualname, _ in marked:
                fid = f"{module}::{qualname}"
                if fid in project.index.functions:
                    ids.add(fid)
        return ids

    @staticmethod
    def _nested_ids(index, roots: set[str]) -> set[str]:
        """Function ids lexically nested inside any of ``roots``."""
        nested: set[str] = set()
        for root in roots:
            root_info = index.functions[root]
            prefix = f"{root_info.module}::{root_info.qualname}."
            nested.update(fid for fid in index.functions if fid.startswith(prefix))
        return nested

    @staticmethod
    def _golden_function_ids(project: Project) -> set[str]:
        ids: set[str] = set()
        for site in contracts.GOLDEN_SITES:
            for rel_path, parsed in project.files.items():
                if not rel_path.endswith(site.path_suffix):
                    continue
                module = module_name_for(rel_path)
                for qualname, _ in parsed.functions:
                    if (
                        site.qualname is None
                        or qualname == site.qualname
                        or qualname.startswith(site.qualname + ".")
                    ):
                        ids.add(f"{module}::{qualname}")
        return ids


# ---------------------------------------------------------------------------
# RL007 — golden-drift fingerprints
# ---------------------------------------------------------------------------


class GoldenDriftRule(ProgramRule):
    """Golden regions must match their recorded AST fingerprints.

    RL001 bans a list of fast-path idioms inside a golden site; this rule
    catches every *other* semantic edit: each ``GOLDEN_SITES`` region is
    hashed (AST dump, locations excluded, docstrings stripped — comments and
    formatting never trip it) and compared against the hash recorded in
    ``analysis/golden_baseline.json``.  An intentional golden edit is
    refreshed with ``python -m repro.analysis --update-golden --reason
    "..."``; anything else is drift.  The rule only runs when a baseline is
    loaded (``lint_paths`` / the CLI), never on in-memory corpus lints.
    """

    rule_id = "RL007"
    slug = "drift"
    description = "golden regions must match their recorded fingerprints"

    _REFRESH = "python -m repro.analysis --update-golden --reason '...'"

    def check(self, project: Project):
        if project.golden_baseline is None:
            return
        for site in contracts.GOLDEN_SITES:
            key = golden_site_key(site)
            for rel_path in sorted(project.files):
                if not rel_path.endswith(site.path_suffix):
                    continue
                parsed = project.files[rel_path]
                region = find_site_region(site, parsed)
                if region is None:
                    yield (
                        rel_path,
                        1,
                        f"golden site {key} is declared here but the region "
                        "is gone; restore it or update contracts.GOLDEN_SITES",
                    )
                    continue
                line = getattr(region, "lineno", None) or 1
                recorded = project.golden_baseline.get(key)
                if recorded is None:
                    yield (
                        rel_path,
                        line,
                        f"golden site {key} has no recorded fingerprint; "
                        f"record it with {self._REFRESH}",
                    )
                elif region_fingerprint(region) != recorded:
                    yield (
                        rel_path,
                        line,
                        f"golden site {key} drifted from its recorded "
                        "fingerprint; if the edit is intentional, refresh "
                        f"with {self._REFRESH}",
                    )


# ---------------------------------------------------------------------------
# RL008 — worker-context write discipline
# ---------------------------------------------------------------------------


class WorkerContextRule(ProgramRule):
    """Worker-reachable code must not do the parent's comm/integration work.

    The PR 7 invariant, statically: the parent keeps every communication,
    integration and reduction step; workers only build neighbour lists and
    evaluate forces, writing results through their own rank's slab views.
    Everything the call graph proves reachable from a declared worker
    entrypoint (``contracts.WORKER_ENTRYPOINTS`` — the multiprocess pool's
    subprocess main, and the serving prep thread of the PR 9 prep/compute
    split) must not call ``GhostExchange``/engine comm primitives, integrator
    half-steps, thermostats, global reductions or future fulfilment, nor
    write through a ``*.shared.*`` slab chain directly (own-rank row views,
    captured once at domain construction, are the sanctioned write path).
    Exemptions use ``allow[worker]`` with a reason.
    """

    rule_id = "RL008"
    slug = "worker"
    description = "worker-reachable code must not run parent-only primitives"

    def check(self, project: Project):
        index = project.index
        entries: set[str] = set()
        for path_suffix, qualname in contracts.WORKER_ENTRYPOINTS:
            for rel_path in project.files:
                if rel_path.endswith(path_suffix):
                    fid = f"{module_name_for(rel_path)}::{qualname}"
                    if fid in index.functions:
                        entries.add(fid)
        if not entries:
            return
        origin = project.callgraph.reachable_from(sorted(entries))
        in_context = {fid: fid for fid in entries}
        in_context.update(origin)
        for fid in sorted(in_context):
            info = index.functions[fid]
            entry = index.functions[in_context[fid]]
            context = (
                "is a worker entrypoint"
                if fid in entries
                else f"runs in worker context (reachable from {entry.qualname})"
            )
            for node in own_nodes(info.node):
                if isinstance(node, ast.Call):
                    yield from self._check_call(info, node, context)
                elif isinstance(node, (ast.Assign, ast.AugAssign)):
                    targets = (
                        node.targets if isinstance(node, ast.Assign) else [node.target]
                    )
                    for target in targets:
                        yield from self._check_write(info, target, context)

    def _check_call(self, info, node: ast.Call, context: str):
        name = call_name(node)
        if name is None:
            return
        tail = name.rsplit(".", 1)[-1]
        if tail in contracts.WORKER_FORBIDDEN_CALLS:
            yield (
                info.rel_path,
                node.lineno,
                f"{info.qualname} {context} but calls parent-only "
                f"primitive {name}()",
            )
        elif tail in contracts.WORKER_FORBIDDEN_CONSTRUCTORS:
            yield (
                info.rel_path,
                node.lineno,
                f"{info.qualname} {context} but constructs the parent-owned "
                f"comm component {name}",
            )

    def _check_write(self, info, target: ast.AST, context: str):
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                yield from self._check_write(info, element, context)
            return
        if isinstance(target, ast.Subscript):
            chain = dotted_name(target.value)
        elif isinstance(target, ast.Attribute):
            chain = dotted_name(target)
        else:
            return
        if chain and contracts.SHARED_SLAB_COMPONENT in chain.split("."):
            yield (
                info.rel_path,
                target.lineno,
                f"{info.qualname} {context} but writes the shared slab "
                f"{chain} directly; workers write only through their own "
                "rank's views",
            )


ALL_RULES = (
    GoldenFreezeRule,
    HotPathAllocationRule,
    BackendPurityRule,
    FixedOrderReductionRule,
    DtypeDisciplineRule,
)

PROGRAM_RULES = (
    TransitiveHotPathRule,
    GoldenDriftRule,
    WorkerContextRule,
)
