"""reprolint — an AST-based invariant linter for the house contracts.

The runtime test tiers catch a contract violation steps after the fact (a
parity diff, an allocation counter); this framework catches it at parse time
with a ``file:line`` diagnostic.  It is dependency-free: files are parsed with
:mod:`ast`, comments are recovered with :mod:`tokenize` (so pragma text inside
string literals — e.g. the rule self-test corpus — is never mistaken for a
directive), and each rule walks the tree through a small registry.

Pragmas
-------
Two comment directives are recognised, on real comment tokens only:

``# reprolint: hot-path``
    on a ``def`` line (or the line directly above it) registers that function
    as a per-step hot path for the allocation rule (RL002).

``# reprolint: allow[<slug>] <reason>``
    on the offending line suppresses the rule with that slug there.  The
    reason is mandatory — an exemption without a written justification is
    itself a diagnostic — and a suppression that no longer suppresses
    anything is flagged too, so stale pragmas cannot accumulate.

Running
-------
``python -m repro.analysis [paths...]`` lints the given files/directories
(default: ``src``) and exits non-zero on any finding.  Programmatic entry
points: :func:`lint_paths` and, for the self-test corpus, :func:`lint_source`.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path

from .contracts import HOT_PATH_MARKER

__all__ = [
    "Violation",
    "Pragma",
    "ParsedFile",
    "Rule",
    "lint_source",
    "lint_paths",
    "iter_python_files",
]

#: Rule id used for framework-level findings (pragma hygiene, syntax errors).
FRAMEWORK_RULE_ID = "RL000"
FRAMEWORK_SLUG = "pragma"

_PRAGMA_RE = re.compile(r"#\s*reprolint:\s*(?P<body>.*\S)")
_ALLOW_RE = re.compile(r"allow\[(?P<slug>[A-Za-z0-9_-]+)\]\s*(?P<reason>.*)")


@dataclass(frozen=True)
class Violation:
    """One finding, formatted ``path:line: RULE message``."""

    path: str
    line: int
    rule_id: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}: {self.rule_id} {self.message}"


@dataclass
class Pragma:
    """One ``# reprolint:`` directive recovered from a comment token."""

    line: int
    kind: str  # "allow" | "hot-path" | "unknown"
    slug: str | None = None
    reason: str = ""
    raw: str = ""
    used: bool = False


class _QualnameIndexer(ast.NodeVisitor):
    """Records the dotted qualname of every function/class definition."""

    def __init__(self) -> None:
        self.stack: list[str] = []
        self.functions: list[tuple[str, ast.AST]] = []
        self.classes: list[tuple[str, ast.ClassDef]] = []

    def _enter(self, node, registry) -> None:
        self.stack.append(node.name)
        registry.append((".".join(self.stack), node))
        self.generic_visit(node)
        self.stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._enter(node, self.functions)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._enter(node, self.functions)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._enter(node, self.classes)


@dataclass
class ParsedFile:
    """A parsed source file plus the indexes the rules consume."""

    rel_path: str
    source: str
    tree: ast.Module
    pragmas: dict[int, list[Pragma]] = field(default_factory=dict)
    functions: list[tuple[str, ast.AST]] = field(default_factory=list)
    classes: list[tuple[str, ast.ClassDef]] = field(default_factory=list)

    @classmethod
    def parse(cls, source: str, rel_path: str) -> "ParsedFile":
        tree = ast.parse(source, filename=rel_path)
        indexer = _QualnameIndexer()
        indexer.visit(tree)
        parsed = cls(
            rel_path=rel_path,
            source=source,
            tree=tree,
            functions=indexer.functions,
            classes=indexer.classes,
        )
        parsed._collect_pragmas()
        return parsed

    # -- pragmas ---------------------------------------------------------------
    def _collect_pragmas(self) -> None:
        """Recover directives from COMMENT tokens (never string literals)."""
        try:
            tokens = tokenize.generate_tokens(io.StringIO(self.source).readline)
            comments = [
                (tok.start[0], tok.string)
                for tok in tokens
                if tok.type == tokenize.COMMENT
            ]
        except (tokenize.TokenError, IndentationError, SyntaxError):  # pragma: no cover
            comments = []
        for line, text in comments:
            match = _PRAGMA_RE.search(text)
            if match is None:
                continue
            body = match.group("body").strip()
            if body == HOT_PATH_MARKER:
                pragma = Pragma(line=line, kind=HOT_PATH_MARKER, raw=body)
            else:
                allow = _ALLOW_RE.fullmatch(body)
                if allow is not None:
                    pragma = Pragma(
                        line=line,
                        kind="allow",
                        slug=allow.group("slug"),
                        reason=allow.group("reason").strip(),
                        raw=body,
                    )
                else:
                    pragma = Pragma(line=line, kind="unknown", raw=body)
            self.pragmas.setdefault(line, []).append(pragma)

    def allow_pragma(self, line: int, slug: str) -> Pragma | None:
        """The ``allow[slug]`` directive on ``line``, if any."""
        for pragma in self.pragmas.get(line, ()):
            if pragma.kind == "allow" and pragma.slug == slug:
                return pragma
        return None

    # -- hot-path registry -----------------------------------------------------
    def hot_path_functions(self) -> list[tuple[str, ast.AST]]:
        """Functions registered via the ``hot-path`` marker.

        The marker binds to a ``def`` whose header line carries it, or that
        starts on the line immediately below a marker-only comment line.
        """
        marker_lines = {
            line
            for line, pragmas in self.pragmas.items()
            if any(p.kind == HOT_PATH_MARKER for p in pragmas)
        }
        if not marker_lines:
            self._orphan_markers: list[int] = []
            return []
        registered = []
        claimed: set[int] = set()
        for qualname, node in self.functions:
            if node.lineno in marker_lines:
                registered.append((qualname, node))
                claimed.add(node.lineno)
            elif node.lineno - 1 in marker_lines:
                registered.append((qualname, node))
                claimed.add(node.lineno - 1)
        self._orphan_markers = sorted(marker_lines - claimed)
        return registered

    def orphan_hot_path_markers(self) -> list[int]:
        """Marker lines that did not bind to any function definition."""
        if not hasattr(self, "_orphan_markers"):
            self.hot_path_functions()
        return self._orphan_markers


class Rule:
    """Base class: one invariant, one rule id, one pragma slug."""

    rule_id: str = "RL999"
    slug: str = "unnamed"
    description: str = ""

    def applies(self, parsed: ParsedFile) -> bool:
        return True

    def check(self, parsed: ParsedFile):
        """Yield ``(line, message)`` candidates; suppression is handled by
        the framework so rules stay pure detectors."""
        raise NotImplementedError  # pragma: no cover


# ---------------------------------------------------------------------------
# Shared AST helpers used by the rules
# ---------------------------------------------------------------------------


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_name(node: ast.Call) -> str | None:
    return dotted_name(node.func)


def is_numpy_root(name: str) -> bool:
    return name.split(".", 1)[0] in ("np", "numpy")


# ---------------------------------------------------------------------------
# Running
# ---------------------------------------------------------------------------


def _active_rules() -> list[Rule]:
    from .rules import ALL_RULES

    return [rule_cls() for rule_cls in ALL_RULES]


def _lint_parsed(parsed: ParsedFile, rules: list[Rule]) -> list[Violation]:
    violations: list[Violation] = []
    for rule in rules:
        if not rule.applies(parsed):
            continue
        for line, message in rule.check(parsed):
            pragma = parsed.allow_pragma(line, rule.slug)
            if pragma is not None:
                pragma.used = True
                continue
            violations.append(Violation(parsed.rel_path, line, rule.rule_id, message))
    violations.extend(_pragma_hygiene(parsed, rules))
    violations.sort(key=lambda v: (v.line, v.rule_id))
    return violations


def _pragma_hygiene(parsed: ParsedFile, rules: list[Rule]) -> list[Violation]:
    """Framework findings: malformed, reason-less and stale pragmas."""
    known_slugs = {rule.slug for rule in rules} | {FRAMEWORK_SLUG}
    findings: list[Violation] = []

    def hygiene(line: int, message: str) -> None:
        exemption = parsed.allow_pragma(line, FRAMEWORK_SLUG)
        if exemption is not None and exemption.reason:
            exemption.used = True
            return
        findings.append(Violation(parsed.rel_path, line, FRAMEWORK_RULE_ID, message))

    for line in sorted(parsed.pragmas):
        for pragma in parsed.pragmas[line]:
            if pragma.kind == "unknown":
                hygiene(line, f"unrecognised reprolint directive {pragma.raw!r}")
            elif pragma.kind == "allow":
                if pragma.slug not in known_slugs:
                    hygiene(line, f"allow[{pragma.slug}] names no known rule slug")
                elif not pragma.reason:
                    hygiene(
                        line,
                        f"allow[{pragma.slug}] carries no reason; every exemption "
                        "must say why it is safe",
                    )
                elif not pragma.used and pragma.slug != FRAMEWORK_SLUG:
                    hygiene(
                        line,
                        f"allow[{pragma.slug}] suppresses nothing here; remove the "
                        "stale pragma",
                    )
    for line in parsed.orphan_hot_path_markers():
        hygiene(line, "hot-path marker is not attached to a function definition")
    return findings


def lint_source(source: str, rel_path: str) -> list[Violation]:
    """Lint in-memory source as if it lived at ``rel_path`` (rule self-tests)."""
    try:
        parsed = ParsedFile.parse(source, rel_path)
    except SyntaxError as exc:
        return [
            Violation(rel_path, exc.lineno or 1, FRAMEWORK_RULE_ID, f"syntax error: {exc.msg}")
        ]
    return _lint_parsed(parsed, _active_rules())


def iter_python_files(paths: list[str | Path]) -> list[Path]:
    files: list[Path] = []
    for entry in paths:
        path = Path(entry)
        if path.is_dir():
            files.extend(
                p for p in sorted(path.rglob("*.py")) if "__pycache__" not in p.parts
            )
        elif path.suffix == ".py":
            files.append(path)
    return files


def lint_paths(paths: list[str | Path]) -> list[Violation]:
    """Lint every ``.py`` file under ``paths``; violations in path order."""
    rules = _active_rules()
    violations: list[Violation] = []
    for path in iter_python_files(paths):
        rel_path = path.as_posix()
        try:
            source = path.read_text(encoding="utf-8")
        except OSError as exc:  # pragma: no cover - unreadable file
            violations.append(Violation(rel_path, 1, FRAMEWORK_RULE_ID, f"unreadable: {exc}"))
            continue
        try:
            parsed = ParsedFile.parse(source, rel_path)
        except SyntaxError as exc:
            violations.append(
                Violation(rel_path, exc.lineno or 1, FRAMEWORK_RULE_ID, f"syntax error: {exc.msg}")
            )
            continue
        violations.extend(_lint_parsed(parsed, rules))
    return violations
