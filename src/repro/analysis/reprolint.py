"""reprolint — an AST-based invariant linter for the house contracts.

The runtime test tiers catch a contract violation steps after the fact (a
parity diff, an allocation counter); this framework catches it at parse time
with a ``file:line`` diagnostic.  It is dependency-free: files are parsed with
:mod:`ast`, comments are recovered with :mod:`tokenize` (so pragma text inside
string literals — e.g. the rule self-test corpus — is never mistaken for a
directive), and each rule walks the tree through a small registry.

Two rule shapes exist.  Per-file :class:`Rule` subclasses see one
:class:`ParsedFile` at a time (RL001–RL005).  Whole-program
:class:`ProgramRule` subclasses see a :class:`Project` — every parsed file
plus the :class:`~repro.analysis.project.ProjectIndex` and
:class:`~repro.analysis.callgraph.CallGraph` built over them — and power the
transitive contracts (RL006 hot-path propagation, RL007 golden fingerprints,
RL008 worker-context discipline).

Pragmas
-------
Directives are recognised on real comment tokens only:

``# reprolint: hot-path``
    on a ``def`` line (or the line directly above it) registers that function
    as a per-step hot path for the allocation rules (RL002 directly, RL006
    transitively through the call graph).

``# reprolint: cold-path <reason>``
    on a ``def`` (same binding rules) declares a rebuild-only boundary: RL006
    propagation stops there.  The reason is mandatory.

``# reprolint: allow[<slug>] <reason>``
    on the offending line suppresses the rule with that slug there.  The
    reason is mandatory — an exemption without a written justification is
    itself a diagnostic — and a suppression that no longer suppresses
    anything is flagged too, so stale pragmas cannot accumulate.

Running
-------
``python -m repro.analysis [paths...]`` lints the given files/directories
(default: ``src tests benchmarks``, the CI gate) and exits non-zero on any
finding.  Programmatic entry points: :func:`lint_paths` and, for the
self-test corpora, :func:`lint_source` / :func:`lint_sources`.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path

from .contracts import COLD_PATH_MARKER, HOT_PATH_MARKER

__all__ = [
    "Violation",
    "Pragma",
    "ParsedFile",
    "Rule",
    "ProgramRule",
    "Project",
    "lint_source",
    "lint_sources",
    "lint_paths",
    "iter_python_files",
]

#: Rule id used for framework-level findings (pragma hygiene, syntax errors).
FRAMEWORK_RULE_ID = "RL000"
FRAMEWORK_SLUG = "pragma"

_PRAGMA_RE = re.compile(r"#\s*reprolint:\s*(?P<body>.*\S)")
_ALLOW_RE = re.compile(r"allow\[(?P<slug>[A-Za-z0-9_-]+)\]\s*(?P<reason>.*)")


@dataclass(frozen=True)
class Violation:
    """One finding, formatted ``path:line: RULE message``."""

    path: str
    line: int
    rule_id: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}: {self.rule_id} {self.message}"


@dataclass
class Pragma:
    """One ``# reprolint:`` directive recovered from a comment token."""

    line: int
    kind: str  # "allow" | "hot-path" | "cold-path" | "unknown"
    slug: str | None = None
    reason: str = ""
    raw: str = ""
    used: bool = False


class _QualnameIndexer(ast.NodeVisitor):
    """Records the dotted qualname of every function/class definition."""

    def __init__(self) -> None:
        self.stack: list[str] = []
        self.functions: list[tuple[str, ast.AST]] = []
        self.classes: list[tuple[str, ast.ClassDef]] = []

    def _enter(self, node, registry) -> None:
        self.stack.append(node.name)
        registry.append((".".join(self.stack), node))
        self.generic_visit(node)
        self.stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._enter(node, self.functions)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._enter(node, self.functions)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._enter(node, self.classes)


@dataclass
class ParsedFile:
    """A parsed source file plus the indexes the rules consume."""

    rel_path: str
    source: str
    tree: ast.Module
    pragmas: dict[int, list[Pragma]] = field(default_factory=dict)
    functions: list[tuple[str, ast.AST]] = field(default_factory=list)
    classes: list[tuple[str, ast.ClassDef]] = field(default_factory=list)

    @classmethod
    def parse(cls, source: str, rel_path: str) -> "ParsedFile":
        tree = ast.parse(source, filename=rel_path)
        indexer = _QualnameIndexer()
        indexer.visit(tree)
        parsed = cls(
            rel_path=rel_path,
            source=source,
            tree=tree,
            functions=indexer.functions,
            classes=indexer.classes,
        )
        parsed._collect_pragmas()
        return parsed

    # -- pragmas ---------------------------------------------------------------
    def _collect_pragmas(self) -> None:
        """Recover directives from COMMENT tokens (never string literals)."""
        try:
            tokens = tokenize.generate_tokens(io.StringIO(self.source).readline)
            comments = [
                (tok.start[0], tok.string)
                for tok in tokens
                if tok.type == tokenize.COMMENT
            ]
        except (tokenize.TokenError, IndentationError, SyntaxError):  # pragma: no cover
            comments = []
        for line, text in comments:
            match = _PRAGMA_RE.search(text)
            if match is None:
                continue
            body = match.group("body").strip()
            if body == HOT_PATH_MARKER:
                pragma = Pragma(line=line, kind=HOT_PATH_MARKER, raw=body)
            elif body == COLD_PATH_MARKER or body.startswith(COLD_PATH_MARKER + " "):
                pragma = Pragma(
                    line=line,
                    kind=COLD_PATH_MARKER,
                    reason=body[len(COLD_PATH_MARKER):].strip(),
                    raw=body,
                )
            else:
                allow = _ALLOW_RE.fullmatch(body)
                if allow is not None:
                    pragma = Pragma(
                        line=line,
                        kind="allow",
                        slug=allow.group("slug"),
                        reason=allow.group("reason").strip(),
                        raw=body,
                    )
                else:
                    pragma = Pragma(line=line, kind="unknown", raw=body)
            self.pragmas.setdefault(line, []).append(pragma)

    def allow_pragma(self, line: int, slug: str) -> Pragma | None:
        """The ``allow[slug]`` directive on ``line``, if any."""
        for pragma in self.pragmas.get(line, ()):
            if pragma.kind == "allow" and pragma.slug == slug:
                return pragma
        return None

    # -- hot/cold-path registries ----------------------------------------------
    def _marker_functions(self, kind: str) -> tuple[list[tuple[str, ast.AST]], list[int]]:
        """Functions bound to ``kind`` markers, plus unbound marker lines.

        A marker binds to a ``def`` whose header line carries it, or that
        starts on the line immediately below a marker-only comment line.
        """
        marker_lines = {
            line
            for line, pragmas in self.pragmas.items()
            if any(p.kind == kind for p in pragmas)
        }
        if not marker_lines:
            return [], []
        registered = []
        claimed: set[int] = set()
        for qualname, node in self.functions:
            if node.lineno in marker_lines:
                registered.append((qualname, node))
                claimed.add(node.lineno)
            elif node.lineno - 1 in marker_lines:
                registered.append((qualname, node))
                claimed.add(node.lineno - 1)
        return registered, sorted(marker_lines - claimed)

    def hot_path_functions(self) -> list[tuple[str, ast.AST]]:
        """Functions registered via the ``hot-path`` marker."""
        registered, orphans = self._marker_functions(HOT_PATH_MARKER)
        self._orphan_markers: list[int] = orphans
        return registered

    def orphan_hot_path_markers(self) -> list[int]:
        """Hot-path marker lines that did not bind to any function definition."""
        if not hasattr(self, "_orphan_markers"):
            self.hot_path_functions()
        return self._orphan_markers

    def cold_path_functions(self) -> list[tuple[str, ast.AST]]:
        """Functions registered as RL006 boundaries via the ``cold-path`` marker."""
        registered, orphans = self._marker_functions(COLD_PATH_MARKER)
        self._orphan_cold_markers: list[int] = orphans
        return registered

    def orphan_cold_path_markers(self) -> list[int]:
        if not hasattr(self, "_orphan_cold_markers"):
            self.cold_path_functions()
        return self._orphan_cold_markers

    def reasonless_cold_path_markers(self) -> list[int]:
        """Cold-path markers missing their mandatory reason."""
        return sorted(
            line
            for line, pragmas in self.pragmas.items()
            for p in pragmas
            if p.kind == COLD_PATH_MARKER and not p.reason
        )


class Rule:
    """Base class: one invariant, one rule id, one pragma slug."""

    rule_id: str = "RL999"
    slug: str = "unnamed"
    description: str = ""

    def applies(self, parsed: ParsedFile) -> bool:
        return True

    def check(self, parsed: ParsedFile):
        """Yield ``(line, message)`` candidates; suppression is handled by
        the framework so rules stay pure detectors."""
        raise NotImplementedError  # pragma: no cover


@dataclass
class Project:
    """Every parsed file plus the whole-program indexes (built lazily once)."""

    files: dict[str, ParsedFile]
    index: "object" = None  # ProjectIndex
    callgraph: "object" = None  # CallGraph
    #: ``{golden site key: recorded hash}`` — ``None`` disables RL007 (the
    #: in-memory corpus default; ``lint_paths`` loads the committed baseline).
    golden_baseline: dict[str, str] | None = None

    @classmethod
    def build(
        cls,
        files: dict[str, ParsedFile],
        golden_baseline: dict[str, str] | None = None,
    ) -> "Project":
        from .callgraph import CallGraph
        from .project import ProjectIndex

        index = ProjectIndex.build(files)
        return cls(
            files=files,
            index=index,
            callgraph=CallGraph.build(index),
            golden_baseline=golden_baseline,
        )


class ProgramRule:
    """A whole-program invariant: sees the :class:`Project`, not one file."""

    rule_id: str = "RL999"
    slug: str = "unnamed"
    description: str = ""

    def check(self, project: Project):
        """Yield ``(rel_path, line, message)`` candidates."""
        raise NotImplementedError  # pragma: no cover


# ---------------------------------------------------------------------------
# Shared AST helpers used by the rules
# ---------------------------------------------------------------------------


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_name(node: ast.Call) -> str | None:
    return dotted_name(node.func)


def is_numpy_root(name: str) -> bool:
    return name.split(".", 1)[0] in ("np", "numpy")


# ---------------------------------------------------------------------------
# Running
# ---------------------------------------------------------------------------


def _active_rules() -> list[Rule]:
    from .rules import ALL_RULES

    return [rule_cls() for rule_cls in ALL_RULES]


def _active_program_rules() -> list[ProgramRule]:
    from .rules import PROGRAM_RULES

    return [rule_cls() for rule_cls in PROGRAM_RULES]


def _pragma_hygiene(parsed: ParsedFile, known_slugs: set[str]) -> list[Violation]:
    """Framework findings: malformed, reason-less and stale pragmas."""
    findings: list[Violation] = []

    def hygiene(line: int, message: str) -> None:
        exemption = parsed.allow_pragma(line, FRAMEWORK_SLUG)
        if exemption is not None and exemption.reason:
            exemption.used = True
            return
        findings.append(Violation(parsed.rel_path, line, FRAMEWORK_RULE_ID, message))

    for line in sorted(parsed.pragmas):
        for pragma in parsed.pragmas[line]:
            if pragma.kind == "unknown":
                hygiene(line, f"unrecognised reprolint directive {pragma.raw!r}")
            elif pragma.kind == "allow":
                if pragma.slug not in known_slugs:
                    hygiene(line, f"allow[{pragma.slug}] names no known rule slug")
                elif not pragma.reason:
                    hygiene(
                        line,
                        f"allow[{pragma.slug}] carries no reason; every exemption "
                        "must say why it is safe",
                    )
                elif not pragma.used and pragma.slug != FRAMEWORK_SLUG:
                    hygiene(
                        line,
                        f"allow[{pragma.slug}] suppresses nothing here; remove the "
                        "stale pragma",
                    )
    for line in parsed.orphan_hot_path_markers():
        hygiene(line, "hot-path marker is not attached to a function definition")
    for line in parsed.orphan_cold_path_markers():
        hygiene(line, "cold-path marker is not attached to a function definition")
    for line in parsed.reasonless_cold_path_markers():
        hygiene(
            line,
            "cold-path marker carries no reason; say why the function is "
            "rebuild-only (e.g. cold-path built once per rebuild, cached)",
        )
    return findings


def lint_sources(
    sources: dict[str, str],
    golden_baseline: dict[str, str] | None = None,
) -> list[Violation]:
    """Lint a set of in-memory sources as one project.

    Per-file rules run first, then the whole-program rules over the project
    built from every parseable file, then pragma hygiene (last, so a pragma
    whose only job is suppressing a program-rule finding is not reported
    stale).  ``golden_baseline`` feeds RL007; ``None`` disables it.
    """
    rules = _active_rules()
    program_rules = _active_program_rules()
    known_slugs = (
        {rule.slug for rule in rules}
        | {rule.slug for rule in program_rules}
        | {FRAMEWORK_SLUG}
    )
    violations: list[Violation] = []
    parsed_files: dict[str, ParsedFile] = {}
    for rel_path, source in sources.items():
        try:
            parsed_files[rel_path] = ParsedFile.parse(source, rel_path)
        except SyntaxError as exc:
            violations.append(
                Violation(rel_path, exc.lineno or 1, FRAMEWORK_RULE_ID, f"syntax error: {exc.msg}")
            )
    for parsed in parsed_files.values():
        for rule in rules:
            if not rule.applies(parsed):
                continue
            for line, message in rule.check(parsed):
                pragma = parsed.allow_pragma(line, rule.slug)
                if pragma is not None:
                    pragma.used = True
                    continue
                violations.append(Violation(parsed.rel_path, line, rule.rule_id, message))
    if parsed_files:
        project = Project.build(parsed_files, golden_baseline=golden_baseline)
        for rule in program_rules:
            for rel_path, line, message in rule.check(project):
                parsed = parsed_files[rel_path]
                pragma = parsed.allow_pragma(line, rule.slug)
                if pragma is not None:
                    pragma.used = True
                    continue
                violations.append(Violation(rel_path, line, rule.rule_id, message))
    for parsed in parsed_files.values():
        violations.extend(_pragma_hygiene(parsed, known_slugs))
    violations.sort(key=lambda v: (v.path, v.line, v.rule_id))
    return violations


def lint_source(source: str, rel_path: str) -> list[Violation]:
    """Lint in-memory source as if it lived at ``rel_path`` (rule self-tests).

    The single file forms a one-file project, so the call-graph rules fire on
    edges provable inside it; RL007 stays off (no baseline).
    """
    return lint_sources({rel_path: source})


def iter_python_files(paths: list[str | Path]) -> list[Path]:
    """Every ``.py`` file under ``paths``, deduplicated and sorted.

    Overlapping arguments (``src src/repro``) yield each file once;
    ``__pycache__`` and hidden directories are skipped.
    """
    seen: set[str] = set()
    files: list[Path] = []
    for entry in paths:
        path = Path(entry)
        if path.is_dir():
            candidates = path.rglob("*.py")
        elif path.suffix == ".py":
            candidates = [path]
        else:
            continue
        for candidate in candidates:
            if any(
                part == "__pycache__" or (part.startswith(".") and part not in (".", ".."))
                for part in candidate.parts
            ):
                continue
            key = candidate.resolve().as_posix()
            if key in seen:
                continue
            seen.add(key)
            files.append(candidate)
    return sorted(files, key=lambda p: p.as_posix())


def lint_paths(
    paths: list[str | Path],
    golden_baseline: dict[str, str] | None | object = "default",
) -> list[Violation]:
    """Lint every ``.py`` file under ``paths``; violations in path order.

    RL007 checks against the committed ``analysis/golden_baseline.json`` by
    default; pass an explicit mapping to substitute one, or ``None`` to
    disable fingerprint checking.
    """
    if golden_baseline == "default":
        from .fingerprint import load_golden_baseline

        golden_baseline = load_golden_baseline()
    sources: dict[str, str] = {}
    violations: list[Violation] = []
    for path in iter_python_files(paths):
        rel_path = path.as_posix()
        try:
            sources[rel_path] = path.read_text(encoding="utf-8")
        except OSError as exc:  # pragma: no cover - unreadable file
            violations.append(Violation(rel_path, 1, FRAMEWORK_RULE_ID, f"unreadable: {exc}"))
    violations.extend(lint_sources(sources, golden_baseline=golden_baseline))
    violations.sort(key=lambda v: (v.path, v.line, v.rule_id))
    return violations
