"""A conservative whole-program call graph over the :class:`ProjectIndex`.

Edges are added only where the resolver can *prove* the callee from the
indexed symbol tables:

* direct name calls — local defs, nested functions, module functions,
  ``f = g`` module aliases and imported functions;
* constructor calls — ``ClassName(...)`` edges to ``__init__`` (through the
  indexed MRO) and types the local variable it is assigned to;
* dispatch-dict construction — ``D[key](...)`` where ``D = {"k": Cls, ...}``
  edges to every value class (the ``parallel.engine._EVALUATORS`` idiom);
* method calls — ``self.m()`` / ``cls.m()`` through the enclosing class,
  ``instance.m()`` for locals with a known constructor type, ``Class.m()``
  unbound calls and ``mod.f()`` module-attribute calls, each expanded with
  ``ForceField.compute``-style override edges into every indexed subclass;
* closure edges — a function implicitly reaches its directly nested defs and
  any project function it passes as a call argument (callbacks such as the
  worker pool's ``worker_reply(conn, handle, message)``).

Anything else — multi-level attribute receivers (``self.backend.step()``),
parameters, untyped locals — is recorded in :attr:`CallGraph.skipped` rather
than guessed at, so rules built on reachability (RL006/RL008) can only
under-approximate, never invent, a path.  Lambda bodies are attributed to the
enclosing function.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from .project import ClassInfo, FunctionInfo, ProjectIndex

__all__ = ["CallGraph", "own_nodes"]

_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)


def own_nodes(func: ast.AST):
    """Walk a function body without descending into nested def/class scopes.

    Lambda bodies *are* descended into: a lambda has no qualname of its own,
    so its calls belong to the function that defines it.
    """
    stack = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(node, _SCOPE_NODES):
            stack.extend(ast.iter_child_nodes(node))


def _dotted(node: ast.AST) -> str | None:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


@dataclass
class _LocalTypes:
    """Per-function bindings proved by the first pass over the body."""

    callables: dict[str, str] = field(default_factory=dict)  # name -> function id
    instances: dict[str, list[str]] = field(default_factory=dict)  # name -> class ids
    class_aliases: dict[str, str] = field(default_factory=dict)  # name -> class id


class CallGraph:
    """``caller function id -> callee function ids`` plus the skipped calls."""

    def __init__(self, index: ProjectIndex) -> None:
        self.index = index
        self.edges: dict[str, set[str]] = {}
        #: caller id -> [(line, dotted-or-descriptor)] of unresolvable calls
        self.skipped: dict[str, list[tuple[int, str]]] = {}

    @classmethod
    def build(cls, index: ProjectIndex) -> "CallGraph":
        graph = cls(index)
        for info in index.functions.values():
            graph._build_function(info)
        return graph

    # -- reachability ----------------------------------------------------------
    def reachable_from(
        self, roots, stop=None
    ) -> dict[str, str]:
        """BFS over the edges: ``{reached function id: originating root id}``.

        ``stop`` is an optional predicate on function ids; a function it
        accepts is neither reported nor traversed through (the ``cold-path``
        boundary semantics).  Roots themselves are not included.
        """
        origin: dict[str, str] = {}
        queue: list[tuple[str, str]] = []
        root_ids = set()
        for root in roots:
            root_ids.add(root)
            queue.append((root, root))
        while queue:
            current, root = queue.pop(0)
            for callee in sorted(self.edges.get(current, ())):
                if callee in origin or callee in root_ids:
                    continue
                if stop is not None and stop(callee):
                    continue
                origin[callee] = root
                queue.append((callee, root))
        return origin

    # -- construction ----------------------------------------------------------
    def _add_edge(self, caller: str, callee: FunctionInfo | None) -> bool:
        if callee is None:
            return False
        self.edges.setdefault(caller, set()).add(callee.id)
        return True

    def _skip(self, caller: str, line: int, what: str) -> None:
        self.skipped.setdefault(caller, []).append((line, what))

    def _build_function(self, info: FunctionInfo) -> None:
        locals_ = self._collect_locals(info)
        # closure edges: nested defs run in this function's context even when
        # only passed around (the worker pool's handler pattern)
        nested_prefix = info.qualname + "."
        for other in self.index.functions.values():
            if other.module == info.module and other.qualname.startswith(nested_prefix):
                if "." not in other.qualname[len(nested_prefix):]:
                    self._add_edge(info.id, other)
        for node in own_nodes(info.node):
            if not isinstance(node, ast.Call):
                continue
            self._resolve_call(info, node, locals_)
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                self._reference_edge(info, arg, locals_)

    def _collect_locals(self, info: FunctionInfo) -> _LocalTypes:
        locals_ = _LocalTypes()
        for node in own_nodes(info.node):
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            target = node.targets[0]
            if not isinstance(target, ast.Name):
                continue
            value = node.value
            if isinstance(value, ast.Name):
                resolved = self.index.resolve(info.module, value.id)
                if isinstance(resolved, FunctionInfo):
                    locals_.callables[target.id] = resolved.id
                elif isinstance(resolved, ClassInfo):
                    locals_.class_aliases[target.id] = resolved.id
            elif isinstance(value, ast.Call):
                classes = self._constructed_classes(info, value, locals_)
                if classes:
                    locals_.instances[target.id] = classes
        return locals_

    def _constructed_classes(
        self, info: FunctionInfo, call: ast.Call, locals_: _LocalTypes
    ) -> list[str]:
        """Class ids a call expression provably constructs (possibly many)."""
        func = call.func
        if isinstance(func, ast.Name):
            if func.id in locals_.class_aliases:
                return [locals_.class_aliases[func.id]]
            resolved = self.index.resolve(info.module, func.id)
            if isinstance(resolved, ClassInfo):
                return [resolved.id]
        elif isinstance(func, ast.Subscript) and isinstance(func.value, ast.Name):
            dispatch = self.index.resolve_dispatch(info.module, func.value.id)
            if dispatch:
                return list(dispatch)
        elif isinstance(func, ast.Attribute):
            ref = _dotted(func)
            if ref is not None:
                resolved = self.index.resolve(info.module, ref)
                if isinstance(resolved, ClassInfo):
                    return [resolved.id]
        return []

    def _reference_edge(self, info: FunctionInfo, arg: ast.AST, locals_: _LocalTypes) -> None:
        """A project function passed as a call argument may be called back."""
        if isinstance(arg, ast.Name):
            if arg.id in locals_.callables:
                self._add_edge(info.id, self.index.functions[locals_.callables[arg.id]])
                return
            resolved = self.index.resolve(info.module, arg.id)
            if isinstance(resolved, FunctionInfo):
                self._add_edge(info.id, resolved)

    def _resolve_call(self, info: FunctionInfo, call: ast.Call, locals_: _LocalTypes) -> None:
        func = call.func
        if isinstance(func, ast.Name):
            if self._resolve_name_call(info, call, func.id, locals_):
                return
            self._skip(info.id, call.lineno, func.id)
        elif isinstance(func, ast.Subscript):
            classes = self._constructed_classes(info, call, locals_)
            if classes:
                for class_id in classes:
                    self._constructor_edge(info, class_id)
                return
            self._skip(info.id, call.lineno, "<subscript call>")
        elif isinstance(func, ast.Attribute):
            if self._resolve_attribute_call(info, call, func, locals_):
                return
            self._skip(info.id, call.lineno, _dotted(func) or f"<{type(func.value).__name__} receiver>")
        else:
            self._skip(info.id, call.lineno, f"<{type(func).__name__} call>")

    def _resolve_name_call(
        self, info: FunctionInfo, call: ast.Call, name: str, locals_: _LocalTypes
    ) -> bool:
        # nested function in an enclosing *function* scope (innermost first)
        parts = info.qualname.split(".")
        for i in range(len(parts), 0, -1):
            prefix = ".".join(parts[:i])
            if f"{info.module}::{prefix}" not in self.index.functions:
                continue  # class-level prefixes don't provide name visibility
            candidate = self.index.functions.get(f"{info.module}::{prefix}.{name}")
            if candidate is not None:
                return self._add_edge(info.id, candidate)
        if name in locals_.callables:
            return self._add_edge(info.id, self.index.functions[locals_.callables[name]])
        if name in locals_.class_aliases:
            return self._constructor_edge(info, locals_.class_aliases[name])
        resolved = self.index.resolve(info.module, name)
        if isinstance(resolved, FunctionInfo):
            return self._add_edge(info.id, resolved)
        if isinstance(resolved, ClassInfo):
            return self._constructor_edge(info, resolved.id)
        return False

    def _constructor_edge(self, info: FunctionInfo, class_id: str) -> bool:
        """``ClassName(...)`` reaches ``__init__`` (through the indexed MRO)."""
        class_info = self.index.classes[class_id]
        init = self.index.lookup_method(class_info, "__init__")
        self._add_edge(info.id, init)
        return True  # a class with no indexed __init__ is still resolved

    def _resolve_attribute_call(
        self, info: FunctionInfo, call: ast.Call, func: ast.Attribute, locals_: _LocalTypes
    ) -> bool:
        if not isinstance(func.value, ast.Name):
            return False  # multi-level receivers are conservatively skipped
        receiver, method = func.value.id, func.attr
        if receiver in ("self", "cls") and info.class_id is not None:
            owner = self.index.classes[info.class_id]
            return self._method_edges(info, owner, method)
        if receiver in locals_.instances:
            resolved_any = False
            for class_id in locals_.instances[receiver]:
                resolved_any |= self._method_edges(info, self.index.classes[class_id], method)
            return resolved_any
        if receiver in locals_.class_aliases:
            owner = self.index.classes[locals_.class_aliases[receiver]]
            return self._method_edges(info, owner, method)
        resolved = self.index.resolve(info.module, receiver)
        if isinstance(resolved, ClassInfo):
            return self._method_edges(info, resolved, method)
        # module-attribute call: ``mod.f()`` through an imported module
        binding = self.index.imports.get(info.module, {}).get(receiver)
        if binding is not None and binding in self.index.modules:
            target = self.index.resolve(binding, method)
            if isinstance(target, FunctionInfo):
                return self._add_edge(info.id, target)
            if isinstance(target, ClassInfo):
                return self._constructor_edge(info, target.id)
        return False

    def _method_edges(self, info: FunctionInfo, owner: ClassInfo, method: str) -> bool:
        targets = self.index.method_targets(owner, method)
        if not targets:
            return False
        for target in targets:
            self._add_edge(info.id, target)
        return True
