"""Standard-deviation-to-mean ratio, the paper's load-balance metric."""

from __future__ import annotations

import numpy as np


def sdmr_percent(values) -> float:
    """SDMR = sqrt(variance) / mean * 100 (percent).

    The paper writes it as sqrt(sigma^2 / mu) * 100 in the text, but the
    values in Table III are consistent with the conventional coefficient of
    variation used here.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        return 0.0
    mean = values.mean()
    if mean == 0:
        return 0.0
    return float(values.std() / mean * 100.0)
