"""Energy/force error metrics (Table II of the paper).

The paper reports the error of a single step relative to the AIMD reference
for three precision modes.  Here the reference is the pseudo-AIMD potential
the model was trained on; the metrics match the paper's units (eV/atom for
the energy, eV/A for forces).
"""

from __future__ import annotations

import numpy as np

from ..utils.tables import Table


def energy_error_per_atom(predicted_energy: float, reference_energy: float, n_atoms: int) -> float:
    """|E_model - E_ref| / N in eV/atom."""
    if n_atoms <= 0:
        raise ValueError("atom count must be positive")
    return abs(float(predicted_energy) - float(reference_energy)) / n_atoms


def force_rmse(predicted: np.ndarray, reference: np.ndarray) -> float:
    """Root-mean-square force component error in eV/A."""
    predicted = np.asarray(predicted, dtype=np.float64)
    reference = np.asarray(reference, dtype=np.float64)
    if predicted.shape != reference.shape:
        raise ValueError("force arrays must have the same shape")
    diff = predicted - reference
    return float(np.sqrt(np.mean(diff * diff)))


def force_max_error(predicted: np.ndarray, reference: np.ndarray) -> float:
    """Maximum absolute force component error in eV/A."""
    predicted = np.asarray(predicted, dtype=np.float64)
    reference = np.asarray(reference, dtype=np.float64)
    if predicted.shape != reference.shape:
        raise ValueError("force arrays must have the same shape")
    return float(np.max(np.abs(predicted - reference)))


def precision_error_table(results: dict[str, dict[str, float]]) -> Table:
    """Format per-precision error dictionaries as the Table II layout.

    ``results`` maps precision name -> {"energy": eV/atom, "force": eV/A}.
    """
    table = Table(
        headers=["Precision", "Error in energy [eV/atom]", "Error in force [eV/A]"],
        title="Table II — error of the energy and force for one time-step",
    )
    for precision, metrics in results.items():
        table.add_row(precision, metrics["energy"], metrics["force"])
    return table
