"""Analysis helpers: error metrics, SDMR, RDF comparison — and reprolint,
the AST-based invariant linter (``python -m repro.analysis``)."""

from .errors import energy_error_per_atom, force_rmse, force_max_error, precision_error_table
from .reprolint import Violation, lint_paths, lint_source, lint_sources
from .sdmr import sdmr_percent

__all__ = [
    "energy_error_per_atom",
    "force_rmse",
    "force_max_error",
    "precision_error_table",
    "sdmr_percent",
    "Violation",
    "lint_paths",
    "lint_source",
    "lint_sources",
]
