"""Analysis helpers: error metrics, SDMR, RDF comparison."""

from .errors import energy_error_per_atom, force_rmse, force_max_error, precision_error_table
from .sdmr import sdmr_percent

__all__ = [
    "energy_error_per_atom",
    "force_rmse",
    "force_max_error",
    "precision_error_table",
    "sdmr_percent",
]
