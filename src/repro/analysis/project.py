"""One-pass whole-program index over every linted file.

:class:`ProjectIndex` turns a set of :class:`~repro.analysis.reprolint.ParsedFile`
objects into the symbol tables the call-graph resolver needs: the dotted module
name of every file, every function and class (with its methods and resolved
base classes), every import binding (absolute and relative, ``import x as y``
and ``from . import z``), module-level function aliases (``f = g``) and
dispatch dictionaries (``D = {"k": ClassName, ...}`` — the
``parallel.engine._EVALUATORS`` idiom).

Resolution is deliberately *conservative*: a name that cannot be traced to a
definition inside the linted roots resolves to ``None`` and the call-graph
records it as skipped.  The whole-program rules (RL006–RL008) only ever act on
edges the index can prove, so an unresolvable receiver bounds their blast
radius instead of widening it.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import PurePosixPath
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints only
    from .reprolint import ParsedFile

__all__ = [
    "FunctionInfo",
    "ClassInfo",
    "ProjectIndex",
    "module_name_for",
]


def module_name_for(rel_path: str) -> str:
    """The dotted module name a file would import as (``src/`` stripped)."""
    parts = list(PurePosixPath(rel_path).with_suffix("").parts)
    while parts and parts[0] in (".", "src"):
        parts = parts[1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


@dataclass
class FunctionInfo:
    """One indexed function/method definition."""

    id: str  # "<module>::<qualname>"
    module: str
    qualname: str
    rel_path: str
    node: ast.AST
    class_id: str | None = None  # owning class id when this is a method

    @property
    def name(self) -> str:
        return self.qualname.rsplit(".", 1)[-1]


@dataclass
class ClassInfo:
    """One indexed class: its methods and the base names as written."""

    id: str  # "<module>::<qualname>"
    module: str
    qualname: str
    rel_path: str
    node: ast.ClassDef
    base_refs: list[str] = field(default_factory=list)
    methods: dict[str, str] = field(default_factory=dict)  # name -> function id

    @property
    def name(self) -> str:
        return self.qualname.rsplit(".", 1)[-1]


def _symbol_id(module: str, qualname: str) -> str:
    return f"{module}::{qualname}"


class ProjectIndex:
    """Modules, classes, functions and import bindings across all linted files."""

    def __init__(self) -> None:
        self.modules: dict[str, str] = {}  # module name -> rel_path
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        #: per-module import bindings: local name -> absolute dotted target
        self.imports: dict[str, dict[str, str]] = {}
        #: per-module ``f = g`` aliases: alias name -> target name as written
        self.aliases: dict[str, dict[str, str]] = {}
        #: per-module dispatch dicts: dict name -> class ids of the values
        self.dispatch_dicts: dict[str, dict[str, list[str]]] = {}
        #: class id -> ids of classes that list it as a base
        self.subclasses: dict[str, list[str]] = {}

    # -- construction ----------------------------------------------------------
    @classmethod
    def build(cls, parsed_files: dict[str, "ParsedFile"]) -> "ProjectIndex":
        index = cls()
        for rel_path, parsed in parsed_files.items():
            index._index_file(rel_path, parsed)
        for rel_path, parsed in parsed_files.items():
            index._index_module_bindings(rel_path, parsed)
        index._link_subclasses()
        return index

    def _index_file(self, rel_path: str, parsed: "ParsedFile") -> None:
        module = module_name_for(rel_path)
        self.modules[module] = rel_path
        class_quals = {qualname for qualname, _ in parsed.classes}
        for qualname, node in parsed.classes:
            info = ClassInfo(
                id=_symbol_id(module, qualname),
                module=module,
                qualname=qualname,
                rel_path=rel_path,
                node=node,
                base_refs=[
                    ref for ref in (_dotted(base) for base in node.bases) if ref
                ],
            )
            self.classes[info.id] = info
        for qualname, node in parsed.functions:
            owner = qualname.rsplit(".", 1)[0] if "." in qualname else None
            class_id = (
                _symbol_id(module, owner) if owner in class_quals else None
            )
            info = FunctionInfo(
                id=_symbol_id(module, qualname),
                module=module,
                qualname=qualname,
                rel_path=rel_path,
                node=node,
                class_id=class_id,
            )
            self.functions[info.id] = info
            if class_id is not None:
                self.classes[class_id].methods.setdefault(info.name, info.id)

    def _index_module_bindings(self, rel_path: str, parsed: "ParsedFile") -> None:
        module = module_name_for(rel_path)
        bindings = self.imports.setdefault(module, {})
        # imports are collected from the whole tree (function-level imports
        # included) and bound at module granularity — a deliberate
        # approximation that lets `from .engine import _EVALUATORS` inside
        # a worker entrypoint resolve
        for node in ast.walk(parsed.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".", 1)[0]
                    target = alias.name if alias.asname else alias.name.split(".", 1)[0]
                    bindings[local] = target
            elif isinstance(node, ast.ImportFrom):
                base = self._relative_base(module, node.level, node.module)
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    bindings[local] = f"{base}.{alias.name}" if base else alias.name
        aliases = self.aliases.setdefault(module, {})
        dispatch = self.dispatch_dicts.setdefault(module, {})
        for stmt in parsed.tree.body:
            if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
                continue
            target = stmt.targets[0]
            if not isinstance(target, ast.Name):
                continue
            if isinstance(stmt.value, ast.Name):
                aliases[target.id] = stmt.value.id
            elif isinstance(stmt.value, ast.Dict):
                class_ids = []
                for value in stmt.value.values:
                    ref = _dotted(value)
                    resolved = self.resolve_class(module, ref) if ref else None
                    if resolved is not None:
                        class_ids.append(resolved.id)
                if class_ids:
                    dispatch[target.id] = class_ids

    @staticmethod
    def _relative_base(module: str, level: int, target: str | None) -> str | None:
        if level == 0:
            return target or ""
        parts = module.split(".")
        if level > len(parts):
            return None
        base_parts = parts[: len(parts) - level]
        if target:
            base_parts.append(target)
        return ".".join(base_parts)

    def _link_subclasses(self) -> None:
        for info in self.classes.values():
            for ref in info.base_refs:
                base = self.resolve_class(info.module, ref)
                if base is not None:
                    self.subclasses.setdefault(base.id, []).append(info.id)

    # -- symbol resolution -----------------------------------------------------
    def split_absolute(self, dotted: str) -> tuple[str, str] | None:
        """``(module, qualname)`` for an absolute dotted path, longest module wins."""
        parts = dotted.split(".")
        for i in range(len(parts) - 1, 0, -1):
            module = ".".join(parts[:i])
            if module in self.modules:
                return module, ".".join(parts[i:])
        return None

    def resolve(
        self, module: str, dotted: str, _visited: frozenset[str] = frozenset()
    ):
        """Resolve a name used in ``module`` to a Function/ClassInfo, or ``None``.

        Checks, in order: definitions in the module itself, module-level
        aliases, import bindings (following one-hop re-exports through
        ``__init__`` style modules).
        """
        local = _symbol_id(module, dotted)
        if not dotted or local in _visited:
            return None
        _visited = _visited | {local}
        if local in self.functions:
            return self.functions[local]
        if local in self.classes:
            return self.classes[local]
        head, _, rest = dotted.partition(".")
        alias_target = self.aliases.get(module, {}).get(head)
        if alias_target is not None and not rest:
            return self.resolve(module, alias_target, _visited)
        binding = self.imports.get(module, {}).get(head)
        if binding is None:
            return None
        absolute = f"{binding}.{rest}" if rest else binding
        split = self.split_absolute(absolute)
        if split is None:
            return None
        target_module, qualname = split
        if not qualname:
            return None
        if target_module == module and qualname == dotted:
            return None
        return self.resolve(target_module, qualname, _visited)

    def resolve_class(self, module: str, dotted: str) -> ClassInfo | None:
        resolved = self.resolve(module, dotted)
        return resolved if isinstance(resolved, ClassInfo) else None

    def resolve_function(self, module: str, dotted: str) -> FunctionInfo | None:
        resolved = self.resolve(module, dotted)
        return resolved if isinstance(resolved, FunctionInfo) else None

    def resolve_dispatch(self, module: str, name: str) -> list[str] | None:
        """Class ids behind a dispatch-dict name visible from ``module``."""
        local = self.dispatch_dicts.get(module, {}).get(name)
        if local is not None:
            return local
        binding = self.imports.get(module, {}).get(name)
        if binding is None:
            return None
        split = self.split_absolute(binding)
        if split is None:
            return None
        target_module, qualname = split
        return self.dispatch_dicts.get(target_module, {}).get(qualname)

    # -- method lookup ---------------------------------------------------------
    def lookup_method(
        self, class_info: ClassInfo, name: str, _visited: frozenset[str] = frozenset()
    ) -> FunctionInfo | None:
        """The method ``name`` on ``class_info`` or its indexed bases (MRO-lite)."""
        if class_info.id in _visited:
            return None
        _visited = _visited | {class_info.id}
        method_id = class_info.methods.get(name)
        if method_id is not None:
            return self.functions[method_id]
        for ref in class_info.base_refs:
            base = self.resolve_class(class_info.module, ref)
            if base is not None:
                found = self.lookup_method(base, name, _visited)
                if found is not None:
                    return found
        return None

    def method_targets(self, class_info: ClassInfo, name: str) -> list[FunctionInfo]:
        """Every implementation a ``receiver.name()`` call could dispatch to.

        The defining method on the class (or an indexed base) plus every
        override on a transitive subclass — the ``ForceField.compute``-style
        edge set: a call through a base-typed receiver may land in any
        registered subclass.
        """
        targets: dict[str, FunctionInfo] = {}
        defined = self.lookup_method(class_info, name)
        if defined is not None:
            targets[defined.id] = defined
        stack = list(self.subclasses.get(class_info.id, ()))
        seen: set[str] = set()
        while stack:
            sub_id = stack.pop()
            if sub_id in seen:
                continue
            seen.add(sub_id)
            sub = self.classes[sub_id]
            method_id = sub.methods.get(name)
            if method_id is not None:
                targets[method_id] = self.functions[method_id]
            stack.extend(self.subclasses.get(sub_id, ()))
        return list(targets.values())


def _dotted(node: ast.AST) -> str | None:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None
