"""The machine-checkable house contracts consumed by :mod:`repro.analysis.rules`.

Every entry here encodes one of the ROADMAP's architecture notes as data the
AST rules can enforce.  The declarations are intentionally *explicit* — a new
golden site, hot-path registration or sanctioned dtype module is a reviewed
edit to this file (or a ``# reprolint:`` annotation in the source), never an
inference the linter makes on its own.

Path matching is by normalized POSIX suffix, so the same declarations work for
``src/repro/...`` on disk and for the synthetic filenames the rule self-tests
lint in memory.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "GoldenSite",
    "GOLDEN_SITES",
    "FAST_PATH_MODULES",
    "FAST_PATH_NAMES",
    "HOT_PATH_MARKER",
    "COLD_PATH_MARKER",
    "WORKER_ENTRYPOINTS",
    "WORKER_FORBIDDEN_CALLS",
    "WORKER_FORBIDDEN_CONSTRUCTORS",
    "SHARED_SLAB_COMPONENT",
    "ALLOCATING_CONSTRUCTORS",
    "DTYPE_SANCTIONED_SUFFIXES",
    "LOW_PRECISION_ATTRS",
    "PARALLEL_SCOPE",
    "SERVING_SCOPE",
    "PRODUCTION_SCOPE",
]


@dataclass(frozen=True)
class GoldenSite:
    """One frozen golden-reference region.

    ``path_suffix`` selects the file; ``qualname`` selects a function, method
    (``Class.method``) or whole class inside it — ``None`` freezes the entire
    module (the ``deepmd/scalar.py`` pattern).
    """

    path_suffix: str
    qualname: str | None
    note: str


#: The golden references of the ROADMAP architecture notes (PRs 1, 3, 5, 7).
#: Each must stay free of fast-path idioms so the parity pins keep comparing
#: an optimized path against genuinely un-optimized arithmetic.
GOLDEN_SITES: tuple[GoldenSite, ...] = (
    GoldenSite(
        "repro/deepmd/scalar.py",
        None,
        "PR 1: the per-atom scalar Deep Potential reference, pinned at 1e-10",
    ),
    GoldenSite(
        "repro/md/neighbor.py",
        "_brute_force_pairs",
        "PR 3: the O(N^2) pair-search reference the binned build is bitwise-confirmed against",
    ),
    GoldenSite(
        "repro/deepmd/compression.py",
        "TabulatedEmbeddingSet.evaluate",
        "PR 5: the per-key table reference the batched Hermite kernel is pinned to at 1e-12",
    ),
    GoldenSite(
        "repro/parallel/executor.py",
        "SequentialRankExecutor",
        "PR 7: the in-process executor the multiprocess path must match bitwise",
    ),
    GoldenSite(
        "repro/serving/serial.py",
        None,
        "PR 9: the one-system-at-a-time serving reference the batched path is pinned to at 1e-10",
    ),
)

#: Modules whose import inside a golden site marks fast-path leakage (matched
#: on the last dotted component so relative imports resolve too).
FAST_PATH_MODULES: frozenset[str] = frozenset({"workspace", "gemm"})

#: Names whose import or call inside a golden site marks fast-path leakage.
FAST_PATH_NAMES: frozenset[str] = frozenset(
    {"scatter_add_vectors", "scatter_add_scalars", "GemmBackend"}
)

#: The in-source marker body registering a function as a per-step hot path;
#: the full directive goes on the ``def`` line or the line above it.
HOT_PATH_MARKER = "hot-path"

#: The boundary marker for RL006's call-graph propagation: ``# reprolint:
#: cold-path <reason>`` on a ``def`` (same binding rules as ``hot-path``)
#: declares that the function runs only on the rebuild/cache-build cadence, so
#: reachability from a hot path stops there instead of holding its body (and
#: everything it calls) to the no-allocation contract.  The reason is
#: mandatory, like every other exemption.
COLD_PATH_MARKER = "cold-path"

#: The functions whose bodies execute in *worker context* (RL008): the
#: persistent-pool subprocess entry of the multiprocess executor, and the
#: serving engine's prep thread (the PR 9 analogue of a worker: it may build
#: neighbour lists and pack batches, never evaluate/integrate/fulfill).
#: Everything reachable from these through the call graph is held to the PR 7
#: contract — the parent keeps every comm, integration and reduction step.
WORKER_ENTRYPOINTS: tuple[tuple[str, str], ...] = (
    ("repro/parallel/executor.py", "_worker_main"),
    ("repro/serving/engine.py", "ServingEngine._prep_loop"),
)

#: Parent-only primitives (matched on the last dotted component of a call):
#: ghost-exchange selection/delivery, the engine's comm steps, integrator
#: half-steps and thermostats, global reductions/gathers and future
#: fulfilment.  A worker-reachable function calling any of these forks the
#: comm/integration sequence out of the parent and silently un-pins the
#: bitwise sequential-vs-process parity.
WORKER_FORBIDDEN_CALLS: frozenset[str] = frozenset(
    {
        # GhostExchange API + engine comm steps (parent-only, PR 7)
        "p2p_selection",
        "node_selection",
        "p2p_neighbor_ranks",
        "node_peer_ranks",
        "node_neighbor_ranks",
        "deliver",
        "_exchange_ghosts",
        "_migrate",
        "_forward_halo",
        "_reverse_scatter_forces",
        "_refresh_ghost_positions",
        # integration + thermostat scheduling (parent-only, PR 4/7)
        "first_half",
        "second_half",
        "integrate_first_half",
        "integrate_second_half",
        "apply_thermostat",
        # global reductions / request fulfilment (parent/compute-side, PR 7/9)
        "sample_temperature",
        "capture_positions",
        "evaluate_many",
        "set_result",
        "set_exception",
    }
)

#: Constructing a comm component in worker context is as much a fork of the
#: parent-owned exchange as calling one.
WORKER_FORBIDDEN_CONSTRUCTORS: frozenset[str] = frozenset({"GhostExchange"})

#: Attribute component naming the shared-memory slab bundle
#: (``SharedRankArrays`` travels as ``init.shared`` / ``self.shared``).
#: Worker-reachable code writing through a ``*.shared.*`` chain bypasses the
#: own-rank row views that make slab writes race-free.
SHARED_SLAB_COMPONENT = "shared"

#: NumPy constructors that allocate a fresh array every call — banned inside
#: registered hot paths (the static complement of ``bench_run_loop.py``'s
#: runtime allocation budget).  ``np.ufunc.at`` and out-less ``.astype`` are
#: handled structurally by the rule, not by this name set.
ALLOCATING_CONSTRUCTORS: frozenset[str] = frozenset(
    {"zeros", "empty", "ones", "full", "concatenate", "stack", "hstack", "vstack"}
)

#: The only production modules allowed to name a low-precision dtype (the PR 6
#: precision-policy boundary): policy definitions, the packed table cast and
#: the GEMM backend.
DTYPE_SANCTIONED_SUFFIXES: tuple[str, ...] = (
    "repro/deepmd/precision.py",
    "repro/deepmd/compression.py",
    "repro/deepmd/gemm.py",
)

#: Attribute names that count as low-precision dtype literals.
LOW_PRECISION_ATTRS: frozenset[str] = frozenset({"float32", "float16", "half"})

#: Path fragment scoping the fixed-order-reduction rule (the PR 7 bitwise
#: invariant lives in the parallel package).
PARALLEL_SCOPE = "repro/parallel/"

#: The serving package carries the same fixed-order contract (PR 9): a
#: request's segment reductions must not depend on which companions it was
#: batched with, so serving loops may not iterate unordered sets either.
SERVING_SCOPE = "repro/serving/"

#: Path fragment scoping production-tree-only rules (tests and benchmarks may
#: probe dtypes freely).
PRODUCTION_SCOPE = "repro/"


def in_production_tree(rel_path: str) -> bool:
    """True when ``rel_path`` lies inside the installed ``repro`` package."""
    return PRODUCTION_SCOPE in rel_path


def in_parallel_package(rel_path: str) -> bool:
    return PARALLEL_SCOPE in rel_path


def in_serving_package(rel_path: str) -> bool:
    return SERVING_SCOPE in rel_path


def is_dtype_sanctioned(rel_path: str) -> bool:
    return any(rel_path.endswith(suffix) for suffix in DTYPE_SANCTIONED_SUFFIXES)
