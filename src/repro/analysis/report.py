"""Reporting layer for reprolint: text/JSON/SARIF rendering and baselines.

The CLI (``python -m repro.analysis``) renders one of three formats:

* ``text`` — the classic ``path:line: RLxxx message`` stream plus a per-rule
  count summary;
* ``json`` — a machine-readable report (CI uploads it as a build artifact and
  it doubles as the ``--baseline`` input format);
* ``sarif`` — SARIF 2.1.0 for code-scanning UIs.

``--baseline report.json`` suppresses findings already present in a previous
JSON report, matched on ``(path, rule_id, message)`` — line numbers drift
with unrelated edits, messages carry the qualified names and stay stable.
"""

from __future__ import annotations

import json
from pathlib import Path

from .reprolint import FRAMEWORK_RULE_ID, FRAMEWORK_SLUG, Violation

__all__ = [
    "rule_catalogue",
    "violation_counts",
    "render_text",
    "render_json",
    "render_sarif",
    "load_report_baseline",
    "apply_baseline",
]

REPORT_SCHEMA_VERSION = 1


def rule_catalogue() -> list[dict]:
    """Every rule (framework row first) as ``{id, slug, description}``."""
    from .rules import ALL_RULES, PROGRAM_RULES

    catalogue = [
        {
            "id": FRAMEWORK_RULE_ID,
            "slug": FRAMEWORK_SLUG,
            "description": "pragma hygiene and parse errors",
        }
    ]
    for rule_cls in ALL_RULES + PROGRAM_RULES:
        catalogue.append(
            {
                "id": rule_cls.rule_id,
                "slug": rule_cls.slug,
                "description": rule_cls.description,
            }
        )
    return catalogue


def violation_counts(violations: list[Violation]) -> dict[str, int]:
    counts: dict[str, int] = {}
    for violation in violations:
        counts[violation.rule_id] = counts.get(violation.rule_id, 0) + 1
    return dict(sorted(counts.items()))


def render_text(violations: list[Violation], suppressed: int = 0) -> str:
    lines = [violation.format() for violation in violations]
    counts = violation_counts(violations)
    if counts:
        summary = ", ".join(f"{rule_id}: {n}" for rule_id, n in counts.items())
        lines.append(f"reprolint: {len(violations)} violation(s) ({summary})")
    else:
        lines.append("reprolint: clean")
    if suppressed:
        lines.append(f"reprolint: {suppressed} pre-existing finding(s) hidden by --baseline")
    return "\n".join(lines)


def render_json(violations: list[Violation], suppressed: int = 0) -> str:
    payload = {
        "tool": "reprolint",
        "schema_version": REPORT_SCHEMA_VERSION,
        "rules": rule_catalogue(),
        "counts": violation_counts(violations),
        "baseline_suppressed": suppressed,
        "violations": [
            {
                "path": v.path,
                "line": v.line,
                "rule_id": v.rule_id,
                "message": v.message,
            }
            for v in violations
        ],
    }
    return json.dumps(payload, indent=2) + "\n"


def render_sarif(violations: list[Violation], suppressed: int = 0) -> str:
    rules = [
        {
            "id": entry["id"],
            "name": entry["slug"],
            "shortDescription": {"text": entry["description"]},
        }
        for entry in rule_catalogue()
    ]
    results = [
        {
            "ruleId": v.rule_id,
            "level": "error",
            "message": {"text": v.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": v.path},
                        "region": {"startLine": v.line},
                    }
                }
            ],
        }
        for v in violations
    ]
    payload = {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "reprolint",
                        "informationUri": "https://example.invalid/reprolint",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(payload, indent=2) + "\n"


def load_report_baseline(path: str | Path) -> set[tuple[str, str, str]]:
    """``(path, rule_id, message)`` keys recorded in a previous JSON report."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    keys: set[tuple[str, str, str]] = set()
    for entry in payload.get("violations", ()):
        keys.add((str(entry["path"]), str(entry["rule_id"]), str(entry["message"])))
    return keys


def apply_baseline(
    violations: list[Violation], baseline: set[tuple[str, str, str]]
) -> tuple[list[Violation], int]:
    """``(new findings, suppressed count)`` after baseline filtering."""
    kept = [
        v for v in violations if (v.path, v.rule_id, v.message) not in baseline
    ]
    return kept, len(violations) - len(kept)
